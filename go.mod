module smartsra

go 1.22
