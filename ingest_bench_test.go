package smartsra

import (
	"bufio"
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// ingestWorkload renders one Table 5-scale simulated run as a CLF log.
func ingestWorkload(b *testing.B) (*webgraph.Graph, []clf.Record, []byte) {
	b.Helper()
	params := simulator.PaperParams()
	params.Agents = 500
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	records := res.Log(g)
	var buf bytes.Buffer
	if err := clf.WriteAll(&buf, records); err != nil {
		b.Fatal(err)
	}
	return g, records, buf.Bytes()
}

// BenchmarkIngest measures the streaming ingestion layer: CLF parse
// throughput (legacy per-line-string path, []byte fast path, chunk-parallel
// reader) and Tail vs concurrently-fed ShardedTail sessionization. The
// records/s metric is the headline; allocs/op shows the parse path's
// allocation reduction. On >=4 cores the parallel and sharded variants
// should show a >=2x records/s win over their sequential baselines while
// producing identical output (pinned by TestReadAllParallelMatchesReadAll
// and TestShardedTailEquivalentToTail under -race).
func BenchmarkIngest(b *testing.B) {
	g, records, data := ingestWorkload(b)
	recs := float64(len(records))

	b.Run("parse-string", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sc := bufio.NewScanner(bytes.NewReader(data))
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if len(line) > 0 {
					clf.ParseAnyRecord(line)
				}
			}
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("parse-bytes", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, _, err := clf.ReadAll(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parse-parallel/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, _, err := clf.ReadAllParallel(bytes.NewReader(data), workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}

	b.Run("tail", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tl, err := core.NewTail(core.Config{Graph: g}, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, rec := range records {
				tl.Push(rec)
			}
			tl.Flush()
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("tail-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tl, err := core.NewTail(core.Config{Graph: g}, 0)
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(records); off += 8192 {
				end := off + 8192
				if end > len(records) {
					end = len(records)
				}
				tl.PushBatch(records[off:end])
			}
			tl.Flush()
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("sharded-tail", func(b *testing.B) {
		// Partition records by user across feeders so each user's arrival
		// order is preserved (the determinism contract's requirement).
		feeders := runtime.GOMAXPROCS(0)
		if feeders < 2 {
			feeders = 2
		}
		feeds := make([][]clf.Record, feeders)
		for _, rec := range records {
			h := uint32(2166136261)
			for i := 0; i < len(rec.Host); i++ {
				h = (h ^ uint32(rec.Host[i])) * 16777619
			}
			feeds[h%uint32(feeders)] = append(feeds[h%uint32(feeders)], rec)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := core.NewShardedTail(core.Config{Graph: g}, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, part := range feeds {
				wg.Add(1)
				go func(part []clf.Record) {
					defer wg.Done()
					for _, rec := range part {
						st.Push(rec)
					}
				}(part)
			}
			wg.Wait()
			st.Flush()
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

// BenchmarkTailPush is the sessionizer hot path record-at-a-time: the
// baseline the batched path is gated against (batch >= single, enforced by
// cmd/benchgate on ingest_batch_speedup).
func BenchmarkTailPush(b *testing.B) {
	g, records, _ := ingestWorkload(b)
	recs := float64(len(records))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := core.NewTail(core.Config{Graph: g}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range records {
			tl.Push(rec)
		}
		tl.Flush()
	}
	b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkTailPushBatch is the same workload through the batched hot path:
// one metrics flush per 8192-record batch on a Tail, and one lock
// acquisition per touched shard per batch on a ShardedTail.
func BenchmarkTailPushBatch(b *testing.B) {
	g, records, _ := ingestWorkload(b)
	recs := float64(len(records))
	const batch = 8192
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := core.NewShardedTail(core.Config{Graph: g}, 0, shards)
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < len(records); off += batch {
					end := off + batch
					if end > len(records) {
						end = len(records)
					}
					st.PushBatch(records[off:end])
				}
				st.Flush()
			}
			b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
