// Quickstart: reconstruct sessions from the paper's running example.
//
// It builds the Figure 1 topology, replays the Table 1 request sequence, and
// prints what each of the four heuristics makes of it — ending with
// Smart-SRA's three maximal sessions from Table 4.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func main() {
	// The paper's example site: P1 and P49 are entry pages.
	g, ids := webgraph.PaperFigure1()
	fmt.Println("topology:", g)

	// Table 3's request sequence (minutes 0, 6, 9, 12, 14, 15).
	names := []string{"P1", "P20", "P13", "P49", "P34", "P23"}
	minutes := []int{0, 6, 9, 12, 14, 15}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	stream := session.Stream{User: "10.0.0.7"}
	for i, n := range names {
		stream.Entries = append(stream.Entries, session.Entry{
			Page: ids[n],
			Time: t0.Add(time.Duration(minutes[i]) * time.Minute),
		})
	}
	rev := make(map[webgraph.PageID]string)
	for n, id := range ids {
		rev[id] = n
	}

	for _, h := range []heuristics.Reconstructor{
		heuristics.NewTimeTotal(),
		heuristics.NewTimeGap(),
		heuristics.NewNavigation(g),
		heuristics.NewSmartSRA(g),
	} {
		desc := ""
		if d, ok := h.(heuristics.Describer); ok {
			desc = d.Describe()
		}
		fmt.Printf("\n%s — %s\n", h.Name(), desc)
		for _, s := range h.Reconstruct(stream) {
			fmt.Print("  [")
			for i, e := range s.Entries {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Print(rev[e.Page])
			}
			fmt.Println("]")
		}
	}
}
