// Compare: score all four heuristics against ground truth on one workload.
//
// It reproduces a single point of the paper's evaluation at Table 5 defaults
// and prints, for each heuristic, both accuracy readings and the shape of
// the reconstructed session set — including the session-length inflation of
// the navigation-oriented heuristic the paper discusses in §2.2.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"smartsra/internal/eval"
)

func main() {
	cfg := eval.PaperDefaults()
	cfg.Params.Agents = 2000 // Table 5 uses 10000; trimmed for example speed
	point, err := eval.EvaluatePoint(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Table 5 defaults: STP=5%% LPP=30%% NIP=30%%, %d agents, %d real sessions\n\n",
		cfg.Params.Agents, point.RealSessions)
	fmt.Printf("%-7s %-18s %-18s %s\n", "", "matched accuracy", "exists accuracy", "reconstructed sessions")
	for _, h := range eval.HeuristicNames {
		fmt.Printf("%-7s %-18s %-18s %s\n",
			h, point.Matched[h], point.Exists[h], point.Reconstructed[h])
	}

	fmt.Println("\nreading the table:")
	fmt.Println("- matched: one-to-one credit, the paper's 'correctly reconstructed sessions'")
	fmt.Println("- exists:  a real session counts if any candidate captures it")
	fmt.Println("- heur3's mean session length shows the backward-movement inflation (§2.2)")
	fmt.Println("- heur4 (Smart-SRA) produces roughly one candidate per real session")
}
