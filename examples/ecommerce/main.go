// E-commerce: session reconstruction and pattern mining on a store site.
//
// It hand-builds a small online-store topology (home → categories →
// products → cart → checkout), simulates shoppers over it, reconstructs
// their sessions from the server log with Smart-SRA, and mines the frequent
// navigation paths and association rules — surfacing funnels like
// "product → cart → checkout" that site-reorganization and link-prediction
// applications (the paper's motivating uses) consume.
//
// Run with: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"smartsra/internal/core"
	"smartsra/internal/mining"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	g, names := storeTopology()
	fmt.Println("store:", g)

	params := simulator.PaperParams()
	params.Agents = 2000
	params.Seed = 7
	params.NIP = 0.05 // shoppers rarely jump back to the home page mid-visit
	params.LPP = 0.35 // but browse back and forth between products a lot
	sim, err := simulator.Run(g, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic:", sim.Stats)

	pipeline, err := core.NewPipeline(core.Config{Graph: g})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.ProcessRecords(sim.Log(g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sessions:", res.Stats)

	patterns, err := mining.Mine(res.Sessions, mining.Config{
		MinSupport:  25,
		MaxLength:   4,
		Containment: mining.Contiguous,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop navigation paths (of %d frequent patterns):\n", len(patterns))
	shown := 0
	for _, p := range patterns {
		if len(p.Pages) < 2 {
			continue
		}
		fmt.Printf("  x%-4d %s\n", p.Support, path(names, p.Pages))
		if shown++; shown == 10 {
			break
		}
	}

	rules := mining.Rules(patterns, 0.4)
	fmt.Printf("\nnavigation rules (confidence ≥ 0.40):\n")
	for i, r := range rules {
		if i == 10 {
			break
		}
		fmt.Printf("  %.0f%%  %s => %s (x%d)\n",
			r.Confidence*100, path(names, r.Antecedent), names[r.Consequent], r.Support)
	}
}

// path renders page IDs as store page names.
func path(names []string, pages []webgraph.PageID) string {
	out := ""
	for i, p := range pages {
		if i > 0 {
			out += " -> "
		}
		out += names[p]
	}
	return out
}

// storeTopology builds a 27-page store: home, 3 categories with 6 products
// each, search, cart, checkout, order-confirmation, and account pages.
func storeTopology() (*webgraph.Graph, []string) {
	names := []string{"home", "search", "cart", "checkout", "confirmation", "account"}
	categories := []string{"books", "music", "games"}
	for _, c := range categories {
		names = append(names, "cat/"+c)
		for i := 1; i <= 6; i++ {
			names = append(names, fmt.Sprintf("%s/item%d", c, i))
		}
	}
	idx := make(map[string]webgraph.PageID, len(names))
	for i, n := range names {
		idx[n] = webgraph.PageID(i)
	}
	b := webgraph.NewBuilder(len(names))
	for i, n := range names {
		if err := b.SetLabel(webgraph.PageID(i), "/"+n+".html"); err != nil {
			log.Fatal(err)
		}
		_ = n
	}
	edge := func(from, to string) {
		if err := b.AddEdge(idx[from], idx[to]); err != nil {
			log.Fatal(err)
		}
	}
	// Home links everywhere top-level; search reaches every product.
	for _, c := range categories {
		edge("home", "cat/"+c)
	}
	edge("home", "search")
	edge("home", "cart")
	edge("home", "account")
	for _, c := range categories {
		cat := "cat/" + c
		edge(cat, "home")
		edge(cat, "cart")
		for i := 1; i <= 6; i++ {
			item := fmt.Sprintf("%s/item%d", c, i)
			edge(cat, item)
			edge(item, cat)
			edge(item, "cart")
			edge("search", item)
			// Cross-sell links between neighboring products.
			if i > 1 {
				prev := fmt.Sprintf("%s/item%d", c, i-1)
				edge(prev, item)
			}
		}
	}
	edge("cart", "checkout")
	edge("cart", "home")
	edge("checkout", "confirmation")
	edge("confirmation", "home")
	edge("account", "home")
	// Shoppers arrive at home, at a category (ads), or at search.
	for _, entry := range []string{"home", "search", "cat/books"} {
		if err := b.MarkStartPage(idx[entry]); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, names
}
