// Live site: the whole paper over real HTTP.
//
// It starts an in-process web server that renders a random topology as HTML
// pages, drives live browsing agents against it with plain net/http clients
// (client-side cache, Referer headers, the four navigation behaviors), lets
// the CLF middleware write the access log, then runs the reactive pipeline
// on that log and scores it against the agents' own ground truth — no
// simulator shortcut anywhere in the loop.
//
// Run with: go run ./examples/livesite
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/eval"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
	"smartsra/internal/webserver"
)

// clock serializes synthetic timestamps (~2 minutes apart) so the log is
// meaningful to the 30/10-minute time rules even though the HTTP requests
// complete within milliseconds.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(2 * time.Minute)
	return c.now
}

func main() {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 120, AvgOutDegree: 8, StartPageFraction: 0.08,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(99)))
	if err != nil {
		log.Fatal(err)
	}

	sink := &webserver.CollectSink{}
	ticker := &clock{now: time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)}
	srv := httptest.NewServer(webserver.AccessLog(webserver.NewSite(g), sink, ticker.Now))
	defer srv.Close()
	fmt.Println("site up at", srv.URL, "—", g)

	var entries []string
	for _, p := range g.StartPages() {
		entries = append(entries, g.Label(p))
	}

	const agents = 50
	var real []session.Session
	fetched, cached := 0, 0
	for id := 0; id < agents; id++ {
		ua := fmt.Sprintf("live-agent-%03d", id)
		res, err := webserver.Browse(http.DefaultClient, srv.URL, webserver.BrowseConfig{
			Entries: entries,
			STP:     0.06, LPP: 0.30, NIP: 0.30,
			MaxRequests: 80,
			Rng:         rand.New(rand.NewSource(int64(id))),
			UserAgent:   ua,
		})
		if err != nil {
			log.Fatal(err)
		}
		fetched += res.Fetched
		cached += res.CacheHits
		for _, uris := range res.RealSessions {
			s := session.Session{User: ua}
			for i, uri := range uris {
				page, _ := g.PageByURI(uri)
				s.Entries = append(s.Entries, session.Entry{
					Page: page, Time: time.Unix(int64(i), 0),
				})
			}
			real = append(real, s)
		}
	}
	fmt.Printf("browsed: %d agents, %d server fetches, %d cache hits, %d real sessions\n",
		agents, fetched, cached, len(real))

	// The server's log, exactly as the middleware recorded it.
	records := sink.Records()
	fmt.Printf("access log: %d records (first: %s)\n", len(records), records[0].CombinedString())

	// Reactive pipeline keyed by User-Agent (all agents share localhost).
	pipeline, err := core.NewPipeline(core.Config{
		Graph: g,
		Key:   func(r clf.Record) string { return r.UserAgent },
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := pipeline.ProcessRecords(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline:", out.Stats)

	matched := eval.ScoreMatched(real, out.Sessions)
	exists := eval.Score(real, out.Sessions)
	fmt.Printf("accuracy vs live ground truth: matched %s, exists %s\n", matched, exists)
}
