// Prefetch: next-page prediction trained on reconstructed sessions.
//
// The paper motivates session reconstruction with applications like web
// pre-fetching and link prediction. This example makes that concrete: it
// trains a variable-order Markov next-page predictor on the sessions each
// heuristic reconstructs from the same server log, then measures top-3 hit
// rate against held-out ground-truth navigation. Better sessions train
// better predictors — the downstream payoff of Smart-SRA.
//
// Run with: go run ./examples/prefetch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"smartsra/internal/heuristics"
	"smartsra/internal/predict"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	g, err := webgraph.GenerateTopology(webgraph.PaperTopology(), rand.New(rand.NewSource(2006)))
	if err != nil {
		log.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 3000
	sim, err := simulator.Run(g, params)
	if err != nil {
		log.Fatal(err)
	}

	// Split agents: train on the first 2/3, evaluate on the rest's real
	// navigation.
	cut := len(sim.Streams) * 2 / 3
	trainStreams := sim.Streams[:cut]
	evalUsers := make(map[string]bool)
	for _, st := range sim.Streams[cut:] {
		evalUsers[st.User] = true
	}
	var evalReal []session.Session
	for _, r := range sim.Real {
		if evalUsers[r.User] {
			evalReal = append(evalReal, r)
		}
	}
	fmt.Printf("training on %d users' logs, evaluating on %d ground-truth sessions\n\n",
		cut, len(evalReal))

	contenders := []struct {
		name string
		h    heuristics.Reconstructor
	}{
		{"heur1 (time-total)", heuristics.NewTimeTotal()},
		{"heur2 (time-gap)", heuristics.NewTimeGap()},
		{"heur3 (navigation)", heuristics.NewNavigation(g)},
		{"heur4 (Smart-SRA)", heuristics.NewSmartSRA(g)},
	}
	fmt.Printf("%-22s %-10s %-10s %s\n", "training sessions from", "hit@1", "hit@3", "transitions")
	for _, c := range contenders {
		sessions := heuristics.ReconstructAll(c.h, trainStreams)
		model, err := predict.Train(sessions, 2)
		if err != nil {
			log.Fatal(err)
		}
		h1, _ := model.HitRate(evalReal, 1)
		h3, n := model.HitRate(evalReal, 3)
		fmt.Printf("%-22s %-10.3f %-10.3f %d\n", c.name, h1, h3, n)
	}

	// The ceiling: train on ground truth itself.
	var trainReal []session.Session
	for _, r := range sim.Real {
		if !evalUsers[r.User] {
			trainReal = append(trainReal, r)
		}
	}
	oracle, err := predict.Train(trainReal, 2)
	if err != nil {
		log.Fatal(err)
	}
	h1, _ := oracle.HitRate(evalReal, 1)
	h3, n := oracle.HitRate(evalReal, 3)
	fmt.Printf("%-22s %-10.3f %-10.3f %d\n", "ground truth (ceiling)", h1, h3, n)
}
