// Log analysis: the full reactive pipeline on a realistic access log.
//
// It simulates a day of traffic against a 300-page site (Table 5 defaults),
// renders the server's Common Log Format access log — including some noise a
// real log would have (image fetches, a 404, a crawler, a malformed line) —
// and then processes that log text exactly as an operator would: parse,
// clean, identify users, reconstruct sessions with Smart-SRA. Finally it
// scores the reconstruction against the simulator's ground truth.
//
// Run with: go run ./examples/loganalysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/eval"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	// A Table 5 site: 300 pages, average out-degree 15.
	g, err := webgraph.GenerateTopology(webgraph.PaperTopology(), rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}

	params := simulator.PaperParams()
	params.Agents = 1000
	params.Seed = 42
	sim, err := simulator.Run(g, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated:", sim.Stats)

	// Render the access log and splice in realistic noise.
	records := sim.Log(g)
	var buf bytes.Buffer
	w := clf.NewWriter(&buf)
	noiseAt := len(records) / 2
	for i, rec := range records {
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
		if i == noiseAt {
			for _, n := range noise(rec.Time) {
				if err := w.Write(n); err != nil {
					log.Fatal(err)
				}
			}
			buf.WriteString("corrupted line the server wrote during a crash\n")
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("access log: %d lines, %d bytes\n", w.Count()+1, buf.Len())

	// Process the log text end to end.
	pipeline, err := core.NewPipeline(core.Config{Graph: g})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.ProcessLog(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline: ", res.Stats)

	// Score against ground truth (both §5.1 metric readings).
	matched := eval.ScoreMatched(sim.Real, res.Sessions)
	exists := eval.Score(sim.Real, res.Sessions)
	fmt.Printf("accuracy:  matched %s, exists %s\n", matched, exists)
	fmt.Printf("shape:     %s\n", eval.Summarize(res.Sessions))
}

// noise fabricates the non-pageview traffic a real log contains.
func noise(at time.Time) []clf.Record {
	mk := func(host, method, uri string, status int) clf.Record {
		return clf.Record{
			Host: host, Ident: "-", AuthUser: "-", Time: at,
			Method: method, URI: uri, Protocol: "HTTP/1.1",
			Status: status, Bytes: 123,
		}
	}
	return []clf.Record{
		mk("10.9.9.9", "GET", "/img/banner.gif", 200),
		mk("10.9.9.9", "GET", "/style.css", 200),
		mk("10.9.9.9", "GET", "/missing-page.html", 404),
		mk("66.249.66.1", "GET", "/robots.txt", 200),
		mk("10.9.9.9", "POST", "/search", 200),
	}
}
