package simulator

import (
	"sort"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webgraph"
)

// Request is one page fetch a simulated user would issue against a live
// server: who, what, navigated-from-where, and when. A schedule is the
// real-time replay form of a Result — the same request sequence Log renders
// as a finished access log, but addressed to an HTTP client instead of a
// file.
type Request struct {
	// User is the simulated client identity (the agent's synthetic IP).
	User string
	// URI is the page path to fetch.
	URI string
	// Referer is the URI navigated from, or clf.NoField for session-opening
	// requests.
	Referer string
	// At is the simulated absolute time of the request.
	At time.Time
}

// Schedule flattens the run into one globally time-ordered request sequence
// (ties broken by agent order, then per-agent log position — the same order
// Log uses), ready for a load generator to replay against a running server.
func (r *Result) Schedule(g *webgraph.Graph) []Request {
	n := 0
	for _, st := range r.Streams {
		n += len(st.Entries)
	}
	reqs := make([]Request, 0, n)
	for i, st := range r.Streams {
		for j, e := range st.Entries {
			req := Request{
				User:    st.User,
				URI:     g.Label(e.Page),
				Referer: clf.NoField,
				At:      e.Time,
			}
			if ref := r.Referrers[i][j]; g.Valid(ref) {
				req.Referer = g.Label(ref)
			}
			reqs = append(reqs, req)
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		return reqs[i].At.Before(reqs[j].At)
	})
	return reqs
}
