package simulator

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// testTopology returns a small paper-style topology for fast tests.
func testTopology(t testing.TB) *webgraph.Graph {
	t.Helper()
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 80, AvgOutDegree: 6, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testParams returns fast, valid parameters.
func testParams() Params {
	p := PaperParams()
	p.Agents = 200
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	mut := func(f func(*Params)) Params {
		p := PaperParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.STP = 0 }),
		mut(func(p *Params) { p.STP = 1 }),
		mut(func(p *Params) { p.LPP = -0.1 }),
		mut(func(p *Params) { p.LPP = 1 }),
		mut(func(p *Params) { p.NIP = -0.1 }),
		mut(func(p *Params) { p.NIP = 1 }),
		mut(func(p *Params) { p.MeanStay = 0 }),
		mut(func(p *Params) { p.StdDevStay = -time.Second }),
		mut(func(p *Params) { p.Agents = 0 }),
		mut(func(p *Params) { p.MaxRequests = -1 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	g := testTopology(t)
	if _, err := Run(g, bad[0]); err == nil {
		t.Error("Run accepted invalid params")
	}
}

func TestPaperParamsMatchTable5(t *testing.T) {
	p := PaperParams()
	if p.STP != 0.05 || p.LPP != 0.30 || p.NIP != 0.30 {
		t.Errorf("probabilities %v/%v/%v, want 0.05/0.30/0.30", p.STP, p.LPP, p.NIP)
	}
	if p.MeanStay != 2*time.Minute+7200*time.Millisecond {
		t.Errorf("mean stay = %v, want 2.12 min", p.MeanStay)
	}
	if p.StdDevStay != 30*time.Second {
		t.Errorf("stay deviation = %v, want 0.5 min", p.StdDevStay)
	}
	if p.Agents != 10000 {
		t.Errorf("agents = %d, want 10000", p.Agents)
	}
}

func TestRunRequiresStartPages(t *testing.T) {
	g := webgraph.NewBuilder(3).MustBuild()
	if _, err := Run(g, testParams()); err == nil {
		t.Error("Run accepted a topology without start pages")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.Workers = 1
	r1, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4 // parallelism must not change the outcome
	r2, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("stats differ across worker counts:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
	if len(r1.Real) != len(r2.Real) {
		t.Fatalf("real session counts differ: %d vs %d", len(r1.Real), len(r2.Real))
	}
	for i := range r1.Real {
		if r1.Real[i].String() != r2.Real[i].String() {
			t.Fatalf("real session %d differs", i)
		}
	}
	p.Seed = 999
	r3, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Real) == len(r1.Real) && r3.Stats == r1.Stats {
		t.Error("different seeds produced identical runs")
	}
}

func TestRealSessionsSatisfyBothRules(t *testing.T) {
	g := testTopology(t)
	res, err := Run(g, testParams())
	if err != nil {
		t.Fatal(err)
	}
	rules := session.DefaultRules()
	if len(res.Real) == 0 {
		t.Fatal("no real sessions generated")
	}
	for _, s := range res.Real {
		if !s.SatisfiesTimestampOrdering(rules) {
			t.Fatalf("real session violates timestamp ordering: %v", s)
		}
		if !s.SatisfiesTopology(g) {
			t.Fatalf("real session violates topology rule: %v", s)
		}
	}
}

func TestRealSessionsStartAtStartPagesOrBacktracks(t *testing.T) {
	g := testTopology(t)
	res, err := Run(g, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// A real session begins either at a designated start page (first
	// session, NIP jumps) or at a backtrack target (any previously visited
	// page). Verify at least the first session per agent starts at a start
	// page.
	seen := make(map[string]bool)
	for _, s := range res.Real {
		if seen[s.User] {
			continue
		}
		seen[s.User] = true
		if !g.IsStartPage(s.Entries[0].Page) {
			t.Fatalf("agent %s first session starts at non-start page %d",
				s.User, s.Entries[0].Page)
		}
	}
}

func TestServerStreamsAreStrictlyOrderedAndCacheFiltered(t *testing.T) {
	g := testTopology(t)
	res, err := Run(g, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) == 0 {
		t.Fatal("no server streams")
	}
	for _, st := range res.Streams {
		pages := make(map[webgraph.PageID]bool)
		for i, e := range st.Entries {
			if i > 0 && !st.Entries[i-1].Time.Before(e.Time) {
				t.Fatalf("stream %s not strictly increasing at %d", st.User, i)
			}
			if pages[e.Page] {
				t.Fatalf("stream %s fetched page %d twice (cache model broken)",
					st.User, e.Page)
			}
			pages[e.Page] = true
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := testTopology(t)
	res, err := Run(g, testParams())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Agents != 200 {
		t.Errorf("agents = %d", s.Agents)
	}
	if s.ServerRequests+s.CacheHits != s.Navigations {
		t.Errorf("served %d + cache %d != navigations %d",
			s.ServerRequests, s.CacheHits, s.Navigations)
	}
	var streamed int
	for _, st := range res.Streams {
		streamed += len(st.Entries)
	}
	if streamed != s.ServerRequests {
		t.Errorf("stream entries %d != ServerRequests %d", streamed, s.ServerRequests)
	}
	if s.RealSessions != len(res.Real) {
		t.Errorf("RealSessions %d != len(Real) %d", s.RealSessions, len(res.Real))
	}
	var realNav int
	for _, r := range res.Real {
		realNav += r.Len()
	}
	// Every navigation lands in exactly one real session except the
	// backward cache walks, which belong to no session.
	walks := s.Navigations - realNav
	if walks < 0 {
		t.Errorf("real sessions hold %d entries, more than %d navigations",
			realNav, s.Navigations)
	}
	if !strings.Contains(s.String(), "agents=200") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestSTPControlsSessionLength(t *testing.T) {
	g := testTopology(t)
	short := testParams()
	short.STP = 0.5
	long := testParams()
	long.STP = 0.02
	rs, err := Run(g, short)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(g, long)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(r *Result) float64 {
		return float64(r.Stats.Navigations) / float64(r.Stats.RealSessions)
	}
	if avg(rs) >= avg(rl) {
		t.Errorf("high STP average session length %.2f not below low STP %.2f",
			avg(rs), avg(rl))
	}
}

func TestNIPZeroMeansNoJumps(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.NIP = 0
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NewInitialJumps != 0 {
		t.Errorf("NIP=0 but %d jumps", res.Stats.NewInitialJumps)
	}
	p2 := testParams()
	p2.LPP = 0
	res2, err := Run(g, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.BackwardMoves != 0 {
		t.Errorf("LPP=0 but %d backward moves", res2.Stats.BackwardMoves)
	}
}

func TestStayDistribution(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.Agents = 300
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Collect inter-request gaps inside real sessions; they are stay times.
	var sum, n float64
	for _, s := range res.Real {
		for i := 1; i < len(s.Entries); i++ {
			gap := s.Entries[i].Time.Sub(s.Entries[i-1].Time).Seconds()
			sum += gap
			n++
		}
	}
	if n < 100 {
		t.Fatalf("too few gaps (%v) to judge the distribution", n)
	}
	mean := sum / n
	want := p.MeanStay.Seconds()
	if math.Abs(mean-want) > want*0.15 {
		t.Errorf("mean stay %.1fs deviates from %.1fs", mean, want)
	}
}

func TestLogRendersSortedCLF(t *testing.T) {
	g := testTopology(t)
	res, err := Run(g, testParams())
	if err != nil {
		t.Fatal(err)
	}
	records := res.Log(g)
	if len(records) != res.Stats.ServerRequests {
		t.Fatalf("log has %d records, want %d", len(records), res.Stats.ServerRequests)
	}
	for i := 1; i < len(records); i++ {
		if records[i].Time.Before(records[i-1].Time) {
			t.Fatalf("log not time-sorted at %d", i)
		}
	}
	r := records[0]
	if r.Method != "GET" || r.Status != 200 || r.Protocol != "HTTP/1.1" {
		t.Errorf("record fields: %+v", r)
	}
	if _, ok := g.PageByURI(r.URI); !ok {
		t.Errorf("log URI %q does not resolve against topology", r.URI)
	}
	if !strings.HasPrefix(r.Host, "10.") {
		t.Errorf("host %q not a synthetic agent IP", r.Host)
	}
}

func TestAgentIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 3000; i++ {
		id := AgentID(i)
		if seen[id] {
			t.Fatalf("duplicate agent id %q at %d", id, i)
		}
		seen[id] = true
	}
	if AgentID(259) != "10.0.1.3" {
		t.Errorf("AgentID(259) = %q", AgentID(259))
	}
}

func TestMaxRequestsCap(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.STP = 0.001 // nearly immortal agents
	p.NIP = 0
	p.LPP = 0
	p.MaxRequests = 10
	p.Agents = 50
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	perAgent := make(map[string]int)
	for _, s := range res.Real {
		perAgent[s.User] += s.Len()
	}
	for u, n := range perAgent {
		if n > 10 {
			t.Errorf("agent %s made %d navigations, cap 10", u, n)
		}
	}
	if res.Stats.RequestCapHits == 0 {
		t.Error("cap never hit despite STP=0.001")
	}
}

func TestRevisitPolicies(t *testing.T) {
	g := testTopology(t)
	pc := testParams()
	pc.Revisit = RevisitCache
	pa := testParams()
	pa.Revisit = RevisitAvoid
	rc, err := Run(g, pc)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(g, pa)
	if err != nil {
		t.Fatal(err)
	}
	frac := func(r *Result) float64 {
		return float64(r.Stats.CacheHits) / float64(r.Stats.Navigations)
	}
	if frac(ra) >= frac(rc) {
		t.Errorf("RevisitAvoid cache fraction %.3f not below RevisitCache %.3f",
			frac(ra), frac(rc))
	}
	if RevisitCache.String() != "cache" || RevisitAvoid.String() != "avoid" ||
		RevisitPolicy(7).String() == "" {
		t.Error("RevisitPolicy.String wrong")
	}
}

func TestBehaviorCountsRoughlyMatchProbabilities(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.Agents = 500
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Terminations per agent ≈ 1 (every agent ends once, mostly via STP).
	ended := res.Stats.Terminations + res.Stats.DeadEnds + res.Stats.RequestCapHits
	if ended != p.Agents {
		t.Errorf("agents ended %d times, want exactly %d", ended, p.Agents)
	}
	// NIP fires on ~NIP*(1-STP) of non-terminal steps; just check both
	// behaviors fired a plausible number of times.
	if res.Stats.NewInitialJumps == 0 || res.Stats.BackwardMoves == 0 {
		t.Errorf("behavior counts implausible: %+v", res.Stats)
	}
}

func BenchmarkRunPaperScale(b *testing.B) {
	g, err := webgraph.GenerateTopology(webgraph.PaperTopology(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	p := PaperParams()
	p.Agents = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProxySharingMergesStreams(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.ProxyFraction = 0.5
	p.ProxySize = 4
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Some users must be proxies with merged (larger) streams.
	proxies := 0
	for i, st := range res.Streams {
		if strings.HasPrefix(st.User, "10.200.") {
			proxies++
			for j := 1; j < len(st.Entries); j++ {
				if st.Entries[j].Time.Before(st.Entries[j-1].Time) {
					t.Fatalf("merged stream %s not time-sorted at %d", st.User, j)
				}
			}
		}
		if len(res.Referrers[i]) != len(st.Entries) {
			t.Fatalf("referrers misaligned for %s", st.User)
		}
	}
	if proxies == 0 {
		t.Fatal("no proxy users despite ProxyFraction=0.5")
	}
	// Ground truth sessions carry the log-visible identity.
	userSet := make(map[string]bool)
	for _, st := range res.Streams {
		userSet[st.User] = true
	}
	for _, r := range res.Real {
		if !userSet[r.User] && r.Len() > 0 {
			// Agents whose every request was cache-served have no stream;
			// their first request is always served, so this cannot happen.
			t.Fatalf("real session user %q has no stream", r.User)
		}
	}
	// Determinism across worker counts still holds with proxies.
	p.Workers = 3
	res2, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Streams) != len(res.Streams) {
		t.Fatalf("proxy assignment not deterministic: %d vs %d streams",
			len(res2.Streams), len(res.Streams))
	}
}

func TestProxyValidation(t *testing.T) {
	p := testParams()
	p.ProxyFraction = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative proxy fraction accepted")
	}
	p = testParams()
	p.ProxyFraction = 1.5
	if err := p.Validate(); err == nil {
		t.Error("proxy fraction above 1 accepted")
	}
	p = testParams()
	p.ProxySize = -1
	if err := p.Validate(); err == nil {
		t.Error("negative proxy size accepted")
	}
}

func TestProxySharingHurtsAccuracyPremise(t *testing.T) {
	// Not an accuracy assertion (that lives in the ablation bench) — just
	// that proxy streams are strictly fewer and longer than user streams.
	g := testTopology(t)
	clean := testParams()
	shared := testParams()
	shared.ProxyFraction = 0.8
	shared.ProxySize = 10
	rc, err := Run(g, clean)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(g, shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Streams) >= len(rc.Streams) {
		t.Errorf("proxy run has %d streams, clean %d", len(rs.Streams), len(rc.Streams))
	}
}

func TestCachedStartJumpsAtHighNIP(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	p.NIP = 0.9
	p.STP = 0.02 // long runs exhaust the fresh start pages
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CachedStartJumps == 0 {
		t.Error("no cached start jumps at NIP=0.9 with long runs")
	}
	// A cached jump opens a real session whose first page never reaches the
	// log at that moment: total real entries must exceed served requests.
	var realNav int
	for _, r := range res.Real {
		realNav += r.Len()
	}
	if realNav <= res.Stats.ServerRequests {
		t.Errorf("real entries %d not above served %d despite cache hits",
			realNav, res.Stats.ServerRequests)
	}
}

func TestStayLognormalSkew(t *testing.T) {
	g := testTopology(t)
	pn := testParams()
	pn.Agents = 400
	pl := pn
	pl.Stay = StayLognormal
	rn, err := Run(g, pn)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	gaps := func(r *Result) (mean, max float64) {
		var sum, n float64
		for _, s := range r.Real {
			for i := 1; i < len(s.Entries); i++ {
				g := s.Entries[i].Time.Sub(s.Entries[i-1].Time).Seconds()
				sum += g
				n++
				if g > max {
					max = g
				}
			}
		}
		return sum / n, max
	}
	meanN, maxN := gaps(rn)
	meanL, maxL := gaps(rl)
	// Lognormal with median = the normal's mean has a higher mean and a
	// heavier tail.
	if meanL <= meanN {
		t.Errorf("lognormal mean gap %.1fs not above normal %.1fs", meanL, meanN)
	}
	if maxL <= maxN {
		t.Errorf("lognormal max gap %.1fs not above normal %.1fs", maxL, maxN)
	}
	if StayNormal.String() != "normal" || StayLognormal.String() != "lognormal" ||
		StayModel(9).String() == "" {
		t.Error("StayModel.String wrong")
	}
}
