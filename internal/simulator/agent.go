package simulator

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// agentScratch holds the per-agent working buffers — the browser-cache map
// and the page arena the pick/backtrack scans fill — so a worker reuses one
// set across all its agents instead of reallocating per agent. Pooled across
// runs (evaluation sweeps simulate thousands of agents per point).
type agentScratch struct {
	visited map[webgraph.PageID]bool
	pages   []webgraph.PageID
	cands   []btCand
}

// btCand is one backtrack candidate: position idx in the current real
// session, with its unvisited successors packed at pages[lo:hi].
type btCand struct {
	idx, lo, hi int
}

var scratchPool = sync.Pool{
	New: func() any {
		return &agentScratch{visited: make(map[webgraph.PageID]bool)}
	},
}

// agentOutcome collects everything one simulated user produced.
type agentOutcome struct {
	// real are the ground-truth sessions, every navigation included (cache
	// hits too).
	real []session.Session
	// served are the requests that reached the web server, in time order —
	// the agent's slice of the access log.
	served []session.Entry
	// refs[i] is the page the user navigated from when issuing served[i]
	// (InvalidPage for session-opening requests) — what the browser would
	// put in the Referer header of a combined-format log.
	refs  []webgraph.PageID
	stats Stats
}

// agent is the per-user simulation state for one run of the Figure 7 loop.
type agent struct {
	g       *webgraph.Graph
	p       Params
	rng     *rand.Rand
	user    string
	now     time.Time
	scr     *agentScratch
	visited map[webgraph.PageID]bool // browser cache: everything ever fetched
	curReal []session.Entry
	out     agentOutcome
}

// runAgent simulates one user end to end. The generator must be dedicated to
// this agent (see Run), making the outcome a pure function of (g, p, seed) —
// scratch only lends buffers and never carries state between agents.
func runAgent(g *webgraph.Graph, p Params, user string, start time.Time, rng *rand.Rand, scr *agentScratch) agentOutcome {
	clear(scr.visited)
	a := &agent{
		g: g, p: p, rng: rng, user: user, now: start,
		scr: scr, visited: scr.visited,
	}
	a.run()
	return a.out
}

// run is the paper's Figure 7 agent loop with the four behaviors.
func (a *agent) run() {
	starts := a.g.StartPages()
	if len(starts) == 0 {
		return
	}
	next := starts[a.rng.Intn(len(starts))]
	for requests := 0; ; {
		a.visit(next)
		requests++
		if requests >= a.p.MaxRequests {
			a.out.stats.RequestCapHits++
			break
		}
		if a.rng.Float64() < a.p.STP { // behavior 4: terminate
			a.out.stats.Terminations++
			break
		}
		if a.rng.Float64() < a.p.NIP { // behavior 1: jump to a start page
			// Figure 7 selects "a new, un-accessed initial page"; once the
			// agent has visited every start page, the jump still happens
			// (the user types the address) but the browser serves the page
			// from its cache, so the new session's first page never reaches
			// the server log.
			p, fresh := a.pickStart()
			if fresh {
				a.out.stats.NewInitialJumps++
			} else {
				a.out.stats.CachedStartJumps++
			}
			a.flushReal()
			a.now = a.now.Add(a.stay())
			next = p
			continue
		}
		if a.rng.Float64() < a.p.LPP { // behavior 3: back through the cache
			if p, ok := a.backtrack(); ok {
				a.out.stats.BackwardMoves++
				next = p
				continue
			}
			// No previous page offers an unvisited link; fall through to
			// behavior 2 from the current page.
			a.out.stats.BacktrackFailures++
		}
		// Behavior 2: follow a link from the most recent page.
		succ := a.g.Succ(a.curReal[len(a.curReal)-1].Page)
		if len(succ) == 0 {
			// Dead-end page: the browser offers nothing to click; the user
			// leaves (the generators avoid sinks, so this is rare).
			a.out.stats.DeadEnds++
			break
		}
		a.now = a.now.Add(a.stay())
		next = a.pickSuccessor(succ)
	}
	a.flushReal()
}

// visit records arrival at page p at the current simulated time: it joins
// the real session, and reaches the server log only on a cache miss. The
// request's Referer is the page the user navigated from — the last page of
// the current real session, or none when this request opens a session.
func (a *agent) visit(p webgraph.PageID) {
	a.out.stats.Navigations++
	if !a.visited[p] {
		a.visited[p] = true
		ref := webgraph.InvalidPage
		if len(a.curReal) > 0 {
			ref = a.curReal[len(a.curReal)-1].Page
		}
		a.out.served = append(a.out.served, session.Entry{Page: p, Time: a.now})
		a.out.refs = append(a.out.refs, ref)
		a.out.stats.ServerRequests++
	} else {
		a.out.stats.CacheHits++
	}
	a.curReal = append(a.curReal, session.Entry{Page: p, Time: a.now})
}

// stay samples a page-stay time from the configured distribution (Table 5's
// truncated normal N(MeanStay, StdDevStay²) by default, or the heavy-tailed
// lognormal ablation), clamped to [2s, ρ): the paper fixes behavior 2/3
// inter-request gaps below the 10-minute page-stay bound. Stays are whole
// seconds and at least 2s so that timestamps remain strictly increasing even
// after the one-second truncation of the CLF log format.
func (a *agent) stay() time.Duration {
	const floor = 2 * time.Second
	ceil := session.DefaultPageStay
	mean, sd := float64(a.p.MeanStay), float64(a.p.StdDevStay)
	for i := 0; i < 64; i++ {
		var raw float64
		if a.p.Stay == StayLognormal {
			// Median mean, log-scale sigma relative to the mean.
			sigma := sd / mean
			raw = mean * math.Exp(a.rng.NormFloat64()*sigma)
		} else {
			raw = a.rng.NormFloat64()*sd + mean
		}
		d := time.Duration(raw).Round(time.Second)
		if d >= floor && d < ceil {
			return d
		}
	}
	// Degenerate parameters (e.g. mean far outside the window): use the
	// clamped mean.
	d := a.p.MeanStay.Round(time.Second)
	if d < floor {
		d = floor
	}
	if d >= ceil {
		d = ceil - time.Second
	}
	return d
}

// pickStart returns a uniformly chosen unvisited start page when one
// remains (fresh=true), falling back to a uniformly chosen visited one
// (fresh=false, cache-served).
func (a *agent) pickStart() (p webgraph.PageID, fresh bool) {
	starts := a.g.StartPages()
	unvisited := a.scr.pages[:0]
	for _, s := range starts {
		if !a.visited[s] {
			unvisited = append(unvisited, s)
		}
	}
	a.scr.pages = unvisited
	if len(unvisited) > 0 {
		return unvisited[a.rng.Intn(len(unvisited))], true
	}
	return starts[a.rng.Intn(len(starts))], false
}

// backtrack implements behavior 3: pick an earlier page of the current real
// session that links to at least one unvisited page, walk back to it through
// the cache (each backward step costs a page-stay time and never reaches the
// server), close the current real session, open a new one starting at the
// backtrack target, and return the unvisited page to fetch next.
func (a *agent) backtrack() (webgraph.PageID, bool) {
	if len(a.curReal) < 2 {
		return webgraph.InvalidPage, false
	}
	// Candidate positions: everything before the most recent page. Each
	// position's unvisited successors are packed into the shared page arena
	// as a [lo, hi) range, so the scan allocates nothing once the scratch
	// buffers have grown to the agent's working set.
	arena := a.scr.pages[:0]
	cands := a.scr.cands[:0]
	for i := 0; i < len(a.curReal)-1; i++ {
		lo := len(arena)
		for _, v := range a.g.Succ(a.curReal[i].Page) {
			if !a.visited[v] {
				arena = append(arena, v)
			}
		}
		if len(arena) > lo {
			cands = append(cands, btCand{idx: i, lo: lo, hi: len(arena)})
		}
	}
	a.scr.pages, a.scr.cands = arena, cands
	if len(cands) == 0 {
		return webgraph.InvalidPage, false
	}
	c := cands[a.rng.Intn(len(cands))]
	target := a.curReal[c.idx].Page
	// Back/forward button presses through the cache: one stay per step.
	steps := len(a.curReal) - 1 - c.idx
	for s := 0; s < steps; s++ {
		a.now = a.now.Add(a.stay())
		a.out.stats.CacheHits++
		a.out.stats.Navigations++
	}
	// The simulator "adds a new session starting from [the] previous page
	// having [a] link to the next page" (§4, behavior 3).
	a.flushReal()
	a.curReal = append(a.curReal, session.Entry{Page: target, Time: a.now})
	a.now = a.now.Add(a.stay())
	fresh := arena[c.lo:c.hi]
	return fresh[a.rng.Intn(len(fresh))], true
}

// pickSuccessor applies the revisit policy to choose among linked pages.
func (a *agent) pickSuccessor(succ []webgraph.PageID) webgraph.PageID {
	if a.p.Revisit == RevisitAvoid {
		fresh := a.scr.pages[:0]
		for _, v := range succ {
			if !a.visited[v] {
				fresh = append(fresh, v)
			}
		}
		a.scr.pages = fresh
		if len(fresh) > 0 {
			return fresh[a.rng.Intn(len(fresh))]
		}
	}
	return succ[a.rng.Intn(len(succ))]
}

// flushReal closes the current real session, if any.
func (a *agent) flushReal() {
	if len(a.curReal) == 0 {
		return
	}
	a.out.real = append(a.out.real, session.Session{User: a.user, Entries: a.curReal})
	a.out.stats.RealSessions++
	a.curReal = nil
}
