package simulator

import (
	"testing"

	"smartsra/internal/clf"
)

// TestScheduleMatchesLog: the replay schedule and the rendered combined log
// are two views of the same run, so they must agree request-for-request —
// same count, same global order, same user/URI/Referer/time at every
// position. This is the invariant that makes a loadgen replay through a real
// server equivalent to feeding the offline log.
func TestScheduleMatchesLog(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	res, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	reqs := res.Schedule(g)
	recs := res.LogCombined(g)
	if len(reqs) != len(recs) {
		t.Fatalf("schedule has %d requests, log has %d records", len(reqs), len(recs))
	}
	if len(reqs) == 0 {
		t.Fatal("empty run")
	}
	for i := range reqs {
		q, r := reqs[i], recs[i]
		if q.User != r.Host || q.URI != r.URI || q.Referer != r.Referer || !q.At.Equal(r.Time) {
			t.Fatalf("position %d diverged:\n schedule %+v\n log      %+v", i, q, r)
		}
	}
	// Non-decreasing times, and session-opening requests carry no referrer.
	sawOpening := false
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At.Before(reqs[i-1].At) {
			t.Fatalf("schedule out of order at %d: %v after %v", i, reqs[i].At, reqs[i-1].At)
		}
	}
	for _, q := range reqs {
		if q.Referer == clf.NoField {
			sawOpening = true
			break
		}
	}
	if !sawOpening {
		t.Error("no session-opening request in the schedule")
	}
}

// TestScheduleDeterministic: same graph and params, same schedule.
func TestScheduleDeterministic(t *testing.T) {
	g := testTopology(t)
	p := testParams()
	a, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, p)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Schedule(g), b.Schedule(g)
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].User != sb[i].User || sa[i].URI != sb[i].URI ||
			sa[i].Referer != sb[i].Referer || !sa[i].At.Equal(sb[i].At) {
			t.Fatalf("position %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}
