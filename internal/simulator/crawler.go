package simulator

import (
	"math/rand"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webgraph"
)

// Crawler traffic. Real access logs mix human navigation with search-engine
// bots, which fetch /robots.txt and then sweep the site breadth-first with
// tight timing and no session structure. Crawler records pollute analytics
// and must be removed by the data-cleaning phase; the common log format
// offers only the /robots.txt fetch as a signal, while the combined format
// exposes the bot user agent (see clf.DropUserAgentContaining).
//
// Crawlers never affect ground-truth sessions or the simulator's Streams —
// they are log pollution by construction.

// CrawlerUserAgent is the user agent the synthetic bots send.
const CrawlerUserAgent = "sitecrawler/1.0 (+https://bots.example/info)"

// CrawlerRecords generates count bots' worth of access-log records over g,
// deterministically from seed. Each bot starts at a random start page's
// host-wide sweep: it fetches /robots.txt, then breadth-first visits every
// page reachable from the start set, one request every 1-3 seconds,
// beginning at start. Records are returned in time order per bot.
func CrawlerRecords(g *webgraph.Graph, count int, seed int64, start time.Time) []clf.Record {
	if count <= 0 || g.NumPages() == 0 {
		return nil
	}
	var out []clf.Record
	for b := 0; b < count; b++ {
		rng := rand.New(rand.NewSource(mixSeed(seed, int64(1_000_000+b))))
		ip := crawlerID(b)
		at := start.Add(time.Duration(rng.Int63n(int64(6 * time.Hour)))).Truncate(time.Second)
		emit := func(uri string, status int, referer string) {
			out = append(out, clf.Record{
				Host: ip, Ident: "-", AuthUser: "-", Time: at,
				Method: "GET", URI: uri, Protocol: "HTTP/1.1",
				Status: status, Bytes: 256 + int64(len(uri))*17,
				Referer: referer, UserAgent: CrawlerUserAgent,
			})
			at = at.Add(time.Duration(1+rng.Intn(3)) * time.Second)
		}
		emit("/robots.txt", 200, clf.NoField)
		// Breadth-first sweep from the start pages, deterministic order.
		seen := make(map[webgraph.PageID]bool)
		queue := append([]webgraph.PageID(nil), g.StartPages()...)
		for _, p := range queue {
			seen[p] = true
		}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			emit(g.Label(p), 200, clf.NoField)
			for _, v := range g.Succ(p) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}

// crawlerID formats the synthetic IP of bot b (a distinct range from agents
// and proxies).
func crawlerID(b int) string {
	return "10.99." + itoa((b>>8)&255) + "." + itoa(b&255)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
