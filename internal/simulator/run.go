package simulator

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Stats aggregates what happened during a run.
type Stats struct {
	// Agents is the number of users simulated.
	Agents int
	// Navigations counts every page view, cache-served or not.
	Navigations int
	// ServerRequests counts page views that reached the server log.
	ServerRequests int
	// CacheHits counts page views served from the browser cache.
	CacheHits int
	// RealSessions is the number of ground-truth sessions generated.
	RealSessions int
	// Terminations counts behavior-4 session endings (STP fired).
	Terminations int
	// NewInitialJumps counts behavior-1 events (NIP fired, fresh start page).
	NewInitialJumps int
	// BackwardMoves counts behavior-3 events (LPP fired and succeeded).
	BackwardMoves int
	// BacktrackFailures counts LPP draws that found no usable target and
	// fell through to behavior 2.
	BacktrackFailures int
	// DeadEnds counts agents stopped on pages without out-links.
	DeadEnds int
	// CachedStartJumps counts behavior-1 events whose target start page was
	// already cached (the jump never reached the server log).
	CachedStartJumps int
	// RequestCapHits counts agents stopped by the MaxRequests safety cap.
	RequestCapHits int
}

// add accumulates b into s.
func (s *Stats) add(b Stats) {
	s.Agents += b.Agents
	s.Navigations += b.Navigations
	s.ServerRequests += b.ServerRequests
	s.CacheHits += b.CacheHits
	s.RealSessions += b.RealSessions
	s.Terminations += b.Terminations
	s.NewInitialJumps += b.NewInitialJumps
	s.BackwardMoves += b.BackwardMoves
	s.BacktrackFailures += b.BacktrackFailures
	s.DeadEnds += b.DeadEnds
	s.CachedStartJumps += b.CachedStartJumps
	s.RequestCapHits += b.RequestCapHits
}

// String summarizes the run for reports.
func (s Stats) String() string {
	return fmt.Sprintf(
		"agents=%d navigations=%d served=%d cache=%d realSessions=%d nip=%d lpp=%d",
		s.Agents, s.Navigations, s.ServerRequests, s.CacheHits,
		s.RealSessions, s.NewInitialJumps, s.BackwardMoves)
}

// Result is everything a simulation run produces.
type Result struct {
	// Real holds the ground-truth sessions of all agents, grouped by agent
	// in agent order.
	Real []session.Session
	// Streams holds each agent's server-side request sequence — what a
	// lossless log pipeline (parse, clean, identify users) recovers. One
	// stream per agent that issued at least one server request, in agent
	// order.
	Streams []session.Stream
	// Referrers[i][j] is the page the user navigated from when issuing
	// Streams[i].Entries[j] (InvalidPage for session-opening requests).
	// It becomes the Referer field of the combined-format log.
	Referrers [][]webgraph.PageID
	// Stats aggregates run counters.
	Stats Stats
}

// Run simulates p.Agents users over g. It parallelizes across agents; the
// output is deterministic in (g, p) because every agent draws from its own
// generator seeded with p.Seed and the agent index.
func Run(g *webgraph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(g.StartPages()) == 0 {
		return nil, fmt.Errorf("simulator: topology has no start pages")
	}
	p = p.withDefaults()

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Agents {
		workers = p.Agents
	}

	outcomes := make([]agentOutcome, p.Agents)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled scratch per worker, shared by all its agents and
			// returned for the next run (sweeps call Run once per point).
			scr := scratchPool.Get().(*agentScratch)
			defer scratchPool.Put(scr)
			for i := range next {
				// Seed each agent independently so scheduling cannot change
				// results. SplitMix-style mixing decorrelates nearby seeds.
				rng := rand.New(rand.NewSource(mixSeed(p.Seed, int64(i))))
				// Whole-second start times survive the CLF format round trip.
				jitter := time.Duration(rng.Int63n(int64(p.StartWindow))).Truncate(time.Second)
				start := p.Start.Add(jitter)
				outcomes[i] = runAgent(g, p, AgentID(i), start, rng, scr)
			}
		}()
	}
	for i := 0; i < p.Agents; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &Result{}
	res.Stats.Agents = p.Agents
	users := assignUsers(p)
	for i := range outcomes {
		o := &outcomes[i]
		for s := range o.real {
			o.real[s].User = users[i]
		}
		res.Real = append(res.Real, o.real...)
		if len(o.served) > 0 {
			res.Streams = append(res.Streams, session.Stream{
				User:    users[i],
				Entries: o.served,
			})
			res.Referrers = append(res.Referrers, o.refs)
		}
		res.Stats.add(o.stats)
	}
	res.mergeSharedUsers()
	return res, nil
}

// assignUsers maps each agent index to its log-visible identity: its own
// synthetic IP, or — for ProxyFraction of agents, chunked ProxySize at a
// time — a shared proxy IP. Assignment is deterministic in the seed.
func assignUsers(p Params) []string {
	users := make([]string, p.Agents)
	if p.ProxyFraction <= 0 {
		for i := range users {
			users[i] = AgentID(i)
		}
		return users
	}
	rng := rand.New(rand.NewSource(mixSeed(p.Seed, -1)))
	proxied := 0
	for i := range users {
		if rng.Float64() < p.ProxyFraction {
			group := proxied / p.ProxySize
			users[i] = ProxyID(group)
			proxied++
		} else {
			users[i] = AgentID(i)
		}
	}
	return users
}

// mergeSharedUsers folds streams (and referrer rows) of agents that share a
// log identity into one stream per user, re-sorted by time; the paper's §1
// proxy effect. Streams of unshared users are untouched, as is Real: ground
// truth stays per physical user (with the shared User label, since that is
// what any reactive reconstruction can attribute sessions to).
func (r *Result) mergeSharedUsers() {
	count := make(map[string]int, len(r.Streams))
	for _, st := range r.Streams {
		count[st.User]++
	}
	shared := false
	for _, c := range count {
		if c > 1 {
			shared = true
			break
		}
	}
	if !shared {
		return
	}
	type merged struct {
		entries []session.Entry
		refs    []webgraph.PageID
	}
	byUser := make(map[string]*merged)
	var order []string
	for i, st := range r.Streams {
		m := byUser[st.User]
		if m == nil {
			m = &merged{}
			byUser[st.User] = m
			order = append(order, st.User)
		}
		m.entries = append(m.entries, st.Entries...)
		m.refs = append(m.refs, r.Referrers[i]...)
	}
	r.Streams = r.Streams[:0]
	r.Referrers = r.Referrers[:0]
	for _, u := range order {
		m := byUser[u]
		// Sort entries and referrers together by time (stable to preserve
		// per-agent order on ties).
		idx := make([]int, len(m.entries))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return m.entries[idx[a]].Time.Before(m.entries[idx[b]].Time)
		})
		entries := make([]session.Entry, len(idx))
		refs := make([]webgraph.PageID, len(idx))
		for i, j := range idx {
			entries[i] = m.entries[j]
			refs[i] = m.refs[j]
		}
		r.Streams = append(r.Streams, session.Stream{User: u, Entries: entries})
		r.Referrers = append(r.Referrers, refs)
	}
}

// ProxyID formats the synthetic shared IP of proxy group g.
func ProxyID(g int) string {
	return fmt.Sprintf("10.200.%d.%d", (g>>8)&255, g&255)
}

// AgentID formats the synthetic IP address of agent i (unique below 2^24
// agents), e.g. agent 259 -> "10.0.1.3".
func AgentID(i int) string {
	return fmt.Sprintf("10.%d.%d.%d", (i>>16)&255, (i>>8)&255, i&255)
}

// mixSeed decorrelates (seed, agent index) pairs with a SplitMix64 round.
func mixSeed(seed, i int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Log renders the run as a Common Log Format access log: all agents'
// server-side requests merged into timestamp order (ties broken by agent,
// then log position). Byte counts are synthesized deterministically from the
// page ID; status is always 200 and the method GET, since the simulator
// models successful page fetches only.
func (r *Result) Log(g *webgraph.Graph) []clf.Record {
	return r.log(g, false)
}

// LogCombined renders the run as a Combined Log Format access log: like Log,
// plus the Referer recorded at navigation time and a synthetic user agent.
// This is the input for referrer-based reconstruction (internal/referrer).
func (r *Result) LogCombined(g *webgraph.Graph) []clf.Record {
	return r.log(g, true)
}

func (r *Result) log(g *webgraph.Graph, combined bool) []clf.Record {
	var records []clf.Record
	for i, st := range r.Streams {
		for j, e := range st.Entries {
			rec := clf.Record{
				Host:     st.User,
				Ident:    "-",
				AuthUser: "-",
				Time:     e.Time,
				Method:   "GET",
				URI:      g.Label(e.Page),
				Protocol: "HTTP/1.1",
				Status:   200,
				Bytes:    1024 + int64(e.Page)*37%4096,
			}
			if combined {
				rec.UserAgent = "agent-simulator/1.0"
				rec.Referer = clf.NoField
				if ref := r.Referrers[i][j]; g.Valid(ref) {
					rec.Referer = g.Label(ref)
				}
			}
			records = append(records, rec)
		}
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Time.Before(records[j].Time)
	})
	return records
}
