package simulator

import (
	"testing"
	"time"

	"smartsra/internal/clf"
)

func TestCrawlerRecords(t *testing.T) {
	g := testTopology(t)
	start := time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)
	recs := CrawlerRecords(g, 2, 7, start)
	// Each bot: robots.txt + every reachable page (testTopology ensures all
	// pages reachable).
	want := 2 * (1 + g.NumPages())
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	perBot := make(map[string][]clf.Record)
	for _, r := range recs {
		perBot[r.Host] = append(perBot[r.Host], r)
		if r.UserAgent != CrawlerUserAgent {
			t.Fatalf("user agent = %q", r.UserAgent)
		}
	}
	if len(perBot) != 2 {
		t.Fatalf("bots = %d", len(perBot))
	}
	for host, rs := range perBot {
		if rs[0].URI != "/robots.txt" {
			t.Errorf("bot %s first fetch = %q", host, rs[0].URI)
		}
		seen := make(map[string]bool)
		for i, r := range rs {
			if i > 0 && r.Time.Before(rs[i-1].Time) {
				t.Fatalf("bot %s records out of order at %d", host, i)
			}
			if seen[r.URI] {
				t.Fatalf("bot %s fetched %q twice", host, r.URI)
			}
			seen[r.URI] = true
		}
	}
	// Deterministic in the seed.
	again := CrawlerRecords(g, 2, 7, start)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("crawler records not deterministic")
		}
	}
	if got := CrawlerRecords(g, 0, 7, start); got != nil {
		t.Errorf("zero bots produced %d records", len(got))
	}
}

func TestCrawlerCleaningWithUserAgent(t *testing.T) {
	g := testTopology(t)
	start := time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)
	recs := CrawlerRecords(g, 1, 3, start)
	f := clf.Chain(clf.StandardCleaning(), clf.DropUserAgentContaining("crawler", "bot"))
	kept, dropped := clf.Apply(recs, f)
	if len(kept) != 0 {
		t.Errorf("%d crawler records survived UA cleaning", len(kept))
	}
	if dropped != len(recs) {
		t.Errorf("dropped %d of %d", dropped, len(recs))
	}
	// Common-format cleaning alone only removes the robots.txt probe.
	keptCommon, _ := clf.Apply(recs, clf.StandardCleaning())
	if len(keptCommon) != len(recs)-1 {
		t.Errorf("common cleaning kept %d of %d (only robots.txt is detectable)",
			len(keptCommon), len(recs))
	}
}
