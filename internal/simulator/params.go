// Package simulator implements the paper's agent simulator (§4): a
// generative model of web users navigating a site topology. It produces both
// the ground-truth sessions (known because the simulator sees every
// navigation, including ones served from the browser cache) and the web
// server's access log (which misses the cache-served navigations). The
// evaluation harness scores reconstruction heuristics by comparing their
// output on the log against the ground truth.
package simulator

import (
	"fmt"
	"time"
)

// RevisitPolicy controls what behavior 2 (follow a link from the current
// page) does when the randomly chosen link target was visited before.
type RevisitPolicy int

const (
	// RevisitCache picks uniformly among all linked pages; a previously
	// visited target is served from the browser cache (it stays in the real
	// session but never reaches the server log). This is the default: the
	// paper's cache model eliminates every request the browser can serve
	// locally.
	RevisitCache RevisitPolicy = iota
	// RevisitAvoid prefers unvisited link targets when any exist, falling
	// back to visited ones (cache-served) otherwise. Exposed for the
	// sensitivity bench; produces cleaner logs than real traffic.
	RevisitAvoid
)

// String names the policy for reports.
func (p RevisitPolicy) String() string {
	switch p {
	case RevisitCache:
		return "cache"
	case RevisitAvoid:
		return "avoid"
	default:
		return fmt.Sprintf("RevisitPolicy(%d)", int(p))
	}
}

// Params configures a simulation run. Start from PaperParams and adjust.
type Params struct {
	// STP is the Session Termination Probability: at each request the agent
	// stops with probability STP (behavior 4). Range (0, 1).
	STP float64
	// LPP is the Link-from-Previous-pages Probability: the chance the agent
	// moves back through the browser cache to an earlier page and continues
	// from there (behavior 3). Range [0, 1).
	LPP float64
	// NIP is the New-Initial-page Probability: the chance the agent jumps to
	// an unvisited start page, ending the current session (behavior 1).
	// Range [0, 1).
	NIP float64
	// MeanStay is the mean page-stay time; the paper uses 2.12 minutes
	// (median of a normal distribution equals its mean).
	MeanStay time.Duration
	// StdDevStay is the page-stay standard deviation; 0.5 minutes in the
	// paper.
	StdDevStay time.Duration
	// Agents is the number of simulated web users; 10000 in Table 5.
	Agents int
	// Seed makes the whole run reproducible. Each agent derives its own
	// deterministic generator from Seed, so results do not depend on
	// scheduling.
	Seed int64
	// Start is the simulated wall-clock origin; agents begin at Start plus a
	// per-agent offset inside StartWindow. Zero means 2006-01-02 00:00 UTC.
	Start time.Time
	// StartWindow spreads agent arrivals; zero means 24h.
	StartWindow time.Duration
	// MaxRequests caps one agent's total navigations as a safety net against
	// pathological parameter choices (e.g. STP=0 would never terminate).
	// Zero means 1000.
	MaxRequests int
	// Revisit selects the behavior-2 revisit policy; see RevisitPolicy.
	Revisit RevisitPolicy
	// Workers bounds the number of agents simulated concurrently; zero means
	// GOMAXPROCS.
	Workers int
	// ProxyFraction is the fraction of agents that sit behind shared proxy
	// IPs (the paper, §1: "all users behind a proxy server will have the
	// same IP number ... will be seen as a single client machine"). Their
	// log records carry the proxy's address, so a reactive pipeline merges
	// their request streams. Range [0, 1]; zero disables proxies.
	ProxyFraction float64
	// ProxySize is how many agents share one proxy IP; zero means 4.
	ProxySize int
	// Stay selects the page-stay distribution; see StayModel.
	Stay StayModel
}

// StayModel selects the shape of the page-stay time distribution.
type StayModel int

const (
	// StayNormal draws stays from N(MeanStay, StdDevStay²) — the paper's
	// Table 5 model.
	StayNormal StayModel = iota
	// StayLognormal draws stays from a lognormal with median MeanStay and
	// log-scale σ = StdDevStay/MeanStay — the heavy-tailed shape real dwell
	// times exhibit; exposed as a robustness ablation.
	StayLognormal
)

// String names the model for reports.
func (m StayModel) String() string {
	switch m {
	case StayNormal:
		return "normal"
	case StayLognormal:
		return "lognormal"
	default:
		return fmt.Sprintf("StayModel(%d)", int(m))
	}
}

// PaperParams returns Table 5's fixed parameters: STP 5%, LPP 30%, NIP 30%,
// page-stay N(2.12 min, 0.5 min), 10000 agents.
func PaperParams() Params {
	return Params{
		STP:        0.05,
		LPP:        0.30,
		NIP:        0.30,
		MeanStay:   2*time.Minute + 7200*time.Millisecond, // 2.12 min = 2m07.2s
		StdDevStay: 30 * time.Second,
		Agents:     10000,
		Seed:       1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.STP <= 0 || p.STP >= 1 {
		return fmt.Errorf("simulator: STP %.3f out of range (0, 1)", p.STP)
	}
	if p.LPP < 0 || p.LPP >= 1 {
		return fmt.Errorf("simulator: LPP %.3f out of range [0, 1)", p.LPP)
	}
	if p.NIP < 0 || p.NIP >= 1 {
		return fmt.Errorf("simulator: NIP %.3f out of range [0, 1)", p.NIP)
	}
	if p.MeanStay <= 0 {
		return fmt.Errorf("simulator: mean stay %v not positive", p.MeanStay)
	}
	if p.StdDevStay < 0 {
		return fmt.Errorf("simulator: stay deviation %v negative", p.StdDevStay)
	}
	if p.Agents <= 0 {
		return fmt.Errorf("simulator: agent count %d not positive", p.Agents)
	}
	if p.MaxRequests < 0 {
		return fmt.Errorf("simulator: max requests %d negative", p.MaxRequests)
	}
	if p.ProxyFraction < 0 || p.ProxyFraction > 1 {
		return fmt.Errorf("simulator: proxy fraction %.3f out of range [0, 1]", p.ProxyFraction)
	}
	if p.ProxySize < 0 {
		return fmt.Errorf("simulator: proxy size %d negative", p.ProxySize)
	}
	return nil
}

// withDefaults fills the zero-value fields.
func (p Params) withDefaults() Params {
	if p.Start.IsZero() {
		p.Start = time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)
	}
	if p.StartWindow == 0 {
		p.StartWindow = 24 * time.Hour
	}
	if p.MaxRequests == 0 {
		p.MaxRequests = 1000
	}
	if p.ProxySize == 0 {
		p.ProxySize = 4
	}
	return p
}
