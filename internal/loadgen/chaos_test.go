package loadgen

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"smartsra/internal/webserver"
)

// startHardenedServer runs a real http.Server with a read-header deadline
// and per-IP admission — the defenses chaos mode exists to exercise.
func startHardenedServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 200 * time.Millisecond}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestChaosClassification runs every adversary against a hardened server
// and pins the classification: slowloris connections all get cut off by the
// read-header deadline, floods split into admitted-within-budget plus 429s,
// churn completes, and malformed request lines are all refused.
func TestChaosClassification(t *testing.T) {
	const (
		slow       = 4
		floodIPs   = 3
		floodPerIP = 10
		burst      = 3
		churnN     = 20
		malformedN = 5
	)
	adm := webserver.NewAdmission(webserver.AdmissionConfig{
		PerIPRate:         0.001, // effectively no refill within the test
		PerIPBurst:        burst,
		TrustForwardedFor: true,
	})
	base := startHardenedServer(t, adm.Wrap(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })))

	rep, err := RunChaos(context.Background(), ChaosConfig{
		BaseURL:      base,
		Slowloris:    slow,
		SlowInterval: 50 * time.Millisecond,
		FloodIPs:     floodIPs,
		FloodPerIP:   floodPerIP,
		Churn:        churnN,
		Malformed:    malformedN,
		Duration:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %s", rep)

	if rep.SlowOpened != slow {
		t.Errorf("slowloris opened %d connections, want %d", rep.SlowOpened, slow)
	}
	if rep.SlowServerClosed != rep.SlowOpened {
		t.Errorf("server closed %d of %d slowloris connections; the read-header deadline should kill them all",
			rep.SlowServerClosed, rep.SlowOpened)
	}
	if rep.FloodSent != floodIPs*floodPerIP {
		t.Errorf("flood sent %d, want %d", rep.FloodSent, floodIPs*floodPerIP)
	}
	if got := rep.FloodAccepted + rep.FloodRejected + rep.FloodShed + rep.FloodErrors; got != rep.FloodSent {
		t.Errorf("flood classification leaks: %d classified of %d sent", got, rep.FloodSent)
	}
	// Each flooding IP gets its burst admitted and (nearly) everything else
	// 429'd; the tiny refill rate can admit at most a request or two extra.
	if rep.FloodAccepted < floodIPs*burst {
		t.Errorf("flood accepted %d, want at least the %d budgeted", rep.FloodAccepted, floodIPs*burst)
	}
	if rep.FloodRejected < int64(floodIPs*(floodPerIP-burst)-floodIPs) {
		t.Errorf("flood rejected %d, want ~%d over-budget requests 429'd",
			rep.FloodRejected, floodIPs*(floodPerIP-burst))
	}
	if rep.ChurnCycles != churnN {
		t.Errorf("churn completed %d cycles, want %d", rep.ChurnCycles, churnN)
	}
	if rep.MalformedSent != malformedN || rep.MalformedRefused != malformedN {
		t.Errorf("malformed: %d/%d refused, want all %d",
			rep.MalformedRefused, rep.MalformedSent, malformedN)
	}
}

// TestScrapeMetrics round-trips the /debug/metrics text format through the
// scraper, including a labeled series.
func TestScrapeMetrics(t *testing.T) {
	base := startHardenedServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(
			"counter serve.requests 42\n" +
				"gauge   serve.drops.pending 0\n" +
				"counter serve.admission.requests{outcome=\"admitted\"} 7\n" +
				"hist    serve.request.seconds count=3\n"))
	}))
	m, err := ScrapeMetrics(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"serve.requests":      42,
		"serve.drops.pending": 0,
		`serve.admission.requests{outcome="admitted"}`: 7,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("scraped %s = %d, want %d", k, m[k], v)
		}
	}
	if len(m) != len(want) {
		t.Errorf("scraped %d entries, want %d: %v", len(m), len(want), m)
	}
}
