// Chaos mode: the adversarial half of a serve soak. Where Run replays
// well-behaved simulated users, RunChaos attacks the same server the way a
// hostile or broken internet does — slowloris connections that trickle
// headers forever, single-source floods, connection churn, and malformed
// request lines — and classifies how the server defended itself. Chaos
// results are data, not pass/fail: benchgate asserts on the classified
// counts (and on the server's own /debug/metrics) after the run.
package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig configures one adversarial run. The zero value of each knob
// picks a small default, so ChaosConfig{BaseURL: u} is a usable smoke test.
type ChaosConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Slowloris is the number of concurrent slow connections, each sending
	// a valid request line and then dripping one header every SlowInterval
	// without ever finishing (default 8). A hardened server cuts them off
	// with its read-header deadline.
	Slowloris int
	// SlowInterval is the drip period (default 500ms).
	SlowInterval time.Duration
	// FloodIPs is how many distinct hostile sources flood the server; each
	// rides its own X-Forwarded-For address so per-IP admission sees them
	// as separate clients (default 4).
	FloodIPs int
	// FloodPerIP is how many back-to-back requests each flooding source
	// sends (default 50).
	FloodPerIP int
	// Churn is the number of connect-then-immediately-disconnect cycles,
	// exercising connection accounting without ever sending a byte
	// (default 100).
	Churn int
	// Malformed is the number of connections that send a garbage request
	// line (default 25). The server should answer 400 or hang up, never
	// log or ingest them.
	Malformed int
	// Duration bounds the whole chaos run (default 15s) — slowloris
	// connections the server never closes are abandoned at the deadline.
	Duration time.Duration
	// Timeout bounds each flood request (default 5s).
	Timeout time.Duration
}

// ChaosReport classifies what happened to each adversary.
type ChaosReport struct {
	// SlowOpened counts slowloris connections established; SlowServerClosed
	// counts those the server terminated (read-header deadline) before the
	// run deadline. Opened == ServerClosed means the defense held.
	SlowOpened, SlowServerClosed int64
	// Flood outcome counts, same vocabulary as Report: 2xx / 429 / 503 /
	// everything else.
	FloodSent, FloodAccepted, FloodRejected, FloodShed, FloodErrors int64
	// ChurnCycles counts completed connect-disconnect cycles.
	ChurnCycles int64
	// MalformedSent counts garbage request lines written; MalformedRefused
	// counts those answered with 4xx or an immediate hangup.
	MalformedSent, MalformedRefused int64
	// Duration is the wall-clock span of the chaos run.
	Duration time.Duration
}

// Fields flattens the report for the benchgate JSON, prefixed chaos_ so it
// can be merged with a concurrent replay Report's fields.
func (r ChaosReport) Fields() map[string]any {
	return map[string]any{
		"chaos_slow_opened":        r.SlowOpened,
		"chaos_slow_server_closed": r.SlowServerClosed,
		"chaos_flood_sent":         r.FloodSent,
		"chaos_flood_accepted":     r.FloodAccepted,
		"chaos_flood_rejected":     r.FloodRejected,
		"chaos_flood_shed":         r.FloodShed,
		"chaos_flood_errors":       r.FloodErrors,
		"chaos_churn_cycles":       r.ChurnCycles,
		"chaos_malformed_sent":     r.MalformedSent,
		"chaos_malformed_refused":  r.MalformedRefused,
		"chaos_duration_seconds":   r.Duration.Seconds(),
	}
}

// String summarizes the report for logs.
func (r ChaosReport) String() string {
	return fmt.Sprintf(
		"slowloris=%d/%d closed flood sent=%d accepted=%d rejected=%d shed=%d errors=%d churn=%d malformed=%d/%d refused in %s",
		r.SlowServerClosed, r.SlowOpened,
		r.FloodSent, r.FloodAccepted, r.FloodRejected, r.FloodShed, r.FloodErrors,
		r.ChurnCycles, r.MalformedRefused, r.MalformedSent,
		r.Duration.Round(time.Millisecond))
}

// RunChaos attacks cfg.BaseURL with every configured adversary concurrently
// and blocks until all of them finish or the deadline passes. Like Run, the
// returned error covers setup only — adversary failures are the data.
func RunChaos(ctx context.Context, cfg ChaosConfig) (ChaosReport, error) {
	if cfg.BaseURL == "" {
		return ChaosReport{}, fmt.Errorf("loadgen: no base URL")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Host == "" {
		return ChaosReport{}, fmt.Errorf("loadgen: bad base URL %q", cfg.BaseURL)
	}
	addr := u.Host
	if cfg.Slowloris <= 0 {
		cfg.Slowloris = 8
	}
	if cfg.SlowInterval <= 0 {
		cfg.SlowInterval = 500 * time.Millisecond
	}
	if cfg.FloodIPs <= 0 {
		cfg.FloodIPs = 4
	}
	if cfg.FloodPerIP <= 0 {
		cfg.FloodPerIP = 50
	}
	if cfg.Churn <= 0 {
		cfg.Churn = 100
	}
	if cfg.Malformed <= 0 {
		cfg.Malformed = 25
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 15 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var rep ChaosReport
	start := time.Now()
	var wg sync.WaitGroup

	for i := 0; i < cfg.Slowloris; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slowloris(ctx, addr, cfg.SlowInterval, &rep)
		}()
	}
	for i := 0; i < cfg.FloodIPs; i++ {
		ip := fmt.Sprintf("203.0.113.%d", i+1) // TEST-NET-3, never a real user
		wg.Add(1)
		go func() {
			defer wg.Done()
			flood(ctx, cfg, ip, &rep)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		churn(ctx, addr, cfg.Churn, &rep)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		malformed(ctx, addr, cfg.Malformed, &rep)
	}()

	wg.Wait()
	rep.Duration = time.Since(start)
	return rep, nil
}

// slowloris holds one connection in the header phase forever: a valid
// request line, then one useless header per interval, never the blank line
// that ends the headers. The connection counts as server-closed when a read
// hits EOF or a drip write fails before ctx expires.
func slowloris(ctx context.Context, addr string, interval time.Duration, rep *ChaosReport) {
	d := net.Dialer{Timeout: 2 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	defer c.Close()
	atomic.AddInt64(&rep.SlowOpened, 1)
	if _, err := c.Write([]byte("GET / HTTP/1.1\r\nHost: chaos\r\n")); err != nil {
		atomic.AddInt64(&rep.SlowServerClosed, 1)
		return
	}
	buf := make([]byte, 256)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		// A server that hit its read-header deadline has closed the
		// connection: the read sees EOF (or a 408), and if TCP buffering
		// hides that from the first write, the next drip's write fails.
		c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		if n, err := c.Read(buf); err == io.EOF || n > 0 {
			atomic.AddInt64(&rep.SlowServerClosed, 1)
			return
		}
		if _, err := c.Write([]byte("X-Drip: y\r\n")); err != nil {
			atomic.AddInt64(&rep.SlowServerClosed, 1)
			return
		}
	}
}

// flood fires back-to-back requests from one simulated source address and
// classifies every response.
func flood(ctx context.Context, cfg ChaosConfig, ip string, rep *ChaosReport) {
	client := &http.Client{
		Timeout: cfg.Timeout,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	defer client.CloseIdleConnections()
	for i := 0; i < cfg.FloodPerIP; i++ {
		if ctx.Err() != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/", nil)
		if err != nil {
			return
		}
		req.Header.Set("User-Agent", "smartsra-chaos/1.0")
		req.Header.Set("X-Forwarded-For", ip)
		atomic.AddInt64(&rep.FloodSent, 1)
		resp, err := client.Do(req)
		if err != nil {
			atomic.AddInt64(&rep.FloodErrors, 1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			atomic.AddInt64(&rep.FloodRejected, 1)
		case resp.StatusCode == http.StatusServiceUnavailable:
			atomic.AddInt64(&rep.FloodShed, 1)
		case resp.StatusCode >= 200 && resp.StatusCode < 400:
			atomic.AddInt64(&rep.FloodAccepted, 1)
		default:
			atomic.AddInt64(&rep.FloodErrors, 1)
		}
	}
}

// churn opens and immediately abandons connections — no bytes, no goodbye —
// the pattern of port scanners and broken clients. The server should account
// for them (serve.conns.*) and leak nothing.
func churn(ctx context.Context, addr string, n int, rep *ChaosReport) {
	d := net.Dialer{Timeout: 2 * time.Second}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return
		}
		c.Close()
		atomic.AddInt64(&rep.ChurnCycles, 1)
	}
}

// malformed sends garbage request lines and counts the server's refusals
// (4xx or an immediate hangup). Anything else — a 2xx, a hang — is left
// uncounted and shows up as MalformedSent > MalformedRefused.
func malformed(ctx context.Context, addr string, n int, rep *ChaosReport) {
	d := net.Dialer{Timeout: 2 * time.Second}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return
		}
		atomic.AddInt64(&rep.MalformedSent, 1)
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte("SMASH /\x00garbage\r\n\r\n")); err != nil {
			atomic.AddInt64(&rep.MalformedRefused, 1)
			c.Close()
			continue
		}
		br := bufio.NewReader(c)
		line, err := br.ReadString('\n')
		switch {
		case err != nil:
			// Immediate hangup with no status line is also a refusal.
			atomic.AddInt64(&rep.MalformedRefused, 1)
		case strings.Contains(line, " 4"):
			atomic.AddInt64(&rep.MalformedRefused, 1)
		}
		c.Close()
	}
}

// ScrapeMetrics fetches baseURL's /debug/metrics text endpoint ("counter
// name value" / "gauge name value" lines, labeled series rendered as
// name{k="v"}) into a flat map. Chaos soaks use it to read the server's own
// conservation and admission counters into the benchgate report.
func ScrapeMetrics(ctx context.Context, baseURL string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/debug/metrics: status %d", baseURL, resp.StatusCode)
	}
	m := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 3 || (f[0] != "counter" && f[0] != "gauge") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(f[2], "%d", &v); err == nil {
			m[f[1]] = v
		}
	}
	return m, sc.Err()
}
