package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smartsra/internal/metrics"
	"smartsra/internal/simulator"
)

func schedule(n int, gap time.Duration) []simulator.Request {
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	reqs := make([]simulator.Request, n)
	for i := range reqs {
		uri := "/p/ok.html"
		if i%5 == 4 {
			uri = "/p/shed.html"
		}
		reqs[i] = simulator.Request{
			User:    simulator.AgentID(i % 7),
			URI:     uri,
			Referer: "-",
			At:      base.Add(time.Duration(i) * gap),
		}
	}
	return reqs
}

// TestRunConservation: every scheduled request is accounted for exactly once
// — accepted + shed + errors == sent == len(schedule) — and the latency
// histogram saw every response.
func TestRunConservation(t *testing.T) {
	var got503 atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "shed") {
			got503.Add(1)
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	reqs := schedule(200, time.Second)
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Requests: reqs,
		Workers:  4,
		Registry: reg,
		// Speedup 0: no pacing, full pressure.
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != int64(len(reqs)) {
		t.Errorf("sent %d of %d", rep.Sent, len(reqs))
	}
	if rep.Accepted+rep.Shed+rep.Errors != rep.Sent {
		t.Errorf("conservation violated: accepted %d + shed %d + errors %d != sent %d",
			rep.Accepted, rep.Shed, rep.Errors, rep.Sent)
	}
	if want := int64(len(reqs) / 5); rep.Shed != want || got503.Load() != want {
		t.Errorf("shed = %d (server sent %d), want %d", rep.Shed, got503.Load(), want)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d against a healthy test server", rep.Errors)
	}
	if rep.Latency.Count != rep.Sent {
		t.Errorf("latency histogram saw %d of %d responses", rep.Latency.Count, rep.Sent)
	}
	if p99 := rep.Latency.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 = %v, want > 0", p99)
	}
	if reg.GetCounter("loadgen.shed").Value() != rep.Shed {
		t.Error("registry counters diverge from the report")
	}
}

// TestRunPacing: with a finite speedup the replay must take at least the
// compressed schedule span — loadgen may lag a slow server, but it must not
// run ahead of the schedule.
func TestRunPacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	// 20 requests, 1s apart: 19s of simulated time at 100x → at least 190ms.
	reqs := schedule(20, time.Second)
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Requests: reqs,
		Speedup:  100,
		Workers:  4,
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 190*time.Millisecond {
		t.Errorf("replay of a 19s schedule at 100x finished in %v (< 190ms): pacing ran ahead", elapsed)
	}
	if rep.Accepted != int64(len(reqs)) {
		t.Errorf("accepted %d of %d", rep.Accepted, len(reqs))
	}
}

// TestRunCancel: cancelling the context stops the dispatch loop; whatever was
// already sent stays accounted.
func TestRunCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep Report
	go func() {
		defer close(done)
		rep, _ = Run(ctx, Config{
			BaseURL:  srv.URL,
			Requests: schedule(1000, time.Millisecond),
			Workers:  2,
			Timeout:  5 * time.Second,
			Registry: metrics.NewRegistry(),
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if rep.Accepted+rep.Shed+rep.Errors != rep.Sent {
		t.Errorf("conservation violated after cancel: %+v", rep)
	}
	if rep.Sent >= 1000 {
		t.Errorf("cancel did not stop dispatch (sent %d)", rep.Sent)
	}
}
