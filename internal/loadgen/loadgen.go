// Package loadgen replays a simulated-user request schedule against a live
// HTTP server in real time. It is the measurement half of the serve hardening
// loop: the simulator decides who fetches what and when, loadgen turns that
// schedule into paced HTTP traffic, and per-request latencies land in
// quantile-capable histograms so a run reports p50/p99/p999 and the shed
// rate instead of a bare throughput number.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/metrics"
	"smartsra/internal/simulator"
)

// Config configures one replay.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the schedule to replay, globally time-ordered
	// (simulator.Result.Schedule output).
	Requests []simulator.Request
	// Speedup compresses simulated time: a request due N simulated seconds
	// into the schedule is issued N/Speedup real seconds after start. Zero or
	// negative means no pacing — every request is issued as soon as a worker
	// is free (maximum pressure).
	Speedup float64
	// Workers is the number of concurrent in-flight requests (default 8).
	Workers int
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// Registry receives loadgen.* counters and the latency histogram
	// (default metrics.Default).
	Registry *metrics.Registry
	// UserAgent is sent on every request (default "smartsra-loadgen/1.0").
	UserAgent string
}

// Report is the outcome of one replay.
type Report struct {
	// Sent counts requests handed to the HTTP client.
	Sent int64
	// Accepted counts 2xx responses.
	Accepted int64
	// Shed counts 503 responses — the server's explicit load-shedding signal.
	Shed int64
	// Rejected counts 429 responses — per-client admission control saying
	// this source specifically is over budget (distinct from 503's "the
	// server is saturated").
	Rejected int64
	// Errors counts transport failures and any other status.
	Errors int64
	// Duration is the wall-clock span of the replay.
	Duration time.Duration
	// Latency holds the full client-side latency distribution of every
	// request that produced an HTTP response.
	Latency metrics.HistogramStats
}

// ShedRate is Shed / Sent (0 for an empty run).
func (r Report) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// Fields flattens the report into the flat-JSON shape the benchgate tool
// checks: conservation inputs, quantiles in seconds, and the shed rate.
func (r Report) Fields() map[string]any {
	return map[string]any{
		"tool":             "loadgen",
		"sent":             r.Sent,
		"accepted":         r.Accepted,
		"shed":             r.Shed,
		"rejected":         r.Rejected,
		"errors":           r.Errors,
		"shed_rate":        r.ShedRate(),
		"duration_seconds": r.Duration.Seconds(),
		"latency_count":    r.Latency.Count,
		"latency_mean":     r.Latency.Mean(),
		"p50_seconds":      r.Latency.Quantile(0.50),
		"p99_seconds":      r.Latency.Quantile(0.99),
		"p999_seconds":     r.Latency.Quantile(0.999),
	}
}

// String summarizes the report for logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"sent=%d accepted=%d shed=%d rejected=%d errors=%d shed_rate=%.3f p50=%s p99=%s p999=%s in %s",
		r.Sent, r.Accepted, r.Shed, r.Rejected, r.Errors, r.ShedRate(),
		secs(r.Latency.Quantile(0.50)), secs(r.Latency.Quantile(0.99)),
		secs(r.Latency.Quantile(0.999)), r.Duration.Round(time.Millisecond))
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
}

// Run replays cfg.Requests against cfg.BaseURL and blocks until every
// request completed or ctx is cancelled. The error reports setup problems
// only; per-request failures are counted, not returned, because under
// deliberate overload failures are data.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: no base URL")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	agent := cfg.UserAgent
	if agent == "" {
		agent = "smartsra-loadgen/1.0"
	}
	var (
		sent     = reg.GetCounter("loadgen.sent")
		accepted = reg.GetCounter("loadgen.accepted")
		shed     = reg.GetCounter("loadgen.shed")
		rejected = reg.GetCounter("loadgen.rejected")
		errors   = reg.GetCounter("loadgen.errors")
		latency  = reg.GetHistogramBuckets("loadgen.latency.seconds", metrics.LatencyBuckets)
	)
	client := &http.Client{
		Timeout: timeout,
		// The site's "/" start-page redirect must count as one request, and
		// page URIs never redirect, so follow nothing.
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	defer client.CloseIdleConnections()

	var rep Report
	work := make(chan simulator.Request)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+q.URI, nil)
				if err != nil {
					atomic.AddInt64(&rep.Sent, 1)
					atomic.AddInt64(&rep.Errors, 1)
					sent.Add(1)
					errors.Add(1)
					continue
				}
				req.Header.Set("User-Agent", agent)
				// The simulated user's identity rides X-Forwarded-For so a
				// server started with -trust-forwarded keys sessions by
				// simulated user, not by the one loopback address all
				// workers share.
				req.Header.Set("X-Forwarded-For", q.User)
				if q.Referer != "" && q.Referer != clf.NoField {
					req.Header.Set("Referer", q.Referer)
				}
				start := time.Now()
				resp, err := client.Do(req)
				atomic.AddInt64(&rep.Sent, 1)
				sent.Add(1)
				if err != nil {
					atomic.AddInt64(&rep.Errors, 1)
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latency.Observe(time.Since(start).Seconds())
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					atomic.AddInt64(&rep.Shed, 1)
					shed.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					atomic.AddInt64(&rep.Rejected, 1)
					rejected.Add(1)
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					atomic.AddInt64(&rep.Accepted, 1)
					accepted.Add(1)
				default:
					atomic.AddInt64(&rep.Errors, 1)
					errors.Add(1)
				}
			}
		}()
	}

	// Dispatch in schedule order, pacing against the first request's
	// simulated time. A request whose due time has passed (slow server, tight
	// speedup) goes out immediately — the schedule lags rather than drops.
	begin := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
dispatch:
	for _, q := range cfg.Requests {
		if cfg.Speedup > 0 {
			due := begin.Add(time.Duration(float64(q.At.Sub(cfg.Requests[0].At)) / cfg.Speedup))
			if wait := time.Until(due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					break dispatch
				}
			}
		}
		select {
		case work <- q:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	rep.Duration = time.Since(begin)
	rep.Latency = reg.Snapshot().Histograms["loadgen.latency.seconds"]
	return rep, ctx.Err()
}
