package clf

import (
	"strings"
	"testing"
	"time"
)

func TestSanitizeToken(t *testing.T) {
	cases := map[string]string{
		"":                  "-",
		"-":                 "-",
		"/p/17.html":        "/p/17.html",
		"a b":               "a%20b",
		"a\"b":              "a%22b",
		"a\nb":              "a%0Ab",
		"a\rb":              "a%0Db",
		"a\x00b":            "a%00b",
		"a\x7fb":            "a%7Fb",
		"/ok?q=1&x=%20":     "/ok?q=1&x=%20", // already-encoded input is untouched
		"tab\there":         "tab%09here",
		"10.0.0.7":          "10.0.0.7",
		"curl/8.0 (x; y)":   "curl/8.0%20(x;%20y)",
		"esc\x1b[31mred":    "esc%1B[31mred",
		"\r\n\r\ninjected":  "%0D%0A%0D%0Ainjected",
		"GET /x HTTP/1.1\"": "GET%20/x%20HTTP/1.1%22",
	}
	for in, want := range cases {
		if got := SanitizeToken(in); got != want {
			t.Errorf("SanitizeToken(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeQuotedKeepsSpaces(t *testing.T) {
	if got := SanitizeQuoted("Mozilla/5.0 (X11; Linux)"); got != "Mozilla/5.0 (X11; Linux)" {
		t.Errorf("clean agent mangled: %q", got)
	}
	if got := SanitizeQuoted(`evil" 200 1 "x`); got != `evil%22 200 1 %22x` {
		t.Errorf("quote escape = %q", got)
	}
	if got := SanitizeQuoted(""); got != NoField {
		t.Errorf("empty quoted field = %q, want -", got)
	}
}

func TestSanitizeIdempotent(t *testing.T) {
	hostiles := []string{
		"a b\"c\nd\x00e", "\r\n", `%20%22`, strings.Repeat("\"", 100),
	}
	for _, h := range hostiles {
		once := SanitizeToken(h)
		if twice := SanitizeToken(once); twice != once {
			t.Errorf("SanitizeToken not idempotent on %q: %q -> %q", h, once, twice)
		}
		onceQ := SanitizeQuoted(h)
		if twiceQ := SanitizeQuoted(onceQ); twiceQ != onceQ {
			t.Errorf("SanitizeQuoted not idempotent on %q: %q -> %q", h, onceQ, twiceQ)
		}
	}
}

func TestSanitizeTruncatesOversizedFields(t *testing.T) {
	huge := strings.Repeat("A", 2<<20)
	got := SanitizeToken(huge)
	if len(got) != MaxFieldBytes {
		t.Errorf("len = %d, want cap %d", len(got), MaxFieldBytes)
	}
}

// TestSanitizeRecordRoundTrips pins the contract the webserver boundary
// relies on: a sanitized record renders to exactly one line that re-parses
// to the same record, in both formats.
func TestSanitizeRecordRoundTrips(t *testing.T) {
	at, _ := time.Parse(TimeLayout, "02/Jan/2006:15:04:05 +0000")
	hostile := Record{
		Host:      "10.0.0.7 evil",
		Ident:     "",
		AuthUser:  "a\nb",
		Time:      at,
		Method:    "GE T",
		URI:       "/x\" 200 999 \"y",
		Protocol:  "HTTP/1.1\r\nfake",
		Status:    700,
		Bytes:     -42,
		Referer:   "http://r/\" \"",
		UserAgent: "ua\x00\x1b[2J",
	}
	san := SanitizeRecord(hostile)
	if again := SanitizeRecord(san); again != san {
		t.Fatalf("SanitizeRecord not a fixed point:\n%+v\n%+v", san, again)
	}

	line := san.String()
	if strings.ContainsAny(line, "\r\n\x00") {
		t.Fatalf("common line still contains framing bytes: %q", line)
	}
	back, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("common line does not re-parse: %v\n%q", err, line)
	}
	back.Referer, back.UserAgent = san.Referer, san.UserAgent // common format drops them
	if !back.Time.Equal(san.Time) {
		t.Fatalf("time did not round-trip: %v vs %v", back.Time, san.Time)
	}
	back.Time = san.Time
	if back != san {
		t.Fatalf("common round trip diverged:\n got %+v\nwant %+v", back, san)
	}

	cline := san.CombinedString()
	if strings.ContainsAny(cline, "\r\n\x00") {
		t.Fatalf("combined line still contains framing bytes: %q", cline)
	}
	cback, err := ParseCombinedRecord(cline)
	if err != nil {
		t.Fatalf("combined line does not re-parse: %v\n%q", err, cline)
	}
	if !cback.Time.Equal(san.Time) {
		t.Fatalf("combined time did not round-trip")
	}
	cback.Time = san.Time
	if cback != san {
		t.Fatalf("combined round trip diverged:\n got %+v\nwant %+v", cback, san)
	}
}
