package clf

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ResolveLogPaths expands a -log flag value into the ordered list of files
// it names: a comma-separated list of paths and/or globs ("access.log*"),
// resolved, deduplicated, and sorted lexically — the order rotated log sets
// like access.log.1.gz, access.log.2.gz are replayed in. The spec "-"
// (stdin) is the caller's to handle; here it is rejected, as is a glob that
// matches nothing.
func ResolveLogPaths(spec string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "-" {
			return nil, fmt.Errorf("clf: %q cannot combine stdin with file inputs", spec)
		}
		matches := []string{part}
		if strings.ContainsAny(part, "*?[") {
			var err error
			matches, err = filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("clf: bad glob %q: %w", part, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("clf: no files match %q", part)
			}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("clf: no input files in %q", spec)
	}
	sort.Strings(paths)
	return paths, nil
}

// IsGzipFile reports whether path starts with the gzip magic bytes (the
// same sniff the Source layer and OpenDecoded use). False for unreadable
// paths.
func IsGzipFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	return sniffGzip(f)
}

// OpenDecoded opens one log file for reading, transparently decoding gzip
// (sniffed by magic bytes, not extension). Closing the returned ReadCloser
// closes both the decoder and the file.
func OpenDecoded(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !sniffGzip(f) {
		return f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("clf: gzip %s: %w", path, err)
	}
	return &stackedCloser{Reader: gz, closers: []io.Closer{gz, f}}, nil
}

type stackedCloser struct {
	io.Reader
	closers []io.Closer
}

func (s *stackedCloser) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// OpenLogInput is the shared CLI input opener: spec "-" yields stdin, and
// anything else resolves through ResolveLogPaths into a single logical
// stream — each file gzip-sniffed and decoded, concatenated in lexical
// order with a newline injected between files whose last line lacks one
// (so a record straddling a rotation boundary never merges with the next
// file's first line). It also returns the resolved paths (nil for stdin)
// so callers that stream per-file — checkpointed ingestion — can use the
// same resolution.
func OpenLogInput(spec string) (io.ReadCloser, []string, error) {
	if spec == "-" {
		return io.NopCloser(os.Stdin), nil, nil
	}
	paths, err := ResolveLogPaths(spec)
	if err != nil {
		return nil, nil, err
	}
	return &concatReader{paths: paths}, paths, nil
}

// concatReader streams the decoded contents of a file list, opening each
// lazily and separating files with an injected '\n' when needed.
type concatReader struct {
	paths  []string
	next   int
	cur    io.ReadCloser
	last   byte
	sawAny bool
	needNL bool
}

func (c *concatReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if c.needNL {
			c.needNL = false
			p[0] = '\n'
			return 1, nil
		}
		if c.cur == nil {
			if c.next >= len(c.paths) {
				return 0, io.EOF
			}
			rc, err := OpenDecoded(c.paths[c.next])
			if err != nil {
				return 0, err
			}
			c.cur, c.sawAny = rc, false
			c.next++
		}
		n, err := c.cur.Read(p)
		if n > 0 {
			c.last = p[n-1]
			c.sawAny = true
		}
		if err == io.EOF {
			cerr := c.cur.Close()
			c.cur = nil
			if cerr != nil {
				return n, cerr
			}
			if c.sawAny && c.last != '\n' && c.next < len(c.paths) {
				c.needNL = true
			}
			if n > 0 {
				return n, nil
			}
			continue
		}
		if n > 0 || err != nil {
			return n, err
		}
	}
}

func (c *concatReader) Close() error {
	if c.cur == nil {
		return nil
	}
	err := c.cur.Close()
	c.cur = nil
	return err
}
