// Package clf implements the Common Logfile Format (CLF) that web servers
// use for access logs — the raw input of reactive web usage mining. It
// provides the record model, a strict parser, a writer, a streaming scanner,
// and the data-cleaning filters applied before session reconstruction.
//
// A CLF line has seven fields (the paper, §1):
//
//	host ident authuser [date] "request" status bytes
//
// e.g.
//
//	10.0.0.7 - - [02/Jan/2006:15:04:05 +0000] "GET /p/17.html HTTP/1.1" 200 512
//
// Session reconstruction only needs the host (IP), timestamp, and URL; the
// other fields are carried so logs round-trip and can be filtered on status
// and method.
package clf

import (
	"fmt"
	"strings"
	"time"
)

// TimeLayout is the CLF timestamp layout: day/month/year:time zone.
const TimeLayout = "02/Jan/2006:15:04:05 -0700"

// Record is one parsed CLF log line.
type Record struct {
	// Host is the client machine's IP address (or hostname).
	Host string
	// Ident is the RFC 1413 identity, almost always "-".
	Ident string
	// AuthUser is the authenticated user name, almost always "-".
	AuthUser string
	// Time is the request timestamp.
	Time time.Time
	// Method is the HTTP request method (GET, POST, ...).
	Method string
	// URI is the requested URL path.
	URI string
	// Protocol is the transfer protocol (HTTP/1.0, HTTP/1.1).
	Protocol string
	// Status is the HTTP status code of the response.
	Status int
	// Bytes is the number of bytes transmitted, or -1 when the log recorded
	// "-" (no body).
	Bytes int64
	// Referer is the combined-format referer URL ("" or "-" when absent or
	// when the line was common format). Spelled as in the HTTP header.
	Referer string
	// UserAgent is the combined-format user agent ("" when absent).
	UserAgent string
}

// String renders the record as a CLF line (without trailing newline).
func (r Record) String() string {
	ident, user := r.Ident, r.AuthUser
	if ident == "" {
		ident = "-"
	}
	if user == "" {
		user = "-"
	}
	bytes := "-"
	if r.Bytes >= 0 {
		bytes = fmt.Sprintf("%d", r.Bytes)
	}
	return fmt.Sprintf("%s %s %s [%s] \"%s %s %s\" %d %s",
		r.Host, ident, user, r.Time.Format(TimeLayout),
		r.Method, r.URI, r.Protocol, r.Status, bytes)
}

// Request reconstructs the quoted request line, e.g. "GET /x HTTP/1.1".
func (r Record) Request() string {
	return r.Method + " " + r.URI + " " + r.Protocol
}

// Success reports whether the status code indicates a successful response
// (2xx) — the paper's "success of return code" attribute.
func (r Record) Success() bool { return r.Status >= 200 && r.Status < 300 }

// ParseError describes a malformed CLF line. It records the offending line
// and, when known, its 1-based position in the input stream.
type ParseError struct {
	Line   string
	LineNo int
	Reason string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.LineNo > 0 {
		return fmt.Sprintf("clf: line %d: %s: %q", e.LineNo, e.Reason, truncate(e.Line, 120))
	}
	return fmt.Sprintf("clf: %s: %q", e.Reason, truncate(e.Line, 120))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ParseRecord parses a single CLF line. It is strict about structure (field
// count, bracketed date, quoted request, numeric status) but tolerant about
// content (any method name, any URI).
func ParseRecord(line string) (Record, error) {
	fail := func(reason string) (Record, error) {
		return Record{}, &ParseError{Line: line, Reason: reason}
	}
	rest := strings.TrimRight(line, "\r\n")
	if strings.TrimSpace(rest) == "" {
		return fail("empty line")
	}

	// host ident authuser
	var fields [3]string
	for i := 0; i < 3; i++ {
		sp := strings.IndexByte(rest, ' ')
		if sp <= 0 {
			return fail("missing host/ident/authuser fields")
		}
		fields[i], rest = rest[:sp], rest[sp+1:]
	}

	// [date]
	if len(rest) == 0 || rest[0] != '[' {
		return fail("missing [ before date")
	}
	close := strings.IndexByte(rest, ']')
	if close < 0 {
		return fail("missing ] after date")
	}
	ts, err := time.Parse(TimeLayout, rest[1:close])
	if err != nil {
		return fail("bad timestamp: " + err.Error())
	}
	rest = rest[close+1:]
	if !strings.HasPrefix(rest, " ") {
		return fail("missing space after date")
	}
	rest = rest[1:]

	// "method uri protocol"
	if len(rest) == 0 || rest[0] != '"' {
		return fail("missing opening quote of request")
	}
	endQuote := strings.IndexByte(rest[1:], '"')
	if endQuote < 0 {
		return fail("missing closing quote of request")
	}
	req := rest[1 : 1+endQuote]
	rest = rest[endQuote+2:]
	reqParts := strings.Split(req, " ")
	if len(reqParts) != 3 {
		return fail("request line is not \"METHOD URI PROTOCOL\"")
	}

	// status bytes
	rest = strings.TrimLeft(rest, " ")
	tail := strings.Fields(rest)
	if len(tail) != 2 {
		return fail("trailing fields are not STATUS BYTES")
	}
	status, err := parseUint(tail[0])
	if err != nil || status < 100 || status > 599 {
		return fail("bad status code")
	}
	var bytes int64 = -1
	if tail[1] != "-" {
		b, err := parseUint(tail[1])
		if err != nil {
			return fail("bad byte count")
		}
		bytes = int64(b)
	}

	return Record{
		Host:     fields[0],
		Ident:    fields[1],
		AuthUser: fields[2],
		Time:     ts,
		Method:   reqParts[0],
		URI:      reqParts[1],
		Protocol: reqParts[2],
		Status:   status,
		Bytes:    bytes,
	}, nil
}

// parseUint parses a non-negative decimal integer without allowing signs,
// spaces, or empty strings (stricter than strconv.Atoi for log fields).
func parseUint(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q", c)
		}
		n = n*10 + int(c-'0')
		if n > 1<<40 {
			return 0, fmt.Errorf("number too large")
		}
	}
	return n, nil
}
