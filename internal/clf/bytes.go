package clf

import (
	"bytes"
	"sync/atomic"
	"time"
)

// Byte-level fast path for the CLF parsers. The string parsers in record.go
// and combined.go remain the reference implementation; the functions here
// parse directly from the []byte a bufio.Scanner (or a chunked parallel
// reader) hands out, so the hot ingestion loop never materializes a per-line
// string, never calls time.Parse on well-formed timestamps, and never builds
// the intermediate []string slices of strings.Split/strings.Fields. Only the
// retained Record fields (host, URI, ...) are copied into fresh strings.
//
// Every deviation from the fixed fast-path shape — unusual timestamp,
// non-canonical month case, exotic whitespace — falls back to the strict
// string parsers, so by construction the byte parsers accept exactly what
// the string parsers accept and produce identical Records and errors.
// FuzzParseAnyRecordBytes pins the equivalence.

// ParseRecordBytes is ParseRecord operating on a byte slice. The input is
// not retained; all returned strings are fresh copies.
func ParseRecordBytes(line []byte) (Record, error) {
	if rec, ok := parseRecordFast(trimCRLF(line), nil); ok {
		return rec, nil
	}
	return ParseRecord(string(line))
}

// ParseCombinedRecordBytes is ParseCombinedRecord operating on a byte slice.
func ParseCombinedRecordBytes(line []byte) (Record, error) {
	trimmed := trimCRLF(line)
	if prefix, ref, agent, ok := splitCombinedTailBytes(trimmed); ok {
		if rec, ok := parseRecordFast(prefix, nil); ok {
			rec.Referer = fieldString(ref)
			rec.UserAgent = string(agent)
			return rec, nil
		}
	}
	return ParseCombinedRecord(string(line))
}

// ParseAnyRecordBytes is ParseAnyRecord operating on a byte slice: combined
// format is detected first, common format otherwise. It is the parser the
// streaming Scanner uses.
func ParseAnyRecordBytes(line []byte) (Record, bool, error) {
	return parseAnyRecordBytesIn(line, nil)
}

// parseAnyRecordBytesIn is ParseAnyRecordBytes with a per-batch intern table
// (nil disables interning). The chunk-parallel readers pass one table per
// chunk so repeated hosts, URIs, referers, and user agents are copied once
// per batch instead of once per record. Interned strings are equal values,
// so the result is indistinguishable from the nil-table path.
func parseAnyRecordBytesIn(line []byte, in *internTable) (Record, bool, error) {
	trimmed := trimCRLF(line)
	if prefix, ref, agent, ok := splitCombinedTailBytes(trimmed); ok {
		if rec, ok := parseRecordFast(prefix, in); ok {
			rec.Referer = in.field(ref)
			rec.UserAgent = in.str(agent)
			return rec, true, nil
		}
		// Combined shape but an unusual prefix: let the reference parser
		// decide (it may still accept via a slow path, or produce the
		// canonical error).
		return ParseAnyRecord(string(line))
	}
	if rec, ok := parseRecordFast(trimmed, in); ok {
		return rec, false, nil
	}
	return ParseAnyRecord(string(line))
}

// trimCRLF drops trailing '\r' and '\n' bytes, mirroring
// strings.TrimRight(line, "\r\n").
func trimCRLF(b []byte) []byte {
	for len(b) > 0 {
		switch b[len(b)-1] {
		case '\r', '\n':
			b = b[:len(b)-1]
		default:
			return b
		}
	}
	return b
}

// splitCombinedTailBytes mirrors splitCombinedTail on bytes.
func splitCombinedTailBytes(line []byte) (prefix, referer, agent []byte, ok bool) {
	if len(line) == 0 || line[len(line)-1] != '"' {
		return nil, nil, nil, false
	}
	body := line[:len(line)-1]
	q := bytes.LastIndexByte(body, '"')
	if q < 0 {
		return nil, nil, nil, false
	}
	agent = body[q+1:]
	body = trimRightSpaces(body[:q])
	if len(body) == 0 || body[len(body)-1] != '"' {
		return nil, nil, nil, false
	}
	body = body[:len(body)-1]
	q = bytes.LastIndexByte(body, '"')
	if q < 0 {
		return nil, nil, nil, false
	}
	referer = body[q+1:]
	prefix = trimRightSpaces(body[:q])
	if bytes.Count(prefix, []byte(`"`)) < 2 {
		return nil, nil, nil, false
	}
	return prefix, referer, agent, true
}

func trimRightSpaces(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == ' ' {
		b = b[:len(b)-1]
	}
	return b
}

// parseRecordFast parses one common-format line already stripped of trailing
// CR/LF. It returns ok=false — never a wrong Record — on anything outside
// the fixed fast-path shape; callers then retry through the strict string
// parser, which is the behavioral reference. A non-nil intern table dedups
// the Host and URI copies within one parse batch.
func parseRecordFast(rest []byte, in *internTable) (Record, bool) {
	// host ident authuser
	var fields [3][]byte
	for i := 0; i < 3; i++ {
		sp := bytes.IndexByte(rest, ' ')
		if sp <= 0 {
			return Record{}, false
		}
		fields[i], rest = rest[:sp], rest[sp+1:]
	}

	// [date]
	if len(rest) == 0 || rest[0] != '[' {
		return Record{}, false
	}
	close := bytes.IndexByte(rest, ']')
	if close < 0 {
		return Record{}, false
	}
	ts, ok := parseCLFTime(rest[1:close])
	if !ok {
		return Record{}, false
	}
	rest = rest[close+1:]
	if len(rest) == 0 || rest[0] != ' ' {
		return Record{}, false
	}
	rest = rest[1:]

	// "method uri protocol" — exactly two spaces inside the quotes, mirroring
	// strings.Split(req, " ") == 3 parts (empty parts allowed).
	if len(rest) == 0 || rest[0] != '"' {
		return Record{}, false
	}
	endQuote := bytes.IndexByte(rest[1:], '"')
	if endQuote < 0 {
		return Record{}, false
	}
	req := rest[1 : 1+endQuote]
	rest = rest[endQuote+2:]
	sp1 := bytes.IndexByte(req, ' ')
	if sp1 < 0 {
		return Record{}, false
	}
	sp2 := bytes.IndexByte(req[sp1+1:], ' ')
	if sp2 < 0 {
		return Record{}, false
	}
	sp2 += sp1 + 1
	if bytes.IndexByte(req[sp2+1:], ' ') >= 0 {
		return Record{}, false
	}

	// status bytes — the strict parser TrimLefts spaces then applies
	// strings.Fields, which splits on any Unicode whitespace. The fast path
	// handles the common charset (digits, '-', spaces) and defers anything
	// else (tabs, NBSP, stray letters) to the reference parser.
	status, byteCount, ok := parseStatusBytesTail(rest)
	if !ok {
		return Record{}, false
	}

	return Record{
		Host:     in.str(fields[0]),
		Ident:    fieldString(fields[1]),
		AuthUser: fieldString(fields[2]),
		Time:     ts,
		Method:   fieldString(req[:sp1]),
		URI:      in.str(req[sp1+1 : sp2]),
		Protocol: fieldString(req[sp2+1:]),
		Status:   status,
		Bytes:    byteCount,
	}, true
}

// fieldString converts a parsed field to a string, interning the tokens
// that dominate real access logs ("-", the standard methods, the protocol
// versions) so the conversion is allocation-free for them. The switch on
// string(b) with constant cases does not allocate.
func fieldString(b []byte) string {
	switch string(b) {
	case "-":
		return "-"
	case "":
		return ""
	case "GET":
		return "GET"
	case "POST":
		return "POST"
	case "HEAD":
		return "HEAD"
	case "PUT":
		return "PUT"
	case "DELETE":
		return "DELETE"
	case "OPTIONS":
		return "OPTIONS"
	case "HTTP/1.1":
		return "HTTP/1.1"
	case "HTTP/1.0":
		return "HTTP/1.0"
	case "HTTP/2.0":
		return "HTTP/2.0"
	}
	return string(b)
}

// parseStatusBytesTail parses the trailing `status bytes` fields. It accepts
// only space-separated fields made of digits and '-', with the same value
// rules as ParseRecord (status 100..599; bytes a non-negative integer or
// "-" for -1).
func parseStatusBytesTail(rest []byte) (status int, byteCount int64, ok bool) {
	var f1, f2 []byte
	field := 0
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case c == ' ':
			continue
		case (c >= '0' && c <= '9') || c == '-':
			j := i
			for j < len(rest) && rest[j] != ' ' {
				c := rest[j]
				if (c < '0' || c > '9') && c != '-' {
					return 0, 0, false
				}
				j++
			}
			switch field {
			case 0:
				f1 = rest[i:j]
			case 1:
				f2 = rest[i:j]
			default:
				return 0, 0, false
			}
			field++
			i = j - 1
		default:
			return 0, 0, false
		}
	}
	if field != 2 {
		return 0, 0, false
	}
	status, err := parseUintBytes(f1)
	if err || status < 100 || status > 599 {
		return 0, 0, false
	}
	byteCount = -1
	if !(len(f2) == 1 && f2[0] == '-') {
		b, err := parseUintBytes(f2)
		if err {
			return 0, 0, false
		}
		byteCount = int64(b)
	}
	return status, byteCount, true
}

// parseUintBytes mirrors parseUint on bytes (bad=true on any deviation).
func parseUintBytes(s []byte) (n int, bad bool) {
	if len(s) == 0 {
		return 0, true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, true
		}
		n = n*10 + int(c-'0')
		if n > 1<<40 {
			return 0, true
		}
	}
	return n, false
}

// clfMonths maps the canonical month abbreviations of TimeLayout. The
// reference parser also accepts case variants ("JAN"); those fall back.
func clfMonth(a, b, c byte) (time.Month, bool) {
	switch {
	case a == 'J' && b == 'a' && c == 'n':
		return time.January, true
	case a == 'F' && b == 'e' && c == 'b':
		return time.February, true
	case a == 'M' && b == 'a' && c == 'r':
		return time.March, true
	case a == 'A' && b == 'p' && c == 'r':
		return time.April, true
	case a == 'M' && b == 'a' && c == 'y':
		return time.May, true
	case a == 'J' && b == 'u' && c == 'n':
		return time.June, true
	case a == 'J' && b == 'u' && c == 'l':
		return time.July, true
	case a == 'A' && b == 'u' && c == 'g':
		return time.August, true
	case a == 'S' && b == 'e' && c == 'p':
		return time.September, true
	case a == 'O' && b == 'c' && c == 't':
		return time.October, true
	case a == 'N' && b == 'o' && c == 'v':
		return time.November, true
	case a == 'D' && b == 'e' && c == 'c':
		return time.December, true
	}
	return 0, false
}

func num2(a, b byte) (int, bool) {
	if a < '0' || a > '9' || b < '0' || b > '9' {
		return 0, false
	}
	return int(a-'0')*10 + int(b-'0'), true
}

// daysIn mirrors time.Parse's day-of-month validation.
func daysIn(m time.Month, year int) int {
	switch m {
	case time.April, time.June, time.September, time.November:
		return 30
	case time.February:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	default:
		return 31
	}
}

// cachedZone memoizes the last fabricated fixed-offset Location, since a log
// file near-universally carries a single zone offset. Sharing one *Location
// across records is behaviorally identical to time.Parse's per-call
// time.FixedZone (same name, same offset).
type cachedZone struct {
	offset int
	loc    *time.Location
}

var zoneCache atomic.Pointer[cachedZone]

func fixedZoneFor(offset int) *time.Location {
	if z := zoneCache.Load(); z != nil && z.offset == offset {
		return z.loc
	}
	z := &cachedZone{offset: offset, loc: time.FixedZone("", offset)}
	zoneCache.Store(z)
	return z.loc
}

// parseCLFTime is the hand-rolled fixed-format parser for TimeLayout
// ("02/Jan/2006:15:04:05 -0700"). It replaces time.Parse on the ingestion
// hot path; any shape or range deviation returns ok=false and the caller
// falls back to the strict parser. For accepted inputs it reproduces
// time.Parse exactly, including the local-zone adoption rule: when the
// parsed offset matches the local zone's offset at that instant, the
// returned Time is in time.Local, otherwise in a fabricated fixed zone.
func parseCLFTime(b []byte) (time.Time, bool) {
	// 02/Jan/2006:15:04:05 -0700
	// 0123456789012345678901234 5
	if len(b) != 26 ||
		b[2] != '/' || b[6] != '/' || b[11] != ':' ||
		b[14] != ':' || b[17] != ':' || b[20] != ' ' {
		return time.Time{}, false
	}
	day, ok1 := num2(b[0], b[1])
	month, ok2 := clfMonth(b[3], b[4], b[5])
	yHi, ok3 := num2(b[7], b[8])
	yLo, ok4 := num2(b[9], b[10])
	hour, ok5 := num2(b[12], b[13])
	min, ok6 := num2(b[15], b[16])
	sec, ok7 := num2(b[18], b[19])
	zh, ok8 := num2(b[22], b[23])
	zm, ok9 := num2(b[24], b[25])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8 && ok9) {
		return time.Time{}, false
	}
	year := yHi*100 + yLo
	if day < 1 || day > daysIn(month, year) ||
		hour > 23 || min > 59 || sec > 59 || zh > 23 || zm > 59 {
		return time.Time{}, false
	}
	offset := (zh*60 + zm) * 60
	switch b[21] {
	case '+':
	case '-':
		offset = -offset
	default:
		return time.Time{}, false
	}
	t := time.Date(year, month, day, hour, min, sec, 0, time.UTC).
		Add(-time.Duration(offset) * time.Second)
	if _, localOff := t.In(time.Local).Zone(); localOff == offset {
		return t.In(time.Local), true
	}
	return t.In(fixedZoneFor(offset)), true
}
