package clf

import (
	"testing"
	"time"
)

func rec(method, uri string, status int) Record {
	return Record{
		Host: "10.0.0.1", Time: time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC),
		Method: method, URI: uri, Protocol: "HTTP/1.1", Status: status, Bytes: 1,
	}
}

func TestBasicFilters(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		r    Record
		keep bool
	}{
		{"KeepAll keeps", KeepAll, rec("POST", "/x", 500), true},
		{"SuccessOnly keeps 200", SuccessOnly, rec("GET", "/x", 200), true},
		{"SuccessOnly keeps 204", SuccessOnly, rec("GET", "/x", 204), true},
		{"SuccessOnly drops 404", SuccessOnly, rec("GET", "/x", 404), false},
		{"SuccessOnly drops 301", SuccessOnly, rec("GET", "/x", 301), false},
		{"MethodGET keeps GET", MethodGET, rec("GET", "/x", 200), true},
		{"MethodGET drops POST", MethodGET, rec("POST", "/x", 200), false},
		{"MethodGET drops HEAD", MethodGET, rec("HEAD", "/x", 200), false},
		{"DropResources drops gif", DropResources, rec("GET", "/img/logo.gif", 200), false},
		{"DropResources drops uppercase JPG", DropResources, rec("GET", "/a/B.JPG", 200), false},
		{"DropResources drops css with query", DropResources, rec("GET", "/s.css?v=2", 200), false},
		{"DropResources keeps html", DropResources, rec("GET", "/page.html", 200), true},
		{"DropResources keeps path containing .gif dir", DropResources, rec("GET", "/x.gif/page", 200), true},
		{"DropRobots drops robots.txt", DropRobots, rec("GET", "/robots.txt", 200), false},
		{"DropRobots keeps others", DropRobots, rec("GET", "/robots.html", 200), true},
	}
	for _, c := range cases {
		if got := c.f(c.r); got != c.keep {
			t.Errorf("%s: got %v, want %v", c.name, got, c.keep)
		}
	}
}

func TestDropSuffixes(t *testing.T) {
	f := DropSuffixes(".XML", ".rss")
	if f(rec("GET", "/feed.xml", 200)) {
		t.Error("kept .xml despite case-insensitive suffix")
	}
	if f(rec("GET", "/feed.rss?page=2", 200)) {
		t.Error("kept .rss with query string")
	}
	if !f(rec("GET", "/feed.html", 200)) {
		t.Error("dropped unrelated suffix")
	}
}

func TestTimeWindow(t *testing.T) {
	from := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	to := from.Add(time.Hour)
	f := TimeWindow(from, to)
	in := rec("GET", "/x", 200)
	in.Time = from.Add(time.Minute)
	if !f(in) {
		t.Error("dropped in-window record")
	}
	before := in
	before.Time = from.Add(-time.Second)
	if f(before) {
		t.Error("kept record before window")
	}
	atEnd := in
	atEnd.Time = to
	if f(atEnd) {
		t.Error("kept record at exclusive end")
	}
	open := TimeWindow(time.Time{}, time.Time{})
	if !open(before) || !open(atEnd) {
		t.Error("open window dropped records")
	}
}

func TestChainAndApply(t *testing.T) {
	f := Chain(SuccessOnly, MethodGET, DropResources)
	records := []Record{
		rec("GET", "/a.html", 200),  // kept
		rec("GET", "/a.gif", 200),   // resource
		rec("POST", "/a.html", 200), // method
		rec("GET", "/a.html", 404),  // status
		rec("GET", "/index.php", 200) /* kept */}
	kept, dropped := Apply(records, f)
	if len(kept) != 2 || dropped != 3 {
		t.Fatalf("kept %d dropped %d, want 2/3", len(kept), dropped)
	}
	if kept[0].URI != "/a.html" || kept[1].URI != "/index.php" {
		t.Errorf("kept order wrong: %v", kept)
	}
}

func TestStandardCleaning(t *testing.T) {
	f := StandardCleaning()
	if !f(rec("GET", "/page.html", 200)) {
		t.Error("standard cleaning dropped a page view")
	}
	for _, bad := range []Record{
		rec("GET", "/x.png", 200),
		rec("POST", "/form", 200),
		rec("GET", "/gone.html", 404),
		rec("GET", "/robots.txt", 200),
	} {
		if f(bad) {
			t.Errorf("standard cleaning kept %q %q %d", bad.Method, bad.URI, bad.Status)
		}
	}
}

func TestDropUserAgentContaining(t *testing.T) {
	f := DropUserAgentContaining("Bot", "crawler")
	r := rec("GET", "/x", 200)
	if !f(r) {
		t.Error("common-format record dropped")
	}
	r.UserAgent = "-"
	if !f(r) {
		t.Error("dash user agent dropped")
	}
	r.UserAgent = "Mozilla/5.0"
	if !f(r) {
		t.Error("browser dropped")
	}
	r.UserAgent = "GoogleBOT/2.1"
	if f(r) {
		t.Error("bot kept despite case-insensitive match")
	}
	r.UserAgent = "sitecrawler/1.0"
	if f(r) {
		t.Error("crawler kept")
	}
}
