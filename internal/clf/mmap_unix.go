//go:build unix

package clf

import (
	"os"
	"syscall"
)

// MmapSupported reports whether this build can memory-map input files.
// On unix builds the stdlib syscall layer is used directly (MAP_PRIVATE,
// PROT_READ) so no external dependency is needed.
const MmapSupported = true

// mmapFile maps f read-only and returns the mapping plus an unmap func.
// size must be f's current length. A zero-length file returns (nil, nil)
// with a no-op unmap, since mmap(2) rejects length 0.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
