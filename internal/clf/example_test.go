package clf_test

import (
	"fmt"
	"strings"

	"smartsra/internal/clf"
)

// ExampleParseRecord parses one Common Log Format line.
func ExampleParseRecord() {
	line := `10.0.0.7 - - [02/Jan/2006:15:04:05 +0000] "GET /p/17.html HTTP/1.1" 200 512`
	rec, err := clf.ParseRecord(line)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rec.Host, rec.URI, rec.Status)
	// Output: 10.0.0.7 /p/17.html 200
}

// ExampleStandardCleaning shows the conventional data-cleaning filter.
func ExampleStandardCleaning() {
	f := clf.StandardCleaning()
	lines := []string{
		`1.1.1.1 - - [02/Jan/2006:15:04:05 +0000] "GET /page.html HTTP/1.1" 200 10`,
		`1.1.1.1 - - [02/Jan/2006:15:04:06 +0000] "GET /logo.png HTTP/1.1" 200 10`,
		`1.1.1.1 - - [02/Jan/2006:15:04:07 +0000] "GET /gone.html HTTP/1.1" 404 10`,
	}
	for _, l := range lines {
		rec, _ := clf.ParseRecord(l)
		fmt.Println(rec.URI, f(rec))
	}
	// Output:
	// /page.html true
	// /logo.png false
	// /gone.html false
}

// ExampleScanner streams records out of a log, skipping malformed lines.
func ExampleScanner() {
	log := `10.0.0.7 - - [02/Jan/2006:15:04:05 +0000] "GET /a.html HTTP/1.1" 200 1
not a log line
10.0.0.8 - - [02/Jan/2006:15:05:05 +0000] "GET /b.html HTTP/1.1" 200 2 "/a.html" "Mozilla/5.0"
`
	sc := clf.NewScanner(strings.NewReader(log))
	for sc.Scan() {
		rec := sc.Record()
		fmt.Printf("%s referer=%q\n", rec.URI, rec.Referer)
	}
	bad, _ := sc.Malformed()
	fmt.Println("malformed:", bad)
	// Output:
	// /a.html referer=""
	// /b.html referer="/a.html"
	// malformed: 1
}
