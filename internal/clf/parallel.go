package clf

import (
	"bytes"
	"io"
	"runtime"
)

// readChunkSize is the target size of one line-aligned parse chunk. Chunks
// are extended to the next newline, so lines never straddle workers.
const readChunkSize = 1 << 20

// maxLineBytes mirrors the Scanner's 1 MiB line cap: a "line" that exceeds
// it is a defect (or an attack), and both readers fail the same way.
const maxLineBytes = 1 << 20

// ReadAllParallel is ReadAll with the parse stage fanned out over a bounded
// worker pool: the input is split into line-aligned chunks of about 1 MiB,
// chunks are parsed concurrently through the byte-level fast path, and the
// records are concatenated in input order — the result is identical to
// ReadAll's for any worker count (records, order, and malformed count).
// workers <= 0 means GOMAXPROCS; workers == 1 (or a single chunk's worth of
// input) degrades to the sequential reader.
//
// It is StreamParallel collecting into a slice: use StreamParallel directly
// when the records feed a streaming consumer (core.Tail), so memory stays
// bounded on unbounded logs.
func ReadAllParallel(r io.Reader, workers int) (records []Record, malformed int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ReadAll(r)
	}
	// A deep order channel keeps the batch path free-running: the consumer
	// only appends, so backpressure would just idle workers.
	malformed, err = streamParallel(r, workers, 4*workers, readChunkSize, func(rec Record) {
		records = append(records, rec)
	}, nil)
	return records, malformed, err
}

// parseChunkInto parses every line of one chunk (the final line may lack a
// trailing newline) into the caller-provided slice, skipping blank lines and
// counting malformed ones, mirroring the Scanner's accounting — including
// the over-long-line policy: a line past the 1 MiB cap (possible when a
// Source serves windows larger than the cap, e.g. an mmap window grown
// around a huge line) is counted and skipped, exactly as the sequential
// lineScanner does. The chunk gets a fresh string-intern arena; loops that
// parse many chunks should hold a persistent table and call parseChunkIntern
// so repeated hosts/URIs stay the same string across the whole input.
func parseChunkInto(data []byte, recs []Record) ([]Record, int) {
	return parseChunkIntern(data, recs, newInternTable())
}

// parseChunkIntern is parseChunkInto with a caller-owned intern table. The
// caller retires the table via full() — parsing never grows it past the next
// chunk's distinct strings.
func parseChunkIntern(data []byte, recs []Record, in *internTable) ([]Record, int) {
	bad := 0
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		if len(line) > maxLineBytes {
			bad++
			continue
		}
		if isBlankBytes(line) {
			continue
		}
		rec, _, err := parseAnyRecordBytesIn(line, in)
		if err != nil {
			bad++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, bad
}
