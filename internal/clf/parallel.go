package clf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// readChunkSize is the target size of one line-aligned parse chunk. Chunks
// are extended to the next newline, so lines never straddle workers.
const readChunkSize = 1 << 20

// maxLineBytes mirrors the Scanner's 1 MiB line cap: a "line" that exceeds
// it is a defect (or an attack), and both readers fail the same way.
const maxLineBytes = 1 << 20

// ReadAllParallel is ReadAll with the parse stage fanned out over a bounded
// worker pool: the input is split into line-aligned chunks of about 1 MiB,
// chunks are parsed concurrently through the byte-level fast path, and the
// records are concatenated in input order — the result is identical to
// ReadAll's for any worker count (records, order, and malformed count).
// workers <= 0 means GOMAXPROCS; workers == 1 (or a single chunk's worth of
// input) degrades to the sequential reader.
func ReadAllParallel(r io.Reader, workers int) (records []Record, malformed int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ReadAll(r)
	}

	type parsed struct {
		recs []Record
		bad  int
	}
	type chunk struct {
		idx  int
		data []byte
	}

	chunks := make(chan chunk, workers)
	var (
		mu      sync.Mutex
		results []parsed
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				recs, bad := parseChunk(c.data)
				mu.Lock()
				for len(results) <= c.idx {
					results = append(results, parsed{})
				}
				results[c.idx] = parsed{recs: recs, bad: bad}
				mu.Unlock()
			}
		}()
	}

	// The producer reads blocks and cuts them at the last newline; the
	// remainder carries into the next chunk so no line is split.
	var (
		carry   []byte
		idx     int
		readErr error
	)
	for {
		buf := make([]byte, readChunkSize)
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			nl := bytes.LastIndexByte(buf[:n], '\n')
			if nl < 0 {
				carry = append(carry, buf[:n]...)
				if len(carry) > maxLineBytes {
					readErr = bufio.ErrTooLong
					break
				}
			} else {
				// The chunk's first line spans the carry; reject it at the
				// same 1 MiB bound the sequential Scanner enforces.
				if first := bytes.IndexByte(buf[:n], '\n'); len(carry)+first > maxLineBytes {
					readErr = bufio.ErrTooLong
					break
				}
				data := append(carry, buf[:nl+1]...)
				carry = append([]byte(nil), buf[nl+1:n]...)
				chunks <- chunk{idx: idx, data: data}
				idx++
			}
		}
		if rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				if len(carry) > 0 {
					chunks <- chunk{idx: idx, data: carry}
					idx++
				}
			} else {
				readErr = rerr
			}
			break
		}
	}
	close(chunks)
	wg.Wait()

	for _, p := range results {
		records = append(records, p.recs...)
		malformed += p.bad
	}
	metricRecords.Add(int64(len(records)))
	metricMalformed.Add(int64(malformed))
	if readErr != nil {
		return records, malformed, fmt.Errorf("clf: read: %w", readErr)
	}
	return records, malformed, nil
}

// parseChunk parses every line of one chunk (the final line may lack a
// trailing newline), skipping blank lines and counting malformed ones,
// mirroring the Scanner's accounting.
func parseChunk(data []byte) (recs []Record, bad int) {
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		if isBlankBytes(line) {
			continue
		}
		rec, _, err := ParseAnyRecordBytes(line)
		if err != nil {
			bad++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, bad
}
