package clf

// internTable is the per-batch string-intern arena for the chunk-parallel
// parse path. Real access logs repeat a small set of hosts, URIs, referers,
// and user agents millions of times; interning makes the []byte→string
// conversion allocation-free for every repeat, cutting the last per-record
// allocations (Host and URI) of the byte fast path to amortized ~0.
//
// Table lifetime is the owner's choice, with boundedness always preserved:
// the sequential Scanner scopes its table to ~readChunkSize bytes of input,
// while the chunk engine keeps one table per parse loop (per worker) and
// retires it once it holds maxInternEntries strings. Persisting across
// chunks matters beyond allocation count: a host seen in every chunk stays
// the SAME string, so downstream map lookups keyed by it (the sessionizer's
// per-user buffers) hit the pointer-equality fast path instead of comparing
// bytes. No locking: a table is only ever used by one goroutine.
type internTable struct {
	m map[string]string
}

// maxInternEntries caps a persistent table's size: past this many distinct
// strings the owner discards the table and starts fresh, so a log with
// unbounded distinct hosts/URIs cannot grow an unbounded table (the
// bounded-memory streaming contract).
const maxInternEntries = 1 << 16

// full reports that the table has reached its retirement size.
func (it *internTable) full() bool { return len(it.m) >= maxInternEntries }

// newInternTable returns an empty per-batch table.
func newInternTable() *internTable {
	return &internTable{m: make(map[string]string, 64)}
}

// str converts b to a string, returning the interned copy when the same
// bytes were seen before in this batch. The map lookup with a string(b) key
// does not allocate (the compiler elides the conversion); only first
// occurrences pay the copy. A nil table degrades to a plain conversion, so
// the single-line entry points can share the parse code without a table.
func (it *internTable) str(b []byte) string {
	if it == nil {
		return string(b)
	}
	if s, ok := it.m[string(b)]; ok {
		return s
	}
	s := string(b)
	it.m[s] = s
	return s
}

// field converts a parsed field like str, but routes through the static
// token intern first ("-", methods, protocol versions), which is cheaper
// than a map probe for the tokens that dominate those fields.
func (it *internTable) field(b []byte) string {
	switch string(b) {
	case "-":
		return "-"
	case "":
		return ""
	}
	return it.str(b)
}
