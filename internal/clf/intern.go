package clf

// internTable is the per-batch string-intern arena for the chunk-parallel
// parse path. Real access logs repeat a small set of hosts, URIs, referers,
// and user agents millions of times; interning makes the []byte→string
// conversion allocation-free for every repeat, cutting the last per-record
// allocations (Host and URI) of the byte fast path to amortized ~0.
//
// The table is scoped to one parse chunk (~1 MiB of input), so its memory is
// bounded by the chunk's distinct strings and dies with the batch — an
// unbounded log never grows an unbounded table, which is the property the
// bounded-memory streaming contract needs. No locking: each chunk is parsed
// by exactly one worker.
type internTable struct {
	m map[string]string
}

// newInternTable returns an empty per-batch table.
func newInternTable() *internTable {
	return &internTable{m: make(map[string]string, 64)}
}

// str converts b to a string, returning the interned copy when the same
// bytes were seen before in this batch. The map lookup with a string(b) key
// does not allocate (the compiler elides the conversion); only first
// occurrences pay the copy. A nil table degrades to a plain conversion, so
// the single-line entry points can share the parse code without a table.
func (it *internTable) str(b []byte) string {
	if it == nil {
		return string(b)
	}
	if s, ok := it.m[string(b)]; ok {
		return s
	}
	s := string(b)
	it.m[s] = s
	return s
}

// field converts a parsed field like str, but routes through the static
// token intern first ("-", methods, protocol versions), which is cheaper
// than a map probe for the tokens that dominate those fields.
func (it *internTable) field(b []byte) string {
	switch string(b) {
	case "-":
		return "-"
	case "":
		return ""
	}
	return it.str(b)
}
