package clf

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamMatchesReadAll pins the sequential streaming reader to ReadAll:
// same records in the same order, same malformed count.
func TestStreamMatchesReadAll(t *testing.T) {
	log := synthLog(21, 3000)
	want, wantBad, err := ReadAll(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	gotBad, err := Stream(strings.NewReader(log), func(rec Record) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if gotBad != wantBad || len(got) != len(want) {
		t.Fatalf("got %d/%d, want %d/%d", len(got), gotBad, len(want), wantBad)
	}
	for i := range got {
		if !recordsMatch(got[i], want[i]) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got[i], want[i])
		}
	}
}

// TestStreamParallelMatchesReadAll pins the bounded pipeline for every
// workers/depth combination, including small chunk sizes that force lines
// across chunk boundaries.
func TestStreamParallelMatchesReadAll(t *testing.T) {
	for _, seed := range []int64{4, 11} {
		log := synthLog(seed, 4000)
		want, wantBad, err := ReadAll(strings.NewReader(log))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			for _, depth := range []int{1, 2, 8} {
				for _, chunk := range []int{64, 4096, readChunkSize} {
					var got []Record
					gotBad, err := streamParallel(strings.NewReader(log), workers, depth, chunk,
						func(rec Record) { got = append(got, rec) }, nil)
					if err != nil {
						t.Fatal(err)
					}
					if gotBad != wantBad || len(got) != len(want) {
						t.Fatalf("seed=%d workers=%d depth=%d chunk=%d: got %d/%d, want %d/%d",
							seed, workers, depth, chunk, len(got), gotBad, len(want), wantBad)
					}
					for i := range got {
						if !recordsMatch(got[i], want[i]) {
							t.Fatalf("seed=%d workers=%d depth=%d chunk=%d: record %d differs:\n%+v\n%+v",
								seed, workers, depth, chunk, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamParallelPartialOnReadError mirrors the ReadAllParallel contract:
// records delivered before a read error are emitted, and the error is
// returned after them.
func TestStreamParallelPartialOnReadError(t *testing.T) {
	log := synthLog(9, 300)
	want, _, seqErr := ReadAll(&chunkFailReader{data: []byte(log)})
	var got []Record
	_, parErr := StreamParallel(&chunkFailReader{data: []byte(log)}, 4, 2,
		func(rec Record) { got = append(got, rec) })
	if seqErr == nil || parErr == nil {
		t.Fatalf("want read errors, got %v / %v", seqErr, parErr)
	}
	if len(got) != len(want) {
		t.Fatalf("partial records: stream %d, sequential %d", len(got), len(want))
	}
}

// TestStreamParallelOversizedLine: a line above the 1 MiB cap is skipped and
// counted as malformed — not an abort — and both readers agree, so a hostile
// line cannot stop ingestion of everything around it.
func TestStreamParallelOversizedLine(t *testing.T) {
	huge := sampleLine + "\n" + strings.Repeat("a", maxLineBytes+2) + "\n" + sampleLine + "\n"
	var seqRecs, parRecs int
	seqBad, seqErr := Stream(strings.NewReader(huge), func(Record) { seqRecs++ })
	parBad, parErr := StreamParallel(strings.NewReader(huge), 4, 2, func(Record) { parRecs++ })
	if seqErr != nil || parErr != nil {
		t.Fatalf("oversized line must not abort: sequential err=%v, parallel err=%v", seqErr, parErr)
	}
	if seqRecs != 2 || parRecs != 2 {
		t.Fatalf("records around the oversized line: sequential %d, parallel %d, want 2", seqRecs, parRecs)
	}
	if seqBad != 1 || parBad != 1 {
		t.Fatalf("oversized line must count as malformed once: sequential %d, parallel %d", seqBad, parBad)
	}
}

// FuzzStreamChunks pins the chunk splitter/reassembler against the
// sequential Scanner for arbitrary byte input, tiny chunk sizes, and any
// workers/depth: no line is ever dropped, duplicated, or split, including
// CR/LF edge cases and lines longer than the chunk size. Equivalence of the
// record sequence plus the malformed count implies all three — a dropped or
// duplicated line changes a count, a split line changes both parses.
func FuzzStreamChunks(f *testing.F) {
	f.Add([]byte(sampleLine+"\n"+sampleLine), uint8(4), uint8(2), uint8(1))
	f.Add([]byte("garbage\r\n\r\n"+sampleLine+"\r\n"), uint8(1), uint8(3), uint8(2))
	f.Add([]byte(sampleLine+` "/r.html" "agent"`+"\n\n"+sampleLine), uint8(16), uint8(2), uint8(8))
	f.Add([]byte(strings.Repeat("x", 300)+"\n"+sampleLine+"\n"), uint8(7), uint8(5), uint8(1))
	f.Add([]byte("\n\r\n \t\n"), uint8(2), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, input []byte, chunkSize, workers, depth uint8) {
		if len(input) > 1<<16 {
			return
		}
		// Chunks of 1..64 bytes force every boundary case; workers >= 2 so
		// the parallel path (not the Stream fallback) is exercised.
		chunk := int(chunkSize)%64 + 1
		w := int(workers)%4 + 2
		d := int(depth)%4 + 1

		want, wantBad, wantErr := ReadAll(bytes.NewReader(input))
		var got []Record
		gotBad, gotErr := streamParallel(bytes.NewReader(input), w, d, chunk,
			func(rec Record) { got = append(got, rec) }, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: scanner %v, stream %v", wantErr, gotErr)
		}
		if gotBad != wantBad {
			t.Fatalf("malformed count %d, want %d", gotBad, wantBad)
		}
		if len(got) != len(want) {
			t.Fatalf("%d records, want %d", len(got), len(want))
		}
		for i := range got {
			if !recordsMatch(got[i], want[i]) {
				t.Fatalf("record %d differs:\n%+v\n%+v", i, got[i], want[i])
			}
		}
	})
}
