package clf

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var combinedLine = sampleLine + ` "/p/3.html" "Mozilla/5.0 (X11; Linux)"`

func TestParseCombinedRecord(t *testing.T) {
	r, err := ParseCombinedRecord(combinedLine)
	if err != nil {
		t.Fatal(err)
	}
	if r.Referer != "/p/3.html" {
		t.Errorf("Referer = %q", r.Referer)
	}
	if r.UserAgent != "Mozilla/5.0 (X11; Linux)" {
		t.Errorf("UserAgent = %q", r.UserAgent)
	}
	if r.Host != "10.0.0.7" || r.URI != "/p/17.html" {
		t.Errorf("common prefix lost: %+v", r)
	}
	if !r.HasReferer() {
		t.Error("HasReferer = false")
	}
}

func TestParseCombinedRecordDashes(t *testing.T) {
	r, err := ParseCombinedRecord(sampleLine + ` "-" "-"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Referer != "-" || r.UserAgent != "-" {
		t.Errorf("dash fields = %q / %q", r.Referer, r.UserAgent)
	}
	if r.HasReferer() {
		t.Error("HasReferer true for dash")
	}
}

func TestParseCombinedRejectsCommon(t *testing.T) {
	if _, err := ParseCombinedRecord(sampleLine); err == nil {
		t.Error("combined parser accepted a common-format line")
	}
	bad := []string{
		sampleLine + ` "only-one-quoted"`,
		sampleLine + ` unquoted unquoted`,
		`"just" "quotes"`,
	}
	for _, line := range bad {
		if _, err := ParseCombinedRecord(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseAnyRecord(t *testing.T) {
	r, combined, err := ParseAnyRecord(combinedLine)
	if err != nil || !combined || r.Referer != "/p/3.html" {
		t.Errorf("combined: %v %v %+v", err, combined, r)
	}
	r, combined, err = ParseAnyRecord(sampleLine)
	if err != nil || combined || r.Referer != "" {
		t.Errorf("common: %v %v %+v", err, combined, r)
	}
	if _, _, err := ParseAnyRecord("junk"); err == nil {
		t.Error("junk accepted")
	}
}

func TestCombinedStringRoundTrip(t *testing.T) {
	r, err := ParseCombinedRecord(combinedLine)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CombinedString(); got != combinedLine {
		t.Errorf("CombinedString = %q\nwant            %q", got, combinedLine)
	}
	// Empty fields render as dashes and re-parse.
	r.Referer, r.UserAgent = "", ""
	r2, err := ParseCombinedRecord(r.CombinedString())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Referer != "-" || r2.UserAgent != "-" {
		t.Errorf("round trip of empty fields: %q/%q", r2.Referer, r2.UserAgent)
	}
}

func TestCombinedStringStripsQuotes(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	r.UserAgent = `evil "agent"`
	line := r.CombinedString()
	r2, err := ParseCombinedRecord(line)
	if err != nil {
		t.Fatalf("quoted agent broke the line %q: %v", line, err)
	}
	if strings.Contains(r2.UserAgent, `"`) {
		t.Errorf("quotes survived: %q", r2.UserAgent)
	}
}

func TestScannerReadsMixedFormats(t *testing.T) {
	input := sampleLine + "\n" + combinedLine + "\n"
	sc := NewScanner(strings.NewReader(input))
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if len(recs) != 2 {
		t.Fatalf("scanned %d records", len(recs))
	}
	if recs[0].Referer != "" || recs[1].Referer != "/p/3.html" {
		t.Errorf("referers = %q / %q", recs[0].Referer, recs[1].Referer)
	}
}

func TestCombinedWriter(t *testing.T) {
	r, err := ParseCombinedRecord(combinedLine)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := NewCombinedWriter(&sb)
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != combinedLine {
		t.Errorf("combined writer output %q", got)
	}
}

// Property: CombinedString/ParseCombinedRecord round-trips.
func TestCombinedRoundTripProperty(t *testing.T) {
	f := func(host uint32, page uint16, ref uint16, unix int32) bool {
		r := Record{
			Host: ipv4(host), Ident: "-", AuthUser: "-",
			Time:     time.Unix(int64(unix)&0x7fffffff, 0).UTC(),
			Method:   "GET",
			URI:      "/p/" + itoa(int(page)) + ".html",
			Protocol: "HTTP/1.1",
			Status:   200, Bytes: 7,
			Referer:   "/p/" + itoa(int(ref)) + ".html",
			UserAgent: "agent-simulator/1.0",
		}
		got, err := ParseCombinedRecord(r.CombinedString())
		if err != nil {
			return false
		}
		same := got.Time.Equal(r.Time)
		got.Time, r.Time = time.Time{}, time.Time{}
		return same && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
