package clf

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sync"
)

// SourceKind identifies how a Source feeds bytes to the parse pipeline.
type SourceKind int

const (
	// SourceReader is the buffered io.Reader path: blocks are read into a
	// scratch buffer and cut at line boundaries (pipes, sockets, stdin, and
	// files when mmap is unavailable or disabled).
	SourceReader SourceKind = iota
	// SourceMmap serves line-aligned windows of a memory-mapped file:
	// chunks alias the mapping, so neither the splitter nor the parser ever
	// copies a line.
	SourceMmap
	// SourceGzip is the buffered path behind a gzip decoder, selected by
	// sniffing the 0x1f 0x8b magic bytes.
	SourceGzip
)

func (k SourceKind) String() string {
	switch k {
	case SourceMmap:
		return "mmap"
	case SourceGzip:
		return "gzip"
	default:
		return "reader"
	}
}

// FilePos addresses a byte position within an ordered multi-file input set:
// File indexes the (lexically ordered) path list, Offset is the byte offset
// within that file — for gzip members it counts decoded bytes. StreamFiles
// only reports positions on line boundaries, so a resume from any reported
// FilePos replays exactly the records not yet emitted.
type FilePos struct {
	File   int
	Offset int64
}

// A Source produces line-aligned chunks of log bytes for the parse pipeline.
//
// NextChunk returns the next chunk of at least one complete line (the final
// chunk of a source may lack its trailing newline), the absolute byte offset
// within this source just past the consumed input (always a line boundary),
// and how many over-long lines (> 1 MiB) were skipped and dropped while
// producing it. A return with err != nil carries no data: io.EOF signals a
// clean end of input. The chunk is owned by the caller until the Source is
// closed — mmap chunks alias the mapping, so Close must not run before the
// chunk's consumers finish.
type Source interface {
	NextChunk(chunkBytes int) (chunk []byte, end int64, skipped int, err error)
	Kind() SourceKind
	Close() error
}

// readerSource cuts an io.Reader into line-aligned chunks, porting the
// chunk-producer loop that previously lived inside streamParallel. Over-long
// lines are skipped and counted (never buffered whole), matching the
// sequential lineScanner's policy.
type readerSource struct {
	r       io.Reader
	kind    SourceKind
	closers []io.Closer

	buf         []byte
	carry       []byte // unterminated tail of the previous block (own backing)
	joined      []byte // serial mode's small carry-stitching buffer
	pendingData []byte // serial mode: rest of the block after a stitched chunk
	pos         int64  // absolute offset of the first byte of carry
	serial      bool   // caller consumes each chunk before the next NextChunk
	skipping    bool   // inside an over-long line; carry is empty
	pending     int    // skipped lines not yet reported
	rerr        error  // sticky terminal result
}

// markSerial declares that the caller fully consumes every returned chunk
// before calling NextChunk again (the workers == 1 direct parse loop). Serial
// chunks alias the read buffer itself — zero-copy, like the mmap source —
// with only a carried partial line stitched through a small side buffer.
// Must not be set when chunks stay in flight concurrently (the worker-pool
// path, asyncSource prefetch).
func (s *readerSource) markSerial() { s.serial = true }

func newReaderSource(r io.Reader, kind SourceKind, pos int64, closers ...io.Closer) *readerSource {
	return &readerSource{r: r, kind: kind, pos: pos, closers: closers}
}

func (s *readerSource) Kind() SourceKind { return s.kind }

func (s *readerSource) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

func (s *readerSource) NextChunk(chunkBytes int) ([]byte, int64, int, error) {
	if out := s.pendingData; len(out) > 0 {
		// Serial mode: the remainder of the last read block, delayed so the
		// carry-stitched front could ship first. Delivered before any error
		// report — pre-split it was part of the same returned chunk.
		s.pendingData = nil
		s.pos += int64(len(out))
		end, skipped := s.pos, s.pending
		s.pending = 0
		return out, end, skipped, nil
	}
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}
	if len(s.buf) != chunkBytes {
		s.buf = make([]byte, chunkBytes)
	}
	for s.rerr == nil {
		n, rerr := io.ReadFull(s.r, s.buf)
		out := s.consume(s.buf[:n])
		if rerr != nil {
			// Record the block's terminal condition; any chunk cut from the
			// block is still delivered first.
			s.stop(rerr)
		}
		if out != nil {
			end, skipped := s.pos, s.pending
			s.pending = 0
			return out, end, skipped, nil
		}
	}
	if s.rerr == io.EOF {
		// Flush the final unterminated line on clean EOF.
		if len(s.carry) > 0 {
			out := s.carry
			s.carry = nil
			s.pos += int64(len(out))
			end, skipped := s.pos, s.pending
			s.pending = 0
			return out, end, skipped, nil
		}
		if s.pending > 0 {
			// Over-long line(s) ran into EOF with no trailing data: report
			// the count on a data-free progress return before the EOF.
			end, skipped := s.pos, s.pending
			s.pending = 0
			return nil, end, skipped, nil
		}
	}
	return nil, 0, 0, s.rerr
}

// consume folds one read block into the source state and returns at most one
// line-aligned chunk (nil when the block only extended the carry or skipped
// over-long bytes). s.pos advances over everything consumed: skipped lines
// and any returned chunk.
func (s *readerSource) consume(b []byte) []byte {
	if s.skipping {
		// Discard the tail of a line already counted as over-long.
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			s.pos += int64(len(b))
			return nil
		}
		s.pos += int64(i + 1)
		s.skipping = false
		b = b[i+1:]
	}
	if len(b) == 0 {
		return nil
	}
	nl := bytes.LastIndexByte(b, '\n')
	if nl >= 0 {
		if first := bytes.IndexByte(b, '\n'); len(s.carry)+first > maxLineBytes {
			// The chunk's first line spans the carry and is over-long: skip
			// just that line, keep the rest of the block.
			s.pos += int64(len(s.carry) + first + 1)
			s.carry = s.carry[:0]
			s.pending++
			b = b[first+1:]
			nl = bytes.LastIndexByte(b, '\n')
		}
	}
	if nl < 0 {
		if len(s.carry)+len(b) > maxLineBytes {
			// The line under construction can never fit; drop it and skip
			// forward to its newline.
			s.pos += int64(len(s.carry) + len(b))
			s.carry = s.carry[:0]
			s.skipping = true
			s.pending++
		} else {
			s.carry = append(s.carry, b...)
		}
		return nil
	}
	if s.serial {
		// Zero-copy serial delivery: the chunk aliases s.buf, which is not
		// refilled until the caller asks for the next chunk. A carried
		// partial line is stitched to the block's first line in the small
		// joined buffer, and the rest of the block is held back one call
		// (pendingData) so both halves ship without copying the block.
		var out []byte
		if len(s.carry) == 0 {
			out = b[:nl+1]
		} else {
			first := bytes.IndexByte(b, '\n') // exists: nl >= 0
			s.joined = append(append(s.joined[:0], s.carry...), b[:first+1]...)
			out = s.joined
			if first < nl {
				s.pendingData = b[first+1 : nl+1]
			}
		}
		s.carry = append(s.carry[:0], b[nl+1:]...)
		s.pos += int64(len(out))
		return out
	}
	// Fresh backing for both chunk and carry: the returned chunk is handed
	// to workers, and both s.buf and s.carry are reused.
	out := make([]byte, 0, len(s.carry)+nl+1)
	out = append(append(out, s.carry...), b[:nl+1]...)
	s.carry = append(s.carry[:0], b[nl+1:]...)
	s.pos += int64(len(out))
	return out
}

// stop records the terminal condition of the underlying reader. A clean end
// (EOF, or ErrUnexpectedEOF from the final short block) becomes io.EOF; real
// errors drop the carried partial line, matching the previous producer.
func (s *readerSource) stop(rerr error) {
	if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
		s.rerr = io.EOF
		return
	}
	s.carry = nil
	s.pending = 0
	s.rerr = fmt.Errorf("clf: read: %w", rerr)
}

// bytesSource serves line-aligned windows of an in-memory byte slice —
// normally an mmap'd file, so NextChunk is zero-copy: the window aliases the
// mapping and stays valid until Close unmaps it.
type bytesSource struct {
	data  []byte
	off   int
	kind  SourceKind
	unmap func() error
}

func (s *bytesSource) Kind() SourceKind { return s.kind }

func (s *bytesSource) Close() error {
	s.data = nil
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	return u()
}

func (s *bytesSource) NextChunk(chunkBytes int) ([]byte, int64, int, error) {
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}
	if s.off >= len(s.data) {
		return nil, 0, 0, io.EOF
	}
	cut := s.off + chunkBytes
	if cut >= len(s.data) {
		cut = len(s.data)
	} else if nl := bytes.LastIndexByte(s.data[s.off:cut], '\n'); nl >= 0 {
		cut = s.off + nl + 1
	} else if j := bytes.IndexByte(s.data[cut:], '\n'); j >= 0 {
		// The window's single line extends past it: grow to the newline so
		// every chunk holds whole lines. parseChunk enforces the line cap.
		cut += j + 1
	} else {
		cut = len(s.data)
	}
	chunk := s.data[s.off:cut]
	s.off = cut
	return chunk, int64(cut), 0, nil
}

// asyncSource decodes an inner Source ahead of the pipeline on its own
// goroutine — the mechanism that lets gzip decompression of upcoming files
// in a rotated set overlap with parsing the current one.
type asyncSource struct {
	kind   SourceKind
	ch     chan asyncChunk
	cancel chan struct{}
	done   chan struct{}
	once   sync.Once
}

type asyncChunk struct {
	data    []byte
	end     int64
	skipped int
	err     error
}

func newAsyncSource(inner Source, chunkBytes int) *asyncSource {
	a := &asyncSource{
		kind:   inner.Kind(),
		ch:     make(chan asyncChunk, 2),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		defer inner.Close()
		for {
			data, end, skipped, err := inner.NextChunk(chunkBytes)
			select {
			case a.ch <- asyncChunk{data, end, skipped, err}:
				if err != nil {
					return
				}
			case <-a.cancel:
				return
			}
		}
	}()
	return a
}

func (a *asyncSource) Kind() SourceKind { return a.kind }

func (a *asyncSource) NextChunk(int) ([]byte, int64, int, error) {
	c, ok := <-a.ch
	if !ok {
		return nil, 0, 0, io.EOF
	}
	return c.data, c.end, c.skipped, c.err
}

func (a *asyncSource) Close() error {
	a.once.Do(func() { close(a.cancel) })
	<-a.done
	return nil
}

// gzipMagic is the two-byte header that selects the gzip source.
var gzipMagic = []byte{0x1f, 0x8b}

// sniffGzip reports whether the file starts with the gzip magic bytes,
// without moving the read position.
func sniffGzip(f *os.File) bool {
	var magic [2]byte
	n, _ := f.ReadAt(magic[:], 0)
	return n == 2 && bytes.Equal(magic[:], gzipMagic)
}

// openSourceAt opens path as a Source positioned at offset (decoded bytes
// for gzip members). Plain files become mmap windows when supported and not
// disabled, the buffered reader otherwise; gzip files always decode through
// the buffered path, discarding to the resume offset.
func openSourceAt(path string, offset int64, noMmap bool) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if sniffGzip(f) {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("clf: gzip %s: %w", path, err)
		}
		if offset > 0 {
			if _, err := io.CopyN(io.Discard, gz, offset); err != nil {
				gz.Close()
				f.Close()
				return nil, fmt.Errorf("clf: gzip %s: resume offset %d: %w", path, offset, err)
			}
		}
		return newReaderSource(gz, SourceGzip, offset, gz, f), nil
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if !noMmap && info.Mode().IsRegular() {
		if data, unmap, merr := mmapFile(f, info.Size()); merr == nil {
			off := int(offset)
			if offset > info.Size() {
				off = len(data)
			}
			fc := f
			return &bytesSource{data: data, off: off, kind: SourceMmap, unmap: func() error {
				err := unmap()
				fc.Close()
				return err
			}}, nil
		}
		// Mapping failed (or, on non-unix builds, the whole-file load did):
		// rewind and fall through to the buffered reader.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	return newReaderSource(f, SourceReader, offset, f), nil
}
