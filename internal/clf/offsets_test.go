package clf

import (
	"strings"
	"testing"
)

// TestStreamParallelOffsetsLineAligned pins the replay contract of the
// progress callback: offsets arrive strictly increasing, each one sits on a
// line boundary of the input, and the final offset is the input's full
// length.
func TestStreamParallelOffsetsLineAligned(t *testing.T) {
	log := synthLog(5, 2500)
	for _, workers := range []int{1, 3} {
		for _, chunk := range []int{128, 4096, readChunkSize} {
			var offsets []int64
			records := 0
			_, err := streamParallel(strings.NewReader(log), workers, 2, chunk,
				func(Record) { records++ },
				func(off int64) { offsets = append(offsets, off) })
			if err != nil {
				t.Fatal(err)
			}
			if len(offsets) == 0 {
				t.Fatalf("workers=%d chunk=%d: no offsets reported", workers, chunk)
			}
			var prev int64
			for _, off := range offsets {
				if off <= prev && !(off == prev && off == int64(len(log))) {
					t.Fatalf("workers=%d chunk=%d: offsets not increasing: %d after %d", workers, chunk, off, prev)
				}
				if off != int64(len(log)) && log[off-1] != '\n' {
					t.Fatalf("workers=%d chunk=%d: offset %d not on a line boundary", workers, chunk, off)
				}
				prev = off
			}
			if offsets[len(offsets)-1] != int64(len(log)) {
				t.Fatalf("workers=%d chunk=%d: final offset %d, want %d",
					workers, chunk, offsets[len(offsets)-1], len(log))
			}
		}
	}
}

// TestStreamParallelOffsetsResume pins what recovery relies on: streaming the
// suffix of the input from any reported offset yields exactly the records not
// yet emitted when that offset was reported — no loss, no duplicates.
func TestStreamParallelOffsetsResume(t *testing.T) {
	log := synthLog(17, 1200)
	want, _, err := ReadAll(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	type boundary struct {
		off  int64
		seen int // records emitted when off was reported
	}
	var bounds []boundary
	seen := 0
	if _, err := streamParallel(strings.NewReader(log), 4, 2, 512,
		func(Record) { seen++ },
		func(off int64) { bounds = append(bounds, boundary{off, seen}) }); err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Fatalf("emitted %d records, want %d", seen, len(want))
	}

	for _, b := range bounds {
		var got []Record
		if _, err := StreamParallel(strings.NewReader(log[b.off:]), 2, 2,
			func(rec Record) { got = append(got, rec) }); err != nil {
			t.Fatal(err)
		}
		rest := want[b.seen:]
		if len(got) != len(rest) {
			t.Fatalf("resume from %d: %d records, want %d", b.off, len(got), len(rest))
		}
		for i := range got {
			if !recordsMatch(got[i], rest[i]) {
				t.Fatalf("resume from %d: record %d differs:\n%+v\n%+v", b.off, i, got[i], rest[i])
			}
		}
	}
}

// TestStreamParallelOffsetsSingleWorker: a non-nil progress forces the
// chunked pipeline even at workers == 1, and its output still matches the
// sequential reader.
func TestStreamParallelOffsetsSingleWorker(t *testing.T) {
	log := synthLog(23, 800)
	want, wantBad, err := ReadAll(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	fired := 0
	gotBad, err := StreamParallelOffsets(strings.NewReader(log), 1, 2,
		func(rec Record) { got = append(got, rec) },
		func(int64) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("progress never fired with workers=1")
	}
	if gotBad != wantBad || len(got) != len(want) {
		t.Fatalf("got %d/%d, want %d/%d", len(got), gotBad, len(want), wantBad)
	}
	for i := range got {
		if !recordsMatch(got[i], want[i]) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got[i], want[i])
		}
	}
}
