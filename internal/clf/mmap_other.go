//go:build !unix

package clf

import (
	"io"
	"os"
)

// MmapSupported reports whether this build can memory-map input files.
// Non-unix builds fall back to reading the whole file with io.ReadFull;
// the Source contract (line-aligned []byte windows) is identical, only the
// zero-copy property is lost.
const MmapSupported = false

// mmapFile emulates a read-only mapping by loading the file into memory.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	noop := func() error { return nil }
	if size == 0 {
		return nil, noop, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, noop, nil
}
