package clf

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultStreamDepth is the default depth of StreamParallel's in-order
// delivery channel: how many parsed chunks may be in flight between the
// reader and the consumer before the reader blocks. Together with the worker
// count it bounds the pipeline's heap: roughly
// (depth + workers) × chunk size of input bytes plus the records parsed from
// them, independent of how long the log is.
const DefaultStreamDepth = 8

// Stream parses every record in r in input order, invoking emit for each,
// and returns the malformed-line count. It is ReadAll without the slice:
// memory is bounded by one line, so it suits logs that never end. Records
// parsed before a read error are emitted before the error returns.
func Stream(r io.Reader, emit func(Record)) (malformed int, err error) {
	sc := NewScanner(r)
	for sc.Scan() {
		emit(sc.Record())
	}
	malformed, _ = sc.Malformed()
	if err := sc.Err(); err != nil {
		return malformed, fmt.Errorf("clf: read: %w", err)
	}
	return malformed, nil
}

// StreamParallel is Stream with the parse stage fanned out over a bounded
// worker pool: the input is cut into line-aligned chunks of about 1 MiB,
// chunks are parsed concurrently through the byte-level fast path (with a
// per-chunk string-intern arena), and records are delivered to emit in input
// order through a fixed-depth channel. For any workers/depth the emitted
// sequence and malformed count are identical to Stream's (and ReadAll's).
//
// Unlike ReadAllParallel nothing is materialized: heap stays bounded by
// (depth + workers) chunks regardless of log length, which is what a
// reactive processor tailing an unbounded log needs. emit runs on the
// calling goroutine; workers <= 0 means GOMAXPROCS, workers == 1 degrades
// to the sequential Stream, depth <= 0 means DefaultStreamDepth.
func StreamParallel(r io.Reader, workers, depth int, emit func(Record)) (malformed int, err error) {
	return streamParallel(r, workers, depth, readChunkSize, emit, nil)
}

// StreamParallelOffsets is StreamParallel with replay-offset reporting for
// checkpointing consumers: after the last record of each line-aligned chunk
// has been emitted, progress is called (on the same goroutine as emit) with
// the byte offset just past that chunk, relative to the start of r. Every
// reported offset sits on a line boundary, so a reader that seeks there and
// resumes streaming sees exactly the records not yet emitted — the property
// crash recovery replays depend on. With a non-nil progress the chunked
// pipeline runs even for workers == 1 (the emitted sequence is identical;
// only offsets are added).
func StreamParallelOffsets(r io.Reader, workers, depth int, emit func(Record), progress func(offset int64)) (malformed int, err error) {
	return streamParallel(r, workers, depth, readChunkSize, emit, progress)
}

// StreamParallelOffsetsChunked is StreamParallelOffsets with an explicit
// chunk size. Progress boundaries fall at chunk ends, so callers tuning
// checkpoint granularity (or tests forcing many boundaries on small inputs)
// pick the chunk size; chunkBytes <= 0 means the default ~1 MiB.
func StreamParallelOffsetsChunked(r io.Reader, workers, depth, chunkBytes int, emit func(Record), progress func(offset int64)) (malformed int, err error) {
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}
	return streamParallel(r, workers, depth, chunkBytes, emit, progress)
}

// streamParallel adapts the single-reader entry points onto the source
// engine: the reader becomes one buffered Source and offsets lose their file
// index. The sequential degrade (workers == 1 without offsets) is kept so
// pipes retain per-line latency instead of waiting for a chunk to fill.
func streamParallel(r io.Reader, workers, depth, chunkSize int, emit func(Record), progress func(int64)) (malformed int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The sequential degrade has no chunk boundaries to report, so offset
	// consumers stay on the chunked pipeline even single-threaded.
	if workers == 1 && progress == nil {
		return Stream(r, emit)
	}
	return streamChunked(r, workers, depth, chunkSize, perRecord(emit), progress)
}

// StreamChunked is StreamParallelOffsetsChunked delivering each line-aligned
// chunk's records as one slice instead of one callback per record — the feed
// for batch consumers (core's PushBatch ingestion), which pay their
// per-delivery costs once per chunk. The slice is only valid during the
// call; emitChunk must not retain it (the sequential path reuses one scratch
// slice for every chunk). Record order, malformed accounting, and progress
// boundaries are identical to the per-record entry points. Note the latency
// trade: unlike StreamParallel, workers == 1 does not degrade to the
// line-at-a-time scanner, so a pipe's records are delivered only when a
// chunk fills or the input ends — callers tailing an interactive pipe should
// use the per-record API (or batch == 1 at the core layer).
func StreamChunked(r io.Reader, workers, depth, chunkBytes int, emitChunk func([]Record), progress func(offset int64)) (malformed int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}
	return streamChunked(r, workers, depth, chunkBytes, emitChunk, progress)
}

// streamChunked wires a single borrowed reader into the source engine.
func streamChunked(r io.Reader, workers, depth, chunkSize int, emitChunk func([]Record), progress func(int64)) (malformed int, err error) {
	var fileProgress func(FilePos) error
	if progress != nil {
		fileProgress = func(pos FilePos) error {
			progress(pos.Offset)
			return nil
		}
	}
	src := newReaderSource(r, SourceReader, 0) // no closers: r is borrowed
	open := func(int) (Source, error) { return src, nil }
	return streamSources(1, 0, open, workers, depth, chunkSize, emitChunk, fileProgress)
}

// perRecord adapts a per-record callback onto the chunk-delivery engine.
func perRecord(emit func(Record)) func([]Record) {
	return func(recs []Record) {
		for i := range recs {
			emit(recs[i])
		}
	}
}

// StreamConfig tunes StreamFiles. Zero values mean: GOMAXPROCS workers,
// DefaultStreamDepth, ~1 MiB chunks, start at the first byte of the first
// file, mmap allowed.
type StreamConfig struct {
	// Workers is the parse fan-out; <= 0 means GOMAXPROCS. Workers == 1
	// runs a direct sequential loop with no pipeline goroutines at all.
	Workers int
	// Depth bounds in-flight parsed chunks; <= 0 means DefaultStreamDepth.
	Depth int
	// ChunkBytes is the target chunk size; <= 0 means ~1 MiB.
	ChunkBytes int
	// Start is the resume position: files before Start.File are skipped and
	// Start.File begins at Start.Offset (a line boundary previously reported
	// through progress; decoded bytes for gzip members).
	Start FilePos
	// NoMmap forces the buffered reader for plain files (benchmarks and
	// equivalence tests; gzip always decodes through the buffered path).
	NoMmap bool
}

// StreamFiles streams the records of an ordered multi-file log set — plain,
// gzip, or mixed, as a rotated retention window produces — in input order
// through the same bounded pipeline as StreamParallel. Each file is opened
// as the best Source for its content: mmap windows for plain files (chunks
// alias the mapping; no line is ever copied between read and parse), the
// buffered reader for pipes or when mmap is unavailable, gzip decoding for
// compressed members — with upcoming gzip members decoded ahead on their own
// goroutines so decompression overlaps parsing when workers > 1.
//
// Files are independent record streams: a final line without a trailing
// newline still parses, exactly as if the files were concatenated with
// newline separators (OpenLogInput's batch view). After each chunk's records
// are emitted, progress (if non-nil) receives the line-aligned FilePos just
// past the chunk; a non-nil error from progress aborts the stream and is
// returned, which checkpointing consumers use to stop cleanly mid-set.
// Over-long lines (> 1 MiB) are skipped and counted as malformed.
func StreamFiles(paths []string, cfg StreamConfig, emit func(Record), progress func(FilePos) error) (malformed int, err error) {
	return StreamFilesChunked(paths, cfg, perRecord(emit), progress)
}

// StreamFilesChunked is StreamFiles with chunk-batch delivery: each
// line-aligned chunk's records arrive as one slice, valid only during the
// call (see StreamChunked for the contract and the pipe-latency trade).
func StreamFilesChunked(paths []string, cfg StreamConfig, emitChunk func([]Record), progress func(FilePos) error) (malformed int, err error) {
	first := cfg.Start.File
	if first < 0 {
		first = 0
	}
	if first >= len(paths) {
		return 0, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkBytes := cfg.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}

	// Decode-ahead: when the pool is parsing file i, up to lookahead of the
	// next gzip members decompress concurrently on their own goroutines.
	lookahead := 0
	if workers > 1 {
		lookahead = workers - 1
		if lookahead > 4 {
			lookahead = 4
		}
	}
	ahead := make(map[int]Source)
	defer func() {
		// Close prefetched sources never consumed (early abort or error).
		for _, s := range ahead {
			s.Close()
		}
	}()
	open := func(i int) (Source, error) {
		s, ok := ahead[i]
		if !ok {
			var off int64
			if i == cfg.Start.File {
				off = cfg.Start.Offset
			}
			var err error
			if s, err = openSourceAt(paths[i], off, cfg.NoMmap); err != nil {
				return nil, err
			}
		}
		delete(ahead, i)
		for k := i + 1; k <= i+lookahead && k < len(paths); k++ {
			if _, ok := ahead[k]; ok {
				continue
			}
			ns, err := openSourceAt(paths[k], 0, cfg.NoMmap)
			if err != nil {
				break // the open(k) that matters will report it
			}
			if ns.Kind() == SourceGzip {
				ns = newAsyncSource(ns, chunkBytes)
			}
			ahead[k] = ns
		}
		return s, nil
	}
	return streamSources(len(paths), first, open, workers, cfg.Depth, chunkBytes, emitChunk, progress)
}

// parsedChunk is one chunk's parse result.
type parsedChunk struct {
	recs []Record
	bad  int
}

// sourceJob carries one line-aligned chunk through the pipeline. done is
// 1-buffered so a worker never blocks handing its result back. A job with
// closer set is a close sentinel: it follows every data job of its source
// through the FIFO order channel, so by the time the consumer reaches it all
// of that source's chunks have been fully parsed and the source — possibly
// an mmap whose windows those chunks aliased — is safe to close.
type sourceJob struct {
	data    []byte
	pos     FilePos
	skipped int
	done    chan parsedChunk
	closer  Source
}

// streamSources runs the parse pipeline over n ordered sources, opened
// lazily by open, starting at index first, delivering each chunk's records
// as one slice (per-record callers wrap with perRecord).
//
// Shape: one producer goroutine pulls line-aligned chunks from each source
// in turn and sends each job to both the workers (via work) and the consumer
// (via order, whose fixed buffer is the backpressure bound); the calling
// goroutine drains order in FIFO — input order — waiting on each job's own
// done channel, so delivery order never depends on worker scheduling.
// workers == 1 skips the goroutines entirely and parses inline.
func streamSources(n, first int, open func(int) (Source, error), workers, depth, chunkBytes int, emitChunk func([]Record), progress func(FilePos) error) (malformed int, err error) {
	records := 0
	defer func() {
		metricRecords.Add(int64(records))
		metricMalformed.Add(int64(malformed))
	}()

	if workers == 1 {
		// Direct sequential loop: source → parseChunkInto → emitChunk, no
		// pipeline. This is the mmap fast path on one core — no goroutine
		// handoffs, no chunk copies, one scratch record slice reused for
		// every chunk, just window slicing and the byte-level parser.
		// One scratch record slice serves every chunk; sizing it for a full
		// chunk of minimal lines up front replaces the per-stream append
		// growth ladder (records are ~170 B, so the ladder's copies and
		// garbage dwarf one right-sized allocation).
		scratch := make([]Record, 0, chunkBytes/48+1)
		in := newInternTable()
		for i := first; i < n; i++ {
			src, err := open(i)
			if err != nil {
				return malformed, err
			}
			if rs, ok := src.(interface{ markSerial() }); ok {
				// This loop consumes each chunk before pulling the next, so
				// reader-backed sources can hand out their read buffer
				// directly (zero-copy, like the mmap windows).
				rs.markSerial()
			}
			for {
				data, end, skipped, nerr := src.NextChunk(chunkBytes)
				if nerr != nil {
					cerr := src.Close()
					if nerr != io.EOF {
						return malformed, nerr
					}
					if cerr != nil {
						return malformed, cerr
					}
					break
				}
				malformed += skipped
				var bad int
				if in.full() {
					in = newInternTable()
				}
				scratch, bad = parseChunkIntern(data, scratch[:0], in)
				records += len(scratch)
				malformed += bad
				if len(scratch) > 0 {
					emitChunk(scratch)
				}
				if progress != nil {
					if perr := progress(FilePos{File: i, Offset: end}); perr != nil {
						src.Close()
						return malformed, perr
					}
				}
			}
		}
		return malformed, nil
	}

	if depth <= 0 {
		depth = DefaultStreamDepth
	}
	work := make(chan *sourceJob)
	order := make(chan *sourceJob, depth)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker persistent intern: strings repeat across this
			// worker's chunks, and the table is retired at maxInternEntries.
			in := newInternTable()
			for j := range work {
				if in.full() {
					in = newInternTable()
				}
				// Records are pointer-heavy (five strings each), so an
				// append-grown slice pays repeated copy + write-barrier
				// bills; size it once from the shortest plausible line.
				recs, bad := parseChunkIntern(j.data, make([]Record, 0, len(j.data)/48+1), in)
				j.done <- parsedChunk{recs: recs, bad: bad}
			}
		}()
	}

	// aborted is set by the consumer when progress rejects; the producer
	// stops cutting chunks, and the consumer keeps draining (without
	// emitting) so every in-flight job completes and every source closes.
	var aborted atomic.Bool
	var readErr error
	go func() {
		defer close(order)
		defer close(work)
		for i := first; i < n && !aborted.Load(); i++ {
			src, err := open(i)
			if err != nil {
				readErr = err
				return
			}
			for {
				data, end, skipped, nerr := src.NextChunk(chunkBytes)
				if nerr != nil {
					if nerr != io.EOF {
						readErr = nerr
					}
					break
				}
				j := &sourceJob{data: data, pos: FilePos{File: i, Offset: end}, skipped: skipped, done: make(chan parsedChunk, 1)}
				// Sending to order before work keeps the consumer's view
				// strictly FIFO and makes the order buffer the admission gate.
				order <- j
				if len(data) > 0 {
					work <- j
				} else {
					j.done <- parsedChunk{} // skip-count-only progress job
				}
				if aborted.Load() {
					break
				}
			}
			// The sentinel trails this source's jobs through the FIFO, so the
			// consumer closes it only after the workers are done with it.
			order <- &sourceJob{closer: src}
			if readErr != nil {
				return
			}
		}
	}()

	var progErr, closeErr error
	for j := range order {
		if j.closer != nil {
			if cerr := j.closer.Close(); cerr != nil && closeErr == nil {
				closeErr = cerr
			}
			continue
		}
		res := <-j.done
		if progErr != nil {
			continue // draining after abort
		}
		if len(res.recs) > 0 {
			emitChunk(res.recs)
		}
		records += len(res.recs)
		malformed += res.bad + j.skipped
		if progress != nil {
			if perr := progress(j.pos); perr != nil {
				progErr = perr
				aborted.Store(true)
			}
		}
	}
	wg.Wait()
	// order is closed only after readErr is set, so this read is ordered.
	switch {
	case progErr != nil:
		return malformed, progErr
	case readErr != nil:
		return malformed, readErr
	case closeErr != nil:
		return malformed, closeErr
	}
	return malformed, nil
}
