package clf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// DefaultStreamDepth is the default depth of StreamParallel's in-order
// delivery channel: how many parsed chunks may be in flight between the
// reader and the consumer before the reader blocks. Together with the worker
// count it bounds the pipeline's heap: roughly
// (depth + workers) × chunk size of input bytes plus the records parsed from
// them, independent of how long the log is.
const DefaultStreamDepth = 8

// Stream parses every record in r in input order, invoking emit for each,
// and returns the malformed-line count. It is ReadAll without the slice:
// memory is bounded by one line, so it suits logs that never end. Records
// parsed before a read error are emitted before the error returns.
func Stream(r io.Reader, emit func(Record)) (malformed int, err error) {
	sc := NewScanner(r)
	for sc.Scan() {
		emit(sc.Record())
	}
	malformed, _ = sc.Malformed()
	if err := sc.Err(); err != nil {
		return malformed, fmt.Errorf("clf: read: %w", err)
	}
	return malformed, nil
}

// StreamParallel is Stream with the parse stage fanned out over a bounded
// worker pool: the input is cut into line-aligned chunks of about 1 MiB,
// chunks are parsed concurrently through the byte-level fast path (with a
// per-chunk string-intern arena), and records are delivered to emit in input
// order through a fixed-depth channel. For any workers/depth the emitted
// sequence and malformed count are identical to Stream's (and ReadAll's).
//
// Unlike ReadAllParallel nothing is materialized: heap stays bounded by
// (depth + workers) chunks regardless of log length, which is what a
// reactive processor tailing an unbounded log needs. emit runs on the
// calling goroutine; workers <= 0 means GOMAXPROCS, workers == 1 degrades
// to the sequential Stream, depth <= 0 means DefaultStreamDepth.
func StreamParallel(r io.Reader, workers, depth int, emit func(Record)) (malformed int, err error) {
	return streamParallel(r, workers, depth, readChunkSize, emit, nil)
}

// StreamParallelOffsets is StreamParallel with replay-offset reporting for
// checkpointing consumers: after the last record of each line-aligned chunk
// has been emitted, progress is called (on the same goroutine as emit) with
// the byte offset just past that chunk, relative to the start of r. Every
// reported offset sits on a line boundary, so a reader that seeks there and
// resumes streaming sees exactly the records not yet emitted — the property
// crash recovery replays depend on. With a non-nil progress the chunked
// pipeline runs even for workers == 1 (the emitted sequence is identical;
// only offsets are added).
func StreamParallelOffsets(r io.Reader, workers, depth int, emit func(Record), progress func(offset int64)) (malformed int, err error) {
	return streamParallel(r, workers, depth, readChunkSize, emit, progress)
}

// StreamParallelOffsetsChunked is StreamParallelOffsets with an explicit
// chunk size. Progress boundaries fall at chunk ends, so callers tuning
// checkpoint granularity (or tests forcing many boundaries on small inputs)
// pick the chunk size; chunkBytes <= 0 means the default ~1 MiB.
func StreamParallelOffsetsChunked(r io.Reader, workers, depth, chunkBytes int, emit func(Record), progress func(offset int64)) (malformed int, err error) {
	if chunkBytes <= 0 {
		chunkBytes = readChunkSize
	}
	return streamParallel(r, workers, depth, chunkBytes, emit, progress)
}

// parsedChunk is one chunk's parse result.
type parsedChunk struct {
	recs []Record
	bad  int
}

// streamJob carries one line-aligned chunk through the pipeline. done is
// 1-buffered so a worker never blocks handing its result back. end is the
// byte offset just past the chunk, relative to the start of the input.
type streamJob struct {
	data []byte
	end  int64
	done chan parsedChunk
}

// streamParallel is StreamParallel with the chunk size exposed so tests can
// force chunk boundaries through every split edge case (FuzzStreamChunks).
//
// Shape: one producer goroutine cuts r into line-aligned chunks and sends
// each job to both the workers (via work) and the consumer (via order, whose
// fixed buffer is the backpressure bound); the calling goroutine drains
// order in FIFO — input order — waiting on each job's own done channel, so
// delivery order never depends on worker scheduling.
func streamParallel(r io.Reader, workers, depth, chunkSize int, emit func(Record), progress func(int64)) (malformed int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The sequential degrade has no chunk boundaries to report, so offset
	// consumers stay on the chunked pipeline even single-threaded.
	if workers == 1 && progress == nil {
		return Stream(r, emit)
	}
	if depth <= 0 {
		depth = DefaultStreamDepth
	}

	work := make(chan *streamJob)
	order := make(chan *streamJob, depth)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				recs, bad := parseChunk(j.data)
				j.done <- parsedChunk{recs: recs, bad: bad}
			}
		}()
	}

	// The producer reads blocks and cuts them at the last newline; the
	// remainder carries into the next chunk so no line is split. Sending to
	// order before work keeps the consumer's view strictly FIFO and makes
	// the order buffer the only admission gate.
	var readErr error
	go func() {
		defer close(order)
		defer close(work)
		// Dispatched chunks partition the consumed input prefix exactly, so
		// the running sum of their lengths is the absolute byte offset each
		// chunk ends at.
		var off int64
		dispatch := func(data []byte) {
			off += int64(len(data))
			j := &streamJob{data: data, end: off, done: make(chan parsedChunk, 1)}
			order <- j
			work <- j
		}
		var carry []byte
		for {
			buf := make([]byte, chunkSize)
			n, rerr := io.ReadFull(r, buf)
			if n > 0 {
				nl := bytes.LastIndexByte(buf[:n], '\n')
				if nl < 0 {
					carry = append(carry, buf[:n]...)
					if len(carry) > maxLineBytes {
						readErr = bufio.ErrTooLong
						return
					}
				} else {
					// The chunk's first line spans the carry; reject it at
					// the same 1 MiB bound the sequential Scanner enforces.
					if first := bytes.IndexByte(buf[:n], '\n'); len(carry)+first > maxLineBytes {
						readErr = bufio.ErrTooLong
						return
					}
					dispatch(append(carry, buf[:nl+1]...))
					carry = append([]byte(nil), buf[nl+1:n]...)
				}
			}
			if rerr != nil {
				if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
					if len(carry) > 0 {
						dispatch(carry)
					}
				} else {
					readErr = rerr
				}
				return
			}
		}
	}()

	records := 0
	for j := range order {
		res := <-j.done
		for i := range res.recs {
			emit(res.recs[i])
		}
		records += len(res.recs)
		malformed += res.bad
		if progress != nil {
			progress(j.end)
		}
	}
	wg.Wait()
	metricRecords.Add(int64(records))
	metricMalformed.Add(int64(malformed))
	// order is closed only after readErr is set, so this read is ordered.
	if readErr != nil {
		return malformed, fmt.Errorf("clf: read: %w", readErr)
	}
	return malformed, nil
}
