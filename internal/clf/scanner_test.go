package clf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
	"time"
)

func logOf(lines ...string) string { return strings.Join(lines, "\n") + "\n" }

func TestScannerSkipsMalformedLines(t *testing.T) {
	input := logOf(
		sampleLine,
		"this is not a log line",
		"",
		`10.0.0.8 - - [02/Jan/2006:15:05:05 +0000] "GET /a.html HTTP/1.1" 200 100`,
		"   ",
		"another bad line with [brackets",
	)
	sc := NewScanner(strings.NewReader(input))
	var hosts []string
	for sc.Scan() {
		hosts = append(hosts, sc.Record().Host)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts[0] != "10.0.0.7" || hosts[1] != "10.0.0.8" {
		t.Errorf("hosts = %v", hosts)
	}
	bad, details := sc.Malformed()
	if bad != 2 {
		t.Errorf("malformed = %d, want 2", bad)
	}
	if len(details) != 2 {
		t.Fatalf("details = %d entries, want 2", len(details))
	}
	if details[0].LineNo != 2 || details[1].LineNo != 6 {
		t.Errorf("line numbers = %d, %d, want 2, 6 (blank lines count toward position)",
			details[0].LineNo, details[1].LineNo)
	}
}

func TestScannerErrorCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < maxRetainedErrors+50; i++ {
		sb.WriteString("bad line\n")
	}
	sc := NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
	}
	count, details := sc.Malformed()
	if count != maxRetainedErrors+50 {
		t.Errorf("count = %d", count)
	}
	if len(details) != maxRetainedErrors {
		t.Errorf("retained = %d, want cap %d", len(details), maxRetainedErrors)
	}
}

type failingReader struct{ after int }

func (f *failingReader) Read(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk on fire")
	}
	n := copy(p, sampleLine+"\n")
	f.after--
	return n, nil
}

func TestScannerPropagatesReadErrors(t *testing.T) {
	sc := NewScanner(&failingReader{after: 1})
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Error("read error not propagated")
	}
	if _, _, err := ReadAll(&failingReader{}); err == nil {
		t.Error("ReadAll did not propagate read error")
	}
}

// Regression: ReadAll used to return (nil, 0, err) on a read error, throwing
// away everything parsed before the failure. Truncated-log callers need the
// partial records and the malformed count alongside the error.
func TestReadAllReturnsPartialsOnReadError(t *testing.T) {
	prefix := logOf(sampleLine, "not a log line", sampleLine)
	r := io.MultiReader(strings.NewReader(prefix), iotest.ErrReader(errors.New("disk on fire")))
	records, malformed, err := ReadAll(r)
	if err == nil {
		t.Fatal("read error not propagated")
	}
	if len(records) != 2 {
		t.Errorf("partial records = %d, want 2", len(records))
	}
	if malformed != 1 {
		t.Errorf("malformed = %d, want 1", malformed)
	}
}

func TestReadAllWriteAllRoundTrip(t *testing.T) {
	base := time.Date(2006, 1, 2, 10, 0, 0, 0, time.UTC)
	var recs []Record
	for i := 0; i < 25; i++ {
		recs = append(recs, Record{
			Host: "10.0.0.1", Ident: "-", AuthUser: "-",
			Time:   base.Add(time.Duration(i) * time.Minute),
			Method: "GET", URI: "/p/" + itoa(i) + ".html", Protocol: "HTTP/1.1",
			Status: 200, Bytes: int64(100 + i),
		})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, malformed, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if malformed != 0 {
		t.Errorf("malformed = %d", malformed)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) || got[i].URI != recs[i].URI {
			t.Fatalf("record %d changed: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errors.New("pipe closed") }

func TestWriterPropagatesErrors(t *testing.T) {
	w := NewWriter(failingWriter{})
	// The bufio layer absorbs small writes; force a flush to surface it.
	for i := 0; i < 10000; i++ {
		_ = w.Write(Record{Host: "1.1.1.1", Time: time.Unix(0, 0).UTC(),
			Method: "GET", URI: "/", Protocol: "HTTP/1.1", Status: 200})
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush did not report write error")
	}
	if err := w.Write(Record{}); err == nil {
		t.Error("Write after error did not fail")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(Record{Host: "1.1.1.1", Time: time.Unix(0, 0).UTC(),
			Method: "GET", URI: "/", Protocol: "HTTP/1.1", Status: 200, Bytes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("output has %d lines", got)
	}
}

func BenchmarkParseRecord(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRecord(sampleLine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanner(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString(sampleLine)
		sb.WriteByte('\n')
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(strings.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if n != 1000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
