package clf

import (
	"strings"
	"time"
)

// Filter decides whether a record survives data cleaning. Filters return
// true to KEEP the record.
//
// The paper's data-processing phase first "filters relevant information from
// the logs": session reconstruction wants exactly one record per page view,
// so embedded resources (images, stylesheets), failed requests, non-GET
// methods, and crawler traffic are dropped before user identification.
type Filter func(Record) bool

// KeepAll keeps every record; useful as an explicit no-op.
func KeepAll(Record) bool { return true }

// SuccessOnly keeps records with 2xx status codes.
func SuccessOnly(r Record) bool { return r.Success() }

// MethodGET keeps only GET requests (the paper restricts to page fetches).
func MethodGET(r Record) bool { return r.Method == "GET" }

// defaultResourceSuffixes are path suffixes that denote embedded resources
// rather than page views.
var defaultResourceSuffixes = []string{
	".gif", ".jpg", ".jpeg", ".png", ".ico", ".bmp", ".svg",
	".css", ".js", ".swf", ".woff", ".woff2", ".ttf",
	".mp3", ".mp4", ".avi", ".mpeg", ".pdf", ".zip", ".gz",
}

// DropResources drops requests for embedded resources (images, scripts,
// styles, media, archives) using the conventional suffix list. Query strings
// and fragments are stripped before matching.
func DropResources(r Record) bool {
	return !isResourcePath(r.URI)
}

// isResourcePath reports whether the URI's path ends in one of
// defaultResourceSuffixes. It runs on every ingested record, so instead of
// lowering the path and probing each suffix it extracts the extension of the
// final path segment (bounded at longestResourceSuffix bytes), ASCII-lowers
// it into a stack buffer, and matches with one switch. Paths without a dot in
// the last segment — the overwhelmingly common page-view case — exit after a
// single backward scan.
func isResourcePath(uri string) bool {
	path := stripQuery(uri)
	dot := -1
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i] {
		case '.':
			dot = i
		case '/':
		default:
			continue
		}
		break
	}
	if dot < 0 || len(path)-dot > longestResourceSuffix {
		return false
	}
	var ext [longestResourceSuffix]byte
	n := 0
	for i := dot; i < len(path); i++ {
		c := path[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		ext[n] = c
		n++
	}
	switch string(ext[:n]) {
	case ".gif", ".jpg", ".jpeg", ".png", ".ico", ".bmp", ".svg",
		".css", ".js", ".swf", ".woff", ".woff2", ".ttf",
		".mp3", ".mp4", ".avi", ".mpeg", ".pdf", ".zip", ".gz":
		return true
	}
	return false
}

// longestResourceSuffix bounds the extension buffer in isResourcePath; it
// must cover the longest entry in defaultResourceSuffixes (".woff2").
const longestResourceSuffix = 6

// DropSuffixes returns a filter that drops any URI whose path ends with one
// of the given suffixes (case-insensitive).
func DropSuffixes(suffixes ...string) Filter {
	lowered := make([]string, len(suffixes))
	for i, s := range suffixes {
		lowered[i] = strings.ToLower(s)
	}
	return func(r Record) bool {
		return !hasAnySuffix(pathOnly(r.URI), lowered)
	}
}

// DropRobots drops requests for /robots.txt (a crawler signature; CLF lacks
// a user-agent field, so the path is the only available signal).
func DropRobots(r Record) bool {
	path := stripQuery(r.URI)
	return len(path) != len("/robots.txt") || !strings.EqualFold(path, "/robots.txt")
}

// DropUserAgentContaining returns a filter dropping records whose combined-
// format user agent contains any of the given substrings
// (case-insensitive) — the standard way to remove crawler traffic when the
// log carries user agents. Common-format records (no user agent) are kept.
func DropUserAgentContaining(substrings ...string) Filter {
	lowered := make([]string, len(substrings))
	for i, s := range substrings {
		lowered[i] = strings.ToLower(s)
	}
	return func(r Record) bool {
		if r.UserAgent == "" || r.UserAgent == NoField {
			return true
		}
		ua := strings.ToLower(r.UserAgent)
		for _, s := range lowered {
			if strings.Contains(ua, s) {
				return false
			}
		}
		return true
	}
}

// TimeWindow returns a filter keeping records within [from, to). Zero times
// disable that bound.
func TimeWindow(from, to time.Time) Filter {
	return func(r Record) bool {
		if !from.IsZero() && r.Time.Before(from) {
			return false
		}
		if !to.IsZero() && !r.Time.Before(to) {
			return false
		}
		return true
	}
}

// Chain combines filters; a record survives only if every filter keeps it.
func Chain(filters ...Filter) Filter {
	return func(r Record) bool {
		for _, f := range filters {
			if !f(r) {
				return false
			}
		}
		return true
	}
}

// StandardCleaning is the conventional WUM cleaning pipeline: successful GET
// page views only, no embedded resources, no robots.txt probes.
func StandardCleaning() Filter {
	return Chain(SuccessOnly, MethodGET, DropResources, DropRobots)
}

// Apply filters records in order, returning the survivors and the number
// dropped. The input slice is not modified.
func Apply(records []Record, f Filter) (kept []Record, dropped int) {
	kept = make([]Record, 0, len(records))
	for _, r := range records {
		if f(r) {
			kept = append(kept, r)
		} else {
			dropped++
		}
	}
	return kept, dropped
}

// stripQuery drops the query string and fragment, leaving the path. Two
// IndexByte probes beat one IndexAny: IndexByte is vectorized, and most URIs
// contain neither delimiter.
func stripQuery(uri string) string {
	if i := strings.IndexByte(uri, '?'); i >= 0 {
		uri = uri[:i]
	}
	if i := strings.IndexByte(uri, '#'); i >= 0 {
		uri = uri[:i]
	}
	return uri
}

func pathOnly(uri string) string {
	return strings.ToLower(stripQuery(uri))
}

func hasAnySuffix(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}
