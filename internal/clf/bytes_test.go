package clf

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// recordsMatch compares two Records field by field. Times must be the same
// instant with the same zone rendering (time.Parse fabricates zone Locations
// per call, so pointer equality never holds).
func recordsMatch(a, b Record) bool {
	if a.Host != b.Host || a.Ident != b.Ident || a.AuthUser != b.AuthUser ||
		a.Method != b.Method || a.URI != b.URI || a.Protocol != b.Protocol ||
		a.Status != b.Status || a.Bytes != b.Bytes ||
		a.Referer != b.Referer || a.UserAgent != b.UserAgent {
		return false
	}
	if !a.Time.Equal(b.Time) {
		return false
	}
	an, ao := a.Time.Zone()
	bn, bo := b.Time.Zone()
	return an == bn && ao == bo && a.Time.Format(TimeLayout) == b.Time.Format(TimeLayout)
}

// checkBytesEquivalence asserts ParseAnyRecordBytes behaves exactly like
// ParseAnyRecord on one line.
func checkBytesEquivalence(t *testing.T, line string) {
	t.Helper()
	wantRec, wantCombined, wantErr := ParseAnyRecord(line)
	gotRec, gotCombined, gotErr := ParseAnyRecordBytes([]byte(line))
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("line %q: error mismatch: string=%v bytes=%v", line, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("line %q: error text mismatch:\nstring: %v\nbytes:  %v", line, wantErr, gotErr)
		}
		return
	}
	if wantCombined != gotCombined {
		t.Fatalf("line %q: combined flag mismatch: string=%v bytes=%v", line, wantCombined, gotCombined)
	}
	if !recordsMatch(wantRec, gotRec) {
		t.Fatalf("line %q: record mismatch:\nstring: %+v\nbytes:  %+v", line, wantRec, gotRec)
	}
}

func TestParseAnyRecordBytesMatchesString(t *testing.T) {
	lines := []string{
		sampleLine,
		combinedLine,
		sampleLine + "\r",
		sampleLine + "\r\n",
		sampleLine + ` "-" "-"`,
		`192.168.1.1 - alice [02/Jan/2006:15:04:05 -0500] "POST /login HTTP/1.0" 302 -`,
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 0`,
		`x - - [29/Feb/2004:00:00:00 +0000] "GET / HTTP/1.1" 200 0`,        // leap day
		`x - - [29/Feb/2005:00:00:00 +0000] "GET / HTTP/1.1" 200 0`,        // invalid leap day
		`x - - [31/Apr/2006:00:00:00 +0000] "GET / HTTP/1.1" 200 0`,        // day out of range
		`x - - [00/Jan/2006:00:00:00 +0000] "GET / HTTP/1.1" 200 0`,        // day zero
		`x - - [02/jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 0`,        // lowercase month (slow path)
		`x - - [02/JAN/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 0`,        // uppercase month (slow path)
		`x - - [02/Jan/2006:24:00:00 +0000] "GET / HTTP/1.1" 200 0`,        // hour out of range
		`x - - [02/Jan/2006:15:04:05 +0530] "GET / HTTP/1.1" 200 0`,        // non-local offset
		`x - - [02/Jan/2006:15:04:05 -0930] "GET / HTTP/1.1" 200 0`,        // negative half-hour offset
		`x - - [02/Jan/2006:15:04:05 +9959] "GET / HTTP/1.1" 200 0`,        // absurd offset (slow path)
		`x - - [02/Jan/2006:15:04:05+0000] "GET / HTTP/1.1" 200 0`,         // missing space in date
		`x - - [02/Jan/2006:15:04:05 +0000] "GET  HTTP/1.1" 200 0`,         // two request fields
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / X HTTP/1.1" 200 0`,      // four request fields
		`x - - [02/Jan/2006:15:04:05 +0000] " / HTTP/1.1" 200 0`,           // empty method
		`x - - [02/Jan/2006:15:04:05 +0000] "GET  /x" 200 0`,               // empty middle field
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1"  200   512  `, // extra spaces
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1"200 512`,       // no space after quote
		"x - - [02/Jan/2006:15:04:05 +0000] \"GET / HTTP/1.1\" 200\t512",   // tab separator (slow path)
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 099 512`,      // status below range
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 0200 512`,     // padded status
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 600 512`,      // status above range
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 2-0`,      // dash inside bytes
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 512 9`,    // three tail fields
		`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200`,          // one tail field
		`x - - [bad date] "GET / HTTP/1.1" 200 1`,
		`x - - 02/Jan/2006 "GET / HTTP/1.1" 200 1`,
		`x - -`,
		``,
		`   `,
		`just some garbage`,
		combinedLine + "\r\n",
		sampleLine + ` "ref with space" "agent with space"`,
		sampleLine + ` "" ""`,
		`x - - [02/Jan/2006:15:04:05 +0000] "GET /q"x HTTP/1.1" 200 1 "r" "a"`, // quote inside URI
	}
	for _, line := range lines {
		checkBytesEquivalence(t, line)
	}
}

func TestParseRecordBytesMatchesParseRecord(t *testing.T) {
	for _, line := range []string{sampleLine, combinedLine, "", "garbage"} {
		wantRec, wantErr := ParseRecord(line)
		gotRec, gotErr := ParseRecordBytes([]byte(line))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("line %q: error mismatch: %v vs %v", line, wantErr, gotErr)
		}
		if wantErr == nil && !recordsMatch(wantRec, gotRec) {
			t.Fatalf("line %q: %+v vs %+v", line, wantRec, gotRec)
		}
	}
	for _, line := range []string{combinedLine, sampleLine, ""} {
		wantRec, wantErr := ParseCombinedRecord(line)
		gotRec, gotErr := ParseCombinedRecordBytes([]byte(line))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("combined line %q: error mismatch: %v vs %v", line, wantErr, gotErr)
		}
		if wantErr == nil && !recordsMatch(wantRec, gotRec) {
			t.Fatalf("combined line %q: %+v vs %+v", line, wantRec, gotRec)
		}
	}
}

// TestParseCLFTimeMatchesTimeParse sweeps timestamps (normal, leap, DST
// boundaries, many offsets) and pins the hand-rolled parser to time.Parse.
func TestParseCLFTimeMatchesTimeParse(t *testing.T) {
	stamps := []string{
		"02/Jan/2006:15:04:05 +0000",
		"02/Jan/2006:15:04:05 -0700",
		"29/Feb/2000:23:59:59 +0100",
		"28/Feb/1900:00:00:00 +0000",
		"31/Dec/9999:23:59:59 +1400",
		"01/Jan/0000:00:00:00 -0000",
		"15/Jun/2026:12:30:45 +0530",
		"15/Jun/2026:12:30:45 -0930",
		"31/Mar/2024:01:30:00 +0100",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		tm := time.Date(1990+rng.Intn(60), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
			rng.Intn(24), rng.Intn(60), rng.Intn(60), 0,
			time.FixedZone("", (rng.Intn(27)-13)*3600+rng.Intn(4)*900))
		stamps = append(stamps, tm.Format(TimeLayout))
	}
	for _, s := range stamps {
		want, wantErr := time.Parse(TimeLayout, s)
		got, ok := parseCLFTime([]byte(s))
		if wantErr != nil {
			if ok {
				t.Fatalf("stamp %q: time.Parse rejects (%v) but fast path accepts %v", s, wantErr, got)
			}
			continue
		}
		if !ok {
			continue // fast path may defer to the slow path; that is always legal
		}
		if !got.Equal(want) {
			t.Fatalf("stamp %q: instant mismatch: fast %v, time.Parse %v", s, got, want)
		}
		gn, go_ := got.Zone()
		wn, wo := want.Zone()
		if gn != wn || go_ != wo {
			t.Fatalf("stamp %q: zone mismatch: fast %q/%d, time.Parse %q/%d", s, gn, go_, wn, wo)
		}
	}
}

// TestParseCLFTimeRejectsShapes pins fallback on malformed shapes.
func TestParseCLFTimeRejectsShapes(t *testing.T) {
	bad := []string{
		"", "02/Jan/2006:15:04:05", "02/Jan/2006:15:04:05 +000", "2/Jan/2006:15:04:05 +00000",
		"02-Jan-2006:15:04:05 +0000", "02/Jan/2006 15:04:05 +0000", "02/Jan/2006:15:04:05 00000",
		"ab/Jan/2006:15:04:05 +0000", "02/Xxx/2006:15:04:05 +0000", "02/Jan/20x6:15:04:05 +0000",
	}
	for _, s := range bad {
		if _, ok := parseCLFTime([]byte(s)); ok {
			t.Errorf("parseCLFTime accepted %q", s)
		}
	}
}

func TestScannerRetainsTruncatedErrorLines(t *testing.T) {
	long := "garbage " + strings.Repeat("x", 64*1024)
	sc := NewScanner(strings.NewReader(long + "\n" + sampleLine + "\n"))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("scanned %d records, want 1", n)
	}
	bad, details := sc.Malformed()
	if bad != 1 || len(details) != 1 {
		t.Fatalf("malformed = %d (%d retained), want 1", bad, len(details))
	}
	if got := len(details[0].Line); got > maxRetainedLineBytes+len("...") {
		t.Errorf("retained line is %d bytes, want <= %d", got, maxRetainedLineBytes+3)
	}
	if details[0].LineNo != 1 {
		t.Errorf("LineNo = %d, want 1", details[0].LineNo)
	}
}

// synthLog builds a log mixing well-formed, combined, malformed, and blank
// lines, deterministically from seed.
func synthLog(seed int64, lines int) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	base := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	for i := 0; i < lines; i++ {
		switch rng.Intn(10) {
		case 0:
			sb.WriteString("malformed junk line\n")
		case 1:
			sb.WriteString("\n")
		case 2:
			fmt.Fprintf(&sb, "10.0.0.%d - - [%s] \"GET /p/%d.html HTTP/1.1\" 200 %d \"/ref.html\" \"agent %d\"\n",
				rng.Intn(200), base.Add(time.Duration(i)*time.Second).Format(TimeLayout),
				rng.Intn(50), rng.Intn(4096), rng.Intn(5))
		default:
			fmt.Fprintf(&sb, "10.0.0.%d - - [%s] \"GET /p/%d.html HTTP/1.1\" %d %d\n",
				rng.Intn(200), base.Add(time.Duration(i)*time.Second).Format(TimeLayout),
				rng.Intn(50), 200+rng.Intn(2)*102, rng.Intn(4096))
		}
	}
	return sb.String()
}

func TestReadAllParallelMatchesReadAll(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		log := synthLog(seed, 5000)
		want, wantBad, err := ReadAll(strings.NewReader(log))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got, gotBad, err := ReadAllParallel(strings.NewReader(log), workers)
			if err != nil {
				t.Fatal(err)
			}
			if gotBad != wantBad {
				t.Fatalf("seed %d workers %d: malformed %d, want %d", seed, workers, gotBad, wantBad)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d records, want %d", seed, workers, len(got), len(want))
			}
			for i := range got {
				if !recordsMatch(got[i], want[i]) {
					t.Fatalf("seed %d workers %d: record %d differs:\n%+v\n%+v", seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestReadAllParallelNoTrailingNewline(t *testing.T) {
	log := strings.TrimSuffix(synthLog(7, 200), "\n")
	want, wantBad, _ := ReadAll(strings.NewReader(log))
	got, gotBad, err := ReadAllParallel(strings.NewReader(log), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || gotBad != wantBad {
		t.Fatalf("got %d/%d, want %d/%d", len(got), gotBad, len(want), wantBad)
	}
}

func TestReadAllParallelOversizedLine(t *testing.T) {
	// Skip-and-count: the over-long line becomes one malformed line on both
	// paths, and its unterminated tail at EOF does not double-count.
	huge := sampleLine + "\n" + strings.Repeat("a", maxLineBytes+2)
	seq, seqBad, seqErr := ReadAll(strings.NewReader(huge))
	par, parBad, parErr := ReadAllParallel(strings.NewReader(huge), 4)
	if seqErr != nil || parErr != nil {
		t.Fatalf("oversized line must not abort: sequential err=%v, parallel err=%v", seqErr, parErr)
	}
	if len(seq) != 1 || len(par) != 1 {
		t.Fatalf("records: sequential %d, parallel %d, want 1", len(seq), len(par))
	}
	if seqBad != 1 || parBad != 1 {
		t.Fatalf("malformed: sequential %d, parallel %d, want 1", seqBad, parBad)
	}
}

type chunkFailReader struct {
	data []byte
	off  int
}

func (f *chunkFailReader) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, errors.New("disk on fire")
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func TestReadAllParallelPartialOnReadError(t *testing.T) {
	log := synthLog(9, 300)
	want, _, seqErr := ReadAll(&chunkFailReader{data: []byte(log)})
	got, _, parErr := ReadAllParallel(&chunkFailReader{data: []byte(log)}, 4)
	if seqErr == nil || parErr == nil {
		t.Fatalf("want read errors, got %v / %v", seqErr, parErr)
	}
	if len(got) != len(want) {
		t.Fatalf("partial records: parallel %d, sequential %d", len(got), len(want))
	}
}

// FuzzParseAnyRecordBytes pins the byte-level fast path to the string
// reference parser: identical accept/reject decisions, identical Records
// (including timestamps and zones), identical error text — for well-formed
// and malformed input alike.
func FuzzParseAnyRecordBytes(f *testing.F) {
	f.Add(sampleLine)
	f.Add(combinedLine)
	f.Add(sampleLine + ` "-" "-"`)
	f.Add(`x - - [02/Jan/2006:15:04:05 +0530] "GET / HTTP/1.1" 200 0`)
	f.Add(`x - - [29/Feb/2005:15:04:05 +0000] "GET / HTTP/1.1" 200 -`)
	f.Add("")
	f.Add(`1.2.3.4 - - [bad date] "GET / HTTP/1.1" 200 1`)
	f.Add("a b c [02/Jan/2006:15:04:05 +0000] \"x y z\" 200\t5")
	f.Fuzz(func(t *testing.T, line string) {
		if len(line) > 1<<16 {
			return
		}
		wantRec, wantCombined, wantErr := ParseAnyRecord(line)
		gotRec, gotCombined, gotErr := ParseAnyRecordBytes([]byte(line))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch on %q: string=%v bytes=%v", line, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch on %q:\nstring: %v\nbytes:  %v", line, wantErr, gotErr)
			}
			return
		}
		if wantCombined != gotCombined {
			t.Fatalf("combined flag mismatch on %q", line)
		}
		if !recordsMatch(wantRec, gotRec) {
			t.Fatalf("record mismatch on %q:\nstring: %+v\nbytes:  %+v", line, wantRec, gotRec)
		}
	})
}
