package clf

import (
	"bufio"
	"fmt"
	"io"

	"smartsra/internal/metrics"
)

// Process-wide data-quality instrumentation, aggregated across all Scanners
// (per-Scanner numbers stay available via Malformed/LinesRead).
var (
	metricRecords   = metrics.GetCounter("clf.scanner.records")
	metricMalformed = metrics.GetCounter("clf.scanner.malformed")
)

// Scanner streams Records out of a CLF log. Malformed lines do not abort the
// scan; they are counted and (up to a cap) retained as ParseErrors so the
// caller can report data-quality issues, which is routine for real access
// logs.
//
// Usage mirrors bufio.Scanner:
//
//	sc := clf.NewScanner(r)
//	for sc.Scan() {
//	    rec := sc.Record()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	ls      *lineScanner
	rec     Record
	err     error
	lineNo  int
	bad     int
	badErrs []*ParseError
	// in is the string-intern arena shared with the chunk-parallel path,
	// scoped to ~readChunkSize bytes of input (tracked by inBytes) so an
	// unbounded log never grows an unbounded table. Real logs repeat hosts,
	// URIs, referers, and agents constantly; interning makes the sequential
	// reader's []byte→string conversions amortized allocation-free, matching
	// the parallel path.
	in      *internTable
	inBytes int
}

// maxRetainedErrors caps how many ParseErrors a Scanner keeps; beyond this
// only the count grows.
const maxRetainedErrors = 100

// maxRetainedLineBytes caps how much of a malformed line a retained
// ParseError keeps. Retention copies the truncated prefix instead of slicing
// the original, so a single malformed 1 MiB line no longer pins its whole
// buffer for the Scanner's lifetime.
const maxRetainedLineBytes = 512

// NewScanner returns a Scanner reading CLF lines from r. Lines are split by
// a hand-rolled IndexByte scanner (no per-line token copy); lines over 1 MiB
// (far above any legal CLF line) are skipped and counted as malformed rather
// than aborting the scan, so one hostile line cannot stop ingestion.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{ls: newLineScanner(r)}
}

// Scan advances to the next well-formed record, skipping malformed and blank
// lines. It returns false at end of input or on a read error.
func (s *Scanner) Scan() bool {
	for {
		line, lerr := s.ls.next()
		if lerr != nil {
			if lerr == errLineTooLong {
				s.lineNo++
				s.bad++
				metricMalformed.Inc()
				if len(s.badErrs) < maxRetainedErrors {
					s.badErrs = append(s.badErrs, &ParseError{
						LineNo: s.lineNo,
						Reason: "line exceeds the 1 MiB line cap; skipped",
					})
				}
				continue
			}
			if lerr != io.EOF {
				s.err = lerr
			}
			return false
		}
		s.lineNo++
		if isBlankBytes(line) {
			continue
		}
		if s.in == nil || s.inBytes >= readChunkSize {
			s.in = newInternTable()
			s.inBytes = 0
		}
		s.inBytes += len(line) + 1
		rec, _, err := parseAnyRecordBytesIn(line, s.in)
		if err != nil {
			s.bad++
			metricMalformed.Inc()
			if pe, ok := err.(*ParseError); ok && len(s.badErrs) < maxRetainedErrors {
				pe.LineNo = s.lineNo
				pe.Line = truncate(pe.Line, maxRetainedLineBytes)
				s.badErrs = append(s.badErrs, pe)
			}
			continue
		}
		s.rec = rec
		metricRecords.Inc()
		return true
	}
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first read error encountered, or nil. Parse errors are not
// read errors; see Malformed.
func (s *Scanner) Err() error { return s.err }

// Malformed returns how many lines failed to parse and (capped) the details.
func (s *Scanner) Malformed() (count int, details []*ParseError) {
	return s.bad, s.badErrs
}

// LinesRead returns the number of input lines consumed so far, blank lines
// included (so ParseError line numbers match the file).
func (s *Scanner) LinesRead() int { return s.lineNo }

func isBlank(line string) bool {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

func isBlankBytes(line []byte) bool {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// ReadAll parses every record in r, skipping malformed lines, and returns
// the records plus the malformed-line count. It fails only on read errors —
// and even then the records parsed before the failure and the malformed
// count are returned alongside the error, so callers reading truncated logs
// can still report the data they recovered and its quality.
func ReadAll(r io.Reader) (records []Record, malformed int, err error) {
	sc := NewScanner(r)
	for sc.Scan() {
		records = append(records, sc.Record())
	}
	malformed, _ = sc.Malformed()
	if err := sc.Err(); err != nil {
		return records, malformed, fmt.Errorf("clf: read: %w", err)
	}
	return records, malformed, nil
}

// Writer emits Records as CLF lines (common format by default).
type Writer struct {
	w        *bufio.Writer
	n        int
	err      error
	combined bool
}

// NewWriter returns a Writer targeting w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// NewCombinedWriter returns a Writer that renders combined-format lines
// (with "referer" "user-agent" tails).
func NewCombinedWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), combined: true}
}

// Write appends one record as a CLF line.
func (w *Writer) Write(rec Record) error {
	if w.err != nil {
		return w.err
	}
	line := rec.String()
	if w.combined {
		line = rec.CombinedString()
	}
	if _, err := w.w.WriteString(line); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// WriteAll writes all records to w as a CLF log.
func WriteAll(w io.Writer, records []Record) error {
	cw := NewWriter(w)
	for _, rec := range records {
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("clf: write: %w", err)
		}
	}
	return cw.Flush()
}
