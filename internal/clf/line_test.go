package clf

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// scanAllLines drains a lineScanner, returning the line sequence, how many
// over-long lines were skipped, and the terminal error (nil for clean EOF).
func scanAllLines(r io.Reader) (lines []string, skipped int, err error) {
	ls := newLineScanner(r)
	for {
		line, lerr := ls.next()
		switch lerr {
		case nil:
			lines = append(lines, string(line))
		case errLineTooLong:
			skipped++
		case io.EOF:
			return lines, skipped, nil
		default:
			return lines, skipped, lerr
		}
	}
}

// FuzzLineScanner pins the IndexByte line splitter against bufio.Scanner +
// ScanLines for arbitrary input — CRLF, NUL bytes, missing final newline —
// delivered both in large blocks and one byte at a time. Fuzz inputs stay
// far below the 1 MiB cap, so the two must agree exactly; the long-line
// divergence (skip vs abort) is pinned by TestLineScannerLongLinePolicy.
func FuzzLineScanner(f *testing.F) {
	f.Add([]byte("a\nbb\nccc"), false)
	f.Add([]byte("one\r\ntwo\r\n\r\n"), true)
	f.Add([]byte("\x00\n\x00\x00\r\n\r"), false)
	f.Add([]byte("no terminator"), true)
	f.Add([]byte("\n\n\n"), false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, input []byte, oneByte bool) {
		if len(input) > 1<<16 {
			return
		}
		ref := bufio.NewScanner(bytes.NewReader(input))
		ref.Buffer(make([]byte, 0, 64), 1<<17)
		var want []string
		for ref.Scan() {
			want = append(want, ref.Text())
		}
		if err := ref.Err(); err != nil {
			t.Fatalf("reference scanner: %v", err)
		}
		var r io.Reader = bytes.NewReader(input)
		if oneByte {
			r = iotest.OneByteReader(r)
		}
		got, skipped, err := scanAllLines(r)
		if err != nil || skipped != 0 {
			t.Fatalf("lineScanner: err=%v skipped=%d", err, skipped)
		}
		if len(got) != len(want) {
			t.Fatalf("%d lines, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("line %d: %q, want %q", i, got[i], want[i])
			}
		}
	})
}

// TestLineScannerLongLinePolicy pins the skip-and-count behavior at the
// 1 MiB boundary: a line of exactly maxLineBytes passes through, one byte
// more is skipped (reported once) without disturbing its neighbors — even
// when the over-long line is unterminated at EOF, spans many read blocks,
// or is the CR of a CRLF pushing it over the cap.
func TestLineScannerLongLinePolicy(t *testing.T) {
	atCap := strings.Repeat("a", maxLineBytes)
	over := strings.Repeat("b", maxLineBytes+1)
	cases := []struct {
		name    string
		input   string
		want    []string
		skipped int
	}{
		{"exactly at cap", atCap + "\nok\n", []string{atCap, "ok"}, 0},
		{"one over cap", over + "\nok\n", []string{"ok"}, 1},
		{"over cap at EOF unterminated", "ok\n" + over, []string{"ok"}, 1},
		{"between neighbors", "pre\n" + over + "\npost\n", []string{"pre", "post"}, 1},
		{"cr pushes over cap", atCap + "\r\nok\n", []string{"ok"}, 1},
		{"two over-long in a row", over + "\n" + over + "\nok", []string{"ok"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, skipped, err := scanAllLines(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if skipped != tc.skipped {
				t.Fatalf("skipped %d, want %d", skipped, tc.skipped)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("%d lines, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("line %d differs (len %d vs %d)", i, len(got[i]), len(tc.want[i]))
				}
			}
		})
	}
}

// TestScannerLongLineRetainsError: the Scanner surfaces a skipped over-long
// line as a counted malformed line with a retained ParseError, not a read
// error — the scan continues.
func TestScannerLongLineRetainsError(t *testing.T) {
	input := sampleLine + "\n" + strings.Repeat("x", maxLineBytes+2) + "\n" + sampleLine + "\n"
	sc := NewScanner(strings.NewReader(input))
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("long line must not become a read error: %v", err)
	}
	if n != 2 {
		t.Fatalf("records = %d, want 2", n)
	}
	bad, details := sc.Malformed()
	if bad != 1 || len(details) != 1 {
		t.Fatalf("malformed = %d (%d retained), want 1", bad, len(details))
	}
	if details[0].LineNo != 2 {
		t.Fatalf("retained LineNo = %d, want 2", details[0].LineNo)
	}
	if !strings.Contains(details[0].Reason, "1 MiB") {
		t.Fatalf("retained reason = %q", details[0].Reason)
	}
}

// TestLineScannerFinalLineBeforeReadError mirrors bufio.Scanner: a partial
// final line buffered when the reader fails is still yielded before the
// error surfaces.
func TestLineScannerFinalLineBeforeReadError(t *testing.T) {
	r := io.MultiReader(strings.NewReader("complete\npartial"), iotest.ErrReader(io.ErrClosedPipe))
	got, skipped, err := scanAllLines(r)
	if err != io.ErrClosedPipe {
		t.Fatalf("err = %v, want ErrClosedPipe", err)
	}
	if skipped != 0 || len(got) != 2 || got[0] != "complete" || got[1] != "partial" {
		t.Fatalf("got %q (skipped %d)", got, skipped)
	}
}
