package clf

import "strings"

// Log-injection hardening for the HTTP → CLF boundary. CLF has no escaping
// convention: a URI containing a space breaks the three-token request line, a
// double quote ends the quoted field early, and a newline splits one logical
// record across two physical lines (classic log injection — a hostile client
// forges whole records). The sanitizers below make any untrusted string safe
// to embed in a CLF line by percent-encoding exactly the bytes that break
// framing, and nothing else, so ordinary values pass through unchanged.
//
// The encoding is idempotent ('%' itself is never escaped, so sanitizing an
// already-sanitized value is the identity) and round-trips: a sanitized
// record rendered with Writer and re-parsed with ParseRecord /
// ParseCombinedRecord yields the sanitized record back, byte for byte. That
// property is what FuzzAccessLogRecord pins.

// MaxFieldBytes caps one sanitized field's input length. The line scanner
// skips lines over 1 MiB as malformed, so a single hostile multi-megabyte
// User-Agent would otherwise turn its whole record into data loss; 8 KiB is
// far above any legitimate header value.
const MaxFieldBytes = 8 << 10

const upperhex = "0123456789ABCDEF"

// needsEscape reports whether byte c breaks CLF framing: control bytes
// (line splitting, terminal escapes in logs), DEL, the double quote (quoted
// fields), and — when the field is space-delimited — the space.
func needsEscape(c byte, space bool) bool {
	return c < 0x20 || c == 0x7f || c == '"' || (space && c == ' ')
}

// sanitize percent-encodes the framing-breaking bytes of s, truncating the
// input to MaxFieldBytes first. Clean values are returned unchanged with no
// allocation.
func sanitize(s string, space bool) string {
	if len(s) > MaxFieldBytes {
		s = s[:MaxFieldBytes]
	}
	dirty := 0
	for i := 0; i < len(s); i++ {
		if needsEscape(s[i], space) {
			dirty++
		}
	}
	if dirty == 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 2*dirty)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if needsEscape(c, space) {
			sb.WriteByte('%')
			sb.WriteByte(upperhex[c>>4])
			sb.WriteByte(upperhex[c&0xf])
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// SanitizeToken makes s safe for a space-delimited CLF position (host,
// ident, authuser, method, URI, protocol): spaces, quotes, and control bytes
// are percent-encoded and an empty value becomes "-" (an empty token would
// shift every following field).
func SanitizeToken(s string) string {
	if s == "" {
		return NoField
	}
	return sanitize(s, true)
}

// SanitizeQuoted makes s safe for a quoted combined-format field (Referer,
// User-Agent): quotes and control bytes are percent-encoded, spaces are kept
// (the quoted-field parsers handle them), and an empty value becomes "-" so
// the rendered line re-parses to the same record.
func SanitizeQuoted(s string) string {
	if s == "" {
		return NoField
	}
	return sanitize(s, false)
}

// SanitizeRecord returns r with every client-controlled string field made
// safe for CLF rendering and the numeric fields normalized into the ranges
// the strict parser accepts (status clamped into [100, 599], any negative
// byte count canonicalized to -1). The result is a fixed point: sanitizing
// twice equals sanitizing once, and writing then re-parsing the sanitized
// record reproduces it exactly.
func SanitizeRecord(r Record) Record {
	r.Host = SanitizeToken(r.Host)
	r.Ident = SanitizeToken(r.Ident)
	r.AuthUser = SanitizeToken(r.AuthUser)
	r.Method = SanitizeToken(r.Method)
	r.URI = SanitizeToken(r.URI)
	r.Protocol = SanitizeToken(r.Protocol)
	r.Referer = SanitizeQuoted(r.Referer)
	r.UserAgent = SanitizeQuoted(r.UserAgent)
	if r.Status < 100 {
		r.Status = 100
	}
	if r.Status > 599 {
		r.Status = 599
	}
	if r.Bytes < 0 {
		r.Bytes = -1
	}
	return r
}
