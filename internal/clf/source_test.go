package clf

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestFile(t *testing.T, dir, name, data string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeGzipFile(t *testing.T, dir, name, data string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// rotatedSet writes a synthetic log as a 3-file rotated set — first part
// without its trailing newline (a rotation can cut anywhere), middle part
// gzip-compressed — and returns the paths plus the full concatenated text.
func rotatedSet(t *testing.T, seed int64, lines int) (paths []string, full string) {
	t.Helper()
	log := synthLog(seed, lines)
	split := strings.SplitAfter(log, "\n")
	a, b := len(split)/3, 2*len(split)/3
	p1 := strings.TrimSuffix(strings.Join(split[:a], ""), "\n")
	p2 := strings.Join(split[a:b], "")
	p3 := strings.Join(split[b:], "")
	dir := t.TempDir()
	paths = []string{
		writeTestFile(t, dir, "access.log.1", p1),
		writeGzipFile(t, dir, "access.log.2.gz", p2),
		writeTestFile(t, dir, "access.log.3", p3),
	}
	return paths, p1 + "\n" + p2 + p3
}

func TestResolveLogPaths(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"access.log", "access.log.1", "access.log.2.gz"} {
		writeTestFile(t, dir, name, "x\n")
	}
	got, err := ResolveLogPaths(filepath.Join(dir, "access.log*"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "access.log"),
		filepath.Join(dir, "access.log.1"),
		filepath.Join(dir, "access.log.2.gz"),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("glob: got %v, want %v", got, want)
	}

	// Comma lists resolve, dedupe, and sort lexically.
	spec := want[1] + "," + want[0] + "," + want[1]
	got, err = ResolveLogPaths(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("comma list: got %v", got)
	}

	if _, err := ResolveLogPaths(filepath.Join(dir, "nothing*")); err == nil {
		t.Fatal("want error for glob with no matches")
	}
	if _, err := ResolveLogPaths("-," + want[0]); err == nil {
		t.Fatal("want error mixing stdin with files")
	}
}

// TestStreamFilesMatchesConcat is the multi-file equivalence bar: a rotated
// plain/gzip/plain set streams byte-identically to zcat-then-concatenate
// through the sequential reader, across worker counts, chunk sizes, and
// mmap on/off.
func TestStreamFilesMatchesConcat(t *testing.T) {
	paths, full := rotatedSet(t, 11, 600)
	want, wantBad, err := ReadAll(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}

	// The shared CLI opener must present the same concatenated view.
	rc, rpaths, err := OpenLogInput(strings.Join(paths, ","))
	if err != nil {
		t.Fatal(err)
	}
	if len(rpaths) != len(paths) {
		t.Fatalf("OpenLogInput paths: %v", rpaths)
	}
	cat, catBad, err := ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != len(want) || catBad != wantBad {
		t.Fatalf("OpenLogInput: %d/%d records, want %d/%d", len(cat), catBad, len(want), wantBad)
	}

	for _, workers := range []int{1, 2, 4} {
		for _, noMmap := range []bool{false, true} {
			for _, chunk := range []int{256, 4096, readChunkSize} {
				var got []Record
				bad, err := StreamFiles(paths, StreamConfig{
					Workers: workers, ChunkBytes: chunk, NoMmap: noMmap,
				}, func(rec Record) { got = append(got, rec) }, nil)
				if err != nil {
					t.Fatalf("workers=%d noMmap=%v chunk=%d: %v", workers, noMmap, chunk, err)
				}
				if bad != wantBad || len(got) != len(want) {
					t.Fatalf("workers=%d noMmap=%v chunk=%d: %d/%d records, want %d/%d",
						workers, noMmap, chunk, len(got), bad, len(want), wantBad)
				}
				for i := range got {
					if !recordsMatch(got[i], want[i]) {
						t.Fatalf("workers=%d noMmap=%v chunk=%d: record %d differs", workers, noMmap, chunk, i)
					}
				}
			}
		}
	}
}

// TestStreamFilesResume: every progress-reported FilePos is a valid resume
// point — restarting there (including mid-gzip, which decodes and discards
// to the offset) replays exactly the unseen suffix.
func TestStreamFilesResume(t *testing.T) {
	paths, full := rotatedSet(t, 23, 400)
	want, _, err := ReadAll(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}

	type mark struct {
		pos  FilePos
		seen int
	}
	var marks []mark
	var count int
	_, err = StreamFiles(paths, StreamConfig{Workers: 2, ChunkBytes: 512},
		func(Record) { count++ },
		func(pos FilePos) error {
			marks = append(marks, mark{pos, count})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(want) || len(marks) < 10 {
		t.Fatalf("collection run: %d records (%d marks), want %d", count, len(marks), len(want))
	}

	for i, m := range marks {
		if i%5 != 0 {
			continue
		}
		for _, workers := range []int{1, 3} {
			var got []Record
			_, err := StreamFiles(paths, StreamConfig{
				Workers: workers, ChunkBytes: 512, Start: m.pos,
			}, func(rec Record) { got = append(got, rec) }, nil)
			if err != nil {
				t.Fatalf("resume at %+v: %v", m.pos, err)
			}
			rest := want[m.seen:]
			if len(got) != len(rest) {
				t.Fatalf("resume at %+v workers=%d: %d records, want %d", m.pos, workers, len(got), len(rest))
			}
			for j := range got {
				if !recordsMatch(got[j], rest[j]) {
					t.Fatalf("resume at %+v workers=%d: record %d differs", m.pos, workers, j)
				}
			}
		}
	}
}

// TestStreamFilesProgressAbort: a progress error stops the stream cleanly —
// the error comes back, emission halts at the rejected boundary, and every
// source (including in-flight mmaps and the gzip decode-ahead goroutines)
// is closed without leaking or crashing.
func TestStreamFilesProgressAbort(t *testing.T) {
	paths, _ := rotatedSet(t, 31, 400)
	errStop := errors.New("stop here")
	for _, workers := range []int{1, 4} {
		var emitted, boundaries, atAbort int
		_, err := StreamFiles(paths, StreamConfig{Workers: workers, ChunkBytes: 512},
			func(Record) { emitted++ },
			func(FilePos) error {
				boundaries++
				if boundaries == 7 {
					atAbort = emitted
					return errStop
				}
				return nil
			})
		if !errors.Is(err, errStop) {
			t.Fatalf("workers=%d: err = %v, want errStop", workers, err)
		}
		if boundaries != 7 {
			t.Fatalf("workers=%d: progress kept firing after abort (%d calls)", workers, boundaries)
		}
		if emitted != atAbort {
			t.Fatalf("workers=%d: %d records emitted after abort", workers, emitted-atAbort)
		}
	}
}

// TestStreamFilesOversizedLine: the skip-and-count policy holds on every
// source kind — mmap windows, the buffered reader, and gzip.
func TestStreamFilesOversizedLine(t *testing.T) {
	body := sampleLine + "\n" + strings.Repeat("z", maxLineBytes+2) + "\n" + sampleLine + "\n"
	dir := t.TempDir()
	cases := map[string]string{
		"mmap":   writeTestFile(t, dir, "plain.log", body),
		"reader": writeTestFile(t, dir, "reader.log", body),
		"gzip":   writeGzipFile(t, dir, "compressed.log.gz", body),
	}
	for name, path := range cases {
		for _, workers := range []int{1, 3} {
			var recs int
			bad, err := StreamFiles([]string{path}, StreamConfig{
				Workers: workers, NoMmap: name == "reader",
			}, func(Record) { recs++ }, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if recs != 2 || bad != 1 {
				t.Fatalf("%s workers=%d: %d records / %d malformed, want 2/1", name, workers, recs, bad)
			}
		}
	}
}

// TestOpenDecodedSniffsGzip: decoding is by magic bytes, not extension.
func TestOpenDecodedSniffsGzip(t *testing.T) {
	dir := t.TempDir()
	path := writeGzipFile(t, dir, "misnamed.log", "hello\nworld\n")
	rc, err := OpenDecoded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\nworld\n" {
		t.Fatalf("decoded %q", data)
	}
}

func TestOpenLogInputStdin(t *testing.T) {
	rc, paths, err := OpenLogInput("-")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if paths != nil {
		t.Fatalf("stdin must report no paths, got %v", paths)
	}
}

// TestSourceKinds: openSourceAt picks mmap for plain files (when supported),
// reader when disabled, gzip by sniffing.
func TestSourceKinds(t *testing.T) {
	dir := t.TempDir()
	plain := writeTestFile(t, dir, "a.log", sampleLine+"\n")
	gzp := writeGzipFile(t, dir, "a.log.gz", sampleLine+"\n")

	s, err := openSourceAt(plain, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	wantKind := SourceMmap
	if !MmapSupported {
		wantKind = SourceReader
	}
	if s.Kind() != wantKind {
		t.Fatalf("plain file kind = %v, want %v", s.Kind(), wantKind)
	}
	s.Close()

	s, err = openSourceAt(plain, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != SourceReader {
		t.Fatalf("NoMmap kind = %v", s.Kind())
	}
	s.Close()

	s, err = openSourceAt(gzp, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != SourceGzip {
		t.Fatalf("gzip kind = %v", s.Kind())
	}
	s.Close()
}
