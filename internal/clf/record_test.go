package clf

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var sampleLine = `10.0.0.7 - - [02/Jan/2006:15:04:05 +0000] "GET /p/17.html HTTP/1.1" 200 512`

func TestParseRecord(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	if r.Host != "10.0.0.7" {
		t.Errorf("Host = %q", r.Host)
	}
	if r.Ident != "-" || r.AuthUser != "-" {
		t.Errorf("Ident/AuthUser = %q/%q", r.Ident, r.AuthUser)
	}
	want := time.Date(2006, 1, 2, 15, 4, 5, 0, time.UTC)
	if !r.Time.Equal(want) {
		t.Errorf("Time = %v, want %v", r.Time, want)
	}
	if r.Method != "GET" || r.URI != "/p/17.html" || r.Protocol != "HTTP/1.1" {
		t.Errorf("request parsed as %q %q %q", r.Method, r.URI, r.Protocol)
	}
	if r.Status != 200 || r.Bytes != 512 {
		t.Errorf("status/bytes = %d/%d", r.Status, r.Bytes)
	}
	if !r.Success() {
		t.Error("Success() = false for 200")
	}
	if r.Request() != "GET /p/17.html HTTP/1.1" {
		t.Errorf("Request() = %q", r.Request())
	}
}

func TestParseRecordDashBytes(t *testing.T) {
	line := `192.168.1.1 - alice [02/Jan/2006:15:04:05 -0500] "POST /login HTTP/1.0" 302 -`
	r, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != -1 {
		t.Errorf("Bytes = %d, want -1 for dash", r.Bytes)
	}
	if r.AuthUser != "alice" {
		t.Errorf("AuthUser = %q", r.AuthUser)
	}
	if r.Success() {
		t.Error("Success() = true for 302")
	}
	_, off := r.Time.Zone()
	if off != -5*3600 {
		t.Errorf("zone offset = %d, want -18000", off)
	}
}

func TestParseRecordRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty", ""},
		{"whitespace", "   \t "},
		{"too few fields", "1.2.3.4 -"},
		{"no bracket", `1.2.3.4 - - 02/Jan/2006:15:04:05 +0000 "GET / HTTP/1.1" 200 1`},
		{"unclosed bracket", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000 "GET / HTTP/1.1" 200 1`},
		{"bad date", `1.2.3.4 - - [2006-01-02 15:04] "GET / HTTP/1.1" 200 1`},
		{"no request quote", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] GET / HTTP/1.1 200 1`},
		{"unclosed quote", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1 200 1`},
		{"two-part request", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET /" 200 1`},
		{"missing bytes", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200`},
		{"bad status", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" abc 1`},
		{"status out of range", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 99 1`},
		{"bad bytes", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 12x`},
		{"negative bytes", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 -5`},
		{"extra tail", `1.2.3.4 - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 1 junk`},
	}
	for _, c := range cases {
		if _, err := ParseRecord(c.line); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.line)
		} else if !strings.HasPrefix(err.Error(), "clf:") {
			t.Errorf("%s: error %q lacks clf: prefix", c.name, err)
		}
	}
}

func TestRecordStringRoundTrip(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != sampleLine {
		t.Errorf("String() = %q\nwant        %q", got, sampleLine)
	}
	r2, err := ParseRecord(r.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if !r2.Time.Equal(r.Time) {
		t.Errorf("round trip changed time: %v vs %v", r2.Time, r.Time)
	}
	r2.Time, r.Time = time.Time{}, time.Time{}
	if r2 != r {
		t.Errorf("round trip changed record:\n got %+v\nwant %+v", r2, r)
	}
}

func TestRecordStringFillsDefaults(t *testing.T) {
	r := Record{
		Host: "1.1.1.1", Time: time.Date(2006, 3, 4, 5, 6, 7, 0, time.UTC),
		Method: "GET", URI: "/", Protocol: "HTTP/1.1", Status: 200, Bytes: -1,
	}
	line := r.String()
	if !strings.Contains(line, "1.1.1.1 - - [") {
		t.Errorf("empty ident/authuser not rendered as dashes: %q", line)
	}
	if !strings.HasSuffix(line, " 200 -") {
		t.Errorf("negative bytes not rendered as dash: %q", line)
	}
	if _, err := ParseRecord(line); err != nil {
		t.Errorf("default-filled line does not re-parse: %v", err)
	}
}

// Property: String/ParseRecord round-trips for arbitrary well-formed records.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(host uint32, status uint16, bytes int32, page uint16, unix int32) bool {
		r := Record{
			Host:     ipv4(host),
			Ident:    "-",
			AuthUser: "-",
			Time:     time.Unix(int64(unix)&0x7fffffff, 0).UTC(),
			Method:   "GET",
			URI:      "/p/" + itoa(int(page)) + ".html",
			Protocol: "HTTP/1.1",
			Status:   100 + int(status)%500,
			Bytes:    int64(bytes),
		}
		if r.Bytes < 0 {
			r.Bytes = -1
		}
		got, err := ParseRecord(r.String())
		if err != nil {
			return false
		}
		// Compare Time with Equal: Parse may attach Local instead of UTC
		// when the numeric offset matches the local zone.
		sameTime := got.Time.Equal(r.Time)
		got.Time, r.Time = time.Time{}, time.Time{}
		return sameTime && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseErrorFormatting(t *testing.T) {
	_, err := ParseRecord("garbage")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "garbage") {
		t.Errorf("error %q does not quote the line", pe.Error())
	}
	pe.LineNo = 7
	if !strings.Contains(pe.Error(), "line 7") {
		t.Errorf("error %q does not include line number", pe.Error())
	}
	long := strings.Repeat("x", 500)
	_, err = ParseRecord(long)
	if len(err.Error()) > 200 {
		t.Errorf("error for long line not truncated: %d bytes", len(err.Error()))
	}
}

func ipv4(v uint32) string {
	return itoa(int(v>>24&255)) + "." + itoa(int(v>>16&255)) + "." +
		itoa(int(v>>8&255)) + "." + itoa(int(v&255))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
