package clf

import (
	"strings"
	"testing"
)

// FuzzParseRecord checks the common-format parser never panics and that
// anything it accepts re-renders to a line it accepts again, unchanged.
func FuzzParseRecord(f *testing.F) {
	f.Add(sampleLine)
	f.Add(`192.168.1.1 - alice [02/Jan/2006:15:04:05 -0500] "POST /login HTTP/1.0" 302 -`)
	f.Add(`x - - [02/Jan/2006:15:04:05 +0000] "GET / HTTP/1.1" 200 0`)
	f.Add("")
	f.Add(`1.2.3.4 - - [bad date] "GET / HTTP/1.1" 200 1`)
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		again, err := ParseRecord(rec.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", line, rec.String(), err)
		}
		if again.String() != rec.String() {
			t.Fatalf("rendering not a fixed point: %q vs %q", again.String(), rec.String())
		}
	})
}

// FuzzParseCombinedRecord checks the combined-format parser likewise.
func FuzzParseCombinedRecord(f *testing.F) {
	f.Add(sampleLine + ` "/ref.html" "Mozilla/5.0"`)
	f.Add(sampleLine + ` "-" "-"`)
	f.Add(sampleLine)
	f.Add(`"" ""`)
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCombinedRecord(line)
		if err != nil {
			return
		}
		again, err := ParseCombinedRecord(rec.CombinedString())
		if err != nil {
			t.Fatalf("accepted %q but rejected rendering %q: %v", line, rec.CombinedString(), err)
		}
		if again.CombinedString() != rec.CombinedString() {
			t.Fatalf("rendering not a fixed point: %q", again.CombinedString())
		}
	})
}

// FuzzScanner checks that the scanner consumes arbitrary input without
// panicking and accounts for every non-blank line.
func FuzzScanner(f *testing.F) {
	f.Add(sampleLine + "\ngarbage\n\n" + sampleLine)
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		sc := NewScanner(strings.NewReader(input))
		good := 0
		for sc.Scan() {
			good++
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("string reader errored: %v", err)
		}
		bad, _ := sc.Malformed()
		nonBlank := 0
		for _, l := range strings.Split(input, "\n") {
			if !isBlank(l) {
				nonBlank++
			}
		}
		if good+bad != nonBlank {
			t.Fatalf("accounted %d+%d lines of %d", good, bad, nonBlank)
		}
	})
}
