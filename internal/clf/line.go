package clf

import (
	"bytes"
	"errors"
	"io"
)

// errLineTooLong is lineScanner's per-line verdict for input lines whose
// content (excluding the terminating '\n') exceeds maxLineBytes. It is
// reported exactly once per over-long line; the line's bytes are discarded
// without ever being buffered whole, so a hostile 10 GiB "line" costs a
// bounded buffer, not an abort and not 10 GiB of heap.
var errLineTooLong = errors.New("clf: line exceeds the 1 MiB line cap")

// maxConsecutiveEmptyReads mirrors bufio.Scanner's guard against readers
// that spin returning (0, nil).
const maxConsecutiveEmptyReads = 100

// lineScanner is a hand-rolled replacement for bufio.Scanner+ScanLines on
// the sequential read path: it finds line boundaries with bytes.IndexByte
// over a growable buffer and hands out sub-slices of that buffer — no
// per-line token copy, no split-function indirection. Semantics match
// bufio.ScanLines (lines end at '\n', one trailing '\r' is dropped, a final
// unterminated line is yielded — even ahead of a read error, as bufio does)
// except for over-long lines: where bufio.Scanner aborts the whole scan with
// ErrTooLong, lineScanner skips the line and reports errLineTooLong once, so
// one hostile line cannot stop ingestion of everything after it.
type lineScanner struct {
	r          io.Reader
	buf        []byte
	start, end int   // buf[start:end] is unconsumed input
	rerr       error // sticky read result (io.EOF or a real error)
	skipping   bool  // discarding the tail of an over-long line
	emptyReads int
}

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{r: r, buf: make([]byte, 64*1024)}
}

// next returns the next line with its terminator removed. At end of input it
// returns (nil, io.EOF); an over-long line returns (nil, errLineTooLong) and
// the scan continues past it; any other error is a read error and terminal.
// The returned slice aliases the scanner's buffer and is valid only until
// the following call.
func (ls *lineScanner) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(ls.buf[ls.start:ls.end], '\n'); i >= 0 {
			line := ls.buf[ls.start : ls.start+i]
			ls.start += i + 1
			if ls.skipping {
				// Tail of a line already reported as over-long.
				ls.skipping = false
				continue
			}
			if len(line) > maxLineBytes {
				return nil, errLineTooLong
			}
			return dropCR(line), nil
		}
		// No newline buffered. If the unterminated prefix already exceeds the
		// cap, this line can never be returned: report it, drop the bytes,
		// and skip forward to its newline.
		if ls.skipping {
			ls.start, ls.end = 0, 0
		} else if ls.end-ls.start > maxLineBytes {
			ls.start, ls.end = 0, 0
			ls.skipping = true
			return nil, errLineTooLong
		}
		if ls.rerr != nil {
			if ls.skipping {
				// The over-long line ran into end-of-input; already reported.
				ls.skipping = false
				return nil, ls.rerr
			}
			line := ls.buf[ls.start:ls.end]
			ls.start = ls.end
			if len(line) > 0 {
				// Final unterminated line (bufio yields it before surfacing
				// the sticky error, EOF or not — so do we).
				return dropCR(line), nil
			}
			return nil, ls.rerr
		}
		ls.fill()
	}
}

// fill compacts, grows if needed, and reads once.
func (ls *lineScanner) fill() {
	if ls.start > 0 {
		copy(ls.buf, ls.buf[ls.start:ls.end])
		ls.end -= ls.start
		ls.start = 0
	}
	if ls.end == len(ls.buf) {
		// Double up to just past the line cap: the over-long check in next()
		// fires strictly before the buffer would need to exceed this.
		n := 2 * len(ls.buf)
		if cap := maxLineBytes + 64*1024; n > cap {
			n = cap
		}
		nb := make([]byte, n)
		copy(nb, ls.buf[:ls.end])
		ls.buf = nb
	}
	n, err := ls.r.Read(ls.buf[ls.end:])
	if n < 0 {
		err = errors.New("clf: reader returned a negative count")
	} else {
		ls.end += n
	}
	switch {
	case err != nil:
		ls.rerr = err
	case n == 0:
		ls.emptyReads++
		if ls.emptyReads >= maxConsecutiveEmptyReads {
			ls.rerr = io.ErrNoProgress
		}
	default:
		ls.emptyReads = 0
	}
}

// dropCR drops one terminal \r, mirroring bufio.ScanLines.
func dropCR(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		return b[:n-1]
	}
	return b
}
