package clf

import (
	"strings"
)

// Combined Log Format support. The combined format extends the common
// format with two quoted fields:
//
//	host ident authuser [date] "request" status bytes "referer" "user-agent"
//
// The paper's pipeline uses the common format (referrers were not assumed
// available); combined-format support lets the same pipeline consume modern
// logs and enables the referrer-based reconstruction upper bound
// (internal/referrer). Record carries the extra fields; they are empty for
// common-format lines.

// NoField is the literal a combined log uses for an absent referer ("-").
const NoField = "-"

// HasReferer reports whether the record carries a usable referer.
func (r Record) HasReferer() bool { return r.Referer != "" && r.Referer != NoField }

// CombinedString renders the record as a combined-format line. Empty
// referer/user-agent render as "-".
func (r Record) CombinedString() string {
	ref, agent := r.Referer, r.UserAgent
	if ref == "" {
		ref = NoField
	}
	if agent == "" {
		agent = NoField
	}
	return r.String() + " \"" + escapeQuoted(ref) + "\" \"" + escapeQuoted(agent) + "\""
}

// escapeQuoted drops embedded double quotes, which the combined format
// cannot represent unescaped; real servers escape or strip them too.
func escapeQuoted(s string) string {
	if !strings.ContainsRune(s, '"') {
		return s
	}
	return strings.ReplaceAll(s, `"`, "")
}

// ParseCombinedRecord parses a combined-format line. The common-format
// prefix is parsed strictly; the trailing "referer" "user-agent" pair is
// required.
func ParseCombinedRecord(line string) (Record, error) {
	trimmed := strings.TrimRight(line, "\r\n")
	prefix, ref, agent, ok := splitCombinedTail(trimmed)
	if !ok {
		return Record{}, &ParseError{Line: line, Reason: "missing \"referer\" \"user-agent\" tail"}
	}
	rec, err := ParseRecord(prefix)
	if err != nil {
		return Record{}, err
	}
	rec.Referer = ref
	rec.UserAgent = agent
	return rec, nil
}

// ParseAnyRecord parses a line in either format, reporting which one it
// found (combined when the quoted tail is present).
func ParseAnyRecord(line string) (Record, bool, error) {
	if rec, err := ParseCombinedRecord(line); err == nil {
		return rec, true, nil
	}
	rec, err := ParseRecord(line)
	return rec, false, err
}

// splitCombinedTail splits `... "referer" "agent"` into the common-format
// prefix and the two unquoted tail values.
func splitCombinedTail(line string) (prefix, referer, agent string, ok bool) {
	if !strings.HasSuffix(line, `"`) {
		return "", "", "", false
	}
	body := line[:len(line)-1]
	q := strings.LastIndexByte(body, '"')
	if q < 0 {
		return "", "", "", false
	}
	agent = body[q+1:]
	body = strings.TrimRight(body[:q], " ")
	if !strings.HasSuffix(body, `"`) {
		return "", "", "", false
	}
	body = body[:len(body)-1]
	q = strings.LastIndexByte(body, '"')
	if q < 0 {
		return "", "", "", false
	}
	referer = body[q+1:]
	prefix = strings.TrimRight(body[:q], " ")
	// The request-line quotes must still be present in the prefix; otherwise
	// we just consumed them (a common-format line ending in quotes).
	if strings.Count(prefix, `"`) < 2 {
		return "", "", "", false
	}
	return prefix, referer, agent, true
}
