package heuristics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func TestNamesAndDescriptions(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	hs := []Reconstructor{NewTimeTotal(), NewTimeGap(), NewNavigation(g), NewSmartSRA(g)}
	wantNames := []string{"heur1", "heur2", "heur3", "heur4"}
	for i, h := range hs {
		if h.Name() != wantNames[i] {
			t.Errorf("heuristic %d Name = %q, want %q", i, h.Name(), wantNames[i])
		}
		d, ok := h.(Describer)
		if !ok || d.Describe() == "" {
			t.Errorf("%s has no description", h.Name())
		}
	}
	if !strings.Contains(NewSmartSRA(g).Describe(), "drop") {
		t.Error("Smart-SRA description missing orphan policy")
	}
	if OrphanNewSession.String() != "new-session" || OrphanPolicy(9).String() == "" {
		t.Error("OrphanPolicy.String wrong")
	}
}

func TestEmptyAndSingletonStreams(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	hs := []Reconstructor{NewTimeTotal(), NewTimeGap(), NewNavigation(g), NewSmartSRA(g)}
	for _, h := range hs {
		if got := h.Reconstruct(session.Stream{User: "u"}); len(got) != 0 {
			t.Errorf("%s on empty stream: %v", h.Name(), got)
		}
		one := figStream(ids, "P1", 0)
		got := h.Reconstruct(one)
		if len(got) != 1 || got[0].Len() != 1 || got[0].Entries[0].Page != ids["P1"] {
			t.Errorf("%s on singleton stream: %v", h.Name(), got)
		}
		if got[0].User != "agent" {
			t.Errorf("%s lost user attribution: %q", h.Name(), got[0].User)
		}
	}
}

func TestTimeTotalBoundaryInclusive(t *testing.T) {
	_, ids := webgraph.PaperFigure1()
	// Exactly δ from the first page: still the same session (ti - t0 ≤ δ).
	st := figStream(ids, "P1", 0, "P20", 30)
	got := NewTimeTotal().Reconstruct(st)
	if len(got) != 1 {
		t.Errorf("30-minute-span stream split: %v", got)
	}
	st2 := figStream(ids, "P1", 0, "P20", 31)
	if got := NewTimeTotal().Reconstruct(st2); len(got) != 2 {
		t.Errorf("31-minute-span stream not split: %v", got)
	}
}

func TestTimeGapBoundaryInclusive(t *testing.T) {
	_, ids := webgraph.PaperFigure1()
	st := figStream(ids, "P1", 0, "P20", 10)
	if got := NewTimeGap().Reconstruct(st); len(got) != 1 {
		t.Errorf("10-minute gap split: %v", got)
	}
	st2 := figStream(ids, "P1", 0, "P20", 11)
	if got := NewTimeGap().Reconstruct(st2); len(got) != 2 {
		t.Errorf("11-minute gap not split: %v", got)
	}
}

func TestTimeTotalRestartsWindowAtNewSession(t *testing.T) {
	_, ids := webgraph.PaperFigure1()
	// 0, 31 (split), 45: the 45 entry is within 30 of 31, so joins session 2.
	st := figStream(ids, "P1", 0, "P20", 31, "P13", 45)
	got := NewTimeTotal().Reconstruct(st)
	if len(got) != 2 || got[1].Len() != 2 {
		t.Errorf("window not restarted: %v", got)
	}
}

func TestNavigationClosesSessionWhenUnreachable(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// P49's only in-link is from P13; from [P20] nothing reaches P49.
	st := figStream(ids, "P20", 0, "P49", 2)
	got := names(ids, NewNavigation(g).Reconstruct(st))
	if len(got) != 2 || !eqSeq(got[0], []string{"P20"}) || !eqSeq(got[1], []string{"P49"}) {
		t.Errorf("navigation did not close unreachable session: %v", got)
	}
}

func TestNavigationBacktracksMultipleSteps(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// [P1, P13, P34]; next P20 is linked only from P1 (index 0): backward
	// movements P13, P1 are inserted.
	st := figStream(ids, "P1", 0, "P13", 2, "P34", 4, "P20", 6)
	got := names(ids, NewNavigation(g).Reconstruct(st))
	want := []string{"P1", "P13", "P34", "P13", "P1", "P20"}
	if len(got) != 1 || !eqSeq(got[0], want) {
		t.Errorf("multi-step backtrack = %v, want %v", got, want)
	}
}

func TestNavigationPairsAreForwardOrBackwardEdges(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	st := figStream(ids, "P1", 0, "P13", 1, "P49", 2, "P34", 3, "P20", 4, "P23", 5)
	for _, s := range NewNavigation(g).Reconstruct(st) {
		for i := 1; i < len(s.Entries); i++ {
			a, b := s.Entries[i-1].Page, s.Entries[i].Page
			if !g.HasEdge(a, b) && !g.HasEdge(b, a) {
				t.Errorf("pair %d (%d,%d) is neither a forward nor backward edge",
					i, a, b)
			}
		}
	}
	_ = ids
}

func TestSmartSRATimeOrphanBecomesSingleton(t *testing.T) {
	// Candidate [A@0, B@5, C@9, O@14] with edges A->B, B->C, A->O.
	// O's only referrer A is 14 minutes old (> ρ), so the referrer does not
	// count (Step I applies the page-stay bound) and O is a start page of
	// the very first wave: it becomes its own session rather than being
	// appended to A's or dropped.
	b := webgraph.NewBuilder(4)
	for _, e := range [][2]webgraph.PageID{{0, 1}, {1, 2}, {0, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	st := session.Stream{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0},
		{Page: 1, Time: t0.Add(5 * time.Minute)},
		{Page: 2, Time: t0.Add(9 * time.Minute)},
		{Page: 3, Time: t0.Add(14 * time.Minute)},
	}}
	got := NewSmartSRA(g).Reconstruct(st)
	if len(got) != 2 {
		t.Fatalf("got %v, want [0 1 2] and [3]", got)
	}
	foundChain, foundSingleton := false, false
	for _, s := range got {
		if s.Len() == 3 && s.Entries[0].Page == 0 && s.Entries[2].Page == 2 {
			foundChain = true
		}
		if s.Len() == 1 && s.Entries[0].Page == 3 {
			foundSingleton = true
		}
	}
	if !foundChain || !foundSingleton {
		t.Errorf("got %v, want [0 1 2] and [3]", got)
	}
}

// Property: the two orphan policies produce identical output. Because Step I
// and Step III apply the same (link, strict time order, ρ) predicate, the
// last-removed referrer of any page always leaves behind a session ending in
// itself, so no page can fail to attach: the pseudocode's implicit drop case
// is unreachable. This test pins down that non-obvious invariant.
func TestSmartSRAOrphanPoliciesEquivalentProperty(t *testing.T) {
	g := fuzzGraph(t)
	drop := NewSmartSRA(g)
	keep := NewSmartSRA(g)
	keep.Orphans = OrphanNewSession
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(g, rng, int(size)%80)
		a, b := drop.Reconstruct(st), keep.Reconstruct(st)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSmartSRAPhase1Splits(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	h := NewSmartSRA(g)
	// An 11-minute gap forces a Phase-1 split even though P13->P49 is an edge.
	st := figStream(ids, "P1", 0, "P13", 5, "P49", 17)
	got := names(ids, h.Reconstruct(st))
	if !containsSeq(got, []string{"P1", "P13"}) || !containsSeq(got, []string{"P49"}) {
		t.Errorf("page-stay split missing: %v", got)
	}
	// Total-duration split: increments of 9 minutes stay under ρ but pass δ.
	st2 := figStream(ids, "P1", 0, "P13", 9, "P49", 18, "P23", 27, "P23", 36)
	got2 := NewSmartSRA(g).Reconstruct(st2)
	for _, s := range got2 {
		if s.Duration() > h.Rules.TotalDuration {
			t.Errorf("session exceeds δ: %v", s)
		}
	}
}

func TestSmartSRAAblationFlags(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// 11-minute gap between linked pages.
	st := figStream(ids, "P1", 0, "P13", 11)

	noGap := NewSmartSRA(g)
	noGap.DisablePageStay = true
	got := noGap.Reconstruct(st)
	// Phase 1 keeps them together, but Phase 2's ρ check still refuses the
	// 11-minute extension, so they end up as separate sessions.
	if len(got) != 2 {
		t.Errorf("DisablePageStay: got %v", got)
	}

	skip := NewSmartSRA(g)
	skip.SkipPhase1 = true
	st2 := figStream(ids, "P1", 0, "P13", 50)
	got2 := skip.Reconstruct(st2)
	if len(got2) != 2 {
		t.Errorf("SkipPhase1 with distant pages: got %v", got2)
	}

	noTotal := NewSmartSRA(g)
	noTotal.DisableTotalDuration = true
	st3 := figStream(ids, "P1", 0, "P13", 9, "P49", 18, "P23", 27, "P23", 36)
	for _, s := range noTotal.Reconstruct(st3) {
		if !s.SatisfiesTimestampOrdering(noTotal.Rules) {
			t.Errorf("DisableTotalDuration broke ordering rule: %v", s)
		}
	}
}

func TestSmartSRADuplicateTimestampsDoNotChain(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// Two requests with identical timestamps: the Timestamp Ordering Rule
	// requires strictly increasing times, so P13 cannot extend P1's session.
	st := figStream(ids, "P1", 0, "P13", 0)
	got := NewSmartSRA(g).Reconstruct(st)
	if len(got) != 2 {
		t.Errorf("equal-timestamp pages chained: %v", got)
	}
	for _, s := range got {
		if !s.SatisfiesTimestampOrdering(session.DefaultRules()) {
			t.Errorf("output violates ordering rule: %v", s)
		}
	}
}

func TestReconstructAll(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	streams := []session.Stream{table1(ids), table3(ids)}
	got := ReconstructAll(NewSmartSRA(g), streams)
	if len(got) < 4 {
		t.Errorf("ReconstructAll produced %d sessions", len(got))
	}
	if got := ReconstructAll(NewTimeGap(), nil); len(got) != 0 {
		t.Errorf("ReconstructAll(nil streams) = %v", got)
	}
}

// randomStream builds a pseudo-random request stream over g: mostly
// link-following with occasional jumps, gaps, and duplicate timestamps, to
// stress the heuristics far from the happy path.
func randomStream(g *webgraph.Graph, rng *rand.Rand, n int) session.Stream {
	st := session.Stream{User: "fuzz"}
	now := t0
	cur := webgraph.PageID(rng.Intn(g.NumPages()))
	for i := 0; i < n; i++ {
		st.Entries = append(st.Entries, session.Entry{Page: cur, Time: now})
		switch rng.Intn(10) {
		case 0: // jump anywhere
			cur = webgraph.PageID(rng.Intn(g.NumPages()))
		case 1: // repeat with identical timestamp
			continue
		default:
			succ := g.Succ(cur)
			if len(succ) == 0 {
				cur = webgraph.PageID(rng.Intn(g.NumPages()))
			} else {
				cur = succ[rng.Intn(len(succ))]
			}
		}
		// Gaps: usually small, sometimes past ρ or δ.
		switch rng.Intn(12) {
		case 0:
			now = now.Add(12 * time.Minute)
		case 1:
			now = now.Add(40 * time.Minute)
		default:
			now = now.Add(time.Duration(1+rng.Intn(5)) * time.Minute)
		}
	}
	return st
}

func fuzzGraph(t testing.TB) *webgraph.Graph {
	t.Helper()
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 60, AvgOutDegree: 4, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Property: Smart-SRA output always satisfies all three session rules.
func TestSmartSRAOutputsAlwaysValidProperty(t *testing.T) {
	g := fuzzGraph(t)
	h := NewSmartSRA(g)
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(g, rng, int(size)%80)
		for _, s := range h.Reconstruct(st) {
			if !s.Valid(g, h.Rules) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Smart-SRA output contains no session subsumed by another
// (maximality, §3 "only maximal sequences are kept").
func TestSmartSRAMaximalityProperty(t *testing.T) {
	g := fuzzGraph(t)
	h := NewSmartSRA(g)
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(g, rng, int(size)%60)
		out := h.Reconstruct(st)
		return len(session.MaximalOnly(out)) == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the time heuristics partition the input: concatenating their
// output sessions reproduces the stream exactly.
func TestTimeHeuristicsPartitionProperty(t *testing.T) {
	g := fuzzGraph(t)
	for _, h := range []Reconstructor{NewTimeTotal(), NewTimeGap()} {
		f := func(seed int64, size uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			st := randomStream(g, rng, int(size)%80)
			var rebuilt []session.Entry
			for _, s := range h.Reconstruct(st) {
				rebuilt = append(rebuilt, s.Entries...)
			}
			if len(rebuilt) != len(st.Entries) {
				return false
			}
			for i := range rebuilt {
				if rebuilt[i] != st.Entries[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// Property: navigation-oriented output preserves the input requests in
// order once inserted backward movements are removed, and every output pair
// is either a forward or a backward hyperlink.
func TestNavigationPreservesInputProperty(t *testing.T) {
	g := fuzzGraph(t)
	h := NewNavigation(g)
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(g, rng, int(size)%60)
		var all []session.Entry
		for _, s := range h.Reconstruct(st) {
			for i := 1; i < len(s.Entries); i++ {
				a, b := s.Entries[i-1].Page, s.Entries[i].Page
				if !g.HasEdge(a, b) && !g.HasEdge(b, a) {
					return false
				}
			}
			all = append(all, s.Entries...)
		}
		// Original entries appear as a subsequence (by page and time).
		j := 0
		for _, e := range all {
			if j < len(st.Entries) && e == st.Entries[j] {
				j++
			}
		}
		return j == len(st.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: all heuristics are deterministic.
func TestHeuristicsDeterministicProperty(t *testing.T) {
	g := fuzzGraph(t)
	hs := []Reconstructor{NewTimeTotal(), NewTimeGap(), NewNavigation(g), NewSmartSRA(g)}
	rng := rand.New(rand.NewSource(21))
	st := randomStream(g, rng, 50)
	for _, h := range hs {
		a := h.Reconstruct(st)
		b := h.Reconstruct(st)
		if len(a) != len(b) {
			t.Errorf("%s nondeterministic session count", h.Name())
			continue
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%s nondeterministic session %d", h.Name(), i)
			}
		}
	}
}

// Property: heuristics do not modify their input stream.
func TestHeuristicsDoNotMutateInput(t *testing.T) {
	g := fuzzGraph(t)
	rng := rand.New(rand.NewSource(31))
	st := randomStream(g, rng, 40)
	snapshot := append([]session.Entry(nil), st.Entries...)
	for _, h := range []Reconstructor{NewTimeTotal(), NewTimeGap(), NewNavigation(g), NewSmartSRA(g)} {
		_ = h.Reconstruct(st)
		for i := range snapshot {
			if st.Entries[i] != snapshot[i] {
				t.Fatalf("%s mutated input at %d", h.Name(), i)
			}
		}
	}
}

func TestSmartSRAInferBacktracks(t *testing.T) {
	// Stream [B@0, C@2, X@4] with edges B->C and B->X only. The user really
	// backtracked from C to B (cache) before fetching X, so the real second
	// session is [B, X]. Plain Smart-SRA attaches X nowhere useful once C
	// extended [B]; with InferBacktracks the inferred [B, X] session appears.
	b := webgraph.NewBuilder(3)
	for _, e := range [][2]webgraph.PageID{{0, 1}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	st := session.Stream{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0},
		{Page: 1, Time: t0.Add(2 * time.Minute)},
		{Page: 2, Time: t0.Add(4 * time.Minute)},
	}}

	plain := NewSmartSRA(g)
	gotPlain := plain.Reconstruct(st)
	// Plain Smart-SRA: wave 1 {B}, wave 2 {C, X} both extend [B]: the
	// sessions [B,C] and [B,X] already both exist here (same-wave fan-out),
	// so use a harder case below for the difference; first confirm the
	// fan-out baseline.
	if len(gotPlain) != 2 {
		t.Fatalf("baseline fan-out: %v", gotPlain)
	}

	// Harder: [B@0, C@2, D@4, X@6], edges B->C, C->D, B->X. X's wave comes
	// after C extended [B] (wave 2) and D extended [B,C] (wave 3)... X is a
	// wave-2 page too (its only referrer B is removed in wave 1). Push X to
	// a later wave by giving it referrer D as well: edges B->X, D->X is not
	// what we want (D would anchor it). Instead make X arrive with B out of
	// every session *end*: B@0, C@2, X@12 with ρ=10: B->X gap 12 > ρ, so no
	// wave ever anchors X to B — and InferBacktracks (which applies the same
	// ρ rule) must NOT invent it either.
	st2 := session.Stream{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0},
		{Page: 1, Time: t0.Add(2 * time.Minute)},
		{Page: 2, Time: t0.Add(12 * time.Minute)},
	}}
	infer := NewSmartSRA(g)
	infer.InferBacktracks = true
	got2 := infer.Reconstruct(st2)
	for _, s := range got2 {
		if !s.Valid(g, infer.Rules) {
			t.Errorf("inferred session violates rules: %v", s)
		}
		if s.Len() == 2 && s.Entries[0].Page == 0 && s.Entries[1].Page == 2 {
			t.Errorf("inferred backtrack ignored the ρ rule: %v", got2)
		}
	}
}

func TestSmartSRAInferBacktracksRecoversInterleavedSession(t *testing.T) {
	// Pages A,B,C,E (0,1,2,3) with edges A->B, B->C, A->E, C->E. Stream
	// [A@0, B@2, C@4, E@6]: E stays out of the early waves because its
	// referrer C is still alive, so by E's wave the only session is
	// [A, B, C] and E anchors to C — the candidate [A,B,C,E] does not
	// contain [A, E] contiguously. The real user backtracked to A through
	// the cache before fetching E, so the ground-truth second session is
	// [A, E]; only backtrack inference recovers it.
	b := webgraph.NewBuilder(4)
	for _, e := range [][2]webgraph.PageID{{0, 1}, {1, 2}, {0, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	st := session.Stream{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0},
		{Page: 1, Time: t0.Add(2 * time.Minute)},
		{Page: 2, Time: t0.Add(4 * time.Minute)},
		{Page: 3, Time: t0.Add(6 * time.Minute)},
	}}
	want := session.Session{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0}, {Page: 3, Time: t0.Add(6 * time.Minute)},
	}}

	plain := NewSmartSRA(g)
	if session.CapturedByAny(plain.Reconstruct(st), want) {
		t.Fatal("plain Smart-SRA unexpectedly captured [A E]; test premise broken")
	}
	infer := NewSmartSRA(g)
	infer.InferBacktracks = true
	got := infer.Reconstruct(st)
	if !session.CapturedByAny(got, want) {
		t.Errorf("InferBacktracks did not recover [A E]: %v", got)
	}
	for _, s := range got {
		if !s.Valid(g, infer.Rules) {
			t.Errorf("session violates rules: %v", s)
		}
	}
	if got := infer.Describe(); !strings.Contains(got, "infer-backtracks") {
		t.Errorf("Describe = %q", got)
	}
}

// Property: InferBacktracks preserves validity and maximality and never
// reduces the set of captured page pairs.
func TestSmartSRAInferBacktracksValidityProperty(t *testing.T) {
	g := fuzzGraph(t)
	infer := NewSmartSRA(g)
	infer.InferBacktracks = true
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(g, rng, int(size)%60)
		out := infer.Reconstruct(st)
		for _, s := range out {
			if !s.Valid(g, infer.Rules) {
				return false
			}
		}
		return len(session.MaximalOnly(out)) == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNavigationMaxGap(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// P1 -> P13 linked but 25 minutes apart.
	st := figStream(ids, "P1", 0, "P13", 25)
	plain := NewNavigation(g)
	if got := plain.Reconstruct(st); len(got) != 1 {
		t.Errorf("paper configuration split on time: %v", got)
	}
	limited := NewNavigation(g)
	limited.MaxGap = 10 * time.Minute
	got := limited.Reconstruct(st)
	if len(got) != 2 {
		t.Errorf("MaxGap=10m did not split: %v", got)
	}
	// Within the gap, behavior is unchanged.
	st2 := figStream(ids, "P1", 0, "P13", 5)
	if got := limited.Reconstruct(st2); len(got) != 1 || got[0].Len() != 2 {
		t.Errorf("MaxGap split a tight session: %v", got)
	}
}
