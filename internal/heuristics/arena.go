package heuristics

import "smartsra/internal/session"

// entryArena hands out session.Entry slices for the constructed sessions of
// one reconstruction from a few large blocks instead of one heap allocation
// per session. Returned slices have exact capacity (three-index slicing),
// so a caller appending to a retained session falls off the arena instead
// of clobbering a neighbour. Allocation is append-only within a block —
// handed-out regions are never rewritten — so an arena is safe to reuse
// across Reconstruct calls (the scratch pool does): retained sessions pin at
// most one partially shared block, bounded by arenaMaxBlock.
type entryArena struct {
	block []session.Entry
	// next sizes the next block: seeded near the stream length so small
	// users get one small block, growing geometrically (capped) under
	// session-set blowup.
	next int
}

// arenaMaxBlock caps block growth so a pathological candidate does not make
// every later block huge.
const arenaMaxBlock = 4096

// alloc returns a zeroed n-entry slice with capacity exactly n.
func (a *entryArena) alloc(n int) []session.Entry {
	if cap(a.block)-len(a.block) < n {
		size := a.next
		if size < 64 {
			size = 64
		}
		if size > arenaMaxBlock {
			size = arenaMaxBlock
		}
		if size < n {
			size = n
		}
		a.block = make([]session.Entry, 0, size)
		a.next = size * 2
	}
	lo := len(a.block)
	a.block = a.block[:lo+n]
	return a.block[lo : lo+n : lo+n]
}

// clone1 allocates a one-entry session.
func (a *entryArena) clone1(e session.Entry) []session.Entry {
	s := a.alloc(1)
	s[0] = e
	return s
}

// clone2 allocates a two-entry session.
func (a *entryArena) clone2(e0, e1 session.Entry) []session.Entry {
	s := a.alloc(2)
	s[0], s[1] = e0, e1
	return s
}

// extend returns sess with e appended. When sess is the arena's most recent
// allocation and its block has room, it grows in place — the appended slot
// was never handed out, so every existing region (including sess itself,
// which other holders may retain) is untouched, preserving the append-only
// invariant. A session built by successive extends then costs O(n) writes
// instead of the O(n²) of copy-per-extend. Otherwise it allocates a copy.
func (a *entryArena) extend(sess []session.Entry, e session.Entry) []session.Entry {
	n := len(sess)
	if lo := len(a.block) - n; n > 0 && lo >= 0 &&
		cap(a.block) > len(a.block) && &a.block[lo] == &sess[0] {
		a.block = a.block[:lo+n+1]
		a.block[lo+n] = e
		return a.block[lo : lo+n+1 : lo+n+1]
	}
	s := a.alloc(n + 1)
	copy(s, sess)
	s[n] = e
	return s
}

// cloneAll allocates an exact-size copy of sess.
func (a *entryArena) cloneAll(sess []session.Entry) []session.Entry {
	s := a.alloc(len(sess))
	copy(s, sess)
	return s
}
