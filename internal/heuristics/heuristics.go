// Package heuristics implements the four reactive session reconstruction
// strategies the paper evaluates:
//
//	heur1  time-oriented, total session duration ≤ δ (TimeTotal)
//	heur2  time-oriented, page-stay time ≤ ρ       (TimeGap)
//	heur3  navigation-oriented with path completion (Navigation)
//	heur4  Smart-SRA, the paper's contribution      (SmartSRA)
//
// All four consume a per-user request Stream (timestamp order) and emit the
// reconstructed sessions for that user. They are pure functions of their
// input and configuration, safe for concurrent use.
package heuristics

import (
	"smartsra/internal/session"
)

// Reconstructor is a session reconstruction heuristic.
type Reconstructor interface {
	// Name returns a short stable identifier ("heur1" ... "heur4") used in
	// reports; see also Describe.
	Name() string
	// Reconstruct splits one user's request stream into sessions. The input
	// must be in non-decreasing timestamp order (prep.BuildStreams
	// guarantees this). Implementations never retain or modify the input.
	Reconstruct(stream session.Stream) []session.Session
}

// Describer is implemented by heuristics that can explain themselves.
type Describer interface {
	Describe() string
}

// ReconstructAll applies h to every stream and concatenates the results.
func ReconstructAll(h Reconstructor, streams []session.Stream) []session.Session {
	var out []session.Session
	for _, st := range streams {
		out = append(out, h.Reconstruct(st)...)
	}
	return out
}
