// Package heuristics implements the four reactive session reconstruction
// strategies the paper evaluates:
//
//	heur1  time-oriented, total session duration ≤ δ (TimeTotal)
//	heur2  time-oriented, page-stay time ≤ ρ       (TimeGap)
//	heur3  navigation-oriented with path completion (Navigation)
//	heur4  Smart-SRA, the paper's contribution      (SmartSRA)
//
// All four consume a per-user request Stream (timestamp order) and emit the
// reconstructed sessions for that user. They are pure functions of their
// input and configuration, safe for concurrent use.
package heuristics

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smartsra/internal/session"
)

// Reconstructor is a session reconstruction heuristic.
type Reconstructor interface {
	// Name returns a short stable identifier ("heur1" ... "heur4") used in
	// reports; see also Describe.
	Name() string
	// Reconstruct splits one user's request stream into sessions. The input
	// must be in non-decreasing timestamp order (prep.BuildStreams
	// guarantees this). Implementations never retain or modify the input.
	Reconstruct(stream session.Stream) []session.Session
}

// Describer is implemented by heuristics that can explain themselves.
type Describer interface {
	Describe() string
}

// SessionAppender is an optional Reconstructor extension for streaming
// callers: AppendSessions reconstructs stream like Reconstruct but appends
// the sessions onto dst and returns it, so a consumer closing millions of
// bursts can drain into one reused output slice instead of allocating an
// intermediate slice per burst. The appended region must equal what
// Reconstruct would have returned, in the same order; like Reconstruct,
// implementations never retain or modify the input stream.
type SessionAppender interface {
	AppendSessions(dst []session.Session, stream session.Stream) []session.Session
}

// ReconstructAll applies h to every stream and concatenates the results.
func ReconstructAll(h Reconstructor, streams []session.Stream) []session.Session {
	var out []session.Session
	for _, st := range streams {
		out = append(out, h.Reconstruct(st)...)
	}
	return out
}

// ReconstructAllWith is ReconstructAll sharded across a bounded worker pool:
// streams are partitioned over min(workers, len(streams)) goroutines (each
// user's stream reconstructed exactly once) and the per-stream results are
// concatenated in stream order, so the output is identical to
// ReconstructAll's for any worker count. workers <= 0 means GOMAXPROCS;
// workers == 1 (or a single stream) runs inline with no goroutines.
//
// Heuristics are pure functions of their input (see Reconstructor), which is
// what makes the per-user work embarrassingly parallel.
func ReconstructAllWith(h Reconstructor, streams []session.Stream, workers int) []session.Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	if workers <= 1 {
		return ReconstructAll(h, streams)
	}
	per := make([][]session.Session, len(streams))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(streams) {
					return
				}
				per[i] = h.Reconstruct(streams[i])
			}
		}()
	}
	wg.Wait()
	var out []session.Session
	for _, sessions := range per {
		out = append(out, sessions...)
	}
	return out
}
