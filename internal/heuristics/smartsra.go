package heuristics

import (
	"fmt"
	"sync"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// OrphanPolicy decides what Smart-SRA's second phase does with a page whose
// every referrer has already been consumed into the interior of the
// constructed sessions, so that no session's *last* element links to it.
type OrphanPolicy int

const (
	// OrphanDrop discards such pages — the literal behaviour of the paper's
	// Figure 2 pseudocode (a page that extends nothing is simply not added
	// to the temporary session set). This is the default.
	OrphanDrop OrphanPolicy = iota
	// OrphanNewSession starts a fresh single-page session for such pages, a
	// natural extension the paper does not specify; exposed for the ablation
	// bench (see DESIGN.md).
	OrphanNewSession
)

// String names the policy for reports.
func (p OrphanPolicy) String() string {
	switch p {
	case OrphanDrop:
		return "drop"
	case OrphanNewSession:
		return "new-session"
	default:
		return fmt.Sprintf("OrphanPolicy(%d)", int(p))
	}
}

// SmartSRA is the paper's Smart Session Reconstruction Algorithm (heur4,
// §3). Phase 1 splits the user's request stream into candidate sessions
// using BOTH time-oriented criteria (total duration δ and page-stay ρ).
// Phase 2 partitions each candidate into maximal sessions that satisfy both
// the Timestamp Ordering Rule and the Topology Rule, by repeatedly peeling
// off the pages that have no remaining referrer and appending them to every
// constructed session whose last page links to them.
//
// Unlike the navigation-oriented heuristic, Smart-SRA never inserts
// artificial backward movements, so its sessions are short, strictly
// forward, and every consecutive pair is hyperlink-connected.
type SmartSRA struct {
	// Graph is the site topology.
	Graph *webgraph.Graph
	// Rules holds δ (TotalDuration) and ρ (PageStay).
	Rules session.Rules
	// Orphans selects the treatment of unattachable pages; see OrphanPolicy.
	Orphans OrphanPolicy
	// SkipPhase1 disables the time-based pre-splitting (ablation only; the
	// whole stream becomes one candidate, though ρ still gates Phase 2
	// referrer/extension checks).
	SkipPhase1 bool
	// DisableTotalDuration drops the δ rule from Phase 1 (ablation only).
	DisableTotalDuration bool
	// DisablePageStay drops the ρ rule from Phase 1 (ablation only; ρ still
	// gates Phase 2 checks).
	DisablePageStay bool
	// InferBacktracks enables the "intelligent path completion" the paper's
	// conclusion calls for as future work: when a page e enters a wave, a
	// fresh two-page session [B, e] is opened for every already-consumed
	// referrer B of e (hyperlink B→e, B earlier, within ρ). This models the
	// user having moved back to B through the browser cache before
	// requesting e — the LPP behavior whose sessions plain Smart-SRA misses
	// whenever B is no longer the last element of any constructed session.
	// Sessions it opens still satisfy both session rules; subsumed ones are
	// pruned by the maximality pass.
	InferBacktracks bool
}

// NewSmartSRA returns heur4 over g with the paper's default thresholds
// (δ = 30 min, ρ = 10 min) and the literal-pseudocode orphan policy.
func NewSmartSRA(g *webgraph.Graph) SmartSRA {
	return SmartSRA{Graph: g, Rules: session.DefaultRules()}
}

// Name implements Reconstructor.
func (SmartSRA) Name() string { return "heur4" }

// Describe implements Describer.
func (h SmartSRA) Describe() string {
	extra := ""
	if h.InferBacktracks {
		extra = ", infer-backtracks"
	}
	return fmt.Sprintf("Smart-SRA (δ=%v, ρ=%v, orphans=%v%s)",
		h.Rules.TotalDuration, h.Rules.PageStay, h.Orphans, extra)
}

// sraScratch holds the reusable working buffers of one reconstruction: the
// Phase-1 candidate boundaries and Phase-2's wave/tpages/rest/removed and
// constructed-set header arrays. Scratches are pooled across Reconstruct
// calls (so SmartSRA stays safe for concurrent use while a streaming Tail
// closing millions of bursts pays no per-burst scratch allocation) and
// reused across every candidate and wave inside one call. Only the entry
// slices of the final sessions — which the caller retains — live in the
// arena, whose append-only blocks make cross-call reuse safe.
// Entry timestamps are mirrored into parallel []int64 UnixNano arrays
// (remainT/restT/…): the wave scans are O(n²) time comparisons per wave, and
// int64 compare/subtract is several times cheaper than time.Time's
// wall/monotonic-aware Before and Sub. The conversion is order-preserving,
// so the session output is unchanged.
// The wave working sets hold int32 indices into the candidate instead of
// Entry values: the per-wave partition then moves 4-byte integers rather
// than 32-byte structs (which carry a pointer, so copying them also pays
// GC write barriers), and the scratch slices stay invisible to the
// garbage collector.
type sraScratch struct {
	bounds   []int             // phase1 candidate start offsets
	remain   []int32           // Step II working set (ping), candidate indices
	remainT  []int64           // remain's UnixNano mirror
	rest     []int32           // Step II working set (pong)
	restT    []int64           // rest's UnixNano mirror
	wave     []bool            // Step I no-remaining-referrer marks
	tpages   []int32           // the current wave's pages
	tpagesT  []int64           // tpages' UnixNano mirror
	removed  []int32           // entries consumed by earlier waves
	removedT []int64           // removed's UnixNano mirror
	extended []bool            // Step III extension marks
	set      [][]session.Entry // constructed-set headers (ping)
	setT     []int64           // UnixNano of each set session's last entry
	tset     [][]session.Entry // constructed-set headers (pong)
	tsetT    []int64           // UnixNano of each tset session's last entry
	arena    entryArena        // backing store for constructed-session entries
}

// sraScratchPool recycles reconstruction scratches across Reconstruct calls
// (and across SmartSRA instances — the scratch carries no per-instance
// state). Pooling is what keeps the streaming hot path allocation-free: a
// Tail closes one burst per user per quiet period, and without the pool each
// close would rebuild every working buffer from nothing.
var sraScratchPool = sync.Pool{New: func() any { return new(sraScratch) }}

// Reconstruct implements Reconstructor.
func (h SmartSRA) Reconstruct(stream session.Stream) []session.Session {
	return h.AppendSessions(nil, stream)
}

// AppendSessions implements SessionAppender: it reconstructs directly onto
// dst, so a caller draining many bursts (core's streaming Tail) reuses one
// output slice instead of paying an intermediate allocation per burst.
func (h SmartSRA) AppendSessions(dst []session.Session, stream session.Stream) []session.Session {
	start := len(dst)
	scr := sraScratchPool.Get().(*sraScratch)
	if scr.arena.block == nil {
		scr.arena.next = len(stream.Entries) + 8
	}
	scr.bounds = h.phase1(stream.Entries, scr.bounds[:0])
	for b := 0; b+1 < len(scr.bounds); b++ {
		cand := stream.Entries[scr.bounds[b]:scr.bounds[b+1]]
		sessions := h.phase2(cand, scr)
		for _, entries := range sessions {
			dst = append(dst, session.Session{User: stream.User, Entries: entries})
		}
	}
	sraScratchPool.Put(scr)
	// The algorithm keeps only maximal sequences; enforce it over this
	// stream's sessions so no output session is subsumed by another (also
	// drops exact duplicates that can arise from separate extension paths).
	// MaximalOnly only allocates when something is dropped; copy the kept
	// tail back in place then.
	kept := session.MaximalOnly(dst[start:])
	if len(kept) != len(dst)-start {
		dst = dst[:start+copy(dst[start:], kept)]
	}
	return dst
}

// phase1 splits a request sequence into candidate sessions using the two
// time-oriented criteria (§3, Phase 1). Candidates are always contiguous
// runs of the input, so it appends their boundary offsets to bounds instead
// of materializing sub-slices: candidate i is entries[bounds[i]:bounds[i+1]].
func (h SmartSRA) phase1(entries []session.Entry, bounds []int) []int {
	if len(entries) == 0 {
		return bounds
	}
	bounds = append(bounds, 0)
	if !h.SkipPhase1 {
		// Integer nanosecond comparisons, same trick as phase2: UnixNano is
		// order-preserving, so the split points are identical to the
		// time.Time.Sub form at a fraction of the per-entry cost.
		rho := h.Rules.PageStay.Nanoseconds()
		delta := h.Rules.TotalDuration.Nanoseconds()
		prev := entries[0].Time.UnixNano()
		startT := prev
		for i := 1; i < len(entries); i++ {
			et := entries[i].Time.UnixNano()
			gapBreak := !h.DisablePageStay && et-prev > rho
			totalBreak := !h.DisableTotalDuration && et-startT > delta
			if gapBreak || totalBreak {
				bounds = append(bounds, i)
				startT = et
			}
			prev = et
		}
	}
	return append(bounds, len(entries))
}

// phase2 runs the paper's Figure 2 procedure on one candidate session,
// returning the constructed topology-valid sessions. The returned outer
// slice aliases scratch storage and is only valid until the next phase2
// call on the same scratch; its element slices come from the scratch's
// entry arena with exact capacity and are safe to retain — the arena only
// ever appends into fresh block space, so reusing the scratch (pooled
// across Reconstruct calls) never rewrites a previously returned session.
func (h SmartSRA) phase2(cand []session.Entry, scr *sraScratch) [][]session.Entry {
	rho := h.Rules.PageStay.Nanoseconds()
	if out, ok := h.phase2Chain(cand, scr, rho); ok {
		return out
	}
	return h.phase2Waves(cand, scr, rho)
}

// phase2Waves is the general wave construction — every candidate that is
// not a pure chain (see phase2Chain) goes through here.
func (h SmartSRA) phase2Waves(cand []session.Entry, scr *sraScratch, rho int64) [][]session.Entry {
	remaining, remT := scr.remain[:0], scr.remainT[:0]
	for i := range cand {
		remaining = append(remaining, int32(i))
		remT = append(remT, cand[i].Time.UnixNano())
	}
	rest, restT := scr.rest[:0], scr.restT[:0]
	newSet, lastT := scr.set[:0], scr.setT[:0]
	removed, remvT := scr.removed[:0], scr.removedT[:0] // consumed by earlier waves
	for len(remaining) > 0 {
		// Step I: collect pages with no remaining referrer — no EARLIER
		// entry (strictly smaller timestamp, within ρ) links to them. See
		// DESIGN.md for the j>i / j<i pseudocode typo note; this reading
		// matches the paper's worked example (Table 4).
		wave := scr.wave
		if cap(wave) < len(remaining) {
			wave = make([]bool, len(remaining))
			scr.wave = wave
		}
		wave = wave[:len(remaining)]
		for i := range remaining {
			et := remT[i]
			start := true
			pi := cand[remaining[i]].Page
			for j := 0; j < i; j++ {
				if rt := remT[j]; rt < et && et-rt <= rho &&
					h.Graph.HasEdge(cand[remaining[j]].Page, pi) {
					start = false
					break
				}
			}
			wave[i] = start
		}
		tpages, tpT := scr.tpages[:0], scr.tpagesT[:0]
		rest, restT = rest[:0], restT[:0]
		for i := range remaining {
			if wave[i] {
				tpages = append(tpages, remaining[i])
				tpT = append(tpT, remT[i])
			} else {
				rest = append(rest, remaining[i])
				restT = append(restT, remT[i])
			}
		}
		scr.tpages, scr.tpagesT = tpages, tpT
		// The earliest remaining entry always qualifies, so progress is
		// guaranteed.
		remaining, rest = rest, remaining // Step II (swap ping/pong buffers)
		remT, restT = restT, remT

		// Step III: extend the constructed sessions.
		if len(newSet) == 0 {
			newSet, lastT = h.appendInferredBacktracks(newSet, lastT, cand, tpages, tpT, removed, remvT, rho, &scr.arena)
			for i := range tpages {
				newSet = append(newSet, scr.arena.clone1(cand[tpages[i]]))
				lastT = append(lastT, tpT[i])
			}
			removed = append(removed, tpages...)
			remvT = append(remvT, tpT...)
			continue
		}
		tset, tlastT := scr.tset[:0], scr.tsetT[:0]
		extended := scr.extended
		if cap(extended) < len(newSet) {
			extended = make([]bool, len(newSet))
			scr.extended = extended
		}
		extended = extended[:len(newSet)]
		for k := range extended {
			extended[k] = false
		}
		for i := range tpages {
			e, et := cand[tpages[i]], tpT[i]
			attached := false
			for k, sess := range newSet {
				if lt := lastT[k]; lt < et && et-lt <= rho &&
					h.Graph.HasEdge(sess[len(sess)-1].Page, e.Page) {
					tset = append(tset, scr.arena.extend(sess, e))
					tlastT = append(tlastT, et)
					extended[k] = true
					attached = true
				}
			}
			if !attached && h.Orphans == OrphanNewSession {
				tset = append(tset, scr.arena.clone1(e))
				tlastT = append(tlastT, et)
			}
		}
		tset, tlastT = h.appendInferredBacktracks(tset, tlastT, cand, tpages, tpT, removed, remvT, rho, &scr.arena)
		for k, sess := range newSet {
			if !extended[k] {
				tset = append(tset, sess)
				tlastT = append(tlastT, lastT[k])
			}
		}
		newSet, tset = tset, newSet // swap ping/pong header buffers
		lastT, tlastT = tlastT, lastT
		scr.set, scr.tset = newSet, tset[:0]
		scr.setT, scr.tsetT = lastT, tlastT[:0]
		removed = append(removed, tpages...)
		remvT = append(remvT, tpT...)
	}
	scr.remain, scr.rest, scr.removed = remaining, rest, removed
	scr.remainT, scr.restT, scr.removedT = remT, restT, remvT
	if len(newSet) > 0 {
		scr.set, scr.setT = newSet, lastT
	}
	return newSet
}

// phase2Chain is phase2's fast path for the dominant burst shape in real
// navigation: a candidate whose entries already form one unambiguous
// referrer chain. Three conditions make the wave construction's outcome a
// foregone conclusion:
//
//  1. timestamps strictly increase with consecutive gaps ≤ ρ, so every
//     Step-I wave is exactly the single next entry;
//  2. the topology has an edge from each entry's page to its successor's,
//     so the wave entry always extends the chain (every session in the
//     constructed set ends at the current chain head, all extend together,
//     and the orphan policy is never consulted);
//  3. no earlier non-adjacent entry is a time-valid referrer of a later
//     one — then every inferred backtrack [B, e] the slow path would emit
//     is an adjacent pair of the chain, contiguous inside it and dropped
//     by MaximalOnly (as is any equal-pages session from another candidate
//     that the clone would have deduplicated: it is subsumed by this chain
//     directly). Only checked when InferBacktracks is on; without
//     inference no backtrack clones exist at all.
//
// Under those conditions the post-filter reconstruction is exactly one
// session — the candidate itself — so the wave machinery, the backtrack
// clones, and their MaximalOnly filtering are skipped wholesale. The guard
// is O(n²) edge probes but allocation-free, versus the slow path's O(n³)
// wave scans plus n-1 arena clones; on a non-chain candidate it bails at
// the first violation and phase2 proceeds normally.
func (h SmartSRA) phase2Chain(cand []session.Entry, scr *sraScratch, rho int64) ([][]session.Entry, bool) {
	n := len(cand)
	if n == 0 {
		return nil, false
	}
	t := scr.remainT[:0]
	for i := range cand {
		t = append(t, cand[i].Time.UnixNano())
	}
	scr.remainT = t
	for i := 1; i < n; i++ {
		if t[i-1] >= t[i] || t[i]-t[i-1] > rho ||
			!h.Graph.HasEdge(cand[i-1].Page, cand[i].Page) {
			return nil, false
		}
	}
	if h.InferBacktracks {
		for i := 2; i < n; i++ {
			et := t[i]
			for j := 0; j+1 < i; j++ {
				// t[j] < et is implied by the strict increase above; the
				// gap bound is not.
				if et-t[j] <= rho && h.Graph.HasEdge(cand[j].Page, cand[i].Page) {
					return nil, false
				}
			}
		}
	}
	set := append(scr.set[:0], scr.arena.cloneAll(cand))
	scr.set = set
	return set, true
}

// appendInferredBacktracks appends a [B, e] session (with e's UnixNano onto
// lastT) for every consumed referrer B of each wave page e (see
// InferBacktracks). Referrers still inside the candidate cannot qualify: e
// would not be in the wave then.
func (h SmartSRA) appendInferredBacktracks(dst [][]session.Entry, lastT []int64, cand []session.Entry, tpages []int32, tpT []int64, removed []int32, remvT []int64, rho int64, arena *entryArena) ([][]session.Entry, []int64) {
	if !h.InferBacktracks {
		return dst, lastT
	}
	for i := range tpages {
		et := tpT[i]
		ei := cand[tpages[i]]
		for j := range removed {
			if bt := remvT[j]; bt < et && et-bt <= rho &&
				h.Graph.HasEdge(cand[removed[j]].Page, ei.Page) {
				dst = append(dst, arena.clone2(cand[removed[j]], ei))
				lastT = append(lastT, et)
			}
		}
	}
	return dst, lastT
}
