package heuristics

import (
	"fmt"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// OrphanPolicy decides what Smart-SRA's second phase does with a page whose
// every referrer has already been consumed into the interior of the
// constructed sessions, so that no session's *last* element links to it.
type OrphanPolicy int

const (
	// OrphanDrop discards such pages — the literal behaviour of the paper's
	// Figure 2 pseudocode (a page that extends nothing is simply not added
	// to the temporary session set). This is the default.
	OrphanDrop OrphanPolicy = iota
	// OrphanNewSession starts a fresh single-page session for such pages, a
	// natural extension the paper does not specify; exposed for the ablation
	// bench (see DESIGN.md).
	OrphanNewSession
)

// String names the policy for reports.
func (p OrphanPolicy) String() string {
	switch p {
	case OrphanDrop:
		return "drop"
	case OrphanNewSession:
		return "new-session"
	default:
		return fmt.Sprintf("OrphanPolicy(%d)", int(p))
	}
}

// SmartSRA is the paper's Smart Session Reconstruction Algorithm (heur4,
// §3). Phase 1 splits the user's request stream into candidate sessions
// using BOTH time-oriented criteria (total duration δ and page-stay ρ).
// Phase 2 partitions each candidate into maximal sessions that satisfy both
// the Timestamp Ordering Rule and the Topology Rule, by repeatedly peeling
// off the pages that have no remaining referrer and appending them to every
// constructed session whose last page links to them.
//
// Unlike the navigation-oriented heuristic, Smart-SRA never inserts
// artificial backward movements, so its sessions are short, strictly
// forward, and every consecutive pair is hyperlink-connected.
type SmartSRA struct {
	// Graph is the site topology.
	Graph *webgraph.Graph
	// Rules holds δ (TotalDuration) and ρ (PageStay).
	Rules session.Rules
	// Orphans selects the treatment of unattachable pages; see OrphanPolicy.
	Orphans OrphanPolicy
	// SkipPhase1 disables the time-based pre-splitting (ablation only; the
	// whole stream becomes one candidate, though ρ still gates Phase 2
	// referrer/extension checks).
	SkipPhase1 bool
	// DisableTotalDuration drops the δ rule from Phase 1 (ablation only).
	DisableTotalDuration bool
	// DisablePageStay drops the ρ rule from Phase 1 (ablation only; ρ still
	// gates Phase 2 checks).
	DisablePageStay bool
	// InferBacktracks enables the "intelligent path completion" the paper's
	// conclusion calls for as future work: when a page e enters a wave, a
	// fresh two-page session [B, e] is opened for every already-consumed
	// referrer B of e (hyperlink B→e, B earlier, within ρ). This models the
	// user having moved back to B through the browser cache before
	// requesting e — the LPP behavior whose sessions plain Smart-SRA misses
	// whenever B is no longer the last element of any constructed session.
	// Sessions it opens still satisfy both session rules; subsumed ones are
	// pruned by the maximality pass.
	InferBacktracks bool
}

// NewSmartSRA returns heur4 over g with the paper's default thresholds
// (δ = 30 min, ρ = 10 min) and the literal-pseudocode orphan policy.
func NewSmartSRA(g *webgraph.Graph) SmartSRA {
	return SmartSRA{Graph: g, Rules: session.DefaultRules()}
}

// Name implements Reconstructor.
func (SmartSRA) Name() string { return "heur4" }

// Describe implements Describer.
func (h SmartSRA) Describe() string {
	extra := ""
	if h.InferBacktracks {
		extra = ", infer-backtracks"
	}
	return fmt.Sprintf("Smart-SRA (δ=%v, ρ=%v, orphans=%v%s)",
		h.Rules.TotalDuration, h.Rules.PageStay, h.Orphans, extra)
}

// sraScratch holds the reusable working buffers of one reconstruction: the
// Phase-1 candidate boundaries and Phase-2's wave/tpages/rest/removed and
// constructed-set header arrays. A fresh scratch is created per Reconstruct
// call (so SmartSRA stays safe for concurrent use) and reused across every
// candidate and wave inside it, which removes the per-wave allocation churn
// of the naive transcription. Only the entry slices of the final sessions —
// which the caller retains — are freshly allocated.
type sraScratch struct {
	bounds   []int             // phase1 candidate start offsets
	remain   []session.Entry   // Step II working set (ping)
	rest     []session.Entry   // Step II working set (pong)
	wave     []bool            // Step I no-remaining-referrer marks
	tpages   []session.Entry   // the current wave's pages
	removed  []session.Entry   // entries consumed by earlier waves
	extended []bool            // Step III extension marks
	set      [][]session.Entry // constructed-set headers (ping)
	tset     [][]session.Entry // constructed-set headers (pong)
	arena    entryArena        // backing store for constructed-session entries
}

// Reconstruct implements Reconstructor.
func (h SmartSRA) Reconstruct(stream session.Stream) []session.Session {
	var out []session.Session
	var scr sraScratch
	scr.arena.next = len(stream.Entries) + 8
	scr.bounds = h.phase1(stream.Entries, scr.bounds[:0])
	for b := 0; b+1 < len(scr.bounds); b++ {
		cand := stream.Entries[scr.bounds[b]:scr.bounds[b+1]]
		sessions := h.phase2(cand, &scr)
		for _, entries := range sessions {
			out = append(out, session.Session{User: stream.User, Entries: entries})
		}
	}
	// The algorithm keeps only maximal sequences; enforce it globally per
	// stream so no output session is subsumed by another (also drops exact
	// duplicates that can arise from separate extension paths).
	return session.MaximalOnly(out)
}

// phase1 splits a request sequence into candidate sessions using the two
// time-oriented criteria (§3, Phase 1). Candidates are always contiguous
// runs of the input, so it appends their boundary offsets to bounds instead
// of materializing sub-slices: candidate i is entries[bounds[i]:bounds[i+1]].
func (h SmartSRA) phase1(entries []session.Entry, bounds []int) []int {
	if len(entries) == 0 {
		return bounds
	}
	bounds = append(bounds, 0)
	if !h.SkipPhase1 {
		start := 0
		for i := 1; i < len(entries); i++ {
			gapBreak := !h.DisablePageStay &&
				entries[i].Time.Sub(entries[i-1].Time) > h.Rules.PageStay
			totalBreak := !h.DisableTotalDuration &&
				entries[i].Time.Sub(entries[start].Time) > h.Rules.TotalDuration
			if gapBreak || totalBreak {
				bounds = append(bounds, i)
				start = i
			}
		}
	}
	return append(bounds, len(entries))
}

// phase2 runs the paper's Figure 2 procedure on one candidate session,
// returning the constructed topology-valid sessions. The returned outer
// slice aliases scratch storage and is only valid until the next phase2
// call on the same scratch; its element slices come from the scratch's
// entry arena with exact capacity and are safe to retain (the arena is
// never reused across Reconstruct calls).
func (h SmartSRA) phase2(cand []session.Entry, scr *sraScratch) [][]session.Entry {
	remaining := append(scr.remain[:0], cand...)
	rest := scr.rest[:0]
	newSet := scr.set[:0]
	removed := scr.removed[:0] // entries consumed by earlier waves
	for len(remaining) > 0 {
		// Step I: collect pages with no remaining referrer — no EARLIER
		// entry (strictly smaller timestamp, within ρ) links to them. See
		// DESIGN.md for the j>i / j<i pseudocode typo note; this reading
		// matches the paper's worked example (Table 4).
		wave := scr.wave
		if cap(wave) < len(remaining) {
			wave = make([]bool, len(remaining))
			scr.wave = wave
		}
		wave = wave[:len(remaining)]
		for i, e := range remaining {
			start := true
			for j := 0; j < i; j++ {
				r := remaining[j]
				if r.Time.Before(e.Time) &&
					e.Time.Sub(r.Time) <= h.Rules.PageStay &&
					h.Graph.HasEdge(r.Page, e.Page) {
					start = false
					break
				}
			}
			wave[i] = start
		}
		tpages := scr.tpages[:0]
		rest = rest[:0]
		for i, e := range remaining {
			if wave[i] {
				tpages = append(tpages, e)
			} else {
				rest = append(rest, e)
			}
		}
		scr.tpages = tpages
		// The earliest remaining entry always qualifies, so progress is
		// guaranteed.
		remaining, rest = rest, remaining // Step II (swap ping/pong buffers)

		// Step III: extend the constructed sessions.
		if len(newSet) == 0 {
			newSet = h.appendInferredBacktracks(newSet, tpages, removed, &scr.arena)
			for _, e := range tpages {
				newSet = append(newSet, scr.arena.clone1(e))
			}
			removed = append(removed, tpages...)
			continue
		}
		tset := scr.tset[:0]
		extended := scr.extended
		if cap(extended) < len(newSet) {
			extended = make([]bool, len(newSet))
			scr.extended = extended
		}
		extended = extended[:len(newSet)]
		for k := range extended {
			extended[k] = false
		}
		for _, e := range tpages {
			attached := false
			for k, sess := range newSet {
				last := sess[len(sess)-1]
				if last.Time.Before(e.Time) &&
					e.Time.Sub(last.Time) <= h.Rules.PageStay &&
					h.Graph.HasEdge(last.Page, e.Page) {
					tset = append(tset, scr.arena.extend(sess, e))
					extended[k] = true
					attached = true
				}
			}
			if !attached && h.Orphans == OrphanNewSession {
				tset = append(tset, scr.arena.clone1(e))
			}
		}
		tset = h.appendInferredBacktracks(tset, tpages, removed, &scr.arena)
		for k, sess := range newSet {
			if !extended[k] {
				tset = append(tset, sess)
			}
		}
		newSet, tset = tset, newSet // swap ping/pong header buffers
		scr.set, scr.tset = newSet, tset[:0]
		removed = append(removed, tpages...)
	}
	scr.remain, scr.rest, scr.removed = remaining, rest, removed
	if len(newSet) > 0 {
		scr.set = newSet
	}
	return newSet
}

// appendInferredBacktracks appends a [B, e] session for every consumed
// referrer B of each wave page e (see InferBacktracks). Referrers still
// inside the candidate cannot qualify: e would not be in the wave then.
func (h SmartSRA) appendInferredBacktracks(dst [][]session.Entry, tpages, removed []session.Entry, arena *entryArena) [][]session.Entry {
	if !h.InferBacktracks {
		return dst
	}
	for _, e := range tpages {
		for _, b := range removed {
			if b.Time.Before(e.Time) &&
				e.Time.Sub(b.Time) <= h.Rules.PageStay &&
				h.Graph.HasEdge(b.Page, e.Page) {
				dst = append(dst, arena.clone2(b, e))
			}
		}
	}
	return dst
}
