package heuristics_test

import (
	"fmt"
	"time"

	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// ExampleSmartSRA reconstructs the paper's Table 3 request sequence into the
// three maximal sessions of Table 4.
func ExampleSmartSRA() {
	g, ids := webgraph.PaperFigure1()
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	names := []string{"P1", "P20", "P13", "P49", "P34", "P23"}
	minutes := []int{0, 6, 9, 12, 14, 15}
	stream := session.Stream{User: "10.0.0.7"}
	for i, n := range names {
		stream.Entries = append(stream.Entries, session.Entry{
			Page: ids[n], Time: t0.Add(time.Duration(minutes[i]) * time.Minute),
		})
	}

	rev := map[webgraph.PageID]string{}
	for n, id := range ids {
		rev[id] = n
	}
	h := heuristics.NewSmartSRA(g)
	for _, s := range h.Reconstruct(stream) {
		for i, e := range s.Entries {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(rev[e.Page])
		}
		fmt.Println()
	}
	// Output:
	// P1 P13 P49 P23
	// P1 P13 P34 P23
	// P1 P20 P23
}

// ExampleTimeGap splits a request stream at page-stay gaps above ρ.
func ExampleTimeGap() {
	_, ids := webgraph.PaperFigure1()
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	stream := session.Stream{User: "u", Entries: []session.Entry{
		{Page: ids["P1"], Time: t0},
		{Page: ids["P13"], Time: t0.Add(2 * time.Minute)},
		{Page: ids["P49"], Time: t0.Add(20 * time.Minute)}, // 18-minute gap
	}}
	for _, s := range heuristics.NewTimeGap().Reconstruct(stream) {
		fmt.Println(s.Len(), "pages")
	}
	// Output:
	// 2 pages
	// 1 pages
}
