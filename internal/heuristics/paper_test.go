package heuristics

// This file replays the paper's worked examples (Tables 1-4, Figure 1)
// verbatim against the four heuristics, so any drift from the published
// algorithm semantics fails loudly.

import (
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

// figStream builds a request stream of (page name, minute offset) pairs over
// the Figure 1 topology.
func figStream(ids map[string]webgraph.PageID, pairs ...interface{}) session.Stream {
	st := session.Stream{User: "agent"}
	for i := 0; i < len(pairs); i += 2 {
		st.Entries = append(st.Entries, session.Entry{
			Page: ids[pairs[i].(string)],
			Time: t0.Add(time.Duration(pairs[i+1].(int)) * time.Minute),
		})
	}
	return st
}

// names converts sessions back to page-name sequences for comparison.
func names(ids map[string]webgraph.PageID, sessions []session.Session) [][]string {
	rev := make(map[webgraph.PageID]string, len(ids))
	for n, id := range ids {
		rev[id] = n
	}
	var out [][]string
	for _, s := range sessions {
		var seq []string
		for _, e := range s.Entries {
			seq = append(seq, rev[e.Page])
		}
		out = append(out, seq)
	}
	return out
}

func eqSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsSeq(set [][]string, want []string) bool {
	for _, s := range set {
		if eqSeq(s, want) {
			return true
		}
	}
	return false
}

// table1 is the request sequence of Table 1: P1@0, P20@6, P13@15, P49@29,
// P34@32, P23@47 (minutes).
func table1(ids map[string]webgraph.PageID) session.Stream {
	return figStream(ids,
		"P1", 0, "P20", 6, "P13", 15, "P49", 29, "P34", 32, "P23", 47)
}

func TestPaperTable1_TimeTotal(t *testing.T) {
	_, ids := webgraph.PaperFigure1()
	got := names(ids, NewTimeTotal().Reconstruct(table1(ids)))
	want := [][]string{{"P1", "P20", "P13", "P49"}, {"P34", "P23"}}
	if len(got) != 2 || !eqSeq(got[0], want[0]) || !eqSeq(got[1], want[1]) {
		t.Errorf("heur1(Table 1) = %v, want %v", got, want)
	}
}

func TestPaperTable1_TimeGap(t *testing.T) {
	_, ids := webgraph.PaperFigure1()
	got := names(ids, NewTimeGap().Reconstruct(table1(ids)))
	want := [][]string{{"P1", "P20", "P13"}, {"P49", "P34"}, {"P23"}}
	if len(got) != 3 {
		t.Fatalf("heur2(Table 1) = %v, want %v", got, want)
	}
	for i := range want {
		if !eqSeq(got[i], want[i]) {
			t.Errorf("heur2 session %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPaperTable2_Navigation(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	got := names(ids, NewNavigation(g).Reconstruct(table1(ids)))
	// Table 2's final session, backward movements included.
	want := []string{"P1", "P20", "P1", "P13", "P49", "P13", "P34", "P23"}
	if len(got) != 1 || !eqSeq(got[0], want) {
		t.Errorf("heur3(Table 1) = %v, want [%v]", got, want)
	}
}

func TestPaperTable2_NavigationTimesMonotonic(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	sessions := NewNavigation(g).Reconstruct(table1(ids))
	for _, s := range sessions {
		for i := 1; i < len(s.Entries); i++ {
			if s.Entries[i].Time.Before(s.Entries[i-1].Time) {
				t.Fatalf("inserted timestamps not monotonic at %d: %v", i, s.Entries)
			}
		}
	}
}

// table3 is the request sequence of Table 3 (the Phase-1 output the paper
// feeds to Phase 2): P1@0, P20@6, P13@9, P49@12, P34@14, P23@15.
func table3(ids map[string]webgraph.PageID) session.Stream {
	return figStream(ids,
		"P1", 0, "P20", 6, "P13", 9, "P49", 12, "P34", 14, "P23", 15)
}

func TestPaperTable4_SmartSRA(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	got := names(ids, NewSmartSRA(g).Reconstruct(table3(ids)))
	want := [][]string{
		{"P1", "P13", "P34", "P23"},
		{"P1", "P13", "P49", "P23"},
		{"P1", "P20", "P23"},
	}
	if len(got) != 3 {
		t.Fatalf("Smart-SRA produced %d sessions (%v), want 3", len(got), got)
	}
	for _, w := range want {
		if !containsSeq(got, w) {
			t.Errorf("Smart-SRA missing maximal session %v; got %v", w, got)
		}
	}
}

func TestPaperTable4_SmartSRAOutputsValid(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	h := NewSmartSRA(g)
	for _, s := range h.Reconstruct(table3(ids)) {
		if !s.Valid(g, h.Rules) {
			t.Errorf("session %v violates the session rules", s)
		}
	}
}

// The paper's behavior-1 walkthrough (Figure 3): while in session [P1, P20]
// the user jumps to start page P49 and then P23; the real sessions are
// [P1,P20] and [P49,P23]. Smart-SRA on the merged log stream must recover
// both, because P49 has no referrer among the earlier pages.
func TestPaperFigure3_SmartSRASplitsOnNewStartPage(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	stream := figStream(ids, "P1", 0, "P20", 2, "P49", 4, "P23", 6)
	got := names(ids, NewSmartSRA(g).Reconstruct(stream))
	if !containsSeq(got, []string{"P49", "P23"}) {
		t.Errorf("Smart-SRA did not split out [P49 P23]: %v", got)
	}
	if !containsSeq(got, []string{"P1", "P20", "P23"}) {
		// P20 links to P23, so the maximal first session includes P23.
		t.Errorf("Smart-SRA did not keep [P1 P20 P23]: %v", got)
	}
	for _, s := range got {
		if containsSeq([][]string{s}, []string{"P20", "P49"}) {
			t.Errorf("unlinked pair P20->P49 ended up adjacent: %v", got)
		}
	}
}
