package heuristics

// Differential coverage for phase2's linear-chain fast path: reconstruction
// must be identical whether or not phase2Chain is allowed to fire. The
// reference runs every candidate through the general wave construction.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// reconstructWavesOnly mirrors SmartSRA.Reconstruct but routes every
// candidate through phase2Waves, bypassing the chain fast path.
func reconstructWavesOnly(h SmartSRA, stream session.Stream) []session.Session {
	var out []session.Session
	scr := sraScratchPool.Get().(*sraScratch)
	if scr.arena.block == nil {
		scr.arena.next = len(stream.Entries) + 8
	}
	rho := h.Rules.PageStay.Nanoseconds()
	scr.bounds = h.phase1(stream.Entries, scr.bounds[:0])
	for b := 0; b+1 < len(scr.bounds); b++ {
		cand := stream.Entries[scr.bounds[b]:scr.bounds[b+1]]
		for _, entries := range h.phase2Waves(cand, scr, rho) {
			out = append(out, session.Session{User: stream.User, Entries: entries})
		}
	}
	sraScratchPool.Put(scr)
	return session.MaximalOnly(out)
}

// chainStream follows topology successors with small strictly increasing
// gaps, so most candidates are pure referrer chains and the fast path
// fires; occasional jumps, repeats, and long gaps keep the slow path in
// play within the same stream.
func chainStream(g *webgraph.Graph, rng *rand.Rand, n int) session.Stream {
	st := session.Stream{User: "fuzz"}
	now := t0
	cur := webgraph.PageID(rng.Intn(g.NumPages()))
	for i := 0; i < n; i++ {
		st.Entries = append(st.Entries, session.Entry{Page: cur, Time: now})
		if rng.Intn(20) == 0 {
			cur = webgraph.PageID(rng.Intn(g.NumPages()))
		} else if succ := g.Succ(cur); len(succ) > 0 {
			cur = succ[rng.Intn(len(succ))]
		}
		switch rng.Intn(25) {
		case 0:
			now = now.Add(11 * time.Minute) // past ρ: phase1 split
		case 1: // identical timestamp: not a chain
		default:
			now = now.Add(time.Duration(1+rng.Intn(120)) * time.Second)
		}
	}
	return st
}

// Property: for any stream, Reconstruct (fast path eligible) and the
// waves-only reference produce deeply equal output — same sessions, same
// order, same entry times.
func TestPhase2ChainDifferentialProperty(t *testing.T) {
	g := fuzzGraph(t)
	variants := map[string]func(SmartSRA) SmartSRA{
		"default":         func(h SmartSRA) SmartSRA { return h },
		"backtracks":      func(h SmartSRA) SmartSRA { h.InferBacktracks = true; return h },
		"orphans":         func(h SmartSRA) SmartSRA { h.Orphans = OrphanNewSession; return h },
		"backtracks-orph": func(h SmartSRA) SmartSRA { h.InferBacktracks = true; h.Orphans = OrphanNewSession; return h },
		"no-phase1":       func(h SmartSRA) SmartSRA { h.SkipPhase1 = true; h.InferBacktracks = true; return h },
	}
	gens := map[string]func(*webgraph.Graph, *rand.Rand, int) session.Stream{
		"chain":  chainStream,
		"random": randomStream,
	}
	for vname, mod := range variants {
		for gname, gen := range gens {
			t.Run(vname+"/"+gname, func(t *testing.T) {
				h := mod(NewSmartSRA(g))
				f := func(seed int64, size uint8) bool {
					rng := rand.New(rand.NewSource(seed))
					st := gen(g, rng, int(size)%100)
					got := h.Reconstruct(st)
					want := reconstructWavesOnly(h, st)
					if !reflect.DeepEqual(got, want) {
						t.Logf("seed=%d size=%d: fast=%d sessions, waves=%d", seed, size, len(got), len(want))
						return false
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// The fast path must reject a candidate with a time-valid alternative
// (non-adjacent) referrer when backtrack inference is on: the inferred
// [B, e] session is not contiguous in the chain and must survive.
func TestPhase2ChainBailsOnAlternativeReferrer(t *testing.T) {
	b := webgraph.NewBuilder(3)
	for _, e := range [][2]webgraph.PageID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	h := NewSmartSRA(g)
	h.InferBacktracks = true
	st := session.Stream{User: "u", Entries: []session.Entry{
		{Page: 0, Time: t0},
		{Page: 1, Time: t0.Add(1 * time.Minute)},
		{Page: 2, Time: t0.Add(2 * time.Minute)},
	}}
	got := h.Reconstruct(st)
	if len(got) != 2 {
		t.Fatalf("want chain [0 1 2] plus inferred [0 2], got %d sessions: %v", len(got), got)
	}
	if want := reconstructWavesOnly(h, st); !reflect.DeepEqual(got, want) {
		t.Fatalf("fast path diverges: got %v want %v", got, want)
	}
}
