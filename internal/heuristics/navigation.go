package heuristics

import (
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Navigation is the navigation-oriented heuristic (heur3, §2.2 after Cooley
// et al.): a new page may join the current session if some earlier page of
// the session links to it. When the most recent page does not link to the
// new page, the user is assumed to have moved back through the browser cache
// to the nearest (largest-timestamp) session page that does link to it, and
// those artificial backward movements are inserted into the session ("path
// completion"). When no session page links to the new page, the session is
// closed and a new one starts.
//
// The paper applies no time limit to this heuristic and discusses the
// resulting unbounded session growth as one of its weaknesses.
type Navigation struct {
	// Graph is the site topology consulted for hyperlinks.
	Graph *webgraph.Graph
	// MaxGap, when positive, closes the session whenever consecutive
	// requests are further apart than this — the time limitation §2.2 notes
	// the plain heuristic lacks ("it is possible to obtain very long
	// sessions"). Zero (the paper's configuration) disables it.
	MaxGap time.Duration
}

// NewNavigation returns heur3 over the given topology, without a time
// limit, as the paper evaluates it.
func NewNavigation(g *webgraph.Graph) Navigation { return Navigation{Graph: g} }

// Name implements Reconstructor.
func (Navigation) Name() string { return "heur3" }

// Describe implements Describer.
func (Navigation) Describe() string {
	return "navigation-oriented with backward path completion"
}

// Reconstruct implements Reconstructor.
//
// Inserted backward movements carry interpolated timestamps strictly between
// the surrounding real requests, so that output sessions remain in
// non-decreasing time order; the paper's pseudocode does not assign them
// times (they are served from the browser cache and never hit the server).
// Sessions are assembled in one reusable scratch buffer and copied out
// exact-size from a per-call entry arena when they close, so a stream with
// many sessions costs a handful of block allocations instead of per-session
// append churn.
func (h Navigation) Reconstruct(stream session.Stream) []session.Session {
	var out []session.Session
	arena := entryArena{next: len(stream.Entries) + 8}
	var cur []session.Entry // scratch: reused across sessions, copied on close
	closeCur := func() {
		out = append(out, session.Session{User: stream.User, Entries: arena.cloneAll(cur)})
		cur = cur[:0]
	}
	for _, e := range stream.Entries {
		if len(cur) == 0 {
			cur = append(cur, e)
			continue
		}
		last := cur[len(cur)-1]
		if h.MaxGap > 0 && e.Time.Sub(last.Time) > h.MaxGap {
			closeCur()
			cur = append(cur, e)
			continue
		}
		if h.Graph.HasEdge(last.Page, e.Page) {
			cur = append(cur, e)
			continue
		}
		// Find WPKmax: the session page with the largest timestamp (i.e.
		// nearest position scanning backwards) that links to the new page.
		k := -1
		for i := len(cur) - 2; i >= 0; i-- {
			if h.Graph.HasEdge(cur[i].Page, e.Page) {
				k = i
				break
			}
		}
		if k < 0 {
			// Nothing in the session reaches the new page: close and restart.
			closeCur()
			cur = append(cur, e)
			continue
		}
		// Insert backward movements WPN-1, WPN-2, ..., WPKmax, then the new
		// page (§2.2). Timestamps interpolate across (last.Time, e.Time).
		steps := len(cur) - 1 - k // number of inserted entries
		span := e.Time.Sub(last.Time)
		orig := len(cur)
		for i := orig - 2; i >= k; i-- {
			s := orig - 1 - i // 1-based insertion count
			cur = append(cur, session.Entry{
				Page: cur[i].Page,
				Time: last.Time.Add(span * time.Duration(s) / time.Duration(steps+1)),
			})
		}
		cur = append(cur, e)
	}
	if len(cur) > 0 {
		closeCur()
	}
	return out
}
