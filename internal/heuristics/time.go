package heuristics

import (
	"fmt"
	"time"

	"smartsra/internal/session"
)

// TimeTotal is the paper's first time-oriented heuristic (heur1): a session
// may not last longer than Delta. A request at time t joins the current
// session iff t - t0 ≤ Delta, where t0 is the session's first request;
// otherwise it starts a new session (§2.1).
type TimeTotal struct {
	// Delta is the session-duration upper bound δ; 30 minutes in the paper.
	Delta time.Duration
}

// NewTimeTotal returns heur1 with the paper's default δ = 30 minutes.
func NewTimeTotal() TimeTotal { return TimeTotal{Delta: session.DefaultTotalDuration} }

// Name implements Reconstructor.
func (TimeTotal) Name() string { return "heur1" }

// Describe implements Describer.
func (h TimeTotal) Describe() string {
	return fmt.Sprintf("time-oriented (total session duration ≤ %v)", h.Delta)
}

// Reconstruct implements Reconstructor.
func (h TimeTotal) Reconstruct(stream session.Stream) []session.Session {
	var out []session.Session
	var cur []session.Entry
	var first time.Time
	for _, e := range stream.Entries {
		if len(cur) > 0 && e.Time.Sub(first) > h.Delta {
			out = append(out, session.Session{User: stream.User, Entries: cur})
			cur = nil
		}
		if len(cur) == 0 {
			first = e.Time
		}
		cur = append(cur, e)
	}
	if len(cur) > 0 {
		out = append(out, session.Session{User: stream.User, Entries: cur})
	}
	return out
}

// TimeGap is the paper's second time-oriented heuristic (heur2): the time
// spent on any page is bounded by Rho. A request at time t joins the current
// session iff t - t_prev ≤ Rho; otherwise it starts a new session (§2.1).
type TimeGap struct {
	// Rho is the page-stay upper bound ρ; 10 minutes in the paper.
	Rho time.Duration
}

// NewTimeGap returns heur2 with the paper's default ρ = 10 minutes.
func NewTimeGap() TimeGap { return TimeGap{Rho: session.DefaultPageStay} }

// Name implements Reconstructor.
func (TimeGap) Name() string { return "heur2" }

// Describe implements Describer.
func (h TimeGap) Describe() string {
	return fmt.Sprintf("time-oriented (page-stay time ≤ %v)", h.Rho)
}

// Reconstruct implements Reconstructor.
func (h TimeGap) Reconstruct(stream session.Stream) []session.Session {
	var out []session.Session
	var cur []session.Entry
	for _, e := range stream.Entries {
		if len(cur) > 0 && e.Time.Sub(cur[len(cur)-1].Time) > h.Rho {
			out = append(out, session.Session{User: stream.User, Entries: cur})
			cur = nil
		}
		cur = append(cur, e)
	}
	if len(cur) > 0 {
		out = append(out, session.Session{User: stream.User, Entries: cur})
	}
	return out
}
