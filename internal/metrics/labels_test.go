package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWithLabelsCanonical(t *testing.T) {
	a := WithLabels("tail.reconstruct.seconds", "heur", "smartsra", "mode", "stream")
	b := WithLabels("tail.reconstruct.seconds", "mode", "stream", "heur", "smartsra")
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if want := `tail.reconstruct.seconds{heur="smartsra",mode="stream"}`; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := WithLabels("m"); got != "m" {
		t.Errorf("no labels: %q", got)
	}
	if got := WithLabels("m", "k"); got != "m" {
		t.Errorf("odd kv should drop the trailing key: %q", got)
	}
	if got := WithLabels("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Errorf("escaping: %q", got)
	}
}

func TestLabeledSeriesIndependent(t *testing.T) {
	r := NewRegistry()
	r.GetCounter(WithLabels("hits", "h", "a")).Add(3)
	r.GetCounter(WithLabels("hits", "h", "b")).Add(5)
	s := r.Snapshot()
	if s.Counters[`hits{h="a"}`] != 3 || s.Counters[`hits{h="b"}`] != 5 {
		t.Fatalf("labeled counters not independent: %+v", s.Counters)
	}
}

func TestWritePrometheusGroupsLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("plain.count").Add(1)
	r.GetCounter(WithLabels("plain.count", "heur", "heur1")).Add(2)
	r.GetCounter(WithLabels("plain.count", "heur", "heur4")).Add(3)
	r.GetHistogramBuckets(WithLabels("lat.seconds", "heur", "heur4"), []float64{1, 2}).Observe(1.5)
	r.GetTimer(WithLabels("op", "kind", "x")).Observe(time.Second)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if n := strings.Count(out, "# TYPE plain_count counter"); n != 1 {
		t.Errorf("TYPE line for plain_count appears %d times:\n%s", n, out)
	}
	for _, want := range []string{
		"plain_count 1",
		`plain_count{heur="heur1"} 2`,
		`plain_count{heur="heur4"} 3`,
		`lat_seconds_bucket{heur="heur4",le="1"} 0`,
		`lat_seconds_bucket{heur="heur4",le="2"} 1`,
		`lat_seconds_bucket{heur="heur4",le="+Inf"} 1`,
		`lat_seconds_sum{heur="heur4"} 1.5`,
		`lat_seconds_count{heur="heur4"} 1`,
		`op_count{kind="x"} 1`,
		`op_seconds_total{kind="x"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTextPrintsLabeledKeysVerbatim(t *testing.T) {
	r := NewRegistry()
	r.GetCounter(WithLabels("hits", "h", "a")).Inc()
	out := r.Snapshot().String()
	if !strings.Contains(out, `counter hits{h="a"} 1`) {
		t.Errorf("text output:\n%s", out)
	}
}
