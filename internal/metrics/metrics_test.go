package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.GetCounter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	if r.GetCounter("x") != c {
		t.Error("GetCounter not stable for same name")
	}
	if r.GetCounter("y") == c {
		t.Error("distinct names share a counter")
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.GetTimer("t")
	if tm.Mean() != 0 {
		t.Errorf("empty Mean = %v", tm.Mean())
	}
	tm.Observe(100 * time.Millisecond)
	tm.Observe(300 * time.Millisecond)
	if tm.Count() != 2 {
		t.Errorf("Count = %d", tm.Count())
	}
	if tm.Total() != 400*time.Millisecond {
		t.Errorf("Total = %v", tm.Total())
	}
	if tm.Mean() != 200*time.Millisecond {
		t.Errorf("Mean = %v", tm.Mean())
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix get-or-create with increments to race the registry too.
			for i := 0; i < per; i++ {
				r.GetCounter("shared").Inc()
				r.GetTimer("shared.t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.GetCounter("shared").Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.GetTimer("shared.t").Count(); got != goroutines*per {
		t.Errorf("timer count = %d, want %d", got, goroutines*per)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("b").Add(2)
	r.GetCounter("a").Add(1)
	r.GetTimer("t").Observe(time.Second)
	s := r.Snapshot()
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if ts := s.Timers["t"]; ts.Count != 1 || ts.Total != time.Second || ts.Mean() != time.Second {
		t.Errorf("snapshot timer = %+v", s.Timers["t"])
	}
	text := s.String()
	ia, ib := strings.Index(text, "counter a 1"), strings.Index(text, "counter b 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("snapshot text not sorted:\n%s", text)
	}
	if !strings.Contains(text, "timer   t count=1 total=1s mean=1s") {
		t.Errorf("timer line missing:\n%s", text)
	}
	c := r.GetCounter("a")
	r.Reset()
	if c.Value() != 0 || r.GetTimer("t").Count() != 0 {
		t.Error("Reset did not zero metrics")
	}
	c.Inc() // cached pointer stays live after Reset
	if r.Snapshot().Counters["a"] != 1 {
		t.Error("cached counter detached after Reset")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("hits").Add(7)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "counter hits 7") {
		t.Errorf("body = %q", body)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	name := "metrics.test.default"
	c := GetCounter(name)
	c.Inc()
	if Default.Snapshot().Counters[name] == 0 {
		t.Error("package-level counter not in Default registry")
	}
	if GetTimer(name) == nil {
		t.Error("GetTimer returned nil")
	}
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), name) {
		t.Error("package-level Handler missing Default metrics")
	}
}
