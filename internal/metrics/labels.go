package metrics

import (
	"sort"
	"strings"
)

// WithLabels builds the canonical registry key for a labeled series:
// name{k1="v1",k2="v2"} with keys sorted and values escaped, so the same
// label set always maps to the same key regardless of argument order.
// kv is alternating key, value pairs; an odd trailing key is dropped.
//
//	h := metrics.GetHistogram(metrics.WithLabels("tail.reconstruct.seconds", "heur", "smartsra"))
//
// The text snapshot prints the key verbatim; the Prometheus rendering
// splits it back into metric name and label set (merging in "le" for
// histogram buckets) and groups series of one base name under one TYPE
// line.
func WithLabels(name string, kv ...string) string {
	n := len(kv) / 2 * 2
	if n == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the Prometheus label-value escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// splitLabels splits a registry key into its base name and the label body
// (the text between the braces, "" when unlabeled).
func splitLabels(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// promLabels maps the label keys of a label body to the exposition charset
// (values are already escaped by WithLabels).
func promLabels(labels string) string {
	if labels == "" {
		return ""
	}
	var sb strings.Builder
	rest := labels
	for len(rest) > 0 {
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			sb.WriteString(rest)
			break
		}
		sb.WriteString(promName(rest[:eq]))
		rest = rest[eq:]
		// Skip past the quoted value, honouring escapes.
		end := 2
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				end++
				break
			}
			end++
		}
		sb.WriteString(rest[:end])
		rest = rest[end:]
		if strings.HasPrefix(rest, ",") {
			sb.WriteByte(',')
			rest = rest[1:]
		}
	}
	return sb.String()
}

// promSeries renders "base{labels}" (or just "base") for one series.
func promSeries(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// groupedKeys groups the keys of a metric map by Prometheus base name so
// each base gets exactly one TYPE line. Groups and the series inside them
// come out sorted (unlabeled series first).
func groupedKeys(names []string) [][]string {
	byBase := make(map[string][]string)
	for _, name := range names {
		base, _ := splitLabels(name)
		byBase[promName(base)] = append(byBase[promName(base)], name)
	}
	bases := make([]string, 0, len(byBase))
	for b := range byBase {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	groups := make([][]string, 0, len(bases))
	for _, b := range bases {
		keys := byBase[b]
		sort.Strings(keys)
		groups = append(groups, keys)
	}
	return groups
}
