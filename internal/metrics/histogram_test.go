package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.GetGauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
	g.SetMax(5) // below current: no-op
	if g.Value() != 7 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Errorf("SetMax = %d, want 12", g.Value())
	}
	if r.GetGauge("depth") != g {
		t.Error("GetGauge not stable for same name")
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.GetGauge("hw")
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				g.SetMax(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if g.Value() != goroutines*per {
		t.Errorf("high watermark = %d, want %d", g.Value(), goroutines*per)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-52.65) > 1e-9 {
		t.Errorf("Sum = %v", got)
	}
	s := r.Snapshot().Histograms["lat"]
	// Bucket semantics are le: an observation equal to a bound lands in it.
	want := []int64{2, 1, 1, 1}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 5 || s.Mean() != 52.65/5 {
		t.Errorf("stats = %+v", s)
	}
	// Quantiles interpolate within buckets and clamp the +Inf overflow to
	// the last finite bound.
	if q := s.Quantile(0.99); q != 10 {
		t.Errorf("p99 = %v, want clamp to 10", q)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v out of its bucket", q)
	}
	if empty := (HistogramStats{}); empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram stats must read as zero")
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("h", []float64{1, 2})
	if again := r.GetHistogramBuckets("h", []float64{5}); again != h {
		t.Error("re-registration replaced the histogram")
	}
	if def := r.GetHistogram("d"); len(def.bounds) != len(DefaultBuckets) {
		t.Errorf("default bounds = %v", def.bounds)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogram("c")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestSnapshotTextIncludesGaugesAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.GetGauge("g").Set(42)
	r.GetHistogramBuckets("h", []float64{1}).Observe(0.5)
	text := r.Snapshot().String()
	if !strings.Contains(text, "gauge   g 42") {
		t.Errorf("gauge line missing:\n%s", text)
	}
	if !strings.Contains(text, "histo   h count=1") {
		t.Errorf("histogram line missing:\n%s", text)
	}
	g := r.GetGauge("g")
	r.Reset()
	if g.Value() != 0 || r.GetHistogramBuckets("h", nil).Count() != 0 {
		t.Error("Reset did not zero gauges/histograms")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("core.pipeline.records").Add(3)
	r.GetGauge("core.tail.buffered.entries").Set(9)
	r.GetTimer("eval.point").Observe(1500 * time.Millisecond)
	h := r.GetHistogramBuckets("eval.point.seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# TYPE core_pipeline_records counter",
		"core_pipeline_records 3",
		"# TYPE core_tail_buffered_entries gauge",
		"core_tail_buffered_entries 9",
		"eval_point_count 1",
		"eval_point_seconds_total 1.5",
		"# TYPE eval_point_seconds histogram",
		`eval_point_seconds_bucket{le="0.5"} 1`,
		`eval_point_seconds_bucket{le="1"} 2`,
		`eval_point_seconds_bucket{le="+Inf"} 3`,
		"eval_point_seconds_sum 4",
		"eval_point_seconds_count 3",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"eval.points.completed": "eval_points_completed",
		"already_fine:x":        "already_fine:x",
		"weird-name %":          "weird_name__",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerNegotiation(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("hits").Add(7)
	cases := []struct {
		name, target, accept string
		wantProm             bool
	}{
		{"plain", "/debug/metrics", "", false},
		{"browser", "/debug/metrics", "text/html", false},
		{"prom-accept", "/debug/metrics", "text/plain;version=0.0.4", true},
		{"openmetrics", "/debug/metrics", "application/openmetrics-text", true},
		{"query", "/debug/metrics?format=prometheus", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.target, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, req)
			body := rec.Body.String()
			ct := rec.Header().Get("Content-Type")
			if tc.wantProm {
				if !strings.Contains(ct, "version=0.0.4") {
					t.Errorf("Content-Type = %q", ct)
				}
				if !strings.Contains(body, "# TYPE hits counter") {
					t.Errorf("body = %q", body)
				}
			} else {
				if strings.Contains(ct, "version=0.0.4") {
					t.Errorf("Content-Type = %q", ct)
				}
				if !strings.Contains(body, "counter hits 7") {
					t.Errorf("body = %q", body)
				}
			}
		})
	}
}
