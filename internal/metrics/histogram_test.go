package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.GetGauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
	g.SetMax(5) // below current: no-op
	if g.Value() != 7 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Errorf("SetMax = %d, want 12", g.Value())
	}
	if r.GetGauge("depth") != g {
		t.Error("GetGauge not stable for same name")
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.GetGauge("hw")
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				g.SetMax(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if g.Value() != goroutines*per {
		t.Errorf("high watermark = %d, want %d", g.Value(), goroutines*per)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-52.65) > 1e-9 {
		t.Errorf("Sum = %v", got)
	}
	s := r.Snapshot().Histograms["lat"]
	// Bucket semantics are le: an observation equal to a bound lands in it.
	want := []int64{2, 1, 1, 1}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 5 || s.Mean() != 52.65/5 {
		t.Errorf("stats = %+v", s)
	}
	// Quantiles interpolate within buckets and clamp the +Inf overflow to
	// the last finite bound.
	if q := s.Quantile(0.99); q != 10 {
		t.Errorf("p99 = %v, want clamp to 10", q)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v out of its bucket", q)
	}
	if empty := (HistogramStats{}); empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram stats must read as zero")
	}
}

// bucketWidthAt returns the width of the bucket containing v — the maximum
// error Quantile's linear interpolation can commit for values inside the
// finite buckets.
func bucketWidthAt(bounds []float64, v float64) float64 {
	lo := 0.0
	for _, b := range bounds {
		if v <= b {
			return b - lo
		}
		lo = b
	}
	return math.Inf(1)
}

// TestHistogramQuantileUniform feeds a known uniform distribution and
// requires every estimated quantile to land within one bucket width of the
// true value — the estimator's accuracy contract.
func TestHistogramQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("u", LatencyBuckets)
	const n = 100000
	for i := 0; i < n; i++ {
		// Deterministic uniform over (0, 1): true q-quantile is q.
		h.Observe((float64(i) + 0.5) / n)
	}
	s := r.Snapshot().Histograms["u"]
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		got := s.Quantile(q)
		width := bucketWidthAt(s.Bounds, q)
		if math.Abs(got-q) > width {
			t.Errorf("uniform p%g = %v, want %v ± bucket width %v", q*100, got, q, width)
		}
	}
	if mean := s.Mean(); math.Abs(mean-0.5) > 1e-6 {
		t.Errorf("uniform mean = %v, want 0.5", mean)
	}
}

// TestHistogramQuantileExponential does the same for a heavy-ish-tailed
// exponential distribution (the shape request latencies actually take): the
// true quantile of Exp(λ) is -ln(1-q)/λ.
func TestHistogramQuantileExponential(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("e", LatencyBuckets)
	const (
		n      = 200000
		lambda = 100.0 // mean 10ms — a plausible service latency
	)
	for i := 0; i < n; i++ {
		// Inverse-CDF sampling on a deterministic uniform grid.
		u := (float64(i) + 0.5) / n
		h.Observe(-math.Log(1-u) / lambda)
	}
	s := r.Snapshot().Histograms["e"]
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		truth := -math.Log(1-q) / lambda
		got := s.Quantile(q)
		width := bucketWidthAt(s.Bounds, truth)
		if math.Abs(got-truth) > width {
			t.Errorf("exp p%g = %v, want %v ± bucket width %v", q*100, got, truth, width)
		}
	}
}

// TestHistogramQuantileMonotone: quantile estimates must never decrease as q
// grows, including across the +Inf overflow clamp.
func TestHistogramQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("m", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.004, 0.05, 0.5, 3, 40} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["m"]
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q = %v", q, got, prev)
		}
		prev = got
	}
	if got := s.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want clamp to last finite bound 1", got)
	}
}

func TestLatencyBucketsSane(t *testing.T) {
	if len(LatencyBuckets) == 0 {
		t.Fatal("no latency buckets")
	}
	prev := 0.0
	for _, b := range LatencyBuckets {
		if b <= prev {
			t.Fatalf("bounds not strictly increasing at %v (prev %v)", b, prev)
		}
		prev = b
	}
	if LatencyBuckets[0] > 0.0001 || prev < 10 {
		t.Errorf("latency range [%v, %v] does not cover 100µs..10s", LatencyBuckets[0], prev)
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogramBuckets("h", []float64{1, 2})
	if again := r.GetHistogramBuckets("h", []float64{5}); again != h {
		t.Error("re-registration replaced the histogram")
	}
	if def := r.GetHistogram("d"); len(def.bounds) != len(DefaultBuckets) {
		t.Errorf("default bounds = %v", def.bounds)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.GetHistogram("c")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestSnapshotTextIncludesGaugesAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.GetGauge("g").Set(42)
	r.GetHistogramBuckets("h", []float64{1}).Observe(0.5)
	text := r.Snapshot().String()
	if !strings.Contains(text, "gauge   g 42") {
		t.Errorf("gauge line missing:\n%s", text)
	}
	if !strings.Contains(text, "histo   h count=1") {
		t.Errorf("histogram line missing:\n%s", text)
	}
	g := r.GetGauge("g")
	r.Reset()
	if g.Value() != 0 || r.GetHistogramBuckets("h", nil).Count() != 0 {
		t.Error("Reset did not zero gauges/histograms")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("core.pipeline.records").Add(3)
	r.GetGauge("core.tail.buffered.entries").Set(9)
	r.GetTimer("eval.point").Observe(1500 * time.Millisecond)
	h := r.GetHistogramBuckets("eval.point.seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# TYPE core_pipeline_records counter",
		"core_pipeline_records 3",
		"# TYPE core_tail_buffered_entries gauge",
		"core_tail_buffered_entries 9",
		"eval_point_count 1",
		"eval_point_seconds_total 1.5",
		"# TYPE eval_point_seconds histogram",
		`eval_point_seconds_bucket{le="0.5"} 1`,
		`eval_point_seconds_bucket{le="1"} 2`,
		`eval_point_seconds_bucket{le="+Inf"} 3`,
		"eval_point_seconds_sum 4",
		"eval_point_seconds_count 3",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"eval.points.completed": "eval_points_completed",
		"already_fine:x":        "already_fine:x",
		"weird-name %":          "weird_name__",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerNegotiation(t *testing.T) {
	r := NewRegistry()
	r.GetCounter("hits").Add(7)
	cases := []struct {
		name, target, accept string
		wantProm             bool
	}{
		{"plain", "/debug/metrics", "", false},
		{"browser", "/debug/metrics", "text/html", false},
		{"prom-accept", "/debug/metrics", "text/plain;version=0.0.4", true},
		{"openmetrics", "/debug/metrics", "application/openmetrics-text", true},
		{"query", "/debug/metrics?format=prometheus", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.target, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, req)
			body := rec.Body.String()
			ct := rec.Header().Get("Content-Type")
			if tc.wantProm {
				if !strings.Contains(ct, "version=0.0.4") {
					t.Errorf("Content-Type = %q", ct)
				}
				if !strings.Contains(body, "# TYPE hits counter") {
					t.Errorf("body = %q", body)
				}
			} else {
				if strings.Contains(ct, "version=0.0.4") {
					t.Errorf("Content-Type = %q", ct)
				}
				if !strings.Contains(body, "counter hits 7") {
					t.Errorf("body = %q", body)
				}
			}
		})
	}
}
