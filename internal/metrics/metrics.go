// Package metrics provides tiny, dependency-free runtime instrumentation
// for the pipeline's hot layers: atomic counters and timers registered by
// name in a Registry, a sorted text snapshot for logs and CLIs, and an
// http.Handler suitable for a /debug/metrics endpoint.
//
// Counters and timers are safe for concurrent use and designed to sit on
// hot paths: call sites hold the *Counter / *Timer returned by a one-time
// lookup instead of resolving the name per event.
//
//	var processed = metrics.GetCounter("core.pipeline.records")
//	...
//	processed.Add(int64(len(records)))
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be zero; negative deltas are not meaningful but are not
// rejected, to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Timer accumulates observed durations: event count and total elapsed time.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one event of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// Mean returns the average observed duration (zero when empty).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(t.nanos.Load() / n)
}

// Gauge is an instantaneous value that can move both ways (buffer depths,
// pool sizes, high watermarks).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — a lock-free
// high-watermark update.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets are the histogram bucket upper bounds used when none are
// given: exponential from 1ms to 100s (in seconds), suited to the
// point-duration spread the evaluation harness records.
var DefaultBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// LatencyBuckets are histogram bounds for request-latency histograms (in
// seconds): roughly exponential from 100µs to 10s, fine enough around the
// single-digit-millisecond range that p99/p999 of an in-process HTTP service
// resolve to sub-bucket-width error instead of collapsing into one bucket.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus a total count and sum. Observations are lock-free; bounds are
// immutable after creation.
type Histogram struct {
	bounds  []float64      // sorted upper bounds; implicit +Inf last
	counts  []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the conventional unit for
// time histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveWeighted records n observations of value v in one update — the
// hot-path form for samplers that time every Nth event and account the
// untimed ones to the measured value. Count stays exact (it advances by n);
// the distribution becomes an estimate weighted by the sampled values.
// n <= 0 is a no-op.
func (h *Histogram) ObserveWeighted(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a named set of counters, gauges, timers, and histograms. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// GetCounter returns the counter registered under name, creating it on first
// use. The returned pointer is stable; cache it at the call site.
func (r *Registry) GetCounter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GetGauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) GetGauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GetHistogram returns the histogram registered under name, creating it with
// DefaultBuckets on first use. Use GetHistogramBuckets to control the
// bounds; the first registration wins.
func (r *Registry) GetHistogram(name string) *Histogram {
	return r.GetHistogramBuckets(name, nil)
}

// GetHistogramBuckets returns the histogram registered under name, creating
// it with the given bucket upper bounds (nil or empty means DefaultBuckets)
// on first use. An already-registered histogram keeps its original bounds.
func (r *Registry) GetHistogramBuckets(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// GetTimer returns the timer registered under name, creating it on first use.
func (r *Registry) GetTimer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// TimerStats is a timer's state at snapshot time.
type TimerStats struct {
	Count int64
	Total time.Duration
}

// Mean returns the average duration (zero when empty).
func (s TimerStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// HistogramStats is a histogram's state at snapshot time: the bucket upper
// bounds, per-bucket (non-cumulative) counts with the +Inf overflow bucket
// last, and the total count and sum.
type HistogramStats struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Mean returns the average observed value (zero when empty).
func (s HistogramStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// interpolating linearly inside the containing bucket. Values beyond the
// last finite bound clamp to it.
func (s HistogramStats) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to the last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Timers     map[string]TimerStats
	Histograms map[string]HistogramStats
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Timers:     make(map[string]TimerStats, len(r.timers)),
		Histograms: make(map[string]HistogramStats, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerStats{Count: t.Count(), Total: t.Total()}
	}
	for name, h := range r.histograms {
		hs := HistogramStats{
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Reset zeroes every registered metric (the registry keeps its names, so
// cached pointers stay valid). Intended for tests.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.nanos.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
}

// WriteText renders the snapshot as sorted "name value" lines, counters
// first, e.g.:
//
//	counter clf.scanner.malformed 3
//	gauge   core.tail.buffered.entries 117
//	timer   eval.point count=40 total=12.4s mean=310ms
//	histo   eval.point.seconds count=40 mean=0.31 p50=0.28 p95=0.52 max<=1
func (s Snapshot) WriteText(w io.Writer) error {
	var sb strings.Builder
	sortedNames := func(m map[string]int64) []string {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		return names
	}
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&sb, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(&sb, "gauge   %s %d\n", name, s.Gauges[name])
	}
	names := make([]string, 0, len(s.Timers))
	for name := range s.Timers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.Timers[name]
		fmt.Fprintf(&sb, "timer   %s count=%d total=%s mean=%s\n",
			name, t.Count, t.Total.Round(time.Microsecond), t.Mean().Round(time.Microsecond))
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "histo   %s count=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
			name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// promName maps a metric name to the Prometheus exposition charset:
// [a-zA-Z0-9_:], everything else becomes '_' (so "eval.points.completed"
// exports as "eval_points_completed").
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single series, timers as
// <name>_count / <name>_seconds_total counters, histograms as classic
// cumulative <name>_bucket{le="..."} series with _sum and _count. Labeled
// registry keys built with WithLabels ("name{k=\"v\"}") are split back into
// metric name and label set; every series of one base name shares a single
// TYPE line, and histogram buckets merge "le" into the series labels.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	keysOf := func(m map[string]int64) []string {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		return names
	}
	for _, group := range groupedKeys(keysOf(s.Counters)) {
		base, _ := splitLabels(group[0])
		n := promName(base)
		fmt.Fprintf(&sb, "# TYPE %s counter\n", n)
		for _, key := range group {
			_, labels := splitLabels(key)
			fmt.Fprintf(&sb, "%s %d\n", promSeries(n, promLabels(labels)), s.Counters[key])
		}
	}
	for _, group := range groupedKeys(keysOf(s.Gauges)) {
		base, _ := splitLabels(group[0])
		n := promName(base)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n", n)
		for _, key := range group {
			_, labels := splitLabels(key)
			fmt.Fprintf(&sb, "%s %d\n", promSeries(n, promLabels(labels)), s.Gauges[key])
		}
	}
	timerKeys := make([]string, 0, len(s.Timers))
	for name := range s.Timers {
		timerKeys = append(timerKeys, name)
	}
	for _, group := range groupedKeys(timerKeys) {
		base, _ := splitLabels(group[0])
		n := promName(base)
		fmt.Fprintf(&sb, "# TYPE %s_count counter\n", n)
		for _, key := range group {
			_, labels := splitLabels(key)
			fmt.Fprintf(&sb, "%s %d\n", promSeries(n+"_count", promLabels(labels)), s.Timers[key].Count)
		}
		fmt.Fprintf(&sb, "# TYPE %s_seconds_total counter\n", n)
		for _, key := range group {
			_, labels := splitLabels(key)
			fmt.Fprintf(&sb, "%s %g\n", promSeries(n+"_seconds_total", promLabels(labels)),
				s.Timers[key].Total.Seconds())
		}
	}
	histoKeys := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histoKeys = append(histoKeys, name)
	}
	for _, group := range groupedKeys(histoKeys) {
		base, _ := splitLabels(group[0])
		n := promName(base)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		for _, key := range group {
			_, labels := splitLabels(key)
			l := promLabels(labels)
			withLE := func(le string) string {
				if l == "" {
					return le
				}
				return l + "," + le
			}
			h := s.Histograms[key]
			cum := int64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(&sb, "%s %d\n",
					promSeries(n+"_bucket", withLE(fmt.Sprintf("le=%q", trimFloat(bound)))), cum)
			}
			fmt.Fprintf(&sb, "%s %d\n", promSeries(n+"_bucket", withLE(`le="+Inf"`)), h.Count)
			fmt.Fprintf(&sb, "%s %g\n", promSeries(n+"_sum", l), h.Sum)
			fmt.Fprintf(&sb, "%s %d\n", promSeries(n+"_count", l), h.Count)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// trimFloat formats a bucket bound the way Prometheus clients do: shortest
// representation that round-trips.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// String renders the snapshot as WriteText does.
func (s Snapshot) String() string {
	var sb strings.Builder
	s.WriteText(&sb)
	return sb.String()
}

// Handler serves the registry's current snapshot — mount it at
// /debug/metrics. The format is negotiated per request: a Prometheus scrape
// (an Accept header naming the 0.0.4 text exposition format or OpenMetrics,
// or an explicit ?format=prometheus) receives the Prometheus rendering;
// everything else (browsers, curl) receives the human-oriented text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.WriteText(w)
	})
}

// wantsPrometheus reports whether the request negotiates the Prometheus
// exposition format.
func wantsPrometheus(req *http.Request) bool {
	if req.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "openmetrics")
}

// Default is the process-wide registry the package-level helpers use.
var Default = NewRegistry()

// GetCounter returns a counter from the Default registry.
func GetCounter(name string) *Counter { return Default.GetCounter(name) }

// GetGauge returns a gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.GetGauge(name) }

// GetTimer returns a timer from the Default registry.
func GetTimer(name string) *Timer { return Default.GetTimer(name) }

// GetHistogram returns a DefaultBuckets histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.GetHistogram(name) }

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
