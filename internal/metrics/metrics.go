// Package metrics provides tiny, dependency-free runtime instrumentation
// for the pipeline's hot layers: atomic counters and timers registered by
// name in a Registry, a sorted text snapshot for logs and CLIs, and an
// http.Handler suitable for a /debug/metrics endpoint.
//
// Counters and timers are safe for concurrent use and designed to sit on
// hot paths: call sites hold the *Counter / *Timer returned by a one-time
// lookup instead of resolving the name per event.
//
//	var processed = metrics.GetCounter("core.pipeline.records")
//	...
//	processed.Add(int64(len(records)))
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be zero; negative deltas are not meaningful but are not
// rejected, to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Timer accumulates observed durations: event count and total elapsed time.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one event of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// Mean returns the average observed duration (zero when empty).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(t.nanos.Load() / n)
}

// Registry is a named set of counters and timers. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
	}
}

// GetCounter returns the counter registered under name, creating it on first
// use. The returned pointer is stable; cache it at the call site.
func (r *Registry) GetCounter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GetTimer returns the timer registered under name, creating it on first use.
func (r *Registry) GetTimer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// TimerStats is a timer's state at snapshot time.
type TimerStats struct {
	Count int64
	Total time.Duration
}

// Mean returns the average duration (zero when empty).
func (s TimerStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters map[string]int64
	Timers   map[string]TimerStats
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Timers:   make(map[string]TimerStats, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerStats{Count: t.Count(), Total: t.Total()}
	}
	return s
}

// Reset zeroes every registered metric (the registry keeps its names, so
// cached pointers stay valid). Intended for tests.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.nanos.Store(0)
	}
}

// WriteText renders the snapshot as sorted "name value" lines, counters
// first, e.g.:
//
//	counter clf.scanner.malformed 3
//	timer   eval.point count=40 total=12.4s mean=310ms
func (s Snapshot) WriteText(w io.Writer) error {
	var sb strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "counter %s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Timers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.Timers[name]
		fmt.Fprintf(&sb, "timer   %s count=%d total=%s mean=%s\n",
			name, t.Count, t.Total.Round(time.Microsecond), t.Mean().Round(time.Microsecond))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the snapshot as WriteText does.
func (s Snapshot) String() string {
	var sb strings.Builder
	s.WriteText(&sb)
	return sb.String()
}

// Handler serves the registry's current snapshot as plain text — mount it at
// /debug/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().WriteText(w)
	})
}

// Default is the process-wide registry the package-level helpers use.
var Default = NewRegistry()

// GetCounter returns a counter from the Default registry.
func GetCounter(name string) *Counter { return Default.GetCounter(name) }

// GetTimer returns a timer from the Default registry.
func GetTimer(name string) *Timer { return Default.GetTimer(name) }

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
