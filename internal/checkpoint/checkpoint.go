// Package checkpoint persists the live sessionizer's recoverable state so a
// crashed process can resume without losing or duplicating sessions. A
// checkpoint pairs a core.TailSnapshot (every open burst plus the stage
// counters) with two byte offsets: how far into the source access log the
// snapshot is consistent, and how long the session output file was at that
// moment. Recovery restores the snapshot, truncates the session file to
// SinkOffset, and replays the log from LogOffset — the replayed suffix
// re-emits exactly the sessions the crash cut off.
//
// Files are written atomically (temp file, fsync, rename) with a versioned
// magic header and a CRC32 over the payload, so a reader either gets a
// complete, intact checkpoint or a detectable error — never a torn one.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"

	"smartsra/internal/core"
	"smartsra/internal/metrics"
)

// Checkpoint is the persisted unit of recoverable state.
type Checkpoint struct {
	// LogOffset is the byte offset into the source access log up to which
	// Tail is consistent: every record before it has been pushed and every
	// session those records finalized has been written to the sink. Offsets
	// come from core.IngestOffsets and are line-aligned, so replay can seek
	// straight to it.
	LogOffset int64
	// SinkOffset is the size of the session output file at snapshot time,
	// after flushing. Recovery truncates the session file to this length
	// before replaying, discarding the crashed run's post-checkpoint writes
	// that replay will re-emit.
	SinkOffset int64
	// Tail is the sessionizer state at LogOffset.
	Tail core.TailSnapshot
	// LogFile indexes the (lexically ordered) multi-file input set that
	// LogOffset applies to; 0 for single-file inputs, so checkpoints written
	// before multi-file support decode with the correct meaning. For gzip
	// members LogOffset counts decoded bytes. Gob tolerates the added
	// fields, so the file format version is unchanged.
	LogFile int
	// LogPath is the path LogFile referred to when the checkpoint was
	// written. Recovery validates it still names the same position in the
	// resolved set — a rotated/renamed set makes the checkpoint stale
	// (degrade to full replay) instead of silently replaying the wrong
	// file. Empty in pre-multi-file checkpoints, which skips the check.
	LogPath string
	// CutSeq is the sequence number of the last journaled expiry cut whose
	// emission is already reflected in Tail and SinkOffset. Recovery
	// re-applies only journal cuts with Seq > CutSeq during log replay,
	// keeping timed-expiry emission replayable across a crash. Zero in
	// checkpoints written before expiry cuts existed (gob tolerates the
	// added field), which re-applies every journaled cut — correct, since
	// those runs journaled none.
	CutSeq int64
	// DropSpans are byte ranges of the access log that were served and
	// logged but dropped from the sessionizer under drop-count shedding and
	// not yet reconciled at snapshot time. Recovery restores them as the
	// pending-backfill ledger so a crash cannot leak dropped records past
	// the conservation accounting.
	DropSpans []DropSpan
}

// DropSpan is a half-open byte range [Start, End) of the access log holding
// Records consecutive records that were dropped from the live tail under
// drop-count shedding. Spans are coalesced by the writer (adjacent drops
// merge), and reconciliation re-reads the range and pushes the records back
// through the ingest queue.
type DropSpan struct {
	Start   int64
	End     int64
	Records int64
}

// ErrCorrupt reports a checkpoint file that exists but cannot be trusted:
// bad magic, unknown version, truncation, CRC mismatch, or an undecodable
// payload. Callers must treat it as "no checkpoint" and fall back to a full
// replay — errors.Is(err, ErrCorrupt) distinguishes it from I/O failures.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated file")

// File layout: magic (7 bytes) + version (1 byte) + payload length (8 bytes
// LE) + CRC32-IEEE of payload (4 bytes LE) + gob payload.
const (
	magic      = "SSRACKP"
	version    = 1
	headerSize = len(magic) + 1 + 8 + 4
)

// Checkpoint I/O outcomes, labeled for /debug/metrics: saves and save
// failures show checkpointing health; corrupt-load counts show how often
// recovery had to fall back to a full replay.
var (
	metricSaves = metrics.GetCounter(metrics.WithLabels(
		"checkpoint.events", "kind", "save"))
	metricSaveErrors = metrics.GetCounter(metrics.WithLabels(
		"checkpoint.events", "kind", "save_error"))
	metricLoads = metrics.GetCounter(metrics.WithLabels(
		"checkpoint.events", "kind", "load"))
	metricCorrupt = metrics.GetCounter(metrics.WithLabels(
		"checkpoint.events", "kind", "corrupt"))
)

// Save writes ck to path atomically: the payload goes to a temp file in the
// same directory, is synced to stable storage, and is renamed over path, so
// a crash or write fault mid-save leaves the previous checkpoint intact. Any
// failure removes the temp file and counts a save_error.
func Save(fsys FS, path string, ck *Checkpoint) (err error) {
	defer func() {
		if err != nil {
			metricSaveErrors.Inc()
		} else {
			metricSaves.Inc()
		}
	}()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, headerSize+payload.Len())
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	buf = append(buf, payload.Bytes()...)

	f, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Load reads and verifies the checkpoint at path. It returns fs.ErrNotExist
// when no checkpoint exists, an ErrCorrupt-wrapped error when the file fails
// any integrity check, and the decoded checkpoint otherwise.
func Load(fsys FS, path string) (*Checkpoint, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	if v := data[len(magic)]; v != version {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, version)
	}
	n := binary.LittleEndian.Uint64(data[len(magic)+1:])
	sum := binary.LittleEndian.Uint32(data[len(magic)+9:])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: CRC %08x, want %08x", ErrCorrupt, got, sum)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if ck.LogOffset < 0 || ck.SinkOffset < 0 {
		metricCorrupt.Inc()
		return nil, fmt.Errorf("%w: negative offset (log=%d sink=%d)", ErrCorrupt, ck.LogOffset, ck.SinkOffset)
	}
	metricLoads.Inc()
	return &ck, nil
}

// Resume is Load for startup paths: it folds the three cases recovery cares
// about into (checkpoint, reason). A missing file is a clean cold start
// (nil, ""); a corrupt one is a cold start with a reason to log; only real
// I/O errors are returned as errors.
func Resume(fsys FS, path string) (ck *Checkpoint, reason string, err error) {
	ck, err = Load(fsys, path)
	switch {
	case err == nil:
		return ck, "", nil
	case errors.Is(err, fs.ErrNotExist):
		return nil, "", nil
	case errors.Is(err, ErrCorrupt):
		return nil, err.Error(), nil
	default:
		return nil, "", err
	}
}
