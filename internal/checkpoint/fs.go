package checkpoint

import (
	"io"
	"os"
)

// FS is the slice of filesystem behavior checkpointing needs. Production code
// uses OS; tests substitute a fault-injecting implementation (see
// internal/faultio) to exercise short writes, failed syncs, and failed
// renames without touching a real disk's failure modes.
type FS interface {
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics) open for writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (cleanup of abandoned temp files).
	Remove(name string) error
	// ReadFile returns the full contents of a file.
	ReadFile(name string) ([]byte, error)
}

// File is the writable handle CreateTemp returns. Sync must flush to stable
// storage — Save's durability claim rests on syncing before the rename.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// OS is the real-filesystem FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
