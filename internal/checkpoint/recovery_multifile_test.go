package checkpoint_test

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"smartsra/internal/checkpoint"
	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/faultio"
	"smartsra/internal/session"
)

// The multi-file variant of the crash-recovery harness: the corpus is split
// into a rotated three-file set (the middle member gzip-compressed, the
// first missing its final newline), ingestion is killed at progress
// boundaries — including inside the gzip member, where the checkpoint
// offset counts decoded bytes — and every recovery must resume at the
// recorded (file, offset) position and end byte-identical to an
// uninterrupted single-stream run.

// rotateCorpus splits c.log at line boundaries into three files under dir:
// plain (trailing newline stripped), gzip, plain.
func rotateCorpus(t *testing.T, c corpus, dir string) []string {
	t.Helper()
	lines := bytes.SplitAfter(c.log, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 3 {
		t.Fatalf("corpus has %d lines, cannot rotate into 3 files", len(lines))
	}
	per := (len(lines) + 2) / 3
	cut := func(i, j int) []byte {
		if j > len(lines) {
			j = len(lines)
		}
		return bytes.Join(lines[i:j], nil)
	}
	paths := []string{
		filepath.Join(dir, "access.log.0"),
		filepath.Join(dir, "access.log.1.gz"),
		filepath.Join(dir, "access.log.2"),
	}
	if err := os.WriteFile(paths[0], bytes.TrimSuffix(cut(0, per), []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(cut(per, 2*per)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[2], cut(2*per, len(lines)), 0o644); err != nil {
		t.Fatal(err)
	}
	return paths
}

// attemptFiles is attempt for the multi-file path: recover from the
// checkpoint (validating its (file, path) anchor the way cmd/sessionize
// does), replay the set from the recorded position via IngestFiles,
// checkpoint every 3rd progress boundary through fsys, and — when
// killAfter >= 0 — crash by failing the progress callback at that boundary,
// leaving a torn tail on the session file.
func attemptFiles(t *testing.T, c corpus, paths []string, sinkPath, ckptPath string, fsys checkpoint.FS, shards, workers, killAfter int) bool {
	t.Helper()

	ck, _, err := checkpoint.Resume(fsys, ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewShardedTail(c.config(workers), 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	var start clf.FilePos
	var sinkLen int64
	if ck != nil {
		if ck.LogFile < 0 || ck.LogFile >= len(paths) {
			t.Fatalf("checkpoint file index %d outside the %d-file set", ck.LogFile, len(paths))
		}
		if ck.LogPath != paths[ck.LogFile] {
			t.Fatalf("checkpoint anchored to %q, set has %q at index %d", ck.LogPath, paths[ck.LogFile], ck.LogFile)
		}
		if err := st.Restore(ck.Tail); err != nil {
			t.Fatalf("restore: %v", err)
		}
		start = clf.FilePos{File: ck.LogFile, Offset: ck.LogOffset}
		sinkLen = ck.SinkOffset
	}

	f, err := os.OpenFile(sinkPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(sinkLen); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(sinkLen, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)

	boundaries := 0
	_, ingestErr := st.IngestFiles(paths, start, func(s []session.Session) {
		if err := session.WriteAll(bw, s); err != nil {
			t.Fatal(err)
		}
	}, func(pos clf.FilePos) error {
		boundaries++
		if killAfter >= 0 && boundaries >= killAfter {
			return errKilled
		}
		if boundaries%3 != 0 {
			return nil
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		size, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			t.Fatal(err)
		}
		checkpoint.Save(fsys, ckptPath, &checkpoint.Checkpoint{
			LogOffset:  pos.Offset,
			LogFile:    pos.File,
			LogPath:    paths[pos.File],
			SinkOffset: size,
			Tail:       st.Snapshot(),
		})
		return nil
	})

	if killAfter >= 0 && errors.Is(ingestErr, errKilled) {
		bw.Flush()
		if _, err := f.WriteString("10.9.9.9 - - [torn mid-li"); err != nil {
			t.Fatal(err)
		}
		return false
	}
	if ingestErr != nil {
		t.Fatal(ingestErr)
	}
	// A kill scheduled past the set's last boundary never fires and the pass
	// runs to completion — fine for a small resumed suffix; the caller just
	// stops crashing.
	if err := session.WriteAll(bw, st.Flush()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return true
}

func TestCrashRecoveryMultiFile(t *testing.T) {
	corpora := map[string]func(*testing.T) corpus{
		"golden": goldenCorpus,
		"simgen": simgenCorpus,
	}
	for name, load := range corpora {
		t.Run(name, func(t *testing.T) {
			c := load(t)
			want := referenceRun(t, c)

			for seed := int64(1); seed <= 2; seed++ {
				rng := rand.New(rand.NewSource(seed))
				dir := t.TempDir()
				paths := rotateCorpus(t, c, dir)
				sinkPath := filepath.Join(dir, "sessions.txt")
				ckptPath := filepath.Join(dir, "state.ckpt")
				fsys := &faultio.FS{
					WriteFaults: func(call int) faultio.Fault {
						switch {
						case call%5 == 4:
							return faultio.Fail
						case call%7 == 6:
							return faultio.Short
						default:
							return faultio.OK
						}
					},
				}

				// Kill after a few boundaries per attempt; a checkpoint lands
				// every 3rd boundary, so attempts that get that far make
				// forward progress, and the final uninterrupted pass finishes
				// the set regardless. Shard and worker counts rotate across
				// restarts to prove snapshots are layout-independent.
				layouts := [][2]int{{1, 1}, {3, 2}, {4, 3}, {2, 4}}
				kills, killed := 4, 0
				for i := 0; i < kills; i++ {
					shards, workers := layouts[i%len(layouts)][0], layouts[i%len(layouts)][1]
					killAfter := 2 + rng.Intn(6)
					if !attemptFiles(t, c, paths, sinkPath, ckptPath, fsys, shards, workers, killAfter) {
						killed++
					}
				}
				if killed == 0 {
					t.Fatalf("seed %d: no attempt crashed — the harness never exercised recovery", seed)
				}
				final := layouts[kills%len(layouts)]
				if !attemptFiles(t, c, paths, sinkPath, ckptPath, fsys, final[0], final[1], -1) {
					t.Fatalf("seed %d: final attempt did not complete", seed)
				}

				got, err := os.ReadFile(sinkPath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: recovered session file differs from uninterrupted run (%d vs %d bytes)",
						seed, len(got), len(want))
				}
			}
		})
	}
}
