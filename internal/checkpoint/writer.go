package checkpoint

import "time"

// Writer rate-limits checkpoint saves for a streaming caller that reaches a
// consistent point far more often than a snapshot is worth taking (every
// chunk boundary, every request). It is not safe for concurrent use; callers
// invoke it from the goroutine that owns the sessionizer state.
type Writer struct {
	// Now is the clock; nil means time.Now. Tests inject a fake to exercise
	// the rate limit deterministically.
	Now func() time.Time

	fsys  FS
	path  string
	every time.Duration
	last  time.Time
	err   error
}

// NewWriter returns a Writer that saves to path via fsys at most once per
// every (every <= 0 saves on every MaybeSave call).
func NewWriter(fsys FS, path string, every time.Duration) *Writer {
	return &Writer{fsys: fsys, path: path, every: every}
}

// Path returns the checkpoint file path the writer targets.
func (w *Writer) Path() string { return w.path }

// Save writes a checkpoint unconditionally and resets the rate-limit clock.
// A failed save leaves the previous on-disk checkpoint intact (Save in this
// package is atomic), so the writer records the error and carries on — a
// flaky disk degrades recovery granularity, it does not stop ingestion.
func (w *Writer) Save(ck *Checkpoint) error {
	w.last = w.now()
	w.err = Save(w.fsys, w.path, ck)
	return w.err
}

// MaybeSave saves if at least the configured interval elapsed since the last
// save. build is only invoked when a save is due, so callers can defer the
// (lock-taking) snapshot work to it.
func (w *Writer) MaybeSave(build func() *Checkpoint) (saved bool, err error) {
	if now := w.now(); !w.last.IsZero() && now.Sub(w.last) < w.every {
		return false, nil
	}
	return true, w.Save(build())
}

// Err returns the most recent Save error, or nil if the last save landed.
func (w *Writer) Err() error { return w.err }

func (w *Writer) now() time.Time {
	if w.Now != nil {
		return w.Now()
	}
	return time.Now()
}
