package checkpoint_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smartsra/internal/checkpoint"
	"smartsra/internal/core"
	"smartsra/internal/faultio"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func sampleCheckpoint() *checkpoint.Checkpoint {
	base := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	return &checkpoint.Checkpoint{
		LogOffset:  4096,
		SinkOffset: 512,
		Tail: core.TailSnapshot{
			Stats: core.Stats{Records: 40, Users: 2, Sessions: 3},
			Users: []core.UserState{
				{User: "10.0.0.1", Last: base, Entries: []session.Entry{
					{Page: webgraph.PageID(3), Time: base.Add(-time.Minute)},
					{Page: webgraph.PageID(14), Time: base},
				}},
				{User: "10.0.0.2", Last: base.Add(-time.Hour)}, // closed burst
			},
		},
		CutSeq: 7,
		DropSpans: []checkpoint.DropSpan{
			{Start: 1024, End: 2048, Records: 12},
			{Start: 3000, End: 3500, Records: 4},
		},
	}
}

func equalCheckpoints(a, b *checkpoint.Checkpoint) bool {
	if a.LogOffset != b.LogOffset || a.SinkOffset != b.SinkOffset ||
		a.Tail.Stats != b.Tail.Stats || len(a.Tail.Users) != len(b.Tail.Users) ||
		a.CutSeq != b.CutSeq || len(a.DropSpans) != len(b.DropSpans) {
		return false
	}
	for i := range a.DropSpans {
		if a.DropSpans[i] != b.DropSpans[i] {
			return false
		}
	}
	for i := range a.Tail.Users {
		au, bu := a.Tail.Users[i], b.Tail.Users[i]
		if au.User != bu.User || !au.Last.Equal(bu.Last) || len(au.Entries) != len(bu.Entries) {
			return false
		}
		for j := range au.Entries {
			if au.Entries[j].Page != bu.Entries[j].Page || !au.Entries[j].Time.Equal(bu.Entries[j].Time) {
				return false
			}
		}
	}
	return true
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	want := sampleCheckpoint()
	if err := checkpoint.Save(checkpoint.OS, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Load(checkpoint.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCheckpoints(got, want) {
		t.Fatalf("round trip changed checkpoint:\ngot  %+v\nwant %+v", got, want)
	}
	if ents, err := os.ReadDir(filepath.Dir(path)); err != nil || len(ents) != 1 {
		t.Fatalf("temp files left behind: %v (err %v)", ents, err)
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := checkpoint.Load(checkpoint.OS, filepath.Join(t.TempDir(), "none.ckpt"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load on missing file: %v, want fs.ErrNotExist", err)
	}
	ck, reason, err := checkpoint.Resume(checkpoint.OS, filepath.Join(t.TempDir(), "none.ckpt"))
	if ck != nil || reason != "" || err != nil {
		t.Fatalf("Resume on missing file = (%v, %q, %v), want clean cold start", ck, reason, err)
	}
}

// TestLoadRejectsCorruption: every way a checkpoint file can be damaged —
// truncation at any prefix, a flipped bit anywhere, wrong magic, unknown
// version — must yield ErrCorrupt, never a silently wrong checkpoint.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := checkpoint.Save(checkpoint.OS, path, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		p := filepath.Join(dir, "bad.ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := checkpoint.Load(checkpoint.OS, p); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: Load = %v, want ErrCorrupt", name, err)
		}
		if ck, reason, err := checkpoint.Resume(checkpoint.OS, p); ck != nil || reason == "" || err != nil {
			t.Errorf("%s: Resume = (%v, %q, %v), want corrupt fallback", name, ck, reason, err)
		}
	}

	for cut := 0; cut < len(intact); cut += 7 {
		check("truncated", intact[:cut])
	}
	for i := 0; i < len(intact); i += 11 {
		flipped := append([]byte(nil), intact...)
		flipped[i] ^= 0x40
		check("bit flip", flipped)
	}
	check("empty", nil)
	check("garbage", []byte("not a checkpoint at all, but long enough to pass the size check"))
}

// TestFailedSaveLeavesPreviousIntact: injected write/sync/rename faults make
// Save fail, but the previous checkpoint must stay loadable and no temp
// files may accumulate.
func TestFailedSaveLeavesPreviousIntact(t *testing.T) {
	schedules := map[string]*faultio.FS{
		"write fails":  {WriteFaults: faultio.FailAfter(1)},
		"short write":  {WriteFaults: faultio.FaultAt(faultio.Short, 1)},
		"sync fails":   {SyncFaults: faultio.FailAfter(1)},
		"rename fails": {RenameFaults: faultio.FailAfter(1)},
	}
	for name, fsys := range schedules {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.ckpt")
		first := sampleCheckpoint()
		if err := checkpoint.Save(fsys, path, first); err != nil {
			t.Fatalf("%s: initial save: %v", name, err)
		}
		second := sampleCheckpoint()
		second.LogOffset = 9999
		if err := checkpoint.Save(fsys, path, second); err == nil {
			t.Fatalf("%s: faulted save succeeded", name)
		} else if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("%s: faulted save error = %v, want ErrInjected", name, err)
		}
		got, err := checkpoint.Load(checkpoint.OS, path)
		if err != nil {
			t.Fatalf("%s: previous checkpoint unreadable after failed save: %v", name, err)
		}
		if !equalCheckpoints(got, first) {
			t.Fatalf("%s: previous checkpoint changed by failed save", name)
		}
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) != 1 {
			t.Fatalf("%s: leftover files after failed save: %v (err %v)", name, ents, err)
		}
	}
}

// TestWriterRateLimit: MaybeSave honors the interval, only builds the
// snapshot when due, and a failed save does not stop later saves.
func TestWriterRateLimit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	fsys := &faultio.FS{WriteFaults: faultio.FaultAt(faultio.Fail, 1)}
	w := checkpoint.NewWriter(fsys, path, time.Minute)
	clock := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	w.Now = func() time.Time { return clock }

	builds := 0
	build := func() *checkpoint.Checkpoint {
		builds++
		ck := sampleCheckpoint()
		ck.LogOffset = int64(builds)
		return ck
	}

	if saved, err := w.MaybeSave(build); !saved || err != nil {
		t.Fatalf("first MaybeSave = (%v, %v), want save", saved, err)
	}
	for i := 0; i < 5; i++ {
		clock = clock.Add(10 * time.Second)
		if saved, _ := w.MaybeSave(build); saved {
			t.Fatal("MaybeSave saved inside the interval")
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want once (lazy when not due)", builds)
	}

	clock = clock.Add(time.Minute) // due again; this save hits the write fault
	if saved, err := w.MaybeSave(build); !saved || !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("faulted MaybeSave = (%v, %v), want attempted save with ErrInjected", saved, err)
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failed save")
	}
	clock = clock.Add(time.Minute)
	if saved, err := w.MaybeSave(build); !saved || err != nil {
		t.Fatalf("MaybeSave after failure = (%v, %v), want clean save", saved, err)
	}
	if w.Err() != nil {
		t.Fatalf("Err() = %v after clean save, want nil", w.Err())
	}
	got, err := checkpoint.Load(checkpoint.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LogOffset != 3 {
		t.Fatalf("final checkpoint LogOffset = %d, want 3 (last build)", got.LogOffset)
	}
}
