package checkpoint_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smartsra/internal/checkpoint"
	"smartsra/internal/core"
	"smartsra/internal/faultio"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// The headline robustness harness: run serve-style streaming ingestion over
// a corpus, kill it at randomized byte offsets, recover from the latest
// checkpoint (restore snapshot, truncate the session file to the recorded
// sink offset, replay the log from the recorded log offset), and require the
// final session file to be byte-identical to an uninterrupted run — no lost
// sessions, no duplicates. Fault-injected checkpoint saves (failing and torn
// writes) and torn session-file tails are part of every run.

var errKilled = errors.New("simulated crash")

// killReader passes through r and fails with errKilled once the configured
// number of bytes has been consumed — the process dying mid-read.
type killReader struct {
	r         io.Reader
	remaining int64
}

func (k *killReader) Read(p []byte) (int, error) {
	if k.remaining <= 0 {
		return 0, errKilled
	}
	if int64(len(p)) > k.remaining {
		p = p[:k.remaining]
	}
	n, err := k.r.Read(p)
	k.remaining -= int64(n)
	return n, err
}

// corpus is one input log plus the processing configuration under test.
type corpus struct {
	graph      *webgraph.Graph
	log        []byte
	chunkBytes int // small enough that the log spans many progress boundaries
}

func goldenCorpus(t *testing.T) corpus {
	t.Helper()
	log, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden.log"))
	if err != nil {
		t.Fatalf("read golden corpus: %v", err)
	}
	g, _ := webgraph.PaperFigure1()
	return corpus{graph: g, log: log, chunkBytes: 256}
}

// simgenCorpus generates a >= 50k-record access log with the agent
// simulator, deterministically from fixed seeds.
func simgenCorpus(t *testing.T) corpus {
	t.Helper()
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 300, AvgOutDegree: 15, StartPageFraction: 0.05,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 3000
	params.Seed = 8
	res, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	records := res.Log(g)
	if len(records) < 50000 {
		t.Fatalf("simgen corpus has %d records, need >= 50000 (raise Agents)", len(records))
	}
	for _, rec := range records {
		sb.WriteString(rec.String())
		sb.WriteByte('\n')
	}
	return corpus{graph: g, log: []byte(sb.String()), chunkBytes: 64 << 10}
}

func (c corpus) config(workers int) core.Config {
	return core.Config{Graph: c.graph, Workers: workers, StreamDepth: 2, StreamChunkBytes: c.chunkBytes}
}

// referenceRun is the uninterrupted baseline: stream the whole log, flush,
// and render the complete session set.
func referenceRun(t *testing.T, c corpus) []byte {
	t.Helper()
	st, err := core.NewShardedTail(c.config(3), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var out []session.Session
	if _, err := st.Ingest(bytes.NewReader(c.log), func(s []session.Session) {
		out = append(out, s...)
	}); err != nil {
		t.Fatal(err)
	}
	out = append(out, st.Flush()...)
	var buf bytes.Buffer
	if err := session.WriteAll(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// attempt runs one serve-style ingestion pass: recover from the checkpoint
// (if any), replay the log from the recorded offset, checkpoint every few
// chunk boundaries through fsys, and — when killAt >= 0 — crash at that byte
// offset, leaving a torn tail on the session file. It returns whether the
// pass ran to completion (flushing open bursts into the session file).
func attempt(t *testing.T, c corpus, sinkPath, ckptPath string, fsys checkpoint.FS, shards, workers int, killAt int64) bool {
	t.Helper()

	ck, _, err := checkpoint.Resume(fsys, ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewShardedTail(c.config(workers), 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	var start, sinkLen int64
	if ck != nil {
		if err := st.Restore(ck.Tail); err != nil {
			t.Fatalf("restore: %v", err)
		}
		start, sinkLen = ck.LogOffset, ck.SinkOffset
	}

	f, err := os.OpenFile(sinkPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Discard everything past the checkpoint's sink offset: those sessions
	// will be re-emitted by the replay (this also removes any torn tail the
	// previous crash left).
	if err := f.Truncate(sinkLen); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(sinkLen, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)

	var reader io.Reader = bytes.NewReader(c.log[start:])
	if killAt >= 0 {
		reader = &killReader{r: reader, remaining: killAt - start}
	}

	boundaries := 0
	_, ingestErr := st.IngestOffsets(reader, func(s []session.Session) {
		if err := session.WriteAll(bw, s); err != nil {
			t.Fatal(err)
		}
	}, func(off int64) {
		boundaries++
		if boundaries%3 != 0 {
			return
		}
		// A consistent point: flush the sink so SinkOffset covers every
		// session emitted up to this chunk boundary, then snapshot.
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		size, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			t.Fatal(err)
		}
		// A failed save is survivable by design: the previous checkpoint
		// stays valid, recovery just replays a longer suffix.
		checkpoint.Save(fsys, ckptPath, &checkpoint.Checkpoint{
			LogOffset:  start + off,
			SinkOffset: size,
			Tail:       st.Snapshot(),
		})
	})

	if killAt >= 0 {
		if !errors.Is(ingestErr, errKilled) {
			t.Fatalf("kill at %d: ingest returned %v, want the injected crash", killAt, ingestErr)
		}
		// The dying process manages a last partial write: a torn line that
		// recovery must discard via the sink-offset truncation.
		bw.Flush()
		if _, err := f.WriteString("10.9.9.9 - - [torn mid-li"); err != nil {
			t.Fatal(err)
		}
		return false
	}
	if ingestErr != nil {
		t.Fatal(ingestErr)
	}
	if err := session.WriteAll(bw, st.Flush()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return true
}

func TestCrashRecoveryEquivalence(t *testing.T) {
	corpora := map[string]func(*testing.T) corpus{
		"golden": goldenCorpus,
		"simgen": simgenCorpus,
	}
	for name, load := range corpora {
		t.Run(name, func(t *testing.T) {
			c := load(t)
			want := referenceRun(t, c)

			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				dir := t.TempDir()
				sinkPath := filepath.Join(dir, "sessions.txt")
				ckptPath := filepath.Join(dir, "state.ckpt")
				// Every 5th checkpoint-file write fails and every 7th is torn:
				// saves keep failing throughout the run, and recovery must
				// shrug it off because the atomic rename keeps the previous
				// checkpoint intact.
				fsys := &faultio.FS{
					WriteFaults: func(call int) faultio.Fault {
						switch {
						case call%5 == 4:
							return faultio.Fail
						case call%7 == 6:
							return faultio.Short
						default:
							return faultio.OK
						}
					},
				}

				// Sorted random kill points: each crash happens strictly
				// later in the log than the last checkpoint, so the run makes
				// progress; shard and worker counts change across restarts to
				// prove snapshots are layout-independent.
				kills := make([]int64, 4)
				for i := range kills {
					kills[i] = 1 + rng.Int63n(int64(len(c.log))-1)
				}
				sort.Slice(kills, func(i, j int) bool { return kills[i] < kills[j] })

				layouts := [][2]int{{1, 1}, {3, 2}, {4, 3}, {2, 4}, {3, 3}}
				for i, killAt := range kills {
					shards, workers := layouts[i%len(layouts)][0], layouts[i%len(layouts)][1]
					if attempt(t, c, sinkPath, ckptPath, fsys, shards, workers, killAt) {
						t.Fatalf("seed %d: attempt with kill at %d ran to completion", seed, killAt)
					}
				}
				final := layouts[len(kills)%len(layouts)]
				if !attempt(t, c, sinkPath, ckptPath, fsys, final[0], final[1], -1) {
					t.Fatalf("seed %d: final attempt did not complete", seed)
				}

				got, err := os.ReadFile(sinkPath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: recovered session file differs from uninterrupted run (%d vs %d bytes)",
						seed, len(got), len(want))
				}
			}
		})
	}
}

// TestCrashRecoveryCorruptCheckpointFallsBack: when the checkpoint file is
// damaged after a crash, recovery must detect it (CRC) and fall back to a
// full replay — ending byte-identical, never loading poisoned state.
func TestCrashRecoveryCorruptCheckpointFallsBack(t *testing.T) {
	c := goldenCorpus(t)
	want := referenceRun(t, c)

	dir := t.TempDir()
	sinkPath := filepath.Join(dir, "sessions.txt")
	ckptPath := filepath.Join(dir, "state.ckpt")

	if attempt(t, c, sinkPath, ckptPath, checkpoint.OS, 3, 2, int64(len(c.log)*2/3)) {
		t.Fatal("kill attempt ran to completion")
	}
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("no checkpoint written before the crash: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if ck, reason, err := checkpoint.Resume(checkpoint.OS, ckptPath); ck != nil || reason == "" || err != nil {
		t.Fatalf("Resume on corrupt checkpoint = (%v, %q, %v), want detected corruption", ck, reason, err)
	}
	if !attempt(t, c, sinkPath, ckptPath, checkpoint.OS, 2, 3, -1) {
		t.Fatal("full-replay attempt did not complete")
	}
	got, err := os.ReadFile(sinkPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("full-replay fallback diverges from uninterrupted run")
	}
}
