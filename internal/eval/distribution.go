package eval

import (
	"fmt"

	"smartsra/internal/session"
)

// Distribution metrics complement the capture accuracy: a heuristic can
// score sessions right or wrong one by one, but analytics built on sessions
// (session-length reports, funnel statistics) care whether the *shape* of
// the reconstructed session population matches reality. The paper argues
// qualitatively that navigation-oriented sessions are inflated (§2.2);
// these metrics quantify that.

// LengthDistribution returns the empirical session-length distribution:
// out[i] is the fraction of sessions with length i+1, with lengths above
// maxLen folded into the last bucket. The result sums to 1 (or is nil for
// no sessions / maxLen < 1).
func LengthDistribution(sessions []session.Session, maxLen int) []float64 {
	if maxLen < 1 || len(sessions) == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	n := 0
	for _, s := range sessions {
		l := s.Len()
		if l == 0 {
			continue
		}
		if l > maxLen {
			l = maxLen
		}
		out[l-1]++
		n++
	}
	if n == 0 {
		return nil
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out
}

// TotalVariation returns the total variation distance between two
// distributions over the same support: ½·Σ|a[i]−b[i]| ∈ [0, 1]. Shorter
// slices are zero-padded.
func TotalVariation(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := av - bv
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 2
}

// LengthFidelity returns the total variation distance between the
// session-length distributions of reconstructed and real sessions (0 =
// identical shape, 1 = disjoint), using length buckets 1..maxLen.
func LengthFidelity(real, reconstructed []session.Session, maxLen int) (float64, error) {
	if maxLen < 1 {
		return 0, fmt.Errorf("eval: maxLen %d below 1", maxLen)
	}
	a := LengthDistribution(real, maxLen)
	b := LengthDistribution(reconstructed, maxLen)
	if a == nil || b == nil {
		return 0, fmt.Errorf("eval: empty session set in fidelity comparison")
	}
	return TotalVariation(a, b), nil
}
