package eval

import (
	"fmt"
	"io"
	"strings"

	"smartsra/internal/plot"
)

// WriteTable renders the sweep as an aligned text table, one row per swept
// value and one column per heuristic — the same series the paper's figures
// plot. The one-to-one (matched) accuracy is the headline number; the
// unconstrained exists-capture accuracy follows in parentheses.
func (r *SweepResult) WriteTable(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.Experiment.Name, r.Experiment.Title)
	fmt.Fprintf(&sb, "accuracy %% as matched (exists)\n")
	fmt.Fprintf(&sb, "%-8s", r.Experiment.Variable+"%")
	series := r.seriesNames()
	for _, h := range series {
		fmt.Fprintf(&sb, "%16s", h)
	}
	sb.WriteString("   real-sessions\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%-8.0f", p.X*100)
		for _, h := range series {
			cell := fmt.Sprintf("%.1f (%.1f)", p.Matched[h].Percent(), p.Exists[h].Percent())
			fmt.Fprintf(&sb, "%16s", cell)
		}
		fmt.Fprintf(&sb, "   %d\n", p.RealSessions)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the sweep as CSV with a header row, for plotting. Both
// metrics are emitted per heuristic (<name>_matched, <name>_exists).
func (r *SweepResult) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(r.Experiment.Variable))
	series := r.seriesNames()
	for _, h := range series {
		sb.WriteString("," + h + "_matched," + h + "_exists")
	}
	sb.WriteString(",real_sessions\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%.2f", p.X)
		for _, h := range series {
			fmt.Fprintf(&sb, ",%.4f,%.4f", p.Matched[h].Value(), p.Exists[h].Value())
		}
		fmt.Fprintf(&sb, ",%d\n", p.RealSessions)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSessionStats renders per-heuristic session-shape statistics for the
// sweep, documenting e.g. the navigation-oriented heuristic's session
// inflation (§2.2).
func (r *SweepResult) WriteSessionStats(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — reconstructed session shapes\n", r.Experiment.Name)
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%s=%.0f%%:\n", r.Experiment.Variable, p.X*100)
		for _, h := range p.SeriesNames() {
			fmt.Fprintf(&sb, "  %-7s %s\n", h, p.Reconstructed[h])
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSVG renders the sweep as a line chart in the style of the paper's
// figures: swept probability (percent) on x, matched accuracy (percent) on
// y, one series per heuristic.
func (r *SweepResult) WriteSVG(w io.Writer) error {
	chart := plot.Chart{
		Title:  r.Experiment.Title,
		XLabel: r.Experiment.Variable + " (%)",
		YLabel: "real accuracy (%, matched)",
		YMin:   0,
		YMax:   100,
	}
	for _, h := range r.seriesNames() {
		s := plot.Series{Name: h}
		for _, p := range r.Points {
			s.X = append(s.X, p.X*100)
			s.Y = append(s.Y, p.Matched[h].Percent())
		}
		chart.Series = append(chart.Series, s)
	}
	return chart.WriteSVG(w)
}

// seriesNames returns the series present across the sweep (from the first
// point; all points share a configuration).
func (r *SweepResult) seriesNames() []string {
	if len(r.Points) == 0 {
		return HeuristicNames
	}
	return r.Points[0].SeriesNames()
}

// ShapeReport captures the paper's qualitative claims about a sweep so they
// can be asserted programmatically (see CheckShape). All fields are computed
// on the matched (headline) metric.
type ShapeReport struct {
	// SmartSRAAlwaysBest is true when heur4 has the highest accuracy at
	// every point.
	SmartSRAAlwaysBest bool
	// SmartSRAAlwaysBeatsTime is true when heur4 beats both time-oriented
	// heuristics at every point.
	SmartSRAAlwaysBeatsTime bool
	// MinRelativeMargin is the minimum over points of
	// heur4 / max(heur1..heur3) − 1 (Smart-SRA's relative win; negative when
	// another heuristic wins a point).
	MinRelativeMargin float64
	// MonotoneDecline is true when every heuristic's accuracy at the last
	// point is below its accuracy at the first point (the paper's LPP/NIP
	// claim; not expected for the STP sweep).
	MonotoneDecline bool
}

// CheckShape computes the qualitative shape of the sweep.
func (r *SweepResult) CheckShape() ShapeReport {
	if len(r.Points) == 0 {
		return ShapeReport{}
	}
	rep := ShapeReport{
		SmartSRAAlwaysBest:      true,
		SmartSRAAlwaysBeatsTime: true,
		MinRelativeMargin:       1e9,
	}
	for _, p := range r.Points {
		best := 0.0
		for _, h := range HeuristicNames[:3] {
			if v := p.Matched[h].Value(); v > best {
				best = v
			}
		}
		bestTime := p.Matched["heur1"].Value()
		if v := p.Matched["heur2"].Value(); v > bestTime {
			bestTime = v
		}
		v4 := p.Matched["heur4"].Value()
		if v4 <= best {
			rep.SmartSRAAlwaysBest = false
		}
		if v4 <= bestTime {
			rep.SmartSRAAlwaysBeatsTime = false
		}
		margin := 1e9
		if best > 0 {
			margin = v4/best - 1
		}
		if margin < rep.MinRelativeMargin {
			rep.MinRelativeMargin = margin
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	rep.MonotoneDecline = true
	for _, h := range HeuristicNames {
		if last.Matched[h].Value() >= first.Matched[h].Value() {
			rep.MonotoneDecline = false
		}
	}
	return rep
}
