package eval

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func mk(user string, pages ...int) session.Session {
	s := session.Session{User: user}
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{
			Page: webgraph.PageID(p),
			Time: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	return s
}

func TestAccuracyValue(t *testing.T) {
	if (Accuracy{}).Value() != 0 {
		t.Error("zero-real accuracy not 0")
	}
	a := Accuracy{Real: 4, Captured: 3}
	if a.Value() != 0.75 || a.Percent() != 75 {
		t.Errorf("Value/Percent = %v/%v", a.Value(), a.Percent())
	}
	if !strings.Contains(a.String(), "3/4") {
		t.Errorf("String = %q", a.String())
	}
}

func TestScoreSeparatesUsers(t *testing.T) {
	real := []session.Session{mk("alice", 1, 2), mk("bob", 1, 2)}
	cands := []session.Session{mk("alice", 0, 1, 2, 3)}
	acc := Score(real, cands)
	if acc.Captured != 1 || acc.Real != 2 {
		t.Errorf("Score = %+v; bob must not be captured by alice's session", acc)
	}
}

func TestScoreCountsEachRealOnce(t *testing.T) {
	real := []session.Session{mk("u", 1, 2)}
	cands := []session.Session{mk("u", 1, 2), mk("u", 0, 1, 2)}
	if acc := Score(real, cands); acc.Captured != 1 {
		t.Errorf("double-counted: %+v", acc)
	}
}

func TestScoreMatchedUsesEachCandidateOnce(t *testing.T) {
	// One candidate captures both real sessions; matched credits only one.
	real := []session.Session{mk("u", 1, 2), mk("u", 3, 4)}
	cands := []session.Session{mk("u", 1, 2, 3, 4)}
	if acc := Score(real, cands); acc.Captured != 2 {
		t.Errorf("exists metric should capture both: %+v", acc)
	}
	if acc := ScoreMatched(real, cands); acc.Captured != 1 {
		t.Errorf("matched metric should capture one: %+v", acc)
	}
}

func TestScoreMatchedFindsAugmentingPaths(t *testing.T) {
	// R1 is capturable by H1 and H2; R2 only by H1. A greedy assignment that
	// gives H1 to R1 first must be corrected by an augmenting path so both
	// count.
	r1 := mk("u", 1, 2)
	r2 := mk("u", 2, 3)
	h1 := mk("u", 1, 2, 3) // captures r1 and r2
	h2 := mk("u", 0, 1, 2) // captures r1 only
	acc := ScoreMatched([]session.Session{r1, r2}, []session.Session{h1, h2})
	if acc.Captured != 2 {
		t.Errorf("maximum matching should capture both: %+v", acc)
	}
}

func TestScoreMatchedNoCandidates(t *testing.T) {
	acc := ScoreMatched([]session.Session{mk("u", 1)}, nil)
	if acc.Captured != 0 || acc.Real != 1 {
		t.Errorf("ScoreMatched(nil candidates) = %+v", acc)
	}
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got.Sessions != 0 || got.MeanLength != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
	st := Summarize([]session.Session{mk("u", 1), mk("u", 1, 2, 3), mk("u", 1, 2)})
	if st.Sessions != 3 || st.MaxLength != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanLength != 2 || st.MedianLength != 2 {
		t.Errorf("mean/median = %v/%v", st.MeanLength, st.MedianLength)
	}
	even := Summarize([]session.Session{mk("u", 1), mk("u", 1, 2, 3)})
	if even.MedianLength != 2 {
		t.Errorf("even median = %v", even.MedianLength)
	}
	if !strings.Contains(st.String(), "sessions=3") {
		t.Errorf("String = %q", st.String())
	}
}

// smallConfig returns a fast evaluation configuration.
func smallConfig() RunConfig {
	cfg := PaperDefaults()
	cfg.Topology = webgraph.TopologyConfig{
		Pages: 80, AvgOutDegree: 6, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}
	cfg.Params.Agents = 150
	return cfg
}

func TestEvaluatePoint(t *testing.T) {
	p, err := EvaluatePoint(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.RealSessions == 0 {
		t.Fatal("no real sessions")
	}
	for _, h := range HeuristicNames {
		m, ok := p.Matched[h]
		if !ok {
			t.Fatalf("heuristic %s missing from results", h)
		}
		if v := m.Value(); v < 0 || v > 1 {
			t.Errorf("%s matched accuracy %v out of range", h, v)
		}
		if p.Exists[h].Value() < m.Value() {
			t.Errorf("%s exists metric below matched metric", h)
		}
		if p.Reconstructed[h].Sessions == 0 {
			t.Errorf("%s reconstructed nothing", h)
		}
	}
}

func TestEvaluatePointDefaultsTopology(t *testing.T) {
	cfg := RunConfig{Params: simulator.PaperParams()}
	cfg.Params.Agents = 30
	p, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.RealSessions == 0 {
		t.Error("zero-value topology did not default to PaperTopology")
	}
}

// The CLF round trip must be lossless for simulated logs (whole-second
// timestamps, resolvable URIs): accuracies through the full parse+clean
// pipeline equal the direct ones.
func TestEvaluatePointViaCLFMatchesDirect(t *testing.T) {
	direct, err := EvaluatePoint(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.ViaCLF = true
	piped, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range HeuristicNames {
		if direct.Matched[h] != piped.Matched[h] {
			t.Errorf("%s: CLF pipeline changed matched accuracy: %v vs %v",
				h, piped.Matched[h], direct.Matched[h])
		}
		if direct.Exists[h] != piped.Exists[h] {
			t.Errorf("%s: CLF pipeline changed exists accuracy: %v vs %v",
				h, piped.Exists[h], direct.Exists[h])
		}
	}
}

func TestExperimentRun(t *testing.T) {
	base := smallConfig()
	exp := Experiment{
		Name: "mini", Title: "mini sweep", Variable: "STP",
		Values: []float64{0.05, 0.2}, Base: base,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].X != 0.05 || res.Points[1].X != 0.2 {
		t.Errorf("swept values wrong: %v, %v", res.Points[0].X, res.Points[1].X)
	}
	bad := exp
	bad.Variable = "XYZ"
	if _, err := bad.Run(); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestFigureDefinitions(t *testing.T) {
	base := PaperDefaults()
	f8 := Figure8(base)
	if len(f8.Values) != 20 || f8.Values[0] != 0.01 || f8.Values[19] != 0.20 {
		t.Errorf("figure8 sweep = %v", f8.Values)
	}
	if f8.Variable != "STP" {
		t.Errorf("figure8 variable = %q", f8.Variable)
	}
	f9 := Figure9(base)
	if len(f9.Values) != 10 || f9.Values[0] != 0 || f9.Values[9] != 0.90 {
		t.Errorf("figure9 sweep = %v", f9.Values)
	}
	f10 := Figure10(base)
	if f10.Variable != "NIP" || len(f10.Values) != 10 {
		t.Errorf("figure10 = %+v", f10)
	}
}

func TestReportWriters(t *testing.T) {
	base := smallConfig()
	exp := Experiment{
		Name: "mini", Title: "mini sweep", Variable: "LPP",
		Values: []float64{0, 0.5}, Base: base,
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var table, csv, stats strings.Builder
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSessionStats(&stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "heur4") || !strings.Contains(table.String(), "LPP") {
		t.Errorf("table missing headers:\n%s", table.String())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "lpp,heur1_matched,heur1_exists") {
		t.Errorf("csv header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 9 {
			t.Errorf("csv row %q has %d commas, want 9", l, got)
		}
	}
	if !strings.Contains(stats.String(), "meanLen") {
		t.Errorf("session stats output:\n%s", stats.String())
	}
}

func TestCheckShape(t *testing.T) {
	mkPoint := func(x, h1, h2, h3, h4 float64) PointResult {
		toAcc := func(v float64) Accuracy {
			return Accuracy{Real: 1000, Captured: int(v * 1000)}
		}
		return PointResult{
			X: x,
			Matched: map[string]Accuracy{
				"heur1": toAcc(h1), "heur2": toAcc(h2),
				"heur3": toAcc(h3), "heur4": toAcc(h4),
			},
		}
	}
	r := &SweepResult{Points: []PointResult{
		mkPoint(0.1, 0.30, 0.28, 0.32, 0.45),
		mkPoint(0.5, 0.20, 0.18, 0.22, 0.35),
	}}
	rep := r.CheckShape()
	if !rep.SmartSRAAlwaysBest || !rep.SmartSRAAlwaysBeatsTime {
		t.Errorf("shape = %+v", rep)
	}
	if rep.MinRelativeMargin < 0.40 || rep.MinRelativeMargin > 0.60 {
		t.Errorf("margin = %v", rep.MinRelativeMargin)
	}
	if !rep.MonotoneDecline {
		t.Error("decline not detected")
	}
	r2 := &SweepResult{Points: []PointResult{
		mkPoint(0.1, 0.30, 0.28, 0.50, 0.45),
		mkPoint(0.5, 0.35, 0.18, 0.22, 0.40),
	}}
	rep2 := r2.CheckShape()
	if rep2.SmartSRAAlwaysBest {
		t.Error("heur3 win at point 1 not detected")
	}
	if !rep2.SmartSRAAlwaysBeatsTime {
		t.Error("heur4 beats time heuristics everywhere here")
	}
	if rep2.MonotoneDecline {
		t.Error("heur1 rose; decline should be false")
	}
	if got := (&SweepResult{}).CheckShape(); got.SmartSRAAlwaysBest {
		t.Error("empty sweep should report zero shape")
	}
}

// The headline reproduction check: at Table 5 defaults (scaled down for test
// speed), Smart-SRA must beat every other heuristic on the matched metric,
// and the time heuristics by a wide margin.
func TestPaperShapeAtDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shape check")
	}
	cfg := PaperDefaults()
	cfg.Params.Agents = 800
	p, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v4 := p.Matched["heur4"].Value()
	for _, h := range HeuristicNames[:3] {
		if v := p.Matched[h].Value(); v4 <= v {
			t.Errorf("heur4 (%.3f) not above %s (%.3f) at paper defaults", v4, h, v)
		}
	}
	for _, h := range []string{"heur1", "heur2"} {
		if v := p.Matched[h].Value(); v4 < 1.4*v {
			t.Errorf("heur4 (%.3f) less than 1.4x %s (%.3f)", v4, h, v)
		}
	}
}

func TestReplicate(t *testing.T) {
	cfg := smallConfig()
	cfg.Params.Agents = 80
	res, err := Replicate(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	for _, h := range HeuristicNames {
		m := res.Matched[h]
		if m.N != 3 {
			t.Errorf("%s matched n = %d", h, m.N)
		}
		if m.Mean < 0 || m.Mean > 100 {
			t.Errorf("%s mean %% out of range: %v", h, m.Mean)
		}
		if res.Exists[h].Mean < m.Mean-1e-9 {
			t.Errorf("%s exists mean below matched mean", h)
		}
	}
	// Different seeds should produce at least some spread somewhere.
	spread := 0.0
	for _, h := range HeuristicNames {
		spread += res.Matched[h].StdDev
	}
	if spread == 0 {
		t.Error("no variance across seeds at all")
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "±") || !strings.Contains(sb.String(), "heur4") {
		t.Errorf("table:\n%s", sb.String())
	}
	if _, err := Replicate(cfg, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestLengthDistribution(t *testing.T) {
	sessions := []session.Session{
		mk("u", 1), mk("u", 1), // length 1 x2
		mk("u", 1, 2),          // length 2
		mk("u", 1, 2, 3, 4, 5), // length 5 folds into bucket 3
		{User: "empty"},
	}
	d := LengthDistribution(sessions, 3)
	if len(d) != 3 {
		t.Fatalf("dist = %v", d)
	}
	if d[0] != 0.5 || d[1] != 0.25 || d[2] != 0.25 {
		t.Errorf("dist = %v", d)
	}
	if got := LengthDistribution(nil, 3); got != nil {
		t.Errorf("empty dist = %v", got)
	}
	if got := LengthDistribution(sessions, 0); got != nil {
		t.Errorf("maxLen 0 dist = %v", got)
	}
	if got := LengthDistribution([]session.Session{{User: "e"}}, 3); got != nil {
		t.Errorf("all-empty dist = %v", got)
	}
}

func TestTotalVariation(t *testing.T) {
	if got := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("identical TV = %v", got)
	}
	if got := TotalVariation([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Errorf("disjoint TV = %v", got)
	}
	if got := TotalVariation([]float64{1}, []float64{0.5, 0.5}); got != 0.5 {
		t.Errorf("padded TV = %v", got)
	}
}

func TestLengthFidelityOrdersHeuristics(t *testing.T) {
	cfg := smallConfig()
	// Fidelity needs sessions; reuse EvaluatePoint's machinery by hand.
	g, err := webgraph.GenerateTopology(cfg.Topology, rand.New(rand.NewSource(cfg.TopologySeed)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run(g, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	fid := func(h heuristics.Reconstructor) float64 {
		v, err := LengthFidelity(res.Real, heuristics.ReconstructAll(h, res.Streams), 20)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	smart := fid(heuristics.NewSmartSRA(g))
	timegap := fid(heuristics.NewTimeGap())
	if smart >= timegap {
		t.Errorf("Smart-SRA length fidelity (TV=%.3f) not better than time-gap (TV=%.3f)",
			smart, timegap)
	}
	if _, err := LengthFidelity(nil, res.Real, 10); err == nil {
		t.Error("empty real set accepted")
	}
	if _, err := LengthFidelity(res.Real, res.Real, 0); err == nil {
		t.Error("maxLen 0 accepted")
	}
}

// The upper-bound claim: on simulated traffic with logged referrers, the
// referrer chain ("heurR") must beat Smart-SRA on the matched metric.
func TestIncludeReferrerAddsUpperBound(t *testing.T) {
	cfg := smallConfig()
	cfg.IncludeReferrer = true
	p, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := p.SeriesNames()
	if names[len(names)-1] != "heurR" {
		t.Fatalf("series = %v", names)
	}
	if p.Matched["heurR"].Value() <= p.Matched["heur4"].Value() {
		t.Errorf("referrer chain %.3f not above Smart-SRA %.3f",
			p.Matched["heurR"].Value(), p.Matched["heur4"].Value())
	}
	// Reporters include the extra column.
	exp := Experiment{Name: "mini", Title: "mini", Variable: "STP",
		Values: []float64{0.1}, Base: cfg}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var table strings.Builder
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "heurR") {
		t.Errorf("table missing heurR:\n%s", table.String())
	}
	var svg strings.Builder
	if err := res.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), ">heurR</text>") {
		t.Error("SVG legend missing heurR")
	}
	// Without the flag, only the four series appear.
	plain, err := EvaluatePoint(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.SeriesNames(); len(got) != 4 {
		t.Errorf("plain series = %v", got)
	}
}

// TestFigureShapesReproduce pins the headline reproduction claims at test
// scale: Smart-SRA beats both time heuristics at every sweep point of all
// three figures, and the LPP sweep declines monotonically end to end.
func TestFigureShapesReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shape check")
	}
	base := PaperDefaults()
	base.Params.Agents = 400
	sweeps := []Experiment{Figure8(base), Figure9(base), Figure10(base)}
	// Thin the sweeps for speed; endpoints plus a midpoint keep the shape.
	sweeps[0].Values = []float64{0.01, 0.10, 0.20}
	sweeps[1].Values = []float64{0, 0.40, 0.90}
	sweeps[2].Values = []float64{0, 0.40, 0.90}
	for _, e := range sweeps {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		shape := res.CheckShape()
		if !shape.SmartSRAAlwaysBeatsTime {
			t.Errorf("%s: Smart-SRA does not beat the time heuristics everywhere", e.Name)
		}
		if e.Name == "figure9" && !shape.MonotoneDecline {
			t.Errorf("%s: accuracies do not decline with LPP", e.Name)
		}
		if e.Name != "figure10" && !shape.SmartSRAAlwaysBest {
			t.Errorf("%s: Smart-SRA not best everywhere", e.Name)
		}
	}
}
