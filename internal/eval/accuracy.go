// Package eval scores session reconstruction heuristics against the agent
// simulator's ground truth and regenerates the paper's evaluation (§5):
// the real-accuracy metric and the three parameter sweeps of Figures 8-10.
package eval

import (
	"fmt"
	"sort"

	"smartsra/internal/session"
)

// Accuracy is the paper's metric: the fraction of real (ground-truth)
// sessions that some reconstructed session captures as a contiguous
// subsequence (§5.1).
type Accuracy struct {
	// Real is the number of ground-truth sessions.
	Real int
	// Captured is how many of them were captured.
	Captured int
}

// Value returns the accuracy in [0, 1]; zero when no real sessions exist.
func (a Accuracy) Value() float64 {
	if a.Real == 0 {
		return 0
	}
	return float64(a.Captured) / float64(a.Real)
}

// Percent returns the accuracy as a percentage, as the paper's figures plot.
func (a Accuracy) Percent() float64 { return 100 * a.Value() }

// String formats the accuracy for reports.
func (a Accuracy) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", a.Captured, a.Real, a.Percent())
}

// Score computes the accuracy of candidates against the real sessions. A
// real session counts as captured when ANY candidate session of the same
// user captures it; sessions of other users never match (the reconstruction
// is per-user to begin with).
func Score(real, candidates []session.Session) Accuracy {
	byUser := make(map[string][]session.Session)
	for _, h := range candidates {
		byUser[h.User] = append(byUser[h.User], h)
	}
	acc := Accuracy{Real: len(real)}
	for _, r := range real {
		if session.CapturedByAny(byUser[r.User], r) {
			acc.Captured++
		}
	}
	return acc
}

// SessionStats summarizes a reconstructed session set, used alongside
// accuracy to reproduce the paper's qualitative claims (e.g. the
// navigation-oriented heuristic's inflated session lengths, §2.2).
type SessionStats struct {
	// Sessions is the number of sessions in the set.
	Sessions int
	// MeanLength is the mean number of page views per session.
	MeanLength float64
	// MaxLength is the longest session's page-view count.
	MaxLength int
	// MedianLength is the median page-view count.
	MedianLength float64
}

// Summarize computes SessionStats for a session set.
func Summarize(sessions []session.Session) SessionStats {
	st := SessionStats{Sessions: len(sessions)}
	if len(sessions) == 0 {
		return st
	}
	lengths := make([]int, len(sessions))
	total := 0
	for i, s := range sessions {
		lengths[i] = s.Len()
		total += s.Len()
		if s.Len() > st.MaxLength {
			st.MaxLength = s.Len()
		}
	}
	sort.Ints(lengths)
	st.MeanLength = float64(total) / float64(len(sessions))
	mid := len(lengths) / 2
	if len(lengths)%2 == 1 {
		st.MedianLength = float64(lengths[mid])
	} else {
		st.MedianLength = float64(lengths[mid-1]+lengths[mid]) / 2
	}
	return st
}

// String formats the stats for reports.
func (s SessionStats) String() string {
	return fmt.Sprintf("sessions=%d meanLen=%.2f medianLen=%.1f maxLen=%d",
		s.Sessions, s.MeanLength, s.MedianLength, s.MaxLength)
}
