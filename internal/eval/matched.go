package eval

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// ScoreMatched computes accuracy under one-to-one matching: each
// reconstructed session may be credited for at most one real session
// (maximum bipartite matching between real sessions and the candidates that
// capture them, computed exactly with the Hungarian augmenting-path method).
//
// Rationale: §5.2's curves are inconsistent with the unconstrained
// exists-a-capturer reading of §5.1. Under that reading a navigation-
// oriented session is a superset of the corresponding time-gap session
// (insertions only ever occur at hyperlink discontinuities, which cannot
// fall inside a real session), so heur3 would weakly dominate heur2 and
// both would sit far above the paper's reported 25-35% — our simulator
// measures 65-93% for all four heuristics under that metric. Reading
// "the ratio of correctly reconstructed sessions" as a one-to-one
// correspondence — a reconstructed session is "correct" when it captures a
// real session, and a heuristic that merges five real sessions into one
// candidate has reconstructed one session, not five — yields exactly the
// paper's ordering and levels. See DESIGN.md and EXPERIMENTS.md; Score keeps
// the literal unconstrained metric for comparison.
func ScoreMatched(real, candidates []session.Session) Accuracy {
	return ScoreMatchedWith(real, candidates, 1)
}

// matchProblem is one user's bipartite matching instance. Page sequences
// are extracted once here — not once per Captures probe — so the matcher's
// inner loop is allocation-free.
type matchProblem struct {
	realPages [][]webgraph.PageID
	candPages [][]webgraph.PageID
}

// ScoreMatchedWith is ScoreMatched sharded across a bounded worker pool:
// users are independent matching problems, so they are partitioned over
// min(workers, users) goroutines and the per-user matching sizes summed.
// Maximum-matching size is unique, and integer addition commutes, so the
// result is identical to the sequential computation for any worker count.
// workers <= 0 means GOMAXPROCS; workers == 1 (or a single user) runs
// inline with no goroutines.
func ScoreMatchedWith(real, candidates []session.Session, workers int) Accuracy {
	users := make(map[string]*matchProblem)
	order := make([]*matchProblem, 0, len(users))
	for _, r := range real {
		u := users[r.User]
		if u == nil {
			u = &matchProblem{}
			users[r.User] = u
			order = append(order, u)
		}
		u.realPages = append(u.realPages, r.Pages())
	}
	for _, h := range candidates {
		if u := users[h.User]; u != nil {
			u.candPages = append(u.candPages, h.Pages())
		}
	}
	acc := Accuracy{Real: len(real)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		var m matcher
		for _, u := range order {
			acc.Captured += m.match(u)
		}
		return acc
	}
	var (
		next     atomic.Int64
		captured atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var m matcher // per-worker scratch, reused across users
			sum := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					break
				}
				sum += m.match(order[i])
			}
			captured.Add(int64(sum))
		}()
	}
	wg.Wait()
	acc.Captured = int(captured.Load())
	return acc
}

// matcher computes maximum bipartite matchings, keeping its working buffers
// across calls so per-user problems allocate only the adjacency lists. It is
// not safe for concurrent use; give each worker its own.
type matcher struct {
	adj       [][]int
	adjArena  []int
	matchCand []int
	seen      []bool
	stack     []matchFrame
}

// matchFrame is one level of the explicit augmenting-path DFS: real node i,
// the next position in adj[i] to try, and the candidate taken to descend.
type matchFrame struct {
	i, ai, j int
}

// match computes the maximum matching size between one user's real sessions
// and the candidates capturing them. Per-user problem sizes are usually tiny
// (tens of sessions), but merged proxy users can be arbitrarily large, so
// the augmenting-path search uses an explicit stack — the recursive
// formulation overflows the goroutine stack on adversarial instances whose
// augmenting chains thread through every session (see TestMatchUserDeepChain).
func (m *matcher) match(u *matchProblem) int {
	nr, nc := len(u.realPages), len(u.candPages)
	if nr == 0 || nc == 0 {
		return 0
	}
	// adj[i] lists candidate indices capturing real session i, packed into
	// one arena so the lists cost a single allocation.
	if cap(m.adj) < nr {
		m.adj = make([][]int, nr)
	}
	adj := m.adj[:nr]
	m.adjArena = m.adjArena[:0]
	for i, rp := range u.realPages {
		lo := len(m.adjArena)
		for j, cp := range u.candPages {
			if session.ContainsPages(cp, rp) {
				m.adjArena = append(m.adjArena, j)
			}
		}
		adj[i] = m.adjArena[lo:len(m.adjArena):len(m.adjArena)]
	}
	if cap(m.matchCand) < nc {
		m.matchCand = make([]int, nc)
		m.seen = make([]bool, nc)
	}
	matchCand := m.matchCand[:nc] // candidate -> real (or -1)
	seen := m.seen[:nc]
	for j := range matchCand {
		matchCand[j] = -1
	}
	matched := 0
	for i := range adj {
		for j := range seen {
			seen[j] = false
		}
		if m.augment(adj, matchCand, seen, i) {
			matched++
		}
	}
	return matched
}

// augment searches for an augmenting path from real node start with an
// iterative DFS over alternating edges, flipping the path's assignments on
// success. Semantics match the classic recursive tryAssign exactly: each
// frame resumes scanning its adjacency list where it left off when a deeper
// reassignment attempt fails.
func (m *matcher) augment(adj [][]int, matchCand []int, seen []bool, start int) bool {
	stack := append(m.stack[:0], matchFrame{i: start})
	defer func() { m.stack = stack[:0] }()
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		descended := false
		for f.ai < len(adj[f.i]) {
			j := adj[f.i][f.ai]
			f.ai++
			if seen[j] {
				continue
			}
			seen[j] = true
			f.j = j
			if matchCand[j] < 0 {
				// Free candidate: flip every (real, candidate) pair on the
				// path, rooting the augmented matching.
				for _, g := range stack {
					matchCand[g.j] = g.i
				}
				return true
			}
			stack = append(stack, matchFrame{i: matchCand[j]})
			descended = true
			break
		}
		if !descended && f.ai >= len(adj[f.i]) {
			stack = stack[:len(stack)-1] // exhausted: backtrack to the parent
		}
	}
	return false
}
