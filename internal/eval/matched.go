package eval

import (
	"smartsra/internal/session"
)

// ScoreMatched computes accuracy under one-to-one matching: each
// reconstructed session may be credited for at most one real session
// (maximum bipartite matching between real sessions and the candidates that
// capture them, computed exactly with the Hungarian augmenting-path method).
//
// Rationale: §5.2's curves are inconsistent with the unconstrained
// exists-a-capturer reading of §5.1. Under that reading a navigation-
// oriented session is a superset of the corresponding time-gap session
// (insertions only ever occur at hyperlink discontinuities, which cannot
// fall inside a real session), so heur3 would weakly dominate heur2 and
// both would sit far above the paper's reported 25-35% — our simulator
// measures 65-93% for all four heuristics under that metric. Reading
// "the ratio of correctly reconstructed sessions" as a one-to-one
// correspondence — a reconstructed session is "correct" when it captures a
// real session, and a heuristic that merges five real sessions into one
// candidate has reconstructed one session, not five — yields exactly the
// paper's ordering and levels. See DESIGN.md and EXPERIMENTS.md; Score keeps
// the literal unconstrained metric for comparison.
func ScoreMatched(real, candidates []session.Session) Accuracy {
	type userData struct {
		realIdx []int
		cands   []session.Session
	}
	users := make(map[string]*userData)
	for i, r := range real {
		u := users[r.User]
		if u == nil {
			u = &userData{}
			users[r.User] = u
		}
		u.realIdx = append(u.realIdx, i)
	}
	for _, h := range candidates {
		if u := users[h.User]; u != nil {
			u.cands = append(u.cands, h)
		}
	}
	acc := Accuracy{Real: len(real)}
	for _, u := range users {
		acc.Captured += matchUser(real, u.realIdx, u.cands)
	}
	return acc
}

// matchUser computes the maximum matching size between one user's real
// sessions and the candidates capturing them. Per-user problem sizes are
// tiny (tens of sessions), so the O(V·E) augmenting-path algorithm is more
// than fast enough.
func matchUser(real []session.Session, realIdx []int, cands []session.Session) int {
	if len(cands) == 0 || len(realIdx) == 0 {
		return 0
	}
	// adj[i] lists candidate indices capturing real session realIdx[i].
	adj := make([][]int, len(realIdx))
	for i, ri := range realIdx {
		for j := range cands {
			if session.Captures(cands[j], real[ri]) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchCand := make([]int, len(cands)) // candidate -> real (or -1)
	for j := range matchCand {
		matchCand[j] = -1
	}
	var tryAssign func(i int, seen []bool) bool
	tryAssign = func(i int, seen []bool) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchCand[j] < 0 || tryAssign(matchCand[j], seen) {
				matchCand[j] = i
				return true
			}
		}
		return false
	}
	matched := 0
	for i := range adj {
		seen := make([]bool, len(cands))
		if tryAssign(i, seen) {
			matched++
		}
	}
	return matched
}
