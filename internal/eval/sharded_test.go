package eval

import (
	"fmt"
	"reflect"
	"testing"

	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// shardedWorkload builds one simulated workload plus its Smart-SRA candidate
// set for the sharded-scorer tests.
func shardedWorkload(t *testing.T) (real, cands []session.Session) {
	t.Helper()
	cfg := smallConfig()
	cfg.Params.Agents = 200
	// Merged proxy identities make the per-user matching problems uneven,
	// which is exactly where sharding bugs would show.
	cfg.Params.ProxyFraction = 0.3
	cfg.Params.ProxySize = 5
	g, err := Topology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run(g, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	return res.Real, heuristics.ReconstructAll(heuristics.NewSmartSRA(g), res.Streams)
}

// The per-user sharding contract: identical Accuracy for any worker count,
// because maximum-matching size is unique per user and summation commutes.
// Run under -race to also pin data-race freedom of the worker pool.
func TestScoreMatchedWithMatchesSequential(t *testing.T) {
	real, cands := shardedWorkload(t)
	seq := ScoreMatchedWith(real, cands, 1)
	if seq.Real == 0 || seq.Captured == 0 {
		t.Fatalf("degenerate workload: %+v", seq)
	}
	for _, workers := range []int{0, 2, 8} {
		if got := ScoreMatchedWith(real, cands, workers); got != seq {
			t.Errorf("workers=%d: accuracy %+v, want %+v", workers, got, seq)
		}
	}
	if got := ScoreMatched(real, cands); got != seq {
		t.Errorf("ScoreMatched = %+v, want sequential %+v", got, seq)
	}
}

// The point-level contract: the composed budget (scorer pool × per-user
// shards) produces bit-identical PointResults for any worker budget.
func TestEvaluatePointWithBudgets(t *testing.T) {
	cfg := smallConfig()
	cfg.IncludeReferrer = true
	g, err := Topology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := EvaluatePointWith(g, cfg, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := EvaluatePointWith(g, cfg, RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: point differs from sequential", workers)
		}
	}
}

// Regression for the recursive tryAssign: a user whose augmenting chains
// thread through every session forces the search N levels deep. real[i] is
// the single page [i]; candidate j covers pages [j, j+1], so real i is
// capturable only by candidates i-1 and i. Feeding reals in descending order
// greedily assigns each to its lower candidate, and the final real (page 0)
// must re-thread the entire assignment — a depth-N augmenting path that
// overflowed the stack before the iterative rewrite.
func TestMatchUserDeepChain(t *testing.T) {
	const n = 5000
	mkSession := func(pages ...int) session.Session {
		s := session.Session{User: "proxy"}
		for _, p := range pages {
			s.Entries = append(s.Entries, session.Entry{Page: webgraph.PageID(p)})
		}
		return s
	}
	real := make([]session.Session, 0, n)
	for i := n - 1; i >= 0; i-- {
		real = append(real, mkSession(i))
	}
	cands := make([]session.Session, 0, n)
	for j := 0; j < n; j++ {
		cands = append(cands, mkSession(j, j+1))
	}
	for _, workers := range []int{1, 4} {
		acc := ScoreMatchedWith(real, cands, workers)
		if acc.Captured != n {
			t.Errorf("workers=%d: matched %d of %d reals; a perfect matching exists",
				workers, acc.Captured, n)
		}
	}
}

// A matcher is reused across users within one worker; stale state from a
// large problem must not leak into the next (smaller) one.
func TestMatcherReuseAcrossUsers(t *testing.T) {
	mkUser := func(user string, pages ...int) session.Session {
		s := session.Session{User: user}
		for _, p := range pages {
			s.Entries = append(s.Entries, session.Entry{Page: webgraph.PageID(p)})
		}
		return s
	}
	var real, cands []session.Session
	// User A: 40 reals, each capturable by its own candidate.
	for i := 0; i < 40; i++ {
		real = append(real, mkUser("a", i))
		cands = append(cands, mkUser("a", i))
	}
	// User B: 2 reals, only one capturable.
	real = append(real, mkUser("b", 100), mkUser("b", 101))
	cands = append(cands, mkUser("b", 100))
	// User C: no candidates at all.
	real = append(real, mkUser("c", 200))
	want := Accuracy{Real: 43, Captured: 41}
	for _, workers := range []int{1, 3} {
		if got := ScoreMatchedWith(real, cands, workers); got != want {
			t.Errorf("workers=%d: %+v, want %+v", workers, got, want)
		}
	}
}

func TestReconstructAllWithMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.Params.Agents = 200
	g, err := Topology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run(g, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range DefaultHeuristics(g) {
		seq := heuristics.ReconstructAll(h, res.Streams)
		for _, workers := range []int{0, 1, 2, 8} {
			par := heuristics.ReconstructAllWith(h, res.Streams, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s workers=%d: sharded reconstruction differs", h.Name(), workers)
			}
		}
	}
	// Shape edge cases: empty and single-stream inputs mirror the sequential
	// result exactly (including nil-ness).
	for _, streams := range [][]session.Stream{nil, res.Streams[:1]} {
		h := heuristics.NewSmartSRA(g)
		seq := heuristics.ReconstructAll(h, streams)
		par := heuristics.ReconstructAllWith(h, streams, 8)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("streams=%d: shape differs: %v vs %v", len(streams), seq, par)
		}
	}
}

// split must never oversubscribe: the pool times each task's share stays
// within the total budget, and both factors stay >= 1 for every
// (workers, n) combination. (workers=0 means GOMAXPROCS, so the explicit
// cases here use positive budgets for a machine-independent bound.)
func TestRunOptionsSplit(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8, 64} {
		for _, n := range []int{1, 2, 5, 40} {
			opts := RunOptions{Workers: workers}
			pool, perTask := opts.split(n)
			if pool < 1 || perTask < 1 {
				t.Fatalf("workers=%d n=%d: split=(%d,%d)", workers, n, pool, perTask)
			}
			if pool > workers || pool > n {
				t.Errorf("workers=%d n=%d: pool %d exceeds min(budget, tasks)", workers, n, pool)
			}
			if pool*perTask > workers {
				t.Errorf("workers=%d n=%d: pool*perTask=%d oversubscribes budget %d",
					workers, n, pool*perTask, workers)
			}
		}
	}
	if pool, perTask := (RunOptions{}).split(4); pool < 1 || perTask < 1 {
		t.Errorf("zero-value split = (%d,%d)", pool, perTask)
	}
}

func ExampleScoreMatchedWith() {
	real := []session.Session{
		{User: "u", Entries: []session.Entry{{Page: 1}, {Page: 2}}},
		{User: "u", Entries: []session.Entry{{Page: 3}}},
	}
	cands := []session.Session{
		{User: "u", Entries: []session.Entry{{Page: 1}, {Page: 2}, {Page: 3}}},
	}
	// One candidate can be credited for at most one real session, no matter
	// how many it captures — and the worker count never changes the score.
	fmt.Println(ScoreMatchedWith(real, cands, 4).String())
	// Output: 1/2 (50.0%)
}
