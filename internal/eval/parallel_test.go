package eval

import (
	"reflect"
	"strings"
	"testing"

	"smartsra/internal/heuristics"
	"smartsra/internal/webgraph"
)

// renamed wraps a reconstructor under a different report name, standing in
// for a user-supplied custom heuristic.
type renamed struct {
	heuristics.Reconstructor
	name string
}

func (r renamed) Name() string { return r.name }

// customSet is a non-default contender list: two of the paper's heuristics
// plus a custom-named one.
func customSet(g *webgraph.Graph) []heuristics.Reconstructor {
	return []heuristics.Reconstructor{
		heuristics.NewTimeGap(),   // heur2
		heuristics.NewSmartSRA(g), // heur4
		renamed{heuristics.NewTimeTotal(), "zz-custom"},
	}
}

func miniExperiment() Experiment {
	return Experiment{
		Name: "mini", Title: "mini sweep", Variable: "STP",
		Values: []float64{0.02, 0.05, 0.1, 0.2}, Base: smallConfig(),
	}
}

// The tentpole contract: any worker count produces bit-identical
// PointResults — and therefore byte-identical rendered artifacts — because
// points are seeded independently and share the topology read-only.
func TestRunWithMatchesSequential(t *testing.T) {
	exp := miniExperiment()
	seq, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := exp.RunWith(RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq.Points, par.Points) {
			t.Errorf("workers=%d: points differ from sequential run", workers)
		}
		var seqOut, parOut strings.Builder
		if err := seq.WriteTable(&seqOut); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteTable(&parOut); err != nil {
			t.Fatal(err)
		}
		if seqOut.String() != parOut.String() {
			t.Errorf("workers=%d: table not byte-identical", workers)
		}
		seqOut.Reset()
		parOut.Reset()
		if err := seq.WriteCSV(&seqOut); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteCSV(&parOut); err != nil {
			t.Fatal(err)
		}
		if seqOut.String() != parOut.String() {
			t.Errorf("workers=%d: CSV not byte-identical", workers)
		}
	}
}

func TestRunWithProgressAndErrors(t *testing.T) {
	exp := miniExperiment()
	var calls []int
	res, err := exp.RunWith(RunOptions{Workers: 3, Progress: func(done, total int) {
		if total != len(exp.Values) {
			t.Errorf("total = %d, want %d", total, len(exp.Values))
		}
		calls = append(calls, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(exp.Values) {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(calls) != len(exp.Values) || calls[len(calls)-1] != len(exp.Values) {
		t.Errorf("progress calls = %v", calls)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("progress not monotonically increasing: %v", calls)
			break
		}
	}
	bad := exp
	bad.Variable = "XYZ"
	if _, err := bad.RunWith(RunOptions{Workers: 4}); err == nil {
		t.Error("unknown variable accepted")
	}
	// Failing points surface an error rather than a zero-valued result.
	broken := exp
	broken.Base.Params.Agents = -1
	if _, err := broken.RunWith(RunOptions{Workers: 2}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestReplicateWithMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.Params.Agents = 80
	seeds := []int64{1, 2, 3, 4, 5}
	seq, err := Replicate(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplicateWith(cfg, seeds, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel replication differs:\nseq: %+v\npar: %+v", seq, par)
	}
}

// Regression for the hardcoded-series bug: Replicate used to iterate
// HeuristicNames, dropping heurR (IncludeReferrer) and any custom set, and
// reporting missing names as 0%.
func TestReplicateReportsActualSeries(t *testing.T) {
	cfg := smallConfig()
	cfg.Params.Agents = 80
	cfg.IncludeReferrer = true
	cfg.Heuristics = customSet
	seeds := []int64{1, 2, 3}
	res, err := ReplicateWith(cfg, seeds, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"heur2", "heur4", "heurR", "zz-custom"}
	if !reflect.DeepEqual(res.Names, want) {
		t.Fatalf("Names = %v, want %v", res.Names, want)
	}
	for _, h := range want {
		m, ok := res.Matched[h]
		if !ok {
			t.Fatalf("series %s missing from summaries", h)
		}
		if m.N != len(seeds) {
			t.Errorf("%s summarized over %d seeds, want %d", h, m.N, len(seeds))
		}
		if m.Mean <= 0 {
			t.Errorf("%s mean %.2f%% — evaluated series must not read as zero", h, m.Mean)
		}
	}
	if _, ok := res.Matched["heur1"]; ok {
		t.Error("heur1 reported despite not being evaluated")
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	table := sb.String()
	for _, h := range want {
		if !strings.Contains(table, h) {
			t.Errorf("table missing %s:\n%s", h, table)
		}
	}
	if strings.Contains(table, "heur1") {
		t.Errorf("table reports unevaluated heur1:\n%s", table)
	}
}

// Regression for the same bug in PointResult.SeriesNames and the sweep
// reporters: a custom heuristic set was misreported as the paper's four.
func TestSeriesNamesCustomSet(t *testing.T) {
	cfg := smallConfig()
	cfg.IncludeReferrer = true
	cfg.Heuristics = customSet
	p, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"heur2", "heur4", "heurR", "zz-custom"}
	if got := p.SeriesNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SeriesNames = %v, want %v", got, want)
	}
	exp := Experiment{Name: "mini", Title: "mini", Variable: "STP",
		Values: []float64{0.05}, Base: cfg}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var table, csv strings.Builder
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, h := range want {
		if !strings.Contains(table.String(), h) {
			t.Errorf("table missing %s:\n%s", h, table.String())
		}
	}
	if strings.Contains(table.String(), "heur1") || strings.Contains(csv.String(), "heur1") {
		t.Error("reports include unevaluated heur1")
	}
	if !strings.HasPrefix(csv.String(), "stp,heur2_matched,heur2_exists,heur4_matched") {
		t.Errorf("csv header = %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	// An empty point still renders the paper's four column headers.
	empty := &PointResult{}
	if got := empty.SeriesNames(); !reflect.DeepEqual(got, HeuristicNames) {
		t.Errorf("empty SeriesNames = %v", got)
	}
}

// Sharing one generated topology across points must equal regenerating it
// per point (generation is deterministic in TopologySeed).
func TestEvaluatePointOnSharedTopology(t *testing.T) {
	cfg := smallConfig()
	direct, err := EvaluatePoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Topology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := EvaluatePointOn(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, shared) {
		t.Error("shared-topology evaluation differs from per-point generation")
	}
}
