package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/metrics"
	"smartsra/internal/prep"
	"smartsra/internal/referrer"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// Sweep-progress instrumentation (internal/metrics Default registry).
var (
	metricPointsDone = metrics.GetCounter("eval.points.completed")
	metricSeedsDone  = metrics.GetCounter("eval.seeds.completed")
	metricPointTime  = metrics.GetTimer("eval.point")
	metricPointHist  = metrics.GetHistogram("eval.point.seconds")
)

// HeuristicNames lists the four heuristics in the paper's order.
var HeuristicNames = []string{"heur1", "heur2", "heur3", "heur4"}

// DefaultHeuristics builds the paper's four contenders over a topology.
func DefaultHeuristics(g *webgraph.Graph) []heuristics.Reconstructor {
	return []heuristics.Reconstructor{
		heuristics.NewTimeTotal(),
		heuristics.NewTimeGap(),
		heuristics.NewNavigation(g),
		heuristics.NewSmartSRA(g),
	}
}

// RunConfig describes one evaluation point: a topology, simulation
// parameters, and how the log reaches the heuristics.
type RunConfig struct {
	// Topology configures the random site; zero value means PaperTopology.
	Topology webgraph.TopologyConfig
	// TopologySeed seeds topology generation (independent of agent
	// randomness so sweeps reuse one site, like the paper's fixed web site).
	TopologySeed int64
	// Params configures the agent simulator.
	Params simulator.Params
	// ViaCLF routes the simulated requests through an actual Common Log
	// Format encode→parse→clean→identify pipeline instead of handing the
	// simulator's streams to the heuristics directly. Slower; exercises the
	// full reactive pipeline end to end.
	ViaCLF bool
	// IncludeReferrer additionally evaluates the referrer-chain
	// reconstruction ("heurR", internal/referrer) over the combined-format
	// log — the reactive upper bound the paper's common-format setting
	// cannot reach.
	IncludeReferrer bool
	// Heuristics overrides the contenders; nil means DefaultHeuristics.
	Heuristics func(g *webgraph.Graph) []heuristics.Reconstructor
}

// PaperDefaults returns the Table 5 evaluation configuration.
func PaperDefaults() RunConfig {
	return RunConfig{
		Topology:     webgraph.PaperTopology(),
		TopologySeed: 2006,
		Params:       simulator.PaperParams(),
	}
}

// PointResult is the outcome of evaluating all heuristics at one parameter
// value. Both accuracy readings of §5.1 are reported: Matched (one-to-one,
// "correctly reconstructed sessions" — the headline metric, see ScoreMatched)
// and Exists (a real session counts if ANY candidate captures it).
type PointResult struct {
	// X is the swept parameter value (a probability in [0,1]).
	X float64
	// Matched maps heuristic name to one-to-one accuracy at this point.
	Matched map[string]Accuracy
	// Exists maps heuristic name to unconstrained capture accuracy.
	Exists map[string]Accuracy
	// Reconstructed maps heuristic name to stats over its session set.
	Reconstructed map[string]SessionStats
	// RealSessions is the ground-truth session count at this point.
	RealSessions int
}

// Topology generates the site graph cfg describes. The generation RNG is
// seeded with cfg.TopologySeed, independent of agent randomness, so the same
// configuration always yields the same graph — sweeps and replications can
// generate it once and share it read-only across concurrent points.
func Topology(cfg RunConfig) (*webgraph.Graph, error) {
	topoCfg := cfg.Topology
	if topoCfg.Pages == 0 {
		topoCfg = webgraph.PaperTopology()
	}
	return webgraph.GenerateTopology(topoCfg, rand.New(rand.NewSource(cfg.TopologySeed)))
}

// EvaluatePoint simulates one run and scores every heuristic on it.
func EvaluatePoint(cfg RunConfig) (*PointResult, error) {
	g, err := Topology(cfg)
	if err != nil {
		return nil, err
	}
	return EvaluatePointOn(g, cfg)
}

// EvaluatePointOn is EvaluatePoint over an already-generated topology. The
// graph is only read, never written, so many points may share one. It runs
// under the full-machine worker budget; see EvaluatePointWith.
func EvaluatePointOn(g *webgraph.Graph, cfg RunConfig) (*PointResult, error) {
	return EvaluatePointWith(g, cfg, RunOptions{})
}

// EvaluatePointWith is EvaluatePointOn under an explicit worker budget
// (opts.Workers; <= 0 means GOMAXPROCS). The budget caps the TOTAL
// concurrency of the point — the scorer pool (one task per heuristic, plus
// the optional referrer chain) and the per-user shards inside each scorer
// (heuristics.ReconstructAllWith, ScoreMatchedWith) compose multiplicatively
// to at most the budget, and the agent simulator inherits it too, so nesting
// points inside a sweep pool never oversubscribes the machine. The result is
// bit-identical for any budget: scorers write distinct keys, per-user work
// is order-independent, and the simulator seeds agents independently.
func EvaluatePointWith(g *webgraph.Graph, cfg RunConfig, opts RunOptions) (*PointResult, error) {
	defer func(start time.Time) {
		d := time.Since(start)
		metricPointTime.Observe(d)
		metricPointHist.ObserveDuration(d)
	}(time.Now())
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if cfg.Params.Workers == 0 {
		cfg.Params.Workers = budget
	}
	res, err := simulator.Run(g, cfg.Params)
	if err != nil {
		return nil, err
	}
	streams := res.Streams
	if cfg.ViaCLF {
		streams, err = roundTripCLF(g, res)
		if err != nil {
			return nil, err
		}
	}
	build := cfg.Heuristics
	if build == nil {
		build = DefaultHeuristics
	}
	point := &PointResult{
		Matched:       make(map[string]Accuracy),
		Exists:        make(map[string]Accuracy),
		Reconstructed: make(map[string]SessionStats),
		RealSessions:  len(res.Real),
	}
	type score struct {
		name    string
		matched Accuracy
		exists  Accuracy
		recon   SessionStats
		err     error
	}
	hs := build(g)
	n := len(hs)
	if cfg.IncludeReferrer {
		n++
	}
	// Split the budget: up to n scorers run concurrently, each sharding its
	// per-user work across budget/scorers workers, so scorers × shards stays
	// within the cap.
	scorers := n
	if scorers > budget {
		scorers = budget
	}
	shards := budget / scorers
	if shards < 1 {
		shards = 1
	}
	scores := make([]score, n) // one preallocated slot per task: no shared writes
	tasks := make([]func(), 0, n)
	for i, h := range hs {
		i, h := i, h
		tasks = append(tasks, func() {
			candidates := heuristics.ReconstructAllWith(h, streams, shards)
			scores[i] = score{
				name:    h.Name(),
				matched: ScoreMatchedWith(res.Real, candidates, shards),
				exists:  Score(res.Real, candidates),
				recon:   Summarize(candidates),
			}
		})
	}
	if cfg.IncludeReferrer {
		ref := &scores[n-1]
		tasks = append(tasks, func() {
			r := referrer.New(g)
			chain, err := r.Reconstruct(res.LogCombined(g))
			if err != nil {
				ref.err = err
				return
			}
			*ref = score{
				name:    r.Name(),
				matched: ScoreMatchedWith(res.Real, chain, shards),
				exists:  Score(res.Real, chain),
				recon:   Summarize(chain),
			}
		})
	}
	if scorers <= 1 {
		for _, task := range tasks {
			task()
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < scorers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					tasks[i]()
				}
			}()
		}
		for i := range tasks {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, s := range scores {
		if s.err != nil {
			return nil, s.err
		}
		point.Matched[s.name] = s.matched
		point.Exists[s.name] = s.exists
		point.Reconstructed[s.name] = s.recon
	}
	metricPointsDone.Inc()
	return point, nil
}

// SeriesNames returns the heuristic names actually present in the point, in
// report order: the paper's four first (those that were evaluated), then any
// extras — custom heuristics, the referrer upper bound "heurR" — sorted for
// determinism. An empty point falls back to the paper's four.
func (p *PointResult) SeriesNames() []string {
	present := make(map[string]bool, len(p.Matched))
	for name := range p.Matched {
		present[name] = true
	}
	return orderSeries(present)
}

// orderSeries sorts a set of series names into report order: paper names
// first (in HeuristicNames order), extras after, alphabetically. An empty set
// yields the paper's four, so zero-value points still render a header.
func orderSeries(present map[string]bool) []string {
	if len(present) == 0 {
		return append([]string(nil), HeuristicNames...)
	}
	names := make([]string, 0, len(present))
	for _, h := range HeuristicNames {
		if present[h] {
			names = append(names, h)
		}
	}
	paper := make(map[string]bool, len(HeuristicNames))
	for _, h := range HeuristicNames {
		paper[h] = true
	}
	extras := make([]string, 0, len(present))
	for name := range present {
		if !paper[name] {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	return append(names, extras...)
}

// roundTripCLF renders the run as a CLF log and rebuilds the streams through
// the full parsing/cleaning pipeline, as a production deployment would.
func roundTripCLF(g *webgraph.Graph, res *simulator.Result) ([]session.Stream, error) {
	records := res.Log(g)
	// Render to text and parse back so the format itself is exercised.
	reparsed := make([]clf.Record, 0, len(records))
	for _, r := range records {
		rec, err := clf.ParseRecord(r.String())
		if err != nil {
			return nil, fmt.Errorf("eval: round trip: %w", err)
		}
		reparsed = append(reparsed, rec)
	}
	streams, _, err := prep.BuildStreams(reparsed, prep.GraphResolver(g), prep.Options{
		Filter: clf.StandardCleaning(),
	})
	return streams, err
}

// Experiment is a one-dimensional parameter sweep, as in Figures 8-10.
type Experiment struct {
	// Name identifies the experiment ("figure8", ...).
	Name string
	// Title is the paper's caption-style description.
	Title string
	// Variable is the swept parameter: "STP", "LPP", or "NIP".
	Variable string
	// Values are the probabilities to sweep, in order.
	Values []float64
	// Base is the configuration applied at every point before the swept
	// variable is overridden.
	Base RunConfig
}

// Figure8 sweeps STP from 1% to 20% with LPP and NIP fixed at Table 5's
// values (paper Figure 8).
func Figure8(base RunConfig) Experiment {
	values := make([]float64, 0, 20)
	for pct := 1; pct <= 20; pct++ {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure8",
		Title:    "Real accuracy vs STP (LPP=30%, NIP=30%)",
		Variable: "STP",
		Values:   values,
		Base:     base,
	}
}

// Figure9 sweeps LPP from 0% to 90% (paper Figure 9).
func Figure9(base RunConfig) Experiment {
	values := make([]float64, 0, 10)
	for pct := 0; pct <= 90; pct += 10 {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure9",
		Title:    "Real accuracy vs LPP (STP=5%, NIP=30%)",
		Variable: "LPP",
		Values:   values,
		Base:     base,
	}
}

// Figure10 sweeps NIP from 0% to 90% (paper Figure 10).
func Figure10(base RunConfig) Experiment {
	values := make([]float64, 0, 10)
	for pct := 0; pct <= 90; pct += 10 {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure10",
		Title:    "Real accuracy vs NIP (STP=5%, LPP=30%)",
		Variable: "NIP",
		Values:   values,
		Base:     base,
	}
}

// SweepResult is an executed Experiment.
type SweepResult struct {
	Experiment Experiment
	Points     []PointResult
}

// RunOptions tunes sweep execution. The zero value runs on all cores with no
// progress reporting.
type RunOptions struct {
	// Workers bounds the number of points evaluated concurrently; <= 0 means
	// GOMAXPROCS. Worker count never changes results: points are seeded
	// independently, so any schedule produces bit-identical PointResults.
	Workers int
	// Progress, when non-nil, is called after each point completes with the
	// number done so far and the total. Calls are serialized (never
	// concurrent) but arrive in completion order, not sweep order.
	Progress func(done, total int)
}

// workers resolves the effective pool size for n tasks.
func (o RunOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// split divides the total worker budget between a pool of n top-level tasks
// and the budget each concurrently-running task receives, so that
// pool × per-task concurrency never exceeds the total. With fewer tasks
// than budget the leftover goes to within-task sharding (e.g. a 3-point
// sweep on 8 cores runs 3 points × 2-way shards).
func (o RunOptions) split(n int) (pool, perTask int) {
	total := o.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	pool = o.workers(n)
	if pool < 1 {
		pool = 1
	}
	perTask = total / pool
	if perTask < 1 {
		perTask = 1
	}
	return pool, perTask
}

// Run executes the sweep sequentially — the bit-for-bit reference for
// RunWith, which parallelizes it.
func (e Experiment) Run() (*SweepResult, error) {
	return e.RunWith(RunOptions{Workers: 1})
}

// pointConfigs expands the sweep into one RunConfig per swept value.
func (e Experiment) pointConfigs() ([]RunConfig, error) {
	cfgs := make([]RunConfig, len(e.Values))
	for i, v := range e.Values {
		cfg := e.Base
		switch e.Variable {
		case "STP":
			cfg.Params.STP = v
		case "LPP":
			cfg.Params.LPP = v
		case "NIP":
			cfg.Params.NIP = v
		default:
			return nil, fmt.Errorf("eval: unknown sweep variable %q", e.Variable)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// RunWith executes the sweep under a bounded worker pool. The topology is
// generated once (the swept variables only affect agent behavior, and
// topology generation is seeded independently — see RunConfig.TopologySeed)
// and shared read-only by every point. The worker budget covers the whole
// sweep: concurrent points split it, and each point shards its per-user
// reconstruction and scoring across its share (EvaluatePointWith), so
// points × shards never oversubscribes. Results are identical to Run's for
// any worker count; on error the lowest-indexed failing point's error is
// returned.
func (e Experiment) RunWith(opts RunOptions) (*SweepResult, error) {
	cfgs, err := e.pointConfigs()
	if err != nil {
		return nil, err
	}
	g, err := Topology(e.Base)
	if err != nil {
		return nil, err
	}
	points := make([]PointResult, len(cfgs))
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		done     int
	)
	pool, perPoint := opts.split(len(cfgs))
	pointOpts := RunOptions{Workers: perPoint}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				point, err := EvaluatePointWith(g, cfgs[i], pointOpts)
				mu.Lock()
				if err != nil {
					if firstErr == nil || i < errIdx {
						firstErr = fmt.Errorf("eval: %s at %s=%.2f: %w",
							e.Name, e.Variable, e.Values[i], err)
						errIdx = i
					}
				} else {
					point.X = e.Values[i]
					points[i] = *point
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(cfgs))
				}
				mu.Unlock()
			}
		}()
	}
	for i := range cfgs {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &SweepResult{Experiment: e, Points: points}, nil
}
