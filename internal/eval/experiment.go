package eval

import (
	"fmt"
	"math/rand"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/prep"
	"smartsra/internal/referrer"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// HeuristicNames lists the four heuristics in the paper's order.
var HeuristicNames = []string{"heur1", "heur2", "heur3", "heur4"}

// DefaultHeuristics builds the paper's four contenders over a topology.
func DefaultHeuristics(g *webgraph.Graph) []heuristics.Reconstructor {
	return []heuristics.Reconstructor{
		heuristics.NewTimeTotal(),
		heuristics.NewTimeGap(),
		heuristics.NewNavigation(g),
		heuristics.NewSmartSRA(g),
	}
}

// RunConfig describes one evaluation point: a topology, simulation
// parameters, and how the log reaches the heuristics.
type RunConfig struct {
	// Topology configures the random site; zero value means PaperTopology.
	Topology webgraph.TopologyConfig
	// TopologySeed seeds topology generation (independent of agent
	// randomness so sweeps reuse one site, like the paper's fixed web site).
	TopologySeed int64
	// Params configures the agent simulator.
	Params simulator.Params
	// ViaCLF routes the simulated requests through an actual Common Log
	// Format encode→parse→clean→identify pipeline instead of handing the
	// simulator's streams to the heuristics directly. Slower; exercises the
	// full reactive pipeline end to end.
	ViaCLF bool
	// IncludeReferrer additionally evaluates the referrer-chain
	// reconstruction ("heurR", internal/referrer) over the combined-format
	// log — the reactive upper bound the paper's common-format setting
	// cannot reach.
	IncludeReferrer bool
	// Heuristics overrides the contenders; nil means DefaultHeuristics.
	Heuristics func(g *webgraph.Graph) []heuristics.Reconstructor
}

// PaperDefaults returns the Table 5 evaluation configuration.
func PaperDefaults() RunConfig {
	return RunConfig{
		Topology:     webgraph.PaperTopology(),
		TopologySeed: 2006,
		Params:       simulator.PaperParams(),
	}
}

// PointResult is the outcome of evaluating all heuristics at one parameter
// value. Both accuracy readings of §5.1 are reported: Matched (one-to-one,
// "correctly reconstructed sessions" — the headline metric, see ScoreMatched)
// and Exists (a real session counts if ANY candidate captures it).
type PointResult struct {
	// X is the swept parameter value (a probability in [0,1]).
	X float64
	// Matched maps heuristic name to one-to-one accuracy at this point.
	Matched map[string]Accuracy
	// Exists maps heuristic name to unconstrained capture accuracy.
	Exists map[string]Accuracy
	// Reconstructed maps heuristic name to stats over its session set.
	Reconstructed map[string]SessionStats
	// RealSessions is the ground-truth session count at this point.
	RealSessions int
}

// EvaluatePoint simulates one run and scores every heuristic on it.
func EvaluatePoint(cfg RunConfig) (*PointResult, error) {
	topoCfg := cfg.Topology
	if topoCfg.Pages == 0 {
		topoCfg = webgraph.PaperTopology()
	}
	g, err := webgraph.GenerateTopology(topoCfg, rand.New(rand.NewSource(cfg.TopologySeed)))
	if err != nil {
		return nil, err
	}
	res, err := simulator.Run(g, cfg.Params)
	if err != nil {
		return nil, err
	}
	streams := res.Streams
	if cfg.ViaCLF {
		streams, err = roundTripCLF(g, res)
		if err != nil {
			return nil, err
		}
	}
	build := cfg.Heuristics
	if build == nil {
		build = DefaultHeuristics
	}
	point := &PointResult{
		Matched:       make(map[string]Accuracy),
		Exists:        make(map[string]Accuracy),
		Reconstructed: make(map[string]SessionStats),
		RealSessions:  len(res.Real),
	}
	for _, h := range build(g) {
		candidates := heuristics.ReconstructAll(h, streams)
		point.Matched[h.Name()] = ScoreMatched(res.Real, candidates)
		point.Exists[h.Name()] = Score(res.Real, candidates)
		point.Reconstructed[h.Name()] = Summarize(candidates)
	}
	if cfg.IncludeReferrer {
		r := referrer.New(g)
		chain, err := r.Reconstruct(res.LogCombined(g))
		if err != nil {
			return nil, err
		}
		point.Matched[r.Name()] = ScoreMatched(res.Real, chain)
		point.Exists[r.Name()] = Score(res.Real, chain)
		point.Reconstructed[r.Name()] = Summarize(chain)
	}
	return point, nil
}

// SeriesNames returns the heuristic names present in the point, in report
// order: the paper's four, then the optional referrer upper bound.
func (p *PointResult) SeriesNames() []string {
	names := append([]string(nil), HeuristicNames...)
	if _, ok := p.Matched["heurR"]; ok {
		names = append(names, "heurR")
	}
	return names
}

// roundTripCLF renders the run as a CLF log and rebuilds the streams through
// the full parsing/cleaning pipeline, as a production deployment would.
func roundTripCLF(g *webgraph.Graph, res *simulator.Result) ([]session.Stream, error) {
	records := res.Log(g)
	// Render to text and parse back so the format itself is exercised.
	reparsed := make([]clf.Record, 0, len(records))
	for _, r := range records {
		rec, err := clf.ParseRecord(r.String())
		if err != nil {
			return nil, fmt.Errorf("eval: round trip: %w", err)
		}
		reparsed = append(reparsed, rec)
	}
	streams, _, err := prep.BuildStreams(reparsed, prep.GraphResolver(g), prep.Options{
		Filter: clf.StandardCleaning(),
	})
	return streams, err
}

// Experiment is a one-dimensional parameter sweep, as in Figures 8-10.
type Experiment struct {
	// Name identifies the experiment ("figure8", ...).
	Name string
	// Title is the paper's caption-style description.
	Title string
	// Variable is the swept parameter: "STP", "LPP", or "NIP".
	Variable string
	// Values are the probabilities to sweep, in order.
	Values []float64
	// Base is the configuration applied at every point before the swept
	// variable is overridden.
	Base RunConfig
}

// Figure8 sweeps STP from 1% to 20% with LPP and NIP fixed at Table 5's
// values (paper Figure 8).
func Figure8(base RunConfig) Experiment {
	values := make([]float64, 0, 20)
	for pct := 1; pct <= 20; pct++ {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure8",
		Title:    "Real accuracy vs STP (LPP=30%, NIP=30%)",
		Variable: "STP",
		Values:   values,
		Base:     base,
	}
}

// Figure9 sweeps LPP from 0% to 90% (paper Figure 9).
func Figure9(base RunConfig) Experiment {
	values := make([]float64, 0, 10)
	for pct := 0; pct <= 90; pct += 10 {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure9",
		Title:    "Real accuracy vs LPP (STP=5%, NIP=30%)",
		Variable: "LPP",
		Values:   values,
		Base:     base,
	}
}

// Figure10 sweeps NIP from 0% to 90% (paper Figure 10).
func Figure10(base RunConfig) Experiment {
	values := make([]float64, 0, 10)
	for pct := 0; pct <= 90; pct += 10 {
		values = append(values, float64(pct)/100)
	}
	return Experiment{
		Name:     "figure10",
		Title:    "Real accuracy vs NIP (STP=5%, LPP=30%)",
		Variable: "NIP",
		Values:   values,
		Base:     base,
	}
}

// SweepResult is an executed Experiment.
type SweepResult struct {
	Experiment Experiment
	Points     []PointResult
}

// Run executes the sweep sequentially (each point already parallelizes
// across agents internally).
func (e Experiment) Run() (*SweepResult, error) {
	out := &SweepResult{Experiment: e}
	for _, v := range e.Values {
		cfg := e.Base
		switch e.Variable {
		case "STP":
			cfg.Params.STP = v
		case "LPP":
			cfg.Params.LPP = v
		case "NIP":
			cfg.Params.NIP = v
		default:
			return nil, fmt.Errorf("eval: unknown sweep variable %q", e.Variable)
		}
		point, err := EvaluatePoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: %s at %s=%.2f: %w", e.Name, e.Variable, v, err)
		}
		point.X = v
		out.Points = append(out.Points, *point)
	}
	return out, nil
}
