package eval

import (
	"fmt"
	"io"
	"strings"

	"smartsra/internal/stats"
)

// ReplicateResult holds per-heuristic accuracy statistics across replicated
// runs of the same configuration with different simulation seeds (the
// topology stays fixed, as the paper fixes its web site across agents).
type ReplicateResult struct {
	// Seeds are the simulation seeds used, in order.
	Seeds []int64
	// Matched maps heuristic name to the summary of matched-accuracy
	// percentages across seeds.
	Matched map[string]stats.Summary
	// Exists maps heuristic name to the summary of exists-accuracy
	// percentages.
	Exists map[string]stats.Summary
}

// Replicate runs EvaluatePoint once per seed and summarizes the spread. At
// least one seed is required.
func Replicate(cfg RunConfig, seeds []int64) (*ReplicateResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: no seeds to replicate over")
	}
	matched := make(map[string][]float64)
	exists := make(map[string][]float64)
	for _, seed := range seeds {
		c := cfg
		c.Params.Seed = seed
		point, err := EvaluatePoint(c)
		if err != nil {
			return nil, fmt.Errorf("eval: replicate seed %d: %w", seed, err)
		}
		for _, h := range HeuristicNames {
			matched[h] = append(matched[h], point.Matched[h].Percent())
			exists[h] = append(exists[h], point.Exists[h].Percent())
		}
	}
	out := &ReplicateResult{
		Seeds:   append([]int64(nil), seeds...),
		Matched: make(map[string]stats.Summary),
		Exists:  make(map[string]stats.Summary),
	}
	for _, h := range HeuristicNames {
		out.Matched[h] = stats.Summarize(matched[h])
		out.Exists[h] = stats.Summarize(exists[h])
	}
	return out, nil
}

// WriteTable renders the replication as mean ± 95% CI per heuristic.
func (r *ReplicateResult) WriteTable(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "replicated over %d seeds — accuracy %% mean ± 95%% CI\n", len(r.Seeds))
	fmt.Fprintf(&sb, "%-8s %-22s %s\n", "", "matched", "exists")
	for _, h := range HeuristicNames {
		m, e := r.Matched[h], r.Exists[h]
		fmt.Fprintf(&sb, "%-8s %6.2f ± %-13.2f %6.2f ± %.2f\n",
			h, m.Mean, m.CI95(), e.Mean, e.CI95())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
