package eval

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"smartsra/internal/stats"
)

// ReplicateResult holds per-heuristic accuracy statistics across replicated
// runs of the same configuration with different simulation seeds (the
// topology stays fixed, as the paper fixes its web site across agents).
type ReplicateResult struct {
	// Seeds are the simulation seeds used, in order.
	Seeds []int64
	// Names are the heuristic series actually evaluated, in report order
	// (paper names first, extras such as "heurR" or custom heuristics after).
	Names []string
	// Matched maps heuristic name to the summary of matched-accuracy
	// percentages across seeds.
	Matched map[string]stats.Summary
	// Exists maps heuristic name to the summary of exists-accuracy
	// percentages.
	Exists map[string]stats.Summary
}

// Replicate runs EvaluatePoint once per seed and summarizes the spread. At
// least one seed is required. It is the sequential reference for
// ReplicateWith, which parallelizes it.
func Replicate(cfg RunConfig, seeds []int64) (*ReplicateResult, error) {
	return ReplicateWith(cfg, seeds, RunOptions{Workers: 1})
}

// ReplicateWith is Replicate under a bounded worker pool: the topology is
// generated once and shared read-only, and seeds are evaluated concurrently.
// Results are identical to Replicate's for any worker count. The summarized
// series are the heuristics the points actually evaluated — including
// custom cfg.Heuristics sets and the cfg.IncludeReferrer upper bound — not
// a hardcoded list.
func ReplicateWith(cfg RunConfig, seeds []int64, opts RunOptions) (*ReplicateResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: no seeds to replicate over")
	}
	g, err := Topology(cfg)
	if err != nil {
		return nil, err
	}
	points := make([]*PointResult, len(seeds))
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		done     int
	)
	pool, perSeed := opts.split(len(seeds))
	seedOpts := RunOptions{Workers: perSeed}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Params.Seed = seeds[i]
				point, err := EvaluatePointWith(g, c, seedOpts)
				if err == nil {
					metricSeedsDone.Inc()
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil || i < errIdx {
						firstErr = fmt.Errorf("eval: replicate seed %d: %w", seeds[i], err)
						errIdx = i
					}
				} else {
					points[i] = point
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(seeds))
				}
				mu.Unlock()
			}
		}()
	}
	for i := range seeds {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Derive the series from the evaluated points' actual keys: every point
	// runs the same configuration, but take the union for robustness.
	present := make(map[string]bool)
	for _, p := range points {
		for name := range p.Matched {
			present[name] = true
		}
	}
	names := orderSeries(present)
	matched := make(map[string][]float64, len(names))
	exists := make(map[string][]float64, len(names))
	for _, p := range points { // seed order, so summaries are seed-ordered
		for _, h := range names {
			matched[h] = append(matched[h], p.Matched[h].Percent())
			exists[h] = append(exists[h], p.Exists[h].Percent())
		}
	}
	out := &ReplicateResult{
		Seeds:   append([]int64(nil), seeds...),
		Names:   names,
		Matched: make(map[string]stats.Summary, len(names)),
		Exists:  make(map[string]stats.Summary, len(names)),
	}
	for _, h := range names {
		out.Matched[h] = stats.Summarize(matched[h])
		out.Exists[h] = stats.Summarize(exists[h])
	}
	return out, nil
}

// names returns the report-order series, falling back to the summarized map
// keys (sorted) for results built before Names existed.
func (r *ReplicateResult) names() []string {
	if len(r.Names) > 0 {
		return r.Names
	}
	present := make(map[string]bool, len(r.Matched))
	for name := range r.Matched {
		present[name] = true
	}
	return orderSeries(present)
}

// WriteTable renders the replication as mean ± 95% CI per evaluated series.
func (r *ReplicateResult) WriteTable(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "replicated over %d seeds — accuracy %% mean ± 95%% CI\n", len(r.Seeds))
	fmt.Fprintf(&sb, "%-8s %-22s %s\n", "", "matched", "exists")
	for _, h := range r.names() {
		m, e := r.Matched[h], r.Exists[h]
		fmt.Fprintf(&sb, "%-8s %6.2f ± %-13.2f %6.2f ± %.2f\n",
			h, m.Mean, m.CI95(), e.Mean, e.CI95())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
