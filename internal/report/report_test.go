package report

import (
	"strings"
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func mk(user string, startHour int, pages ...int) session.Session {
	s := session.Session{User: user}
	base := time.Date(2006, 1, 2, startHour, 0, 0, 0, time.UTC)
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{
			Page: webgraph.PageID(p),
			Time: base.Add(time.Duration(i) * time.Minute),
		})
	}
	return s
}

func TestBuildCounts(t *testing.T) {
	sessions := []session.Session{
		mk("alice", 9, 1, 2, 3),
		mk("alice", 10, 1, 2),
		mk("bob", 9, 2, 2), // repeated page in one session
		{User: "empty"},
	}
	r := Build(sessions)
	if r.Sessions != 3 || r.Users != 2 || r.Views != 7 {
		t.Fatalf("report = sessions:%d users:%d views:%d", r.Sessions, r.Users, r.Views)
	}
	find := func(p int) PageStat {
		for _, st := range r.Pages {
			if st.Page == webgraph.PageID(p) {
				return st
			}
		}
		t.Fatalf("page %d missing", p)
		return PageStat{}
	}
	p1 := find(1)
	if p1.Views != 2 || p1.Entries != 2 || p1.Exits != 0 || p1.Sessions != 2 {
		t.Errorf("page 1 = %+v", p1)
	}
	p2 := find(2)
	if p2.Views != 4 || p2.Sessions != 3 || p2.Entries != 1 || p2.Exits != 2 {
		t.Errorf("page 2 = %+v", p2)
	}
	p3 := find(3)
	if p3.Exits != 1 || p3.Entries != 0 {
		t.Errorf("page 3 = %+v", p3)
	}
	// Pages sorted by views descending: page 2 first.
	if r.Pages[0].Page != 2 {
		t.Errorf("sort order: %v", r.Pages)
	}
	if r.Length.Mean < 2.3 || r.Length.Mean > 2.4 { // (3+2+2)/3
		t.Errorf("length mean = %v", r.Length.Mean)
	}
	if r.Hourly[9] != 2 || r.Hourly[10] != 1 {
		t.Errorf("hourly = %v", r.Hourly)
	}
	if h, c := r.PeakHour(); h != 9 || c != 2 {
		t.Errorf("peak = %d@%d", c, h)
	}
}

func TestTopEntriesExitsDropZeroTails(t *testing.T) {
	sessions := []session.Session{
		mk("u", 9, 1, 2),
		mk("u", 9, 1, 3),
	}
	r := Build(sessions)
	entries := r.TopEntries(10)
	if len(entries) != 1 || entries[0].Page != 1 || entries[0].Entries != 2 {
		t.Errorf("entries = %v", entries)
	}
	exits := r.TopExits(10)
	if len(exits) != 2 {
		t.Errorf("exits = %v", exits)
	}
	for _, e := range exits {
		if e.Exits == 0 {
			t.Errorf("zero-exit page kept: %v", e)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	r := Build(nil)
	if r.Sessions != 0 || r.Users != 0 || len(r.Pages) != 0 {
		t.Errorf("empty report = %+v", r)
	}
	if h, c := r.PeakHour(); h != 0 || c != 0 {
		t.Errorf("empty peak = %d@%d", c, h)
	}
}

func TestWrite(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	sessions := []session.Session{
		mk("u", 9, int(ids["P1"]), int(ids["P13"]), int(ids["P34"])),
		mk("v", 14, int(ids["P1"]), int(ids["P20"])),
	}
	r := Build(sessions)
	var sb strings.Builder
	if err := r.Write(&sb, g, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"/P1.html", "top entry pages", "top exit pages", "09:00", "14:00"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Nil labeler falls back to raw IDs.
	var sb2 strings.Builder
	if err := r.Write(&sb2, nil, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "page-") {
		t.Errorf("fallback names missing:\n%s", sb2.String())
	}
}
