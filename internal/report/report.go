// Package report generates the usage-analytics summaries a site operator
// derives from reconstructed sessions: page popularity, entry and exit
// pages, session length and duration distributions, and hourly traffic —
// the site-reorganization and personalization inputs the paper's
// introduction lists as applications of web usage mining.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smartsra/internal/session"
	"smartsra/internal/stats"
	"smartsra/internal/webgraph"
)

// PageStat aggregates one page's appearances across sessions.
type PageStat struct {
	Page webgraph.PageID
	// Views is the number of page views across all sessions.
	Views int
	// Entries is how often the page opened a session.
	Entries int
	// Exits is how often the page closed a session.
	Exits int
	// Sessions is the number of distinct sessions containing the page.
	Sessions int
}

// Report is the aggregated analytics for a session set.
type Report struct {
	// Sessions is the number of sessions analyzed.
	Sessions int
	// Users is the number of distinct users.
	Users int
	// Views is the total page-view count.
	Views int
	// Length summarizes session lengths (page views per session).
	Length stats.Summary
	// Duration summarizes session durations in minutes.
	Duration stats.Summary
	// Pages holds per-page statistics, sorted by descending views then
	// ascending page ID.
	Pages []PageStat
	// Hourly[h] counts sessions that started in hour h (0-23, UTC).
	Hourly [24]int
}

// Build computes a Report from sessions. Empty sessions are ignored.
func Build(sessions []session.Session) *Report {
	r := &Report{}
	users := make(map[string]bool)
	byPage := make(map[webgraph.PageID]*PageStat)
	var lengths, durations []float64
	get := func(p webgraph.PageID) *PageStat {
		st := byPage[p]
		if st == nil {
			st = &PageStat{Page: p}
			byPage[p] = st
		}
		return st
	}
	for _, s := range sessions {
		if s.Len() == 0 {
			continue
		}
		r.Sessions++
		users[s.User] = true
		lengths = append(lengths, float64(s.Len()))
		durations = append(durations, s.Duration().Minutes())
		r.Hourly[s.Entries[0].Time.UTC().Hour()]++
		seen := make(map[webgraph.PageID]bool, s.Len())
		for i, e := range s.Entries {
			st := get(e.Page)
			st.Views++
			r.Views++
			if i == 0 {
				st.Entries++
			}
			if i == s.Len()-1 {
				st.Exits++
			}
			if !seen[e.Page] {
				seen[e.Page] = true
				st.Sessions++
			}
		}
	}
	r.Users = len(users)
	r.Length = stats.Summarize(lengths)
	r.Duration = stats.Summarize(durations)
	r.Pages = make([]PageStat, 0, len(byPage))
	for _, st := range byPage {
		r.Pages = append(r.Pages, *st)
	}
	sort.Slice(r.Pages, func(i, j int) bool {
		if r.Pages[i].Views != r.Pages[j].Views {
			return r.Pages[i].Views > r.Pages[j].Views
		}
		return r.Pages[i].Page < r.Pages[j].Page
	})
	return r
}

// TopEntries returns the k most common session entry pages, descending.
func (r *Report) TopEntries(k int) []PageStat {
	return topBy(r.Pages, k, func(s PageStat) int { return s.Entries })
}

// TopExits returns the k most common session exit pages, descending.
func (r *Report) TopExits(k int) []PageStat {
	return topBy(r.Pages, k, func(s PageStat) int { return s.Exits })
}

func topBy(pages []PageStat, k int, key func(PageStat) int) []PageStat {
	out := append([]PageStat(nil), pages...)
	sort.Slice(out, func(i, j int) bool {
		if key(out[i]) != key(out[j]) {
			return key(out[i]) > key(out[j])
		}
		return out[i].Page < out[j].Page
	})
	if k > len(out) {
		k = len(out)
	}
	out = out[:k]
	// Drop zero-count tails: a page that never was an entry is noise here.
	for len(out) > 0 && key(out[len(out)-1]) == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// labeler resolves page IDs to display names; webgraph.Graph satisfies it.
type labeler interface {
	Label(webgraph.PageID) string
}

// Write renders the report as text. The labeler may be nil, in which case
// raw page IDs print.
func (r *Report) Write(w io.Writer, g labeler, topK int) error {
	name := func(p webgraph.PageID) string {
		if g != nil {
			if l := g.Label(p); l != "" {
				return l
			}
		}
		return fmt.Sprintf("page-%d", p)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sessions: %d  users: %d  page views: %d\n", r.Sessions, r.Users, r.Views)
	fmt.Fprintf(&sb, "session length: %s\n", r.Length)
	fmt.Fprintf(&sb, "session duration (min): %s\n", r.Duration)

	fmt.Fprintf(&sb, "\ntop %d pages by views:\n", topK)
	for i, st := range r.Pages {
		if i == topK {
			break
		}
		fmt.Fprintf(&sb, "%4d. %-26s views=%-6d sessions=%-6d entry=%-5d exit=%d\n",
			i+1, name(st.Page), st.Views, st.Sessions, st.Entries, st.Exits)
	}
	fmt.Fprintf(&sb, "\ntop entry pages:\n")
	for _, st := range r.TopEntries(topK) {
		fmt.Fprintf(&sb, "  %-26s %d\n", name(st.Page), st.Entries)
	}
	fmt.Fprintf(&sb, "\ntop exit pages:\n")
	for _, st := range r.TopExits(topK) {
		fmt.Fprintf(&sb, "  %-26s %d\n", name(st.Page), st.Exits)
	}

	fmt.Fprintf(&sb, "\nsessions by start hour (UTC):\n")
	peak := 0
	for _, c := range r.Hourly {
		if c > peak {
			peak = c
		}
	}
	for h, c := range r.Hourly {
		bar := 0
		if peak > 0 {
			bar = c * 30 / peak
		}
		fmt.Fprintf(&sb, "  %02d:00 %6d %s\n", h, c, strings.Repeat("#", bar))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// PeakHour returns the busiest session-start hour and its count.
func (r *Report) PeakHour() (hour, count int) {
	for h, c := range r.Hourly {
		if c > count {
			hour, count = h, c
		}
	}
	return hour, count
}
