package plot

import (
	"math"
	"strings"
	"testing"
)

func chartOf(series ...Series) *Chart {
	return &Chart{Title: "t", XLabel: "x", YLabel: "y", Series: series}
}

func TestWriteSVGStructure(t *testing.T) {
	c := chartOf(
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 4, 2}},
		Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 3}},
	)
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		">a</text>", ">b</text>", // legend entries
		">t</text>", ">x</text>", ">y</text>", // title and axis labels
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("markers = %d", got)
	}
}

func TestWriteSVGValidation(t *testing.T) {
	if err := (&Chart{}).WriteSVG(&strings.Builder{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := chartOf(Series{Name: "a", X: []float64{1}, Y: []float64{1, 2}})
	if err := bad.WriteSVG(&strings.Builder{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	empty := chartOf(Series{Name: "a"})
	if err := empty.WriteSVG(&strings.Builder{}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestWriteSVGDeterministic(t *testing.T) {
	c := chartOf(Series{Name: "a", X: []float64{0, 5, 10}, Y: []float64{3, 1, 7}})
	var a, b strings.Builder
	if err := c.WriteSVG(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("SVG output not deterministic")
	}
}

func TestWriteSVGEscapesText(t *testing.T) {
	c := chartOf(Series{Name: `<evil> & "quoted"`, X: []float64{0, 1}, Y: []float64{0, 1}})
	c.Title = "a < b"
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "<evil>") {
		t.Error("unescaped markup in output")
	}
	if !strings.Contains(out, "&lt;evil&gt;") || !strings.Contains(out, "a &lt; b") {
		t.Error("escaping missing")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	// Constant series: the implicit y-padding must avoid a zero-height range.
	c := chartOf(Series{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}})
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
		t.Error("degenerate range produced NaN/Inf coordinates")
	}
	// Pinned y-range.
	c.YMin, c.YMax = 0, 100
	sb.Reset()
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ">100</text>") {
		t.Errorf("pinned y max tick missing")
	}
}

func TestTicks(t *testing.T) {
	got := ticks(0, 100, 6)
	if len(got) < 3 {
		t.Fatalf("ticks = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
	}
	if got[0] < 0 || got[len(got)-1] > 100+1e-9 {
		t.Errorf("ticks out of range: %v", got)
	}
	if got := ticks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestNiceStep(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.9, 1}, {1.2, 2}, {3.7, 5}, {7, 10}, {12, 20}, {0.03, 0.05},
	}
	for _, c := range cases {
		if got := niceStep(c.in); math.Abs(got-c.want) > c.want*1e-9 {
			t.Errorf("niceStep(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(10) != "10" {
		t.Errorf("formatTick(10) = %q", formatTick(10))
	}
	if formatTick(0.5) != "0.5" {
		t.Errorf("formatTick(0.5) = %q", formatTick(0.5))
	}
	if formatTick(0.25) != "0.25" {
		t.Errorf("formatTick(0.25) = %q", formatTick(0.25))
	}
}
