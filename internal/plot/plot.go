// Package plot renders line charts as standalone SVG documents using only
// the standard library — enough to regenerate the paper's Figures 8-10 as
// images from the evaluation sweeps. It is deliberately small: numeric
// series in, one self-contained SVG out, deterministic byte-for-byte.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points; lengths must match.
	X, Y []float64
}

// Chart describes a line chart.
type Chart struct {
	// Title is drawn across the top.
	Title string
	// XLabel and YLabel caption the axes.
	XLabel, YLabel string
	// Series are the lines, drawn in order.
	Series []Series
	// Width and Height are the SVG dimensions in pixels; zero means 720x460.
	Width, Height int
	// YMin/YMax pin the y-axis range; when both are zero the range is
	// computed from the data (padded).
	YMin, YMax float64
}

// palette holds the line colors, cycled by series index.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 64.0
	marginRight  = 24.0
	marginTop    = 40.0
	marginBottom = 56.0
	legendRow    = 18.0
)

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
	}
	width, height := float64(c.Width), float64(c.Height)
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 460
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	} else {
		pad := (ymax - ymin) * 0.08
		if pad == 0 {
			pad = 1
		}
		ymin -= pad
		ymax += pad
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	sx := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return marginTop + (1-(y-ymin)/(ymax-ymin))*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%.0f" y="22" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		width/2, escape(c.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, 8) {
		x := sx(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x, marginTop+plotH+16, formatTick(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := sy(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(t))
	}

	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		marginLeft+plotW/2, height-14, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts strings.Builder
		for j := range s.X {
			if j > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", sx(s.X[j]), sy(s.Y[j]))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			pts.String(), color)
		for j := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				sx(s.X[j]), sy(s.Y[j]), color)
		}
	}

	// Legend (top-right inside the plot area).
	lx := marginLeft + plotW - 150
	ly := marginTop + 10
	for i, s := range c.Series {
		y := ly + float64(i)*legendRow
		color := palette[i%len(palette)]
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, y, lx+22, y, color)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+28, y+4, escape(s.Name))
	}

	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// ticks returns up to max+1 "nice" tick positions covering [lo, hi].
func ticks(lo, hi float64, max int) []float64 {
	if max < 2 {
		max = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := niceStep(span / float64(max))
	start := math.Ceil(lo/step) * step
	var out []float64
	for t := start; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

// niceStep rounds raw up to a 1/2/5×10^k value.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	frac := raw / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(t float64) string {
	if t == math.Trunc(t) && math.Abs(t) < 1e7 {
		return fmt.Sprintf("%.0f", t)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", t), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
