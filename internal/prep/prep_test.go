package prep

import (
	"strings"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func rec(host, uri string, minute int) clf.Record {
	return clf.Record{
		Host: host, Ident: "-", AuthUser: "-",
		Time:   t0.Add(time.Duration(minute) * time.Minute),
		Method: "GET", URI: uri, Protocol: "HTTP/1.1", Status: 200, Bytes: 1,
	}
}

func figureGraph(t *testing.T) (*webgraph.Graph, map[string]webgraph.PageID) {
	t.Helper()
	return webgraph.PaperFigure1()
}

func TestBuildStreamsGroupsAndSorts(t *testing.T) {
	g, ids := figureGraph(t)
	records := []clf.Record{
		rec("10.0.0.2", "/P13.html", 5),
		rec("10.0.0.1", "/P1.html", 0),
		rec("10.0.0.2", "/P1.html", 1),
		rec("10.0.0.1", "/P20.html", 3),
	}
	streams, stats, err := BuildStreams(records, GraphResolver(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 2 || stats.Records != 4 || stats.Filtered != 0 || stats.Unresolved != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}
	// Sorted by user key.
	if streams[0].User != "10.0.0.1" || streams[1].User != "10.0.0.2" {
		t.Errorf("stream order: %s, %s", streams[0].User, streams[1].User)
	}
	// Within user, sorted by time.
	s2 := streams[1]
	if s2.Entries[0].Page != ids["P1"] || s2.Entries[1].Page != ids["P13"] {
		t.Errorf("user 10.0.0.2 entries out of order: %v", s2.Entries)
	}
}

func TestBuildStreamsStableOnEqualTimestamps(t *testing.T) {
	g, ids := figureGraph(t)
	records := []clf.Record{
		rec("u", "/P1.html", 0),
		rec("u", "/P20.html", 0), // same timestamp: log order must win
	}
	streams, _, err := BuildStreams(records, GraphResolver(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := streams[0].Entries
	if e[0].Page != ids["P1"] || e[1].Page != ids["P20"] {
		t.Errorf("equal-timestamp order not stable: %v", e)
	}
}

func TestBuildStreamsFilterAndUnresolved(t *testing.T) {
	g, _ := figureGraph(t)
	records := []clf.Record{
		rec("u", "/P1.html", 0),
		rec("u", "/logo.gif", 1), // filtered
		rec("u", "/missing.html", 2) /* unresolved */}
	records[1].URI = "/logo.gif"
	streams, stats, err := BuildStreams(records, GraphResolver(g), Options{
		Filter: clf.StandardCleaning(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Filtered != 1 || stats.Unresolved != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(streams) != 1 || len(streams[0].Entries) != 1 {
		t.Fatalf("streams = %v", streams)
	}
	if !strings.Contains(stats.String(), "unresolved=1") {
		t.Errorf("Stats.String = %q", stats.String())
	}
}

func TestBuildStreamsNilResolver(t *testing.T) {
	if _, _, err := BuildStreams(nil, nil, Options{}); err == nil {
		t.Error("nil resolver accepted")
	}
}

func TestUserKeys(t *testing.T) {
	r := rec("1.2.3.4", "/P1.html", 0)
	if ByIP(r) != "1.2.3.4" {
		t.Errorf("ByIP = %q", ByIP(r))
	}
	if ByIPAndAuthUser(r) != "1.2.3.4" {
		t.Errorf("ByIPAndAuthUser with dash = %q", ByIPAndAuthUser(r))
	}
	r.AuthUser = "alice"
	if ByIPAndAuthUser(r) != "1.2.3.4|alice" {
		t.Errorf("ByIPAndAuthUser = %q", ByIPAndAuthUser(r))
	}
	r.AuthUser = ""
	if ByIPAndAuthUser(r) != "1.2.3.4" {
		t.Errorf("ByIPAndAuthUser with empty = %q", ByIPAndAuthUser(r))
	}
}

func TestCustomKeySeparatesProxyUsers(t *testing.T) {
	g, _ := figureGraph(t)
	a := rec("proxy", "/P1.html", 0)
	a.AuthUser = "alice"
	b := rec("proxy", "/P1.html", 1)
	b.AuthUser = "bob"
	streams, stats, err := BuildStreams([]clf.Record{a, b}, GraphResolver(g), Options{
		Key: ByIPAndAuthUser,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 2 || len(streams) != 2 {
		t.Fatalf("proxy users not separated: %+v", stats)
	}
}
