// Package prep turns a cleaned web-server log into the per-user,
// timestamp-ordered request streams that session reconstruction heuristics
// consume. It covers the paper's user-identification step: for reactive
// processing "IP address, request time, and URL are the only information
// needed", so users default to being keyed by IP.
package prep

import (
	"fmt"
	"sort"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// UserKey derives a user identity from a record. The zero-value default used
// by Options is ByIP.
type UserKey func(clf.Record) string

// ByIP keys users by client IP — the only identity a CLF reactive pipeline
// has (the paper, §1).
func ByIP(r clf.Record) string { return r.Host }

// ByIPAndAuthUser keys by IP plus the authenticated user name when present,
// which separates users behind a shared proxy IP on sites using HTTP auth.
func ByIPAndAuthUser(r clf.Record) string {
	if r.AuthUser == "" || r.AuthUser == "-" {
		return r.Host
	}
	return r.Host + "|" + r.AuthUser
}

// Resolver maps a request URI to a page of the site topology. Unresolvable
// URIs (external links, unmapped paths) are dropped and counted.
type Resolver func(uri string) (webgraph.PageID, bool)

// GraphResolver resolves URIs against the labels of g.
func GraphResolver(g *webgraph.Graph) Resolver {
	return g.PageByURI
}

// Options configures BuildStreams. The zero value means: no cleaning filter,
// users keyed by IP.
type Options struct {
	// Filter drops records before user identification; nil keeps everything.
	// Use clf.StandardCleaning() for the conventional pipeline.
	Filter clf.Filter
	// Key derives user identities; nil means ByIP.
	Key UserKey
}

// Stats reports what happened to the input during stream building.
type Stats struct {
	// Records is the number of input records.
	Records int
	// Filtered is the number dropped by the cleaning filter.
	Filtered int
	// Unresolved is the number of surviving records whose URI did not map to
	// a page of the topology.
	Unresolved int
	// Users is the number of distinct users identified.
	Users int
}

// String summarizes the stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("records=%d filtered=%d unresolved=%d users=%d",
		s.Records, s.Filtered, s.Unresolved, s.Users)
}

// BuildStreams groups records into per-user request streams, sorted by
// timestamp within each user (stable, so same-timestamp records keep log
// order). Streams are returned sorted by user key for determinism.
func BuildStreams(records []clf.Record, resolve Resolver, opts Options) ([]session.Stream, Stats, error) {
	if resolve == nil {
		return nil, Stats{}, fmt.Errorf("prep: nil resolver")
	}
	key := opts.Key
	if key == nil {
		key = ByIP
	}
	stats := Stats{Records: len(records)}
	byUser := make(map[string][]session.Entry)
	for _, rec := range records {
		if opts.Filter != nil && !opts.Filter(rec) {
			stats.Filtered++
			continue
		}
		page, ok := resolve(rec.URI)
		if !ok {
			stats.Unresolved++
			continue
		}
		u := key(rec)
		byUser[u] = append(byUser[u], session.Entry{Page: page, Time: rec.Time})
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	streams := make([]session.Stream, 0, len(users))
	for _, u := range users {
		entries := byUser[u]
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].Time.Before(entries[j].Time)
		})
		streams = append(streams, session.Stream{User: u, Entries: entries})
	}
	stats.Users = len(streams)
	return streams, stats, nil
}
