package prep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// parallelMinRecords is the input size below which the fan-out overhead
// outweighs the parallel win and BuildStreamsWith degrades to BuildStreams.
const parallelMinRecords = 4096

// BuildStreamsWith is BuildStreams with the filter/resolve/key stage fanned
// out over a bounded worker pool. The records are split into contiguous
// ranges, each worker groups its range into a private per-user map, and the
// per-range entry lists are concatenated in range order before the final
// stable time sort — so entries reach the sort in exactly the record order
// the sequential path uses and the output is identical for any worker
// count. workers <= 0 means GOMAXPROCS; workers == 1 (or a small input)
// runs the sequential path.
func BuildStreamsWith(records []clf.Record, resolve Resolver, opts Options, workers int) ([]session.Stream, Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(records)/parallelMinRecords {
		workers = len(records) / parallelMinRecords
	}
	if workers <= 1 {
		return BuildStreams(records, resolve, opts)
	}
	if resolve == nil {
		return nil, Stats{}, fmt.Errorf("prep: nil resolver")
	}
	key := opts.Key
	if key == nil {
		key = ByIP
	}

	type rangeResult struct {
		byUser     map[string][]session.Entry
		filtered   int
		unresolved int
	}
	results := make([]rangeResult, workers)
	per := (len(records) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(records) {
			hi = len(records)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := rangeResult{byUser: make(map[string][]session.Entry)}
			for _, rec := range records[lo:hi] {
				if opts.Filter != nil && !opts.Filter(rec) {
					r.filtered++
					continue
				}
				page, ok := resolve(rec.URI)
				if !ok {
					r.unresolved++
					continue
				}
				u := key(rec)
				r.byUser[u] = append(r.byUser[u], session.Entry{Page: page, Time: rec.Time})
			}
			results[w] = r
		}(w, lo, hi)
	}
	wg.Wait()

	stats := Stats{Records: len(records)}
	sizes := make(map[string]int)
	for _, r := range results {
		stats.Filtered += r.filtered
		stats.Unresolved += r.unresolved
		for u, es := range r.byUser {
			sizes[u] += len(es)
		}
	}
	users := make([]string, 0, len(sizes))
	for u := range sizes {
		users = append(users, u)
	}
	sort.Strings(users)
	streams := make([]session.Stream, 0, len(users))
	for _, u := range users {
		entries := make([]session.Entry, 0, sizes[u])
		// Range order is record order, so the concatenation feeds the
		// stable sort the same sequence BuildStreams would.
		for _, r := range results {
			entries = append(entries, r.byUser[u]...)
		}
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].Time.Before(entries[j].Time)
		})
		streams = append(streams, session.Stream{User: u, Entries: entries})
	}
	stats.Users = len(streams)
	return streams, stats, nil
}
