package prep

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webgraph"
)

// synthRecords builds a record set large enough to clear the parallel gate,
// with shared timestamps (to exercise the stable sort), filtered records,
// and unresolvable URIs.
func synthRecords(n int) []clf.Record {
	rng := rand.New(rand.NewSource(11))
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	records := make([]clf.Record, n)
	for i := range records {
		rec := clf.Record{
			Host:     fmt.Sprintf("10.0.%d.%d", rng.Intn(4), rng.Intn(50)),
			Ident:    "-", AuthUser: "-",
			Time:     t0.Add(time.Duration(rng.Intn(600)) * time.Second),
			Method:   "GET",
			URI:      fmt.Sprintf("/p%d", rng.Intn(40)),
			Protocol: "HTTP/1.1", Status: 200, Bytes: 1,
		}
		if rng.Intn(20) == 0 {
			rec.URI = "/external" // unresolvable
		}
		if rng.Intn(25) == 0 {
			rec.Status = 404 // filtered below
		}
		records[i] = rec
	}
	return records
}

func synthResolver(uri string) (webgraph.PageID, bool) {
	var id int
	if _, err := fmt.Sscanf(uri, "/p%d", &id); err != nil {
		return 0, false
	}
	return webgraph.PageID(id), true
}

// TestBuildStreamsWithMatchesSequential pins BuildStreamsWith to
// BuildStreams: same streams (users, entry order, timestamps) and same
// stats for any worker count.
func TestBuildStreamsWithMatchesSequential(t *testing.T) {
	records := synthRecords(40_000)
	opts := Options{
		Filter: func(r clf.Record) bool { return r.Status == 200 },
	}
	want, wantStats, err := BuildStreams(records, synthResolver, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 2, 3, 4, 9} {
		got, gotStats, err := BuildStreamsWith(records, synthResolver, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d streams vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].User != want[i].User {
				t.Fatalf("workers=%d: stream %d user %q vs %q", workers, i, got[i].User, want[i].User)
			}
			if len(got[i].Entries) != len(want[i].Entries) {
				t.Fatalf("workers=%d: user %q has %d entries vs %d",
					workers, want[i].User, len(got[i].Entries), len(want[i].Entries))
			}
			for j := range want[i].Entries {
				if got[i].Entries[j] != want[i].Entries[j] {
					t.Fatalf("workers=%d: user %q entry %d: %+v vs %+v",
						workers, want[i].User, j, got[i].Entries[j], want[i].Entries[j])
				}
			}
		}
	}
}

func TestBuildStreamsWithNilResolver(t *testing.T) {
	if _, _, err := BuildStreamsWith(synthRecords(10_000), nil, Options{}, 4); err == nil {
		t.Error("nil resolver accepted")
	}
}
