package plan

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestDecideTable pins the planner's decision table: cores x input-size x
// kind -> chosen plan. These are the shapes the committed benchmarks and the
// deployment paths actually hit.
func TestDecideTable(t *testing.T) {
	const MiB = 1 << 20
	cases := []struct {
		name string
		in   Input
		want func(t *testing.T, p Plan)
	}{
		{
			// The committed 1-core bench inversion: sequential must win.
			name: "one core large file",
			in:   Input{Cores: 1, SizeBytes: 100 * MiB, Kind: KindFile},
			want: func(t *testing.T, p Plan) {
				if !p.Sequential || p.Workers != 1 || p.Shards != 1 {
					t.Fatalf("want sequential single-shard plan, got %+v", p)
				}
			},
		},
		{
			name: "one core pipe",
			in:   Input{Cores: 1, SizeBytes: -1, Kind: KindPipe},
			want: func(t *testing.T, p Plan) {
				if !p.Sequential {
					t.Fatalf("want sequential, got %+v", p)
				}
			},
		},
		{
			// A 1-core live server: extra locked shards are pure overhead.
			name: "one core live many feeders",
			in:   Input{Cores: 1, Kind: KindLive, SizeBytes: -1, Feeders: 32},
			want: func(t *testing.T, p Plan) {
				if p.Shards != 1 {
					t.Fatalf("shards = %d on 1 core, want 1: %+v", p.Shards, p)
				}
			},
		},
		{
			name: "small file on many cores",
			in:   Input{Cores: 8, SizeBytes: 1 * MiB, Kind: KindFile},
			want: func(t *testing.T, p Plan) {
				if !p.Sequential {
					t.Fatalf("1 MiB input should stay sequential, got %+v", p)
				}
			},
		},
		{
			name: "large file on many cores",
			in:   Input{Cores: 8, SizeBytes: 512 * MiB, Kind: KindFile},
			want: func(t *testing.T, p Plan) {
				if p.Sequential || p.Workers != 8 {
					t.Fatalf("want 8 parallel workers, got %+v", p)
				}
				if p.ChunkBytes != DefaultChunkBytes {
					t.Fatalf("large input should keep the default chunk, got %d", p.ChunkBytes)
				}
				if p.StreamDepth < 8 || p.StreamDepth > 32 {
					t.Fatalf("depth %d outside [8,32]", p.StreamDepth)
				}
				if p.Shards != 1 {
					t.Fatalf("single-feeder ingest wants 1 shard, got %d", p.Shards)
				}
			},
		},
		{
			// Medium inputs shrink chunks so every worker has several.
			name: "medium file shrinks chunks",
			in:   Input{Cores: 4, SizeBytes: 6 * MiB, Kind: KindFile},
			want: func(t *testing.T, p Plan) {
				if p.Sequential {
					t.Fatalf("6 MiB on 4 cores should parallelize, got %+v", p)
				}
				if p.ChunkBytes >= DefaultChunkBytes || p.ChunkBytes < MinChunkBytes {
					t.Fatalf("chunk %d not shrunk into [%d,%d)", p.ChunkBytes, MinChunkBytes, DefaultChunkBytes)
				}
				if p.Workers > 4 {
					t.Fatalf("workers %d > cores", p.Workers)
				}
			},
		},
		{
			name: "endless pipe on many cores",
			in:   Input{Cores: 4, SizeBytes: -1, Kind: KindPipe},
			want: func(t *testing.T, p Plan) {
				if p.Sequential || p.Workers != 4 {
					t.Fatalf("unbounded pipe on 4 cores should use all of them, got %+v", p)
				}
			},
		},
		{
			name: "live traffic on many cores",
			in:   Input{Cores: 4, SizeBytes: -1, Kind: KindLive},
			want: func(t *testing.T, p Plan) {
				if p.Shards != 4 {
					t.Fatalf("live on 4 cores wants 4 shards, got %+v", p)
				}
				if !p.Sequential {
					t.Fatalf("live pushes have no byte stream to chunk: %+v", p)
				}
			},
		},
		{
			name: "live traffic few feeders",
			in:   Input{Cores: 8, SizeBytes: -1, Kind: KindLive, Feeders: 3},
			want: func(t *testing.T, p Plan) {
				if p.Shards != 3 {
					t.Fatalf("3 feeders need at most 3 shards, got %d", p.Shards)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Decide(tc.in)
			tc.want(t, p)
			if p.Workers < 1 || p.Shards < 1 || p.StreamDepth < 1 || p.ChunkBytes < 1 {
				t.Fatalf("degenerate plan %+v", p)
			}
			if p.Reason == "" {
				t.Fatalf("plan has no reason: %+v", p)
			}
		})
	}
}

// TestDecideDeterministic: the uncalibrated planner is a pure function.
func TestDecideDeterministic(t *testing.T) {
	in := Input{Cores: 16, SizeBytes: 123 << 20, Kind: KindFile}
	a, b := Decide(in), Decide(in)
	if a != b {
		t.Fatalf("Decide not deterministic: %+v vs %+v", a, b)
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		req  int
		in   Input
		want int
		clam bool
	}{
		{64, Input{Cores: 4, SizeBytes: 1 << 30, Kind: KindFile}, 4, true},
		{4, Input{Cores: 4, SizeBytes: 1 << 30, Kind: KindFile}, 4, false},
		// A half-MiB input has one chunk: extra workers never receive work.
		{8, Input{Cores: 16, SizeBytes: 512 << 10, Kind: KindFile}, 1, true},
		{3, Input{Cores: 8, SizeBytes: -1, Kind: KindPipe}, 3, false},
		{0, Input{Cores: 8, SizeBytes: -1, Kind: KindPipe}, 1, false},
	}
	for _, tc := range cases {
		got, clamped := ClampWorkers(tc.req, tc.in)
		if got != tc.want || clamped != tc.clam {
			t.Errorf("ClampWorkers(%d, %+v) = (%d, %v), want (%d, %v)",
				tc.req, tc.in, got, clamped, tc.want, tc.clam)
		}
	}
}

func TestClampShards(t *testing.T) {
	if got, clamped := ClampShards(64, Input{Cores: 4}); got != 8 || !clamped {
		t.Errorf("ClampShards(64, 4 cores) = (%d, %v), want (8, true)", got, clamped)
	}
	if got, clamped := ClampShards(8, Input{Cores: 1}); got != 2 || !clamped {
		t.Errorf("ClampShards(8, 1 core) = (%d, %v), want (2, true)", got, clamped)
	}
	if got, clamped := ClampShards(3, Input{Cores: 4}); got != 3 || clamped {
		t.Errorf("ClampShards(3, 4 cores) = (%d, %v), want (3, false)", got, clamped)
	}
}

func TestParseKnob(t *testing.T) {
	for _, s := range []string{"auto", ""} {
		k, err := ParseKnob("workers", s)
		if err != nil || !k.Auto {
			t.Fatalf("ParseKnob(%q) = %+v, %v; want auto", s, k, err)
		}
	}
	k, err := ParseKnob("workers", "-1")
	if err != nil || k.Auto || k.N != -1 {
		t.Fatalf("ParseKnob(-1) = %+v, %v", k, err)
	}
	if _, err := ParseKnob("workers", "many"); err == nil {
		t.Fatal("ParseKnob(many) should fail")
	}
}

// TestResolveExplicitOverrides: explicit knobs beat the planner but are
// clamped, and every clamp is reported.
func TestResolveExplicitOverrides(t *testing.T) {
	in := Input{Cores: 2, SizeBytes: 256 << 20, Kind: KindFile}
	p, notes := Resolve(in, Knob{N: 64}, Knob{N: 64}, Knob{N: 4}, Auto, nil)
	if p.Workers != 2 {
		t.Fatalf("workers = %d, want clamped 2 (plan %+v)", p.Workers, p)
	}
	if p.Shards != 4 {
		t.Fatalf("shards = %d, want clamped 4 (2x cores)", p.Shards)
	}
	if p.StreamDepth != 4 {
		t.Fatalf("depth = %d, want explicit 4", p.StreamDepth)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want one per clamp", notes)
	}
	for _, n := range notes {
		if !strings.Contains(n, "clamped") {
			t.Fatalf("note %q does not mention the clamp", n)
		}
	}

	// Legacy conventions: workers 0 sequential, -1 all cores, shards 0 all cores.
	p, _ = Resolve(in, Knob{N: 0}, Knob{N: 0}, Auto, Auto, nil)
	if !p.Sequential || p.Workers != 1 {
		t.Fatalf("workers 0 should mean sequential, got %+v", p)
	}
	if p.Shards != 2 {
		t.Fatalf("shards 0 should mean all cores (2), got %d", p.Shards)
	}
	p, _ = Resolve(in, Knob{N: -1}, Auto, Auto, Auto, nil)
	if p.Sequential || p.Workers != 2 {
		t.Fatalf("workers -1 should mean all cores, got %+v", p)
	}
}

// TestResolveAutoOneCore: the headline fix — on one core the resolved auto
// plan is sequential, so parse/stream/tail speedups are 1.0 by construction.
func TestResolveAutoOneCore(t *testing.T) {
	p, notes := Resolve(Input{Cores: 1, SizeBytes: 100 << 20, Kind: KindFile}, Auto, Auto, Auto, Auto, nil)
	if !p.Sequential || p.Workers != 1 || p.Shards != 1 {
		t.Fatalf("auto on 1 core = %+v, want sequential", p)
	}
	if len(notes) != 0 {
		t.Fatalf("auto plan should not clamp anything: %v", notes)
	}
}

// TestCalibrate: the probe returns a positive finite ratio on real CLF
// input, and DecideCalibrated never yields an invalid plan whichever way
// the probe lands on this machine.
func TestCalibrate(t *testing.T) {
	var sample bytes.Buffer
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	for i := 0; sample.Len() < minProbeBytes; i++ {
		fmt.Fprintf(&sample, "10.0.%d.%d - - [%s] \"GET /p%d HTTP/1.0\" 200 %d\n",
			i%256, (i/256)%256, base.Add(time.Duration(i)*time.Second).Format("02/Jan/2006:15:04:05 -0700"),
			i%300, 1000+i%4096)
	}
	p := Plan{Workers: 4, StreamDepth: 8, ChunkBytes: DefaultChunkBytes}
	ratio := Calibrate(sample.Bytes(), p)
	if ratio <= 0 {
		t.Fatalf("Calibrate ratio = %v, want > 0", ratio)
	}

	got := DecideCalibrated(Input{Cores: 4, SizeBytes: 1 << 30, Kind: KindFile}, sample.Bytes())
	if got.Workers < 1 || got.StreamDepth < 1 || got.ChunkBytes < 1 {
		t.Fatalf("DecideCalibrated returned degenerate plan %+v", got)
	}
	if got.Sequential && got.Workers != 1 {
		t.Fatalf("sequential plan with %d workers", got.Workers)
	}
	// A short sample must leave the table's decision standing.
	table := Decide(Input{Cores: 4, SizeBytes: 1 << 30, Kind: KindFile})
	short := DecideCalibrated(Input{Cores: 4, SizeBytes: 1 << 30, Kind: KindFile}, sample.Bytes()[:1024])
	if short != table {
		t.Fatalf("short sample changed the plan: %+v vs %+v", short, table)
	}
}
