// Package plan is the adaptive execution planner: it sizes the ingestion
// knobs — parse workers, sessionizer shards, stream depth, chunk bytes —
// from the machine (GOMAXPROCS), the input (size and kind), and an optional
// observed-throughput calibration probe, and falls back to the sequential
// clf.Stream / single-Tail path whenever parallelism cannot win.
//
// The motivating inversion is in the committed 1-core benchmarks:
// BENCH_ingest.json records parse_speedup 0.80 and BENCH_stream.json
// stream_speedup 0.58 — chunk fan-out costs real scheduling and memory
// traffic, so on small machines (or small inputs, or bursty heavy-tailed
// traffic) the parallel readers lose to the sequential scanner and the
// operator previously had to guess -workers/-shards/-stream-depth to avoid
// the regression. The planner makes that call instead.
//
// Every plan is a pure performance decision: the parallel paths are
// byte-identical to the sequential ones for any {workers, shards, depth,
// chunk} (pinned by the golden-corpus equivalence harness), so a plan can
// never change output — only throughput and memory.
package plan

import (
	"fmt"
	"os"
	"runtime"
	"strconv"

	"smartsra/internal/clf"
)

// Kind classifies the input the plan is for.
type Kind int

const (
	// KindFile is a seekable regular file of known size.
	KindFile Kind = iota
	// KindPipe is a pipe, FIFO, socket, or terminal: size unknown, possibly
	// endless.
	KindPipe
	// KindLive is live traffic pushed record by record from concurrent
	// producers (the serve request path).
	KindLive
	// KindGzip is a gzip-compressed file (or set containing one): size on
	// disk understates the bytes to parse, and the decode stage is
	// sequential per member.
	KindGzip
)

func (k Kind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindPipe:
		return "pipe"
	case KindLive:
		return "live"
	case KindGzip:
		return "gzip"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// GzipExpansion is the planner's estimate of how much larger a gzip log is
// decoded than on disk. Access logs are highly repetitive text; 4x is
// conservative (DEFLATE typically does better on CLF), and the estimate only
// steers chunk sizing, never correctness.
const GzipExpansion = 4

// Input describes one workload for the planner.
type Input struct {
	// Cores is the schedulable parallelism; <= 0 means runtime.GOMAXPROCS.
	Cores int
	// SizeBytes is the number of input bytes still to read; < 0 when
	// unknown (pipes, live traffic).
	SizeBytes int64
	// Kind is the input's shape.
	Kind Kind
	// Feeders is how many goroutines will push records concurrently into
	// the sessionizer. <= 0 means the kind's default: 1 for files and
	// pipes (the in-order delivery goroutine), 2x cores for live traffic
	// (concurrent request handlers).
	Feeders int
	// Files is how many files make up the input (a rotated set); <= 1
	// means a single stream. For KindGzip sets, more files mean more
	// decode-ahead overlap.
	Files int
}

func (in Input) cores() int {
	if in.Cores > 0 {
		return in.Cores
	}
	return runtime.GOMAXPROCS(0)
}

func (in Input) feeders() int {
	if in.Feeders > 0 {
		return in.Feeders
	}
	if in.Kind == KindLive {
		return 2 * in.cores()
	}
	return 1
}

// Plan is the execution configuration the planner chose. Zero is not a
// valid plan; obtain one from Decide, DecideCalibrated, or Resolve.
type Plan struct {
	// Workers is the parse-stage goroutine count; 1 means the sequential
	// scanner.
	Workers int
	// Shards is the sessionizer shard count; 1 means a single Tail's worth
	// of state (use a lock-striped ShardedTail only when feeders contend).
	Shards int
	// StreamDepth is the in-order delivery channel depth for the parallel
	// reader (inert when Workers == 1).
	StreamDepth int
	// ChunkBytes is the line-aligned parse chunk size (inert when
	// Workers == 1).
	ChunkBytes int
	// Batch is the sessionizer delivery granularity (core.Config's
	// BatchRecords): 1 pushes record-at-a-time — the low-latency choice for
	// pipes and live traffic, where a batch would sit waiting for a chunk to
	// fill — and <= 0 hands each parsed chunk to PushBatch whole, paying the
	// shard lock and metrics flush once per chunk instead of once per
	// record. Never changes the emitted sessions, only when they surface.
	Batch int
	// Sequential reports that the parse stage should take the sequential
	// clf.Stream path: parallelism cannot win on this input.
	Sequential bool
	// Mmap reports that plain-file input will be served as memory-mapped
	// zero-copy windows (informational: clf.StreamFiles selects the source
	// per file; this records the expectation for logs and benchmarks).
	Mmap bool
	// Reason is the one-line human explanation logged at startup.
	Reason string
}

func (p Plan) String() string {
	mode := "parallel"
	if p.Sequential {
		mode = "sequential"
	}
	if p.Mmap {
		mode += "+mmap"
	}
	batch := "chunk"
	if p.Batch == 1 {
		batch = "1"
	} else if p.Batch > 1 {
		batch = strconv.Itoa(p.Batch)
	}
	return fmt.Sprintf("%s: workers=%d shards=%d depth=%d chunk=%s batch=%s — %s",
		mode, p.Workers, p.Shards, p.StreamDepth, fmtBytes(int64(p.ChunkBytes)), batch, p.Reason)
}

const (
	// DefaultChunkBytes matches the clf reader's ~1 MiB line-aligned chunk.
	DefaultChunkBytes = 1 << 20
	// MinChunkBytes is the smallest chunk worth dispatching: below this the
	// per-chunk channel and goroutine traffic dominates the parse work.
	MinChunkBytes = 64 << 10
	// MinParallelBytes is the smallest known input worth fanning out at
	// all: under a handful of chunks, pipeline start-up and the in-order
	// merge eat the win.
	MinParallelBytes = 4 << 20
	// minStreamDepth / maxStreamDepth bound the in-order channel: deep
	// enough to ride out a slow chunk, shallow enough that heap stays a
	// few dozen chunks.
	minStreamDepth = 8
	maxStreamDepth = 32
)

// Decide sizes the execution for in without measuring anything: a pure,
// deterministic decision table over cores x input-size x kind. Use
// DecideCalibrated when a sample of the input is cheaply available.
func Decide(in Input) Plan {
	cores := in.cores()
	feeders := in.feeders()
	p := Plan{
		Workers:     1,
		Shards:      1,
		StreamDepth: minStreamDepth,
		ChunkBytes:  DefaultChunkBytes,
		Sequential:  true,
		// Plain files stream as zero-copy mmap windows when the build
		// supports it — a per-source decision that holds for sequential
		// plans too (the direct loop slices windows without goroutines).
		Mmap: in.Kind == KindFile && clf.MmapSupported,
	}
	// Batched sessionizer delivery is a pure throughput win on bounded
	// inputs, but a pipe or live stream may dribble: a batch would sit
	// waiting for its chunk to fill while the operator watches nothing
	// happen, so interactive kinds deliver record-at-a-time.
	if in.Kind == KindPipe || in.Kind == KindLive {
		p.Batch = 1
	}
	// Gzip sizes on disk understate the parse work; plan against the
	// estimated decoded size so a 2 MiB .gz (≈ 8 MiB of lines) still fans
	// out. The estimate steers sizing only — never correctness.
	size := in.SizeBytes
	if in.Kind == KindGzip && size >= 0 {
		size *= GzipExpansion
	}
	// Shards stripe feeder contention, which needs both real parallelism
	// and more than one pusher; a single delivery goroutine gains nothing
	// from extra locked shards (the committed tail_speedup 0.97 is that
	// overhead, measured).
	if cores > 1 && feeders > 1 {
		p.Shards = cores
		if feeders < p.Shards {
			p.Shards = feeders
		}
	}
	if cores == 1 {
		p.Reason = "1 core: chunk fan-out cannot outrun the sequential scanner"
		return p
	}
	if in.Kind == KindLive {
		// Live records arrive one at a time from the handlers; there is no
		// byte stream to chunk-parallelize.
		p.Reason = fmt.Sprintf("live traffic on %d cores: per-record pushes, %d-way shard striping", cores, p.Shards)
		return p
	}
	if size >= 0 && size < MinParallelBytes {
		p.Reason = fmt.Sprintf("input %s < %s: fan-out start-up would dominate", fmtBytes(size), fmtBytes(MinParallelBytes))
		return p
	}

	// Parallel parse. Size chunks so every worker sees several, shrinking
	// them (never below MinChunkBytes) when the input is only a few MiB.
	workers := cores
	chunk := DefaultChunkBytes
	if size >= 0 {
		if per := size / int64(4*workers); per < int64(chunk) {
			chunk = int(per)
			if chunk < MinChunkBytes {
				chunk = MinChunkBytes
			}
		}
		if n := chunkCount(size, chunk); n < workers {
			workers = n
		}
	}
	if workers <= 1 {
		p.Reason = fmt.Sprintf("input %s fits one chunk: nothing to fan out", fmtBytes(size))
		return p
	}
	p.Workers = workers
	p.ChunkBytes = chunk
	p.StreamDepth = clampInt(2*workers, minStreamDepth, maxStreamDepth)
	p.Sequential = false
	switch {
	case in.Kind == KindGzip:
		p.Reason = fmt.Sprintf("%d cores, %s gzip (≈%s decoded) in %s chunks", cores, fmtBytes(in.SizeBytes), fmtBytes(size), fmtBytes(int64(chunk)))
	case size >= 0:
		p.Reason = fmt.Sprintf("%d cores, %s in %s chunks", cores, fmtBytes(size), fmtBytes(int64(chunk)))
	default:
		p.Reason = fmt.Sprintf("%d cores, unbounded %s input", cores, in.Kind)
	}
	if in.Files > 1 {
		p.Reason += fmt.Sprintf(" across %d files", in.Files)
	}
	return p
}

// sequentialFallback converts p into its sequential equivalent, keeping the
// shard decision (shards answer feeder contention, not parse speed).
func (p Plan) sequentialFallback(reason string) Plan {
	p.Workers = 1
	p.Sequential = true
	p.Reason = reason
	return p
}

// ClampWorkers bounds an explicit worker request to what the machine and
// input can use: parse workers are CPU-bound, so beyond GOMAXPROCS they are
// idle goroutines, and beyond one per chunk they never receive work. It
// reports whether the request was reduced.
func ClampWorkers(req int, in Input) (int, bool) {
	eff := req
	if c := in.cores(); eff > c {
		eff = c
	}
	if in.SizeBytes >= 0 {
		if n := chunkCount(in.SizeBytes, DefaultChunkBytes); eff > n {
			eff = n
		}
	}
	if eff < 1 {
		eff = 1
	}
	return eff, eff < req
}

// ClampShards bounds an explicit shard request: lock striping stops paying
// past ~2 shards per core, and every extra shard is an idle map plus a
// mutex visited by every Flush/Expire merge. It reports whether the request
// was reduced.
func ClampShards(req int, in Input) (int, bool) {
	eff := req
	if max := 2 * in.cores(); eff > max {
		eff = max
	}
	if eff < 1 {
		eff = 1
	}
	return eff, eff < req
}

// Knob is one parsed execution flag: either an explicit integer (with the
// legacy conventions, 0 sequential / -1 all cores, interpreted by Resolve)
// or a request for the planner's choice.
type Knob struct {
	N    int
	Auto bool
}

// Auto is the planner-chooses knob value.
var Auto = Knob{Auto: true}

// ParseKnob interprets an execution-knob flag value: "auto" (or "") asks
// the planner, anything else must be an integer.
func ParseKnob(name, s string) (Knob, error) {
	if s == "" || s == "auto" {
		return Knob{Auto: true}, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return Knob{}, fmt.Errorf("-%s: want \"auto\" or an integer, got %q", name, s)
	}
	return Knob{N: n}, nil
}

// Resolve produces the effective plan for in: the auto plan (calibrated
// against sample when one is provided), with any explicit knobs overriding
// the planner's choice — clamped to what the input and machine can use. The
// returned notes describe every clamp applied, for the one-line startup log.
//
// Explicit knob conventions match the historical integer flags: workers 0
// means sequential, workers/shards < 0 mean all cores, depth <= 0 means the
// default. For batch, <= 0 means whole-chunk delivery and 1 means
// record-at-a-time.
func Resolve(in Input, workers, shards, depth, batch Knob, sample []byte) (Plan, []string) {
	var p Plan
	if workers.Auto {
		p = DecideCalibrated(in, sample)
	} else {
		// An explicit worker count skips the probe: the operator decided.
		p = Decide(in)
	}
	var notes []string
	if !workers.Auto {
		w := workers.N
		switch {
		case w < 0:
			w = in.cores()
		case w == 0:
			w = 1
		}
		eff, clamped := ClampWorkers(w, in)
		if clamped {
			notes = append(notes, fmt.Sprintf("-workers %d exceeds usable parallelism, clamped to %d", workers.N, eff))
		}
		p.Workers = eff
		p.Sequential = eff == 1
		p.Reason = fmt.Sprintf("explicit -workers %d", workers.N)
		if p.Sequential {
			p.ChunkBytes = DefaultChunkBytes
		} else if p.StreamDepth < minStreamDepth {
			p.StreamDepth = clampInt(2*eff, minStreamDepth, maxStreamDepth)
		}
	}
	if !shards.Auto {
		s := shards.N
		if s <= 0 {
			s = in.cores()
		}
		eff, clamped := ClampShards(s, in)
		if clamped {
			notes = append(notes, fmt.Sprintf("-shards %d exceeds usable lock striping, clamped to %d", shards.N, eff))
		}
		p.Shards = eff
	}
	if !depth.Auto {
		d := depth.N
		if d <= 0 {
			d = minStreamDepth
		}
		p.StreamDepth = d
	}
	if !batch.Auto {
		b := batch.N
		if b < 0 {
			b = 0
		}
		p.Batch = b
	}
	return p, notes
}

// Stat classifies an already-open input for planning: a regular file
// becomes KindFile with its remaining (unread) size, anything else is
// KindPipe with unknown size.
func Stat(f *os.File) Input {
	in := Input{SizeBytes: -1, Kind: KindPipe}
	if f == nil {
		return in
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return in
	}
	in.Kind = KindFile
	in.SizeBytes = fi.Size()
	if off, err := f.Seek(0, 1); err == nil && off > 0 && off <= fi.Size() {
		in.SizeBytes = fi.Size() - off
	}
	return in
}

// StatPath classifies a log file on disk (for replay planning before the
// file is opened). Missing or irregular paths plan like pipes; gzip files
// (sniffed by magic bytes) plan as KindGzip.
func StatPath(path string) Input {
	return StatPaths([]string{path})
}

// StatPaths classifies a resolved multi-file input set: total on-disk size,
// KindGzip when any member is compressed, and the file count for the plan's
// decode-ahead reasoning. Any missing or irregular member degrades the whole
// set to an unknown-size pipe plan (correct, just unsized).
func StatPaths(paths []string) Input {
	in := Input{SizeBytes: -1, Kind: KindPipe, Files: len(paths)}
	if len(paths) == 0 {
		return in
	}
	var total int64
	kind := KindFile
	for _, path := range paths {
		fi, err := os.Stat(path)
		if err != nil || !fi.Mode().IsRegular() {
			return in
		}
		total += fi.Size()
		if clf.IsGzipFile(path) {
			kind = KindGzip
		}
	}
	in.SizeBytes = total
	in.Kind = kind
	return in
}

// chunkCount is how many chunks of size chunk cover size bytes.
func chunkCount(size int64, chunk int) int {
	if size <= 0 {
		return 1
	}
	n := (size + int64(chunk) - 1) / int64(chunk)
	return int(n)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fmtBytes renders a byte count compactly (KiB/MiB/GiB).
func fmtBytes(n int64) string {
	switch {
	case n < 0:
		return "?"
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
