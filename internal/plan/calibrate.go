package plan

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"smartsra/internal/clf"
)

const (
	// MaxProbeBytes is how much input the calibration probe reads: enough
	// lines that both paths leave their start-up regime, small enough that
	// the probe finishes in a few milliseconds.
	MaxProbeBytes = 2 << 20
	// minProbeBytes is the smallest sample worth timing; below it the
	// probe's verdict is scheduler noise and the uncalibrated decision
	// table stands.
	minProbeBytes = 256 << 10
	// CalibrateMargin is how decisively the parallel path must win the
	// probe before the planner commits to it. The margin absorbs probe
	// noise and boundary machines: near 1.0 the parallel path buys
	// nothing, so sequential — whose speedup is 1.0 by construction — is
	// the safe pick.
	CalibrateMargin = 1.25
	probeRuns       = 3
)

// DecideCalibrated is Decide backed by an observed-throughput probe: when
// the decision table picks the parallel path and a large-enough sample of
// the actual input is available, the sequential scanner and the chunked
// parallel reader are both timed on the sample, and the plan falls back to
// sequential unless parallelism wins by CalibrateMargin. A nil or short
// sample leaves the table's decision standing.
func DecideCalibrated(in Input, sample []byte) Plan {
	p := Decide(in)
	if p.Sequential || len(sample) < minProbeBytes {
		return p
	}
	ratio := Calibrate(sample, p)
	if ratio < CalibrateMargin {
		return p.sequentialFallback(fmt.Sprintf(
			"probe: parallel parse %.2fx sequential (< %.2fx needed)", ratio, CalibrateMargin))
	}
	p.Reason += fmt.Sprintf("; probe %.2fx", ratio)
	return p
}

// Calibrate times the sequential scanner against p's chunk-parallel reader
// on sample and returns the parallel:sequential throughput ratio (> 1 means
// parallel is faster). Chunks are shrunk so the sample exercises every
// worker; each path takes the best of a few runs to damp scheduler noise.
func Calibrate(sample []byte, p Plan) float64 {
	chunk := len(sample) / (4 * p.Workers)
	if chunk < 8<<10 {
		chunk = 8 << 10
	}
	drop := func(clf.Record) {}
	seq := bestOf(probeRuns, func() {
		clf.Stream(bytes.NewReader(sample), drop)
	})
	par := bestOf(probeRuns, func() {
		clf.StreamParallelOffsetsChunked(bytes.NewReader(sample), p.Workers, p.StreamDepth, chunk, drop, nil)
	})
	if par <= 0 {
		return 1
	}
	return float64(seq) / float64(par)
}

// Sample reads the calibration sample from the start of a regular file
// without moving its read offset (ReadAt); nil for anything non-seekable
// (probing a pipe could stall behind a slow producer).
func Sample(f *os.File) []byte {
	if f == nil {
		return nil
	}
	if fi, err := f.Stat(); err != nil || !fi.Mode().IsRegular() {
		return nil
	}
	buf := make([]byte, MaxProbeBytes)
	n, _ := f.ReadAt(buf, 0)
	if n <= 0 {
		return nil
	}
	return buf[:n]
}

// SamplePath is Sample for a file that is not open yet, decoding gzip so
// the probe times parsing actual log lines, not compressed garbage.
func SamplePath(path string) []byte {
	return SamplePaths([]string{path})
}

// SamplePaths reads the calibration sample from the first file of a
// resolved input set, gzip-decoded when needed.
func SamplePaths(paths []string) []byte {
	if len(paths) == 0 {
		return nil
	}
	rc, err := clf.OpenDecoded(paths[0])
	if err != nil {
		return nil
	}
	defer rc.Close()
	buf := make([]byte, MaxProbeBytes)
	n, _ := io.ReadFull(rc, buf)
	if n <= 0 {
		return nil
	}
	return buf[:n]
}

func bestOf(runs int, op func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		op()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
