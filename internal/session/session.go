// Package session defines the data model shared by the session
// reconstruction heuristics, the agent simulator, and the evaluation
// harness: per-user request streams, sessions, the paper's two session
// validity rules (timestamp ordering and topology), and the
// contiguous-subsequence capture relation used by the accuracy metric.
package session

import (
	"fmt"
	"strings"
	"time"

	"smartsra/internal/webgraph"
)

// DefaultTotalDuration is the paper's session-duration upper bound
// δ = 30 minutes (after Catledge & Pitkow).
const DefaultTotalDuration = 30 * time.Minute

// DefaultPageStay is the paper's page-stay upper bound ρ = 10 minutes.
const DefaultPageStay = 10 * time.Minute

// Entry is one page request: which page, and when.
type Entry struct {
	Page webgraph.PageID
	Time time.Time
}

// Stream is the timestamp-ordered request sequence of a single user, as
// observed by the web server (the paper's UserRequestSequence). It is the
// input to every reconstruction heuristic.
type Stream struct {
	// User identifies the client (typically the IP address).
	User string
	// Entries are the user's requests in non-decreasing timestamp order.
	Entries []Entry
}

// Session is a reconstructed or ground-truth user session: an ordered list
// of page views attributed to one user visit.
type Session struct {
	// User identifies the client the session belongs to.
	User string
	// Entries are the session's page views in order.
	Entries []Entry
}

// Pages returns just the page IDs of the session, in order.
func (s Session) Pages() []webgraph.PageID {
	out := make([]webgraph.PageID, len(s.Entries))
	for i, e := range s.Entries {
		out[i] = e.Page
	}
	return out
}

// Len returns the number of page views in the session.
func (s Session) Len() int { return len(s.Entries) }

// Duration returns the elapsed time from the first to the last page view,
// or zero for sessions with fewer than two entries.
func (s Session) Duration() time.Duration {
	if len(s.Entries) < 2 {
		return 0
	}
	return s.Entries[len(s.Entries)-1].Time.Sub(s.Entries[0].Time)
}

// String renders the session compactly, e.g. "u7:[3 14 15]".
func (s Session) String() string {
	var sb strings.Builder
	sb.WriteString(s.User)
	sb.WriteString(":[")
	for i, e := range s.Entries {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", e.Page)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Clone returns a deep copy of the session.
func (s Session) Clone() Session {
	return Session{User: s.User, Entries: append([]Entry(nil), s.Entries...)}
}

// Rules bundles the paper's two time thresholds.
type Rules struct {
	// TotalDuration is δ: max elapsed time from a session's first to last
	// page (30 minutes in the paper).
	TotalDuration time.Duration
	// PageStay is ρ: max elapsed time between consecutive pages (10 minutes
	// in the paper).
	PageStay time.Duration
}

// DefaultRules returns the paper's thresholds (δ = 30 min, ρ = 10 min).
func DefaultRules() Rules {
	return Rules{TotalDuration: DefaultTotalDuration, PageStay: DefaultPageStay}
}

// Validate checks the thresholds are positive and consistent.
func (r Rules) Validate() error {
	if r.TotalDuration <= 0 {
		return fmt.Errorf("session: total-duration threshold %v not positive", r.TotalDuration)
	}
	if r.PageStay <= 0 {
		return fmt.Errorf("session: page-stay threshold %v not positive", r.PageStay)
	}
	if r.PageStay > r.TotalDuration {
		return fmt.Errorf("session: page-stay %v exceeds total duration %v", r.PageStay, r.TotalDuration)
	}
	return nil
}

// SatisfiesTimestampOrdering reports whether the session obeys the paper's
// Timestamp Ordering Rule: strictly increasing request times, with every
// consecutive gap at most r.PageStay.
func (s Session) SatisfiesTimestampOrdering(r Rules) bool {
	for i := 1; i < len(s.Entries); i++ {
		prev, cur := s.Entries[i-1], s.Entries[i]
		if !prev.Time.Before(cur.Time) {
			return false
		}
		if cur.Time.Sub(prev.Time) > r.PageStay {
			return false
		}
	}
	return true
}

// SatisfiesTopology reports whether the session obeys the paper's Topology
// Rule: a hyperlink exists from each page to the next.
func (s Session) SatisfiesTopology(g *webgraph.Graph) bool {
	for i := 1; i < len(s.Entries); i++ {
		if !g.HasEdge(s.Entries[i-1].Page, s.Entries[i].Page) {
			return false
		}
	}
	return true
}

// WithinTotalDuration reports whether the whole session fits in
// r.TotalDuration.
func (s Session) WithinTotalDuration(r Rules) bool {
	return s.Duration() <= r.TotalDuration
}

// Valid reports whether the session satisfies all three constraints a
// Smart-SRA session guarantees: timestamp ordering with the page-stay bound,
// the topology rule, and the total-duration bound.
func (s Session) Valid(g *webgraph.Graph, r Rules) bool {
	return s.SatisfiesTimestampOrdering(r) &&
		s.SatisfiesTopology(g) &&
		s.WithinTotalDuration(r)
}
