package session

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	s, err := ParseLine("10.0.0.7:[3 14 15]")
	if err != nil {
		t.Fatal(err)
	}
	if s.User != "10.0.0.7" || s.Len() != 3 {
		t.Fatalf("parsed %v", s)
	}
	if got := s.Pages(); got[0] != 3 || got[1] != 14 || got[2] != 15 {
		t.Errorf("pages = %v", got)
	}
	for i := 1; i < len(s.Entries); i++ {
		if !s.Entries[i-1].Time.Before(s.Entries[i].Time) {
			t.Error("synthetic timestamps not strictly increasing")
		}
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	empty, err := ParseLine("u:[]")
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty session: %v, %v", empty, err)
	}
	colons, err := ParseLine("host:8080|alice:[1 2]")
	if err != nil || colons.User != "host:8080|alice" {
		t.Errorf("colon user: %v, %v", colons, err)
	}
	bad := []string{
		"",
		"noBrackets",
		"[1 2]",          // no user
		"u[1 2]",         // missing colon
		"u:[1 2",         // unterminated
		"u:[1 x]",        // bad page
		"u:[-4]",         // negative page
		"u:[1 2] excess", // trailing junk
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestReadWriteAllRoundTrip(t *testing.T) {
	in := []Session{
		mk("alice", 1, 0, 2, 1, 3, 2),
		mk("bob", 7, 0),
		mk("carol"),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d -> %d sessions", len(in), len(out))
	}
	for i := range in {
		if out[i].User != in[i].User || out[i].Len() != in[i].Len() {
			t.Errorf("session %d changed: %v vs %v", i, out[i], in[i])
		}
		for j, p := range in[i].Pages() {
			if out[i].Pages()[j] != p {
				t.Errorf("session %d page %d changed", i, j)
			}
		}
	}
}

func TestReadAllSkipsCommentsAndBlanks(t *testing.T) {
	input := "# ground truth\n\nu:[1 2]\n   \n# tail\nv:[3]\n"
	out, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].User != "u" || out[1].User != "v" {
		t.Errorf("parsed %v", out)
	}
}

func TestReadAllReportsLineNumbers(t *testing.T) {
	_, err := ReadAll(strings.NewReader("u:[1]\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v", err)
	}
}
