package session

import "testing"

// FuzzParseLine checks the session text parser never panics and that
// accepted lines round-trip through Session.String.
func FuzzParseLine(f *testing.F) {
	f.Add("10.0.0.7:[3 14 15]")
	f.Add("u:[]")
	f.Add("a:b:[1]")
	f.Add("")
	f.Add("u:[1 -2]")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseLine(line)
		if err != nil {
			return
		}
		again, err := ParseLine(s.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected rendering %q: %v", line, s.String(), err)
		}
		if again.String() != s.String() {
			t.Fatalf("rendering not a fixed point: %q vs %q", again.String(), s.String())
		}
	})
}
