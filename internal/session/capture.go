package session

import "smartsra/internal/webgraph"

// Captures reports whether reconstructed session h captures real session r
// in the paper's sense (§5.1): r's page sequence occurs as a CONTIGUOUS
// subsequence of h's page sequence, preserving order with no interruptions.
// The paper's example makes contiguity explicit: R=[P1,P3,P5] is captured by
// H=[P9,P1,P3,P5,P8] but NOT by H=[P1,P9,P3,P5,P8], "because P9 interrupts
// R in H".
//
// Empty real sessions are vacuously captured.
func Captures(h, r Session) bool {
	return indexOf(h.Pages(), r.Pages()) >= 0
}

// CapturedByAny reports whether any of the candidate sessions captures r.
func CapturedByAny(candidates []Session, r Session) bool {
	for _, h := range candidates {
		if Captures(h, r) {
			return true
		}
	}
	return false
}

// indexOf returns the first index at which needle occurs contiguously in
// haystack, or -1. This is the "ordinary string searching algorithm" the
// paper adopts; page sequences are short, so the naive O(n·m) scan is the
// right tool (and is what the paper describes).
func indexOf(haystack, needle []webgraph.PageID) int {
	if len(needle) == 0 {
		return 0
	}
	if len(needle) > len(haystack) {
		return -1
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, p := range needle {
			if haystack[i+j] != p {
				continue outer
			}
		}
		return i
	}
	return -1
}

// IsSubsequence reports whether needle occurs in haystack as a (not
// necessarily contiguous) order-preserving subsequence. This is NOT the
// paper's capture relation — it is provided for analyses that want the
// looser notion (e.g. pattern mining support counting).
func IsSubsequence(haystack, needle []webgraph.PageID) bool {
	j := 0
	for _, p := range haystack {
		if j == len(needle) {
			return true
		}
		if p == needle[j] {
			j++
		}
	}
	return j == len(needle)
}

// Subsumes reports whether session a subsumes session b: b's pages occur
// contiguously within a's. Smart-SRA guarantees its output sessions are
// maximal, i.e. no output session subsumes another (unless equal).
func Subsumes(a, b Session) bool {
	return len(a.Entries) >= len(b.Entries) && indexOf(a.Pages(), b.Pages()) >= 0
}

// MaximalOnly filters out sessions strictly subsumed by another session in
// the set, preserving the original order of the survivors. Exact duplicates
// keep their first occurrence.
func MaximalOnly(sessions []Session) []Session {
	out := make([]Session, 0, len(sessions))
	for i, s := range sessions {
		subsumed := false
		for j, t := range sessions {
			if i == j {
				continue
			}
			if len(t.Entries) > len(s.Entries) && Subsumes(t, s) {
				subsumed = true
				break
			}
			// Equal-length subsumption means equality: drop later duplicates.
			if j < i && len(t.Entries) == len(s.Entries) && Subsumes(t, s) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	return out
}
