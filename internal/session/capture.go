package session

import (
	"sort"

	"smartsra/internal/webgraph"
)

// Captures reports whether reconstructed session h captures real session r
// in the paper's sense (§5.1): r's page sequence occurs as a CONTIGUOUS
// subsequence of h's page sequence, preserving order with no interruptions.
// The paper's example makes contiguity explicit: R=[P1,P3,P5] is captured by
// H=[P9,P1,P3,P5,P8] but NOT by H=[P1,P9,P3,P5,P8], "because P9 interrupts
// R in H".
//
// Empty real sessions are vacuously captured.
//
// Captures materializes both page sequences on every call; hot paths that
// probe many pairs (eval.ScoreMatched, MaximalOnly) precompute Pages once
// per session and use ContainsPages instead.
func Captures(h, r Session) bool {
	return indexOf(h.Pages(), r.Pages()) >= 0
}

// ContainsPages reports whether needle occurs as a contiguous subsequence of
// haystack — the capture relation over pre-extracted page sequences. It is
// the allocation-free core of Captures for callers that reuse page slices
// across many probes.
func ContainsPages(haystack, needle []webgraph.PageID) bool {
	return indexOf(haystack, needle) >= 0
}

// CapturedByAny reports whether any of the candidate sessions captures r.
func CapturedByAny(candidates []Session, r Session) bool {
	for _, h := range candidates {
		if Captures(h, r) {
			return true
		}
	}
	return false
}

// indexOf returns the first index at which needle occurs contiguously in
// haystack, or -1. This is the "ordinary string searching algorithm" the
// paper adopts; page sequences are short, so the naive O(n·m) scan is the
// right tool (and is what the paper describes).
func indexOf(haystack, needle []webgraph.PageID) int {
	if len(needle) == 0 {
		return 0
	}
	if len(needle) > len(haystack) {
		return -1
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, p := range needle {
			if haystack[i+j] != p {
				continue outer
			}
		}
		return i
	}
	return -1
}

// IsSubsequence reports whether needle occurs in haystack as a (not
// necessarily contiguous) order-preserving subsequence. This is NOT the
// paper's capture relation — it is provided for analyses that want the
// looser notion (e.g. pattern mining support counting).
func IsSubsequence(haystack, needle []webgraph.PageID) bool {
	j := 0
	for _, p := range haystack {
		if j == len(needle) {
			return true
		}
		if p == needle[j] {
			j++
		}
	}
	return j == len(needle)
}

// Subsumes reports whether session a subsumes session b: b's pages occur
// contiguously within a's. Smart-SRA guarantees its output sessions are
// maximal, i.e. no output session subsumes another (unless equal).
func Subsumes(a, b Session) bool {
	return len(a.Entries) >= len(b.Entries) && indexOf(a.Pages(), b.Pages()) >= 0
}

// MaximalOnly filters out sessions strictly subsumed by another session in
// the set, preserving the original order of the survivors. Exact duplicates
// keep their first occurrence.
//
// Only a longer-or-equal session can subsume, so candidates are visited in
// descending length order and each probe stops at the first shorter bucket;
// page sequences are extracted once per session, not once per pair, so the
// pass allocates O(n) regardless of how many pairs it probes.
func MaximalOnly(sessions []Session) []Session {
	out := make([]Session, 0, len(sessions))
	if len(sessions) <= 1 {
		return append(out, sessions...)
	}
	pages := make([][]webgraph.PageID, len(sessions))
	for i, s := range sessions {
		pages[i] = s.Pages()
	}
	// byLen lists session indices sorted by length descending; the stable
	// sort keeps original order inside one length bucket, which the
	// duplicate rule (j < i) relies on.
	byLen := make([]int, len(sessions))
	for i := range byLen {
		byLen[i] = i
	}
	sort.SliceStable(byLen, func(a, b int) bool {
		return len(pages[byLen[a]]) > len(pages[byLen[b]])
	})
	for i, s := range sessions {
		n := len(pages[i])
		subsumed := false
		for _, j := range byLen {
			if len(pages[j]) < n {
				break // shorter sessions cannot subsume
			}
			if j == i {
				continue
			}
			if len(pages[j]) > n {
				if indexOf(pages[j], pages[i]) >= 0 {
					subsumed = true
					break
				}
				continue
			}
			// Equal-length subsumption means equality: drop later duplicates.
			if j < i && indexOf(pages[j], pages[i]) >= 0 {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	return out
}
