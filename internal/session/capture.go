package session

import (
	"smartsra/internal/webgraph"
)

// Captures reports whether reconstructed session h captures real session r
// in the paper's sense (§5.1): r's page sequence occurs as a CONTIGUOUS
// subsequence of h's page sequence, preserving order with no interruptions.
// The paper's example makes contiguity explicit: R=[P1,P3,P5] is captured by
// H=[P9,P1,P3,P5,P8] but NOT by H=[P1,P9,P3,P5,P8], "because P9 interrupts
// R in H".
//
// Empty real sessions are vacuously captured.
//
// Captures materializes both page sequences on every call; hot paths that
// probe many pairs (eval.ScoreMatched, MaximalOnly) precompute Pages once
// per session and use ContainsPages instead.
func Captures(h, r Session) bool {
	return indexOf(h.Pages(), r.Pages()) >= 0
}

// ContainsPages reports whether needle occurs as a contiguous subsequence of
// haystack — the capture relation over pre-extracted page sequences. It is
// the allocation-free core of Captures for callers that reuse page slices
// across many probes.
func ContainsPages(haystack, needle []webgraph.PageID) bool {
	return indexOf(haystack, needle) >= 0
}

// CapturedByAny reports whether any of the candidate sessions captures r.
func CapturedByAny(candidates []Session, r Session) bool {
	for _, h := range candidates {
		if Captures(h, r) {
			return true
		}
	}
	return false
}

// indexOf returns the first index at which needle occurs contiguously in
// haystack, or -1. This is the "ordinary string searching algorithm" the
// paper adopts; page sequences are short, so the naive O(n·m) scan is the
// right tool (and is what the paper describes).
func indexOf(haystack, needle []webgraph.PageID) int {
	if len(needle) == 0 {
		return 0
	}
	if len(needle) > len(haystack) {
		return -1
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, p := range needle {
			if haystack[i+j] != p {
				continue outer
			}
		}
		return i
	}
	return -1
}

// IsSubsequence reports whether needle occurs in haystack as a (not
// necessarily contiguous) order-preserving subsequence. This is NOT the
// paper's capture relation — it is provided for analyses that want the
// looser notion (e.g. pattern mining support counting).
func IsSubsequence(haystack, needle []webgraph.PageID) bool {
	j := 0
	for _, p := range haystack {
		if j == len(needle) {
			return true
		}
		if p == needle[j] {
			j++
		}
	}
	return j == len(needle)
}

// Subsumes reports whether session a subsumes session b: b's pages occur
// contiguously within a's. Smart-SRA guarantees its output sessions are
// maximal, i.e. no output session subsumes another (unless equal).
func Subsumes(a, b Session) bool {
	return len(a.Entries) >= len(b.Entries) && entryIndexOf(a.Entries, b.Entries) >= 0
}

// entryIndexOf is indexOf over entry slices, comparing pages in place so
// callers need not materialize page sequences. The first-page probe skips
// the inner loop for the overwhelmingly common mismatch case.
func entryIndexOf(haystack, needle []Entry) int {
	if len(needle) == 0 {
		return 0
	}
	if len(needle) > len(haystack) {
		return -1
	}
	first := needle[0].Page
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i].Page != first {
			continue
		}
		for j := 1; j < len(needle); j++ {
			if haystack[i+j].Page != needle[j].Page {
				continue outer
			}
		}
		return i
	}
	return -1
}

// MaximalOnly filters out sessions strictly subsumed by another session in
// the set, preserving the original order of the survivors. Exact duplicates
// keep their first occurrence.
//
// This runs once per wave set inside the sessionizer hot path, where the
// candidate sets are almost always tiny (one to a handful of sessions), so
// the pass is tuned for small n rather than asymptotics: pages are compared
// in place on the entry slices (no per-session page extraction), the O(1)
// length guard prunes pairs before any sequence scan, and the output slice
// is only allocated once the first subsumed session is found — the common
// all-maximal case returns the input untouched.
func MaximalOnly(sessions []Session) []Session {
	if len(sessions) <= 1 {
		return sessions
	}
	var out []Session
	for i, s := range sessions {
		n := len(s.Entries)
		subsumed := false
		for j := range sessions {
			m := len(sessions[j].Entries)
			if j == i || m < n {
				continue
			}
			// Equal-length subsumption means equality: drop later duplicates.
			if m == n && j > i {
				continue
			}
			if entryIndexOf(sessions[j].Entries, s.Entries) >= 0 {
				subsumed = true
				break
			}
		}
		if subsumed {
			if out == nil {
				out = append(make([]Session, 0, len(sessions)-1), sessions[:i]...)
			}
		} else if out != nil {
			out = append(out, s)
		}
	}
	if out == nil {
		return sessions
	}
	return out
}
