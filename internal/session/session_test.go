package session

import (
	"strings"
	"testing"
	"time"

	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

// mk builds a session from (page, minute-offset) pairs.
func mk(user string, pairs ...int) Session {
	if len(pairs)%2 != 0 {
		panic("mk needs page,minute pairs")
	}
	s := Session{User: user}
	for i := 0; i < len(pairs); i += 2 {
		s.Entries = append(s.Entries, Entry{
			Page: webgraph.PageID(pairs[i]),
			Time: t0.Add(time.Duration(pairs[i+1]) * time.Minute),
		})
	}
	return s
}

func TestSessionBasics(t *testing.T) {
	s := mk("u1", 3, 0, 14, 2, 15, 5)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Pages(); len(got) != 3 || got[0] != 3 || got[2] != 15 {
		t.Errorf("Pages = %v", got)
	}
	if got := s.Duration(); got != 5*time.Minute {
		t.Errorf("Duration = %v", got)
	}
	if got := mk("u1").Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
	if got := mk("u1", 7, 0).Duration(); got != 0 {
		t.Errorf("singleton Duration = %v", got)
	}
	if got := s.String(); got != "u1:[3 14 15]" {
		t.Errorf("String = %q", got)
	}
}

func TestClone(t *testing.T) {
	s := mk("u1", 1, 0, 2, 1)
	c := s.Clone()
	c.Entries[0].Page = 99
	if s.Entries[0].Page != 1 {
		t.Error("Clone shares entry storage")
	}
}

func TestRulesValidate(t *testing.T) {
	if err := DefaultRules().Validate(); err != nil {
		t.Fatalf("default rules invalid: %v", err)
	}
	bad := []Rules{
		{TotalDuration: 0, PageStay: time.Minute},
		{TotalDuration: time.Hour, PageStay: 0},
		{TotalDuration: time.Minute, PageStay: time.Hour},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid rules accepted: %+v", i, r)
		}
	}
	if DefaultRules().TotalDuration != 30*time.Minute || DefaultRules().PageStay != 10*time.Minute {
		t.Error("default thresholds are not the paper's 30/10 minutes")
	}
}

func TestSatisfiesTimestampOrdering(t *testing.T) {
	r := DefaultRules()
	cases := []struct {
		name string
		s    Session
		want bool
	}{
		{"empty", mk("u"), true},
		{"singleton", mk("u", 1, 0), true},
		{"increasing small gaps", mk("u", 1, 0, 2, 3, 3, 9), true},
		{"gap exactly 10min", mk("u", 1, 0, 2, 10), true},
		{"gap above 10min", mk("u", 1, 0, 2, 11), false},
		{"equal timestamps", mk("u", 1, 5, 2, 5), false},
		{"decreasing", mk("u", 1, 5, 2, 3), false},
	}
	for _, c := range cases {
		if got := c.s.SatisfiesTimestampOrdering(r); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSatisfiesTopologyAndValid(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	r := DefaultRules()
	linked := Session{User: "u", Entries: []Entry{
		{ids["P1"], t0}, {ids["P13"], t0.Add(2 * time.Minute)}, {ids["P34"], t0.Add(4 * time.Minute)},
	}}
	if !linked.SatisfiesTopology(g) {
		t.Error("linked session fails topology")
	}
	if !linked.Valid(g, r) {
		t.Error("linked session not Valid")
	}
	broken := Session{User: "u", Entries: []Entry{
		{ids["P20"], t0}, {ids["P13"], t0.Add(time.Minute)},
	}}
	if broken.SatisfiesTopology(g) {
		t.Error("P20->P13 is not an edge but topology rule passed")
	}
	if broken.Valid(g, r) {
		t.Error("broken session reported Valid")
	}
	// Valid also enforces total duration: stretch a linked session past 30m.
	long := Session{User: "u", Entries: []Entry{
		{ids["P1"], t0},
		{ids["P13"], t0.Add(10 * time.Minute)},
		{ids["P49"], t0.Add(20 * time.Minute)},
		{ids["P23"], t0.Add(30*time.Minute + time.Second)},
	}}
	if !long.SatisfiesTopology(g) {
		t.Fatal("test topology wrong")
	}
	if long.WithinTotalDuration(r) {
		t.Error("31-minute session within 30-minute bound")
	}
	if long.Valid(g, r) {
		t.Error("over-long session reported Valid")
	}
}

func TestCapturesPaperExamples(t *testing.T) {
	// The paper's §5.1 examples, verbatim.
	r := mk("u", 1, 0, 3, 1, 5, 2)
	h1 := mk("u", 9, 0, 1, 1, 3, 2, 5, 3, 8, 4)
	h2 := mk("u", 1, 0, 9, 1, 3, 2, 5, 3, 8, 4)
	if !Captures(h1, r) {
		t.Error("R ⊏ [P9,P1,P3,P5,P8] should hold")
	}
	if Captures(h2, r) {
		t.Error("R ⊏ [P1,P9,P3,P5,P8] should NOT hold (P9 interrupts)")
	}
}

func TestCapturesEdgeCases(t *testing.T) {
	empty := mk("u")
	if !Captures(mk("u", 1, 0), empty) {
		t.Error("empty real session should be vacuously captured")
	}
	if Captures(empty, mk("u", 1, 0)) {
		t.Error("empty candidate captured a non-empty session")
	}
	same := mk("u", 4, 0, 5, 1)
	if !Captures(same, same) {
		t.Error("session does not capture itself")
	}
	if Captures(mk("u", 4, 0), mk("u", 4, 0, 5, 1)) {
		t.Error("shorter candidate captured longer real session")
	}
	// Timestamps are irrelevant to capture; only page order matters.
	shifted := mk("u", 4, 100, 5, 200)
	if !Captures(shifted, same) {
		t.Error("capture should ignore timestamps")
	}
}

func TestCapturedByAny(t *testing.T) {
	r := mk("u", 2, 0, 3, 1)
	cands := []Session{mk("u", 9, 0), mk("u", 1, 0, 2, 1, 3, 2)}
	if !CapturedByAny(cands, r) {
		t.Error("not captured by matching candidate")
	}
	if CapturedByAny(cands[:1], r) {
		t.Error("captured by non-matching candidate")
	}
	if CapturedByAny(nil, r) {
		t.Error("captured by empty candidate set")
	}
}

func TestIsSubsequence(t *testing.T) {
	hay := []webgraph.PageID{1, 9, 3, 5, 8}
	if !IsSubsequence(hay, []webgraph.PageID{1, 3, 5}) {
		t.Error("gapped subsequence not found")
	}
	if IsSubsequence(hay, []webgraph.PageID{3, 1}) {
		t.Error("order-violating subsequence found")
	}
	if !IsSubsequence(hay, nil) {
		t.Error("empty subsequence not found")
	}
	if IsSubsequence(nil, []webgraph.PageID{1}) {
		t.Error("subsequence found in empty haystack")
	}
	if !IsSubsequence(hay, hay) {
		t.Error("sequence not a subsequence of itself")
	}
}

func TestSubsumesAndMaximalOnly(t *testing.T) {
	a := mk("u", 1, 0, 2, 1, 3, 2)
	b := mk("u", 2, 0, 3, 1)
	c := mk("u", 9, 0)
	if !Subsumes(a, b) || Subsumes(b, a) {
		t.Error("Subsumes wrong on nested pair")
	}
	if Subsumes(a, c) {
		t.Error("Subsumes wrong on unrelated pair")
	}
	got := MaximalOnly([]Session{b, a, c, b})
	if len(got) != 2 {
		t.Fatalf("MaximalOnly kept %d sessions (%v), want 2", len(got), got)
	}
	if got[0].String() != a.String() || got[1].String() != c.String() {
		t.Errorf("MaximalOnly kept %v", got)
	}
	dup := MaximalOnly([]Session{c, c})
	if len(dup) != 1 {
		t.Errorf("duplicate sessions not deduplicated: %v", dup)
	}
	if got := MaximalOnly(nil); len(got) != 0 {
		t.Errorf("MaximalOnly(nil) = %v", got)
	}
}

func TestStringHasUserPrefix(t *testing.T) {
	s := mk("client-42", 5, 0)
	if !strings.HasPrefix(s.String(), "client-42:") {
		t.Errorf("String = %q", s.String())
	}
}
