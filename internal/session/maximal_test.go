package session

import (
	"math/rand"
	"reflect"
	"testing"

	"smartsra/internal/webgraph"
)

// naiveMaximalOnly is the original quadratic all-pairs filter, kept as the
// semantic reference for the length-bucketed MaximalOnly: drop session i when
// some other session j subsumes it strictly (longer), or equals it with j < i
// (duplicates keep their first occurrence).
func naiveMaximalOnly(sessions []Session) []Session {
	out := make([]Session, 0, len(sessions))
	for i, s := range sessions {
		subsumed := false
		for j, other := range sessions {
			if i == j {
				continue
			}
			if !Subsumes(other, s) {
				continue
			}
			if other.Len() > s.Len() || j < i {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, s)
		}
	}
	return out
}

// randomSessions draws sessions over a tiny page alphabet so subsumption,
// duplication, and equal-length collisions all occur frequently.
func randomSessions(rng *rand.Rand, n int) []Session {
	sessions := make([]Session, n)
	for i := range sessions {
		length := 1 + rng.Intn(6)
		s := Session{User: "u"}
		for k := 0; k < length; k++ {
			s.Entries = append(s.Entries, Entry{Page: webgraph.PageID(rng.Intn(4))})
		}
		sessions[i] = s
	}
	return sessions
}

// The optimization contract: the length-bucketed pass is observationally
// identical to the naive O(n²) filter on arbitrary session sets.
func TestMaximalOnlyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2006))
	for trial := 0; trial < 300; trial++ {
		sessions := randomSessions(rng, rng.Intn(25))
		got := MaximalOnly(sessions)
		want := naiveMaximalOnly(sessions)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MaximalOnly(%v)\n got %v\nwant %v", trial, sessions, got, want)
		}
	}
}

func TestMaximalOnlyEdgeCases(t *testing.T) {
	if got := MaximalOnly(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	one := []Session{mk("u", 1, 0)}
	if got := MaximalOnly(one); !reflect.DeepEqual(got, one) {
		t.Errorf("singleton: %v", got)
	}
	// Exact duplicates: first occurrence survives.
	dup := []Session{mk("u", 1, 0, 2, 1), mk("u", 1, 5, 2, 6)}
	got := MaximalOnly(dup)
	if len(got) != 1 || !reflect.DeepEqual(got[0], dup[0]) {
		t.Errorf("duplicates: %v", got)
	}
	// A strictly subsuming session wins regardless of position.
	sub := []Session{mk("u", 2, 0), mk("u", 1, 1, 2, 2, 3, 3)}
	got = MaximalOnly(sub)
	if len(got) != 1 || !reflect.DeepEqual(got[0], sub[1]) {
		t.Errorf("subsumption: %v", got)
	}
	// Survivors preserve input order even though probing is length-ordered.
	mixed := []Session{mk("u", 1, 0), mk("u", 5, 1, 6, 2), mk("u", 3, 3)}
	got = MaximalOnly(mixed)
	want := []Session{mixed[0], mixed[1], mixed[2]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order: %v", got)
	}
}

func TestContainsPages(t *testing.T) {
	hay := []webgraph.PageID{1, 9, 3, 5, 8}
	if !ContainsPages(hay, []webgraph.PageID{9, 3, 5}) {
		t.Error("contiguous run not found")
	}
	if ContainsPages(hay, []webgraph.PageID{1, 3, 5}) {
		t.Error("interrupted subsequence reported contiguous")
	}
	if !ContainsPages(hay, nil) {
		t.Error("empty needle must be vacuously contained")
	}
	if ContainsPages(nil, []webgraph.PageID{1}) {
		t.Error("nonempty needle found in empty haystack")
	}
}
