package session

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"smartsra/internal/webgraph"
)

// This file implements the line-oriented text format cmd/simgen and
// cmd/sessionize emit and cmd/score consumes:
//
//	<user>:[<page> <page> ...]
//
// e.g. "10.0.0.7:[3 14 15]". It is the Session.String format. Timestamps
// are not part of the format: the §5.1 accuracy comparison is purely over
// page sequences, and files stay diffable. Parsed sessions carry synthetic
// strictly-increasing timestamps so they remain usable with code that
// expects ordered entries.

// ParseLine parses one session line. The last ':' before the bracket
// separates user from pages, so user names may themselves contain colons.
func ParseLine(line string) (Session, error) {
	trimmed := strings.TrimSpace(line)
	open := strings.IndexByte(trimmed, '[')
	if open < 1 || !strings.HasSuffix(trimmed, "]") {
		return Session{}, fmt.Errorf("session: malformed line %q (want user:[p1 p2 ...])", line)
	}
	if trimmed[open-1] != ':' {
		return Session{}, fmt.Errorf("session: missing ':' before '[' in %q", line)
	}
	s := Session{User: trimmed[:open-1]}
	body := trimmed[open+1 : len(trimmed)-1]
	if strings.TrimSpace(body) == "" {
		return s, nil
	}
	base := time.Unix(0, 0).UTC()
	for i, f := range strings.Fields(body) {
		id, err := strconv.Atoi(f)
		if err != nil || id < 0 {
			return Session{}, fmt.Errorf("session: bad page id %q in %q", f, line)
		}
		s.Entries = append(s.Entries, Entry{
			Page: webgraph.PageID(id),
			Time: base.Add(time.Duration(i) * time.Second),
		})
	}
	return s, nil
}

// ReadAll parses a session file (one session per line; blank lines and
// #-comments are skipped).
func ReadAll(r io.Reader) ([]Session, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var out []Session
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("session: read: %w", err)
	}
	return out, nil
}

// WriteAll writes sessions in the text format, one per line.
func WriteAll(w io.Writer, sessions []Session) error {
	bw := bufio.NewWriter(w)
	for _, s := range sessions {
		if _, err := bw.WriteString(s.String()); err != nil {
			return fmt.Errorf("session: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("session: write: %w", err)
		}
	}
	return bw.Flush()
}
