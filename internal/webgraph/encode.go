package webgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// graphJSON is the on-disk representation written by Encode. Edges are
// stored as per-source adjacency lists to keep files compact and diffable.
type graphJSON struct {
	Pages      int        `json:"pages"`
	Labels     []string   `json:"labels"`
	StartPages []PageID   `json:"start_pages"`
	Edges      [][]PageID `json:"edges"` // Edges[u] = sorted out-neighbors of u
}

// Encode writes the graph as JSON. The format round-trips exactly through
// Decode and is what cmd/simgen emits so that cmd/sessionize and
// cmd/evaluate can reuse a topology.
func (g *Graph) Encode(w io.Writer) error {
	j := graphJSON{
		Pages:      g.n,
		Labels:     g.labels,
		StartPages: g.starts,
		Edges:      g.succ,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(j); err != nil {
		return fmt.Errorf("webgraph: encode: %w", err)
	}
	return nil
}

// Decode reads a graph previously written by Encode, validating the payload
// (edge ranges, label count, start-page ranges) before constructing it.
func Decode(r io.Reader) (*Graph, error) {
	var j graphJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("webgraph: decode: %w", err)
	}
	if j.Pages < 0 {
		return nil, fmt.Errorf("webgraph: decode: negative page count %d", j.Pages)
	}
	if len(j.Labels) != 0 && len(j.Labels) != j.Pages {
		return nil, fmt.Errorf("webgraph: decode: %d labels for %d pages", len(j.Labels), j.Pages)
	}
	if len(j.Edges) > j.Pages {
		return nil, fmt.Errorf("webgraph: decode: adjacency for %d pages but only %d declared",
			len(j.Edges), j.Pages)
	}
	b := NewBuilder(j.Pages)
	for i, uri := range j.Labels {
		if err := b.SetLabel(PageID(i), uri); err != nil {
			return nil, err
		}
	}
	for u, out := range j.Edges {
		for _, v := range out {
			if err := b.AddEdge(PageID(u), v); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range j.StartPages {
		if err := b.MarkStartPage(s); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// WriteDOT renders the graph in Graphviz DOT syntax, with start pages drawn
// as double circles. Intended for small example graphs.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "webgraph"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n")
	for p := 0; p < g.n; p++ {
		shape := "circle"
		if g.IsStartPage(PageID(p)) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", p, g.labels[p], shape)
	}
	type edge struct{ u, v PageID }
	edges := make([]edge, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.succ[u] {
			edges = append(edges, edge{PageID(u), v})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.u, e.v)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
