package webgraph

// SCCs returns the strongly connected components of the graph (Tarjan's
// algorithm, iterative so deep sites cannot overflow the stack). Components
// come out in reverse topological order of the condensation; pages within a
// component are sorted ascending. Web-graph studies (the paper's refs
// [1,8,10]) characterize sites by their SCC structure — the "bow-tie" —
// and the generators here can be sanity-checked against that shape.
func (g *Graph) SCCs() [][]PageID {
	n := g.n
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []PageID
		comps   [][]PageID
		counter int32
	)

	// Iterative Tarjan: frame holds the vertex and its successor cursor.
	type frame struct {
		v    PageID
		next int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: PageID(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, PageID(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := g.succ[f.v]
			if f.next < len(succ) {
				w := succ[f.next]
				f.next++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors done: maybe pop a component, then return to
			// the parent frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []PageID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortPages(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LargestSCC returns the size of the largest strongly connected component
// (0 for an empty graph).
func (g *Graph) LargestSCC() int {
	best := 0
	for _, c := range g.SCCs() {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}
