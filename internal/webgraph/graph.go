// Package webgraph models a static web site as a directed graph whose nodes
// are web pages and whose edges are hyperlinks. The paper's reactive session
// reconstruction heuristics (navigation-oriented and Smart-SRA) consult this
// topology, and the agent simulator navigates it.
//
// Graphs are immutable once built (via Builder or one of the generators in
// generate.go), which makes them safe for concurrent readers: the simulator
// runs thousands of agents in parallel over a single Graph.
package webgraph

import (
	"fmt"
	"sort"
)

// PageID identifies a page (node) in a Graph. IDs are dense: a graph with N
// pages uses IDs 0..N-1.
type PageID int32

// InvalidPage is returned by lookups that fail to resolve a page.
const InvalidPage PageID = -1

// Graph is an immutable directed graph of web pages.
//
// The zero value is an empty graph with no pages; use a Builder or a
// generator to construct a useful one.
type Graph struct {
	n      int
	succ   [][]PageID // out-edges, sorted ascending
	pred   [][]PageID // in-edges, sorted ascending
	bits   []uint64   // row-major adjacency bitmap: bit (u*n + v) set iff u->v
	labels []string   // URI label per page, e.g. "/p/17.html"
	byURI  map[string]PageID
	starts []PageID // designated session entry pages, sorted
	edges  int
}

// NumPages returns the number of pages (nodes).
func (g *Graph) NumPages() int { return g.n }

// NumEdges returns the number of hyperlinks (directed edges).
func (g *Graph) NumEdges() int { return g.edges }

// Valid reports whether p is a page of this graph.
func (g *Graph) Valid(p PageID) bool { return p >= 0 && int(p) < g.n }

// HasEdge reports whether there is a hyperlink from page u to page v.
// It runs in O(1) using the adjacency bitmap.
func (g *Graph) HasEdge(u, v PageID) bool {
	if !g.Valid(u) || !g.Valid(v) {
		return false
	}
	idx := int(u)*g.n + int(v)
	return g.bits[idx>>6]&(1<<uint(idx&63)) != 0
}

// Succ returns the pages directly linked from p (p's out-neighbors), sorted
// ascending. The returned slice is shared; callers must not modify it.
func (g *Graph) Succ(p PageID) []PageID {
	if !g.Valid(p) {
		return nil
	}
	return g.succ[p]
}

// Pred returns the pages that link to p (p's in-neighbors), sorted ascending.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Pred(p PageID) []PageID {
	if !g.Valid(p) {
		return nil
	}
	return g.pred[p]
}

// OutDegree returns the number of hyperlinks leaving p.
func (g *Graph) OutDegree(p PageID) int { return len(g.Succ(p)) }

// InDegree returns the number of hyperlinks pointing at p.
func (g *Graph) InDegree(p PageID) int { return len(g.Pred(p)) }

// AvgOutDegree returns the mean out-degree across all pages, or 0 for an
// empty graph. Table 5 of the paper fixes this at 15 for the default
// topology.
func (g *Graph) AvgOutDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.edges) / float64(g.n)
}

// Label returns the URI label of page p, or "" if p is invalid.
func (g *Graph) Label(p PageID) string {
	if !g.Valid(p) {
		return ""
	}
	return g.labels[p]
}

// PageByURI resolves a URI label to its page, returning InvalidPage and
// false when the URI names no page of this graph.
func (g *Graph) PageByURI(uri string) (PageID, bool) {
	p, ok := g.byURI[uri]
	if !ok {
		return InvalidPage, false
	}
	return p, true
}

// StartPages returns the designated session entry pages (the paper's "index
// pages"), sorted ascending. The returned slice is shared; callers must not
// modify it.
func (g *Graph) StartPages() []PageID { return g.starts }

// IsStartPage reports whether p is a designated entry page.
func (g *Graph) IsStartPage(p PageID) bool {
	i := sort.Search(len(g.starts), func(i int) bool { return g.starts[i] >= p })
	return i < len(g.starts) && g.starts[i] == p
}

// Pages returns all page IDs in ascending order, in a fresh slice.
func (g *Graph) Pages() []PageID {
	out := make([]PageID, g.n)
	for i := range out {
		out[i] = PageID(i)
	}
	return out
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("webgraph.Graph{pages: %d, edges: %d, start pages: %d}",
		g.n, g.edges, len(g.starts))
}

// AdjacencyMatrix materializes the Link matrix used by the paper's
// pseudocode: m[u][v] is true iff there is a hyperlink u->v. It allocates
// O(N²) booleans, so it is intended for small graphs (examples, tests); the
// heuristics themselves use HasEdge on the shared bitmap instead.
func (g *Graph) AdjacencyMatrix() [][]bool {
	m := make([][]bool, g.n)
	cells := make([]bool, g.n*g.n)
	for u := 0; u < g.n; u++ {
		m[u], cells = cells[:g.n], cells[g.n:]
		for _, v := range g.succ[u] {
			m[u][v] = true
		}
	}
	return m
}
