package webgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumPages() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d pages, %d edges", g.NumPages(), g.NumEdges())
	}
	if g.AvgOutDegree() != 0 {
		t.Fatalf("empty graph avg out-degree = %v, want 0", g.AvgOutDegree())
	}
	if g.HasEdge(0, 0) {
		t.Fatal("empty graph claims an edge")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		u, v PageID
		name string
	}{
		{0, 0, "self-link"},
		{-1, 1, "negative source"},
		{0, 3, "target out of range"},
		{3, 0, "source out of range"},
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v); err == nil {
			t.Errorf("%s: AddEdge(%d,%d) accepted", c.name, c.u, c.v)
		}
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestBuilderRejectsBadLabelsAndStarts(t *testing.T) {
	b := NewBuilder(2)
	if err := b.SetLabel(5, "/x"); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := b.SetLabel(0, ""); err == nil {
		t.Error("empty label accepted")
	}
	if err := b.MarkStartPage(7); err == nil {
		t.Error("out-of-range start page accepted")
	}
	if err := b.SetLabel(0, "/same"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetLabel(1, "/same"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("duplicate labels not rejected at Build")
	}
}

func TestGraphAccessors(t *testing.T) {
	b := NewBuilder(4)
	mustEdge := func(u, v PageID) {
		t.Helper()
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(0, 2)
	mustEdge(2, 1)
	mustEdge(3, 0)
	if err := b.MarkStartPage(0); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()

	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 0) || g.HasEdge(1, 0) {
		t.Error("HasEdge disagrees with inserted edges")
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(1); got != 2 {
		t.Errorf("InDegree(1) = %d, want 2", got)
	}
	if got := g.Succ(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Succ(0) = %v, want [1 2]", got)
	}
	if got := g.Pred(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Pred(1) = %v, want [0 2]", got)
	}
	if g.Succ(99) != nil || g.Pred(-1) != nil {
		t.Error("out-of-range Succ/Pred not nil")
	}
	if !g.IsStartPage(0) || g.IsStartPage(1) {
		t.Error("start page designation wrong")
	}
	if got := g.AvgOutDegree(); got != 1.0 {
		t.Errorf("AvgOutDegree = %v, want 1.0", got)
	}
	if got := len(g.Pages()); got != 4 {
		t.Errorf("Pages() has %d entries, want 4", got)
	}
	if !strings.Contains(g.String(), "pages: 4") {
		t.Errorf("String() = %q", g.String())
	}
}

func TestLabelsAndURILookup(t *testing.T) {
	b := NewBuilder(2)
	if err := b.SetLabel(1, "/about.html"); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if got := g.Label(0); got != "/p/0.html" {
		t.Errorf("default label = %q", got)
	}
	if got := g.Label(1); got != "/about.html" {
		t.Errorf("custom label = %q", got)
	}
	if got := g.Label(9); got != "" {
		t.Errorf("invalid label = %q, want empty", got)
	}
	p, ok := g.PageByURI("/about.html")
	if !ok || p != 1 {
		t.Errorf("PageByURI(/about.html) = %v, %v", p, ok)
	}
	if _, ok := g.PageByURI("/missing"); ok {
		t.Error("PageByURI resolved a missing URI")
	}
}

func TestAdjacencyMatrixMatchesHasEdge(t *testing.T) {
	g, _ := PaperFigure1()
	m := g.AdjacencyMatrix()
	for u := 0; u < g.NumPages(); u++ {
		for v := 0; v < g.NumPages(); v++ {
			if m[u][v] != g.HasEdge(PageID(u), PageID(v)) {
				t.Fatalf("matrix[%d][%d]=%v disagrees with HasEdge", u, v, m[u][v])
			}
		}
	}
}

func TestPaperFigure1Topology(t *testing.T) {
	g, ids := PaperFigure1()
	if g.NumPages() != 6 {
		t.Fatalf("figure 1 has %d pages, want 6", g.NumPages())
	}
	// The exact Link[...] conditions quoted in Table 2.
	wantTrue := [][2]string{
		{"P1", "P20"}, {"P1", "P13"}, {"P13", "P49"},
		{"P13", "P34"}, {"P34", "P23"}, {"P49", "P23"}, {"P20", "P23"},
	}
	wantFalse := [][2]string{{"P20", "P13"}, {"P49", "P34"}, {"P23", "P1"}}
	for _, e := range wantTrue {
		if !g.HasEdge(ids[e[0]], ids[e[1]]) {
			t.Errorf("missing edge %s->%s", e[0], e[1])
		}
	}
	for _, e := range wantFalse {
		if g.HasEdge(ids[e[0]], ids[e[1]]) {
			t.Errorf("unexpected edge %s->%s", e[0], e[1])
		}
	}
	if !g.IsStartPage(ids["P1"]) || !g.IsStartPage(ids["P49"]) {
		t.Error("P1 and P49 should be start pages (Figure 3)")
	}
	if g.IsStartPage(ids["P23"]) {
		t.Error("P23 should not be a start page")
	}
}

func TestReachableFrom(t *testing.T) {
	g, ids := PaperFigure1()
	got := g.ReachableFrom(ids["P13"])
	want := map[PageID]bool{ids["P13"]: true, ids["P49"]: true, ids["P34"]: true, ids["P23"]: true}
	if len(got) != len(want) {
		t.Fatalf("ReachableFrom(P13) = %v, want 4 pages", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected reachable page %d", p)
		}
	}
	if got := g.ReachableFrom(); got != nil {
		t.Errorf("ReachableFrom() with no seeds = %v, want nil", got)
	}
	if got := g.ReachableFrom(InvalidPage); got != nil {
		t.Errorf("ReachableFrom(invalid) = %v, want nil", got)
	}
}

func TestShortestPath(t *testing.T) {
	g, ids := PaperFigure1()
	path := g.ShortestPath(ids["P1"], ids["P23"])
	if len(path) != 3 {
		t.Fatalf("ShortestPath(P1,P23) = %v, want length 3", path)
	}
	if path[0] != ids["P1"] || path[2] != ids["P23"] {
		t.Errorf("path endpoints wrong: %v", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Errorf("path step %d not an edge", i)
		}
	}
	if p := g.ShortestPath(ids["P23"], ids["P1"]); p != nil {
		t.Errorf("ShortestPath(P23,P1) = %v, want nil (unreachable)", p)
	}
	if p := g.ShortestPath(ids["P1"], ids["P1"]); len(p) != 1 {
		t.Errorf("ShortestPath(u,u) = %v, want [u]", p)
	}
	if p := g.ShortestPath(InvalidPage, ids["P1"]); p != nil {
		t.Errorf("ShortestPath from invalid = %v", p)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, ids := PaperFigure1()
	sub, back := g.Induced([]PageID{ids["P1"], ids["P13"], ids["P34"], ids["P1"], InvalidPage})
	if sub.NumPages() != 3 {
		t.Fatalf("induced subgraph has %d pages, want 3 (dups/invalid dropped)", sub.NumPages())
	}
	if len(back) != 3 {
		t.Fatalf("mapping has %d entries", len(back))
	}
	// Find new IDs.
	find := func(orig PageID) PageID {
		for i, p := range back {
			if p == orig {
				return PageID(i)
			}
		}
		t.Fatalf("page %d missing from mapping", orig)
		return InvalidPage
	}
	n1, n13, n34 := find(ids["P1"]), find(ids["P13"]), find(ids["P34"])
	if !sub.HasEdge(n1, n13) || !sub.HasEdge(n13, n34) {
		t.Error("induced subgraph lost an interior edge")
	}
	if sub.HasEdge(n1, n34) {
		t.Error("induced subgraph invented an edge")
	}
	if sub.Label(n13) != g.Label(ids["P13"]) {
		t.Error("induced subgraph lost labels")
	}
	if !sub.IsStartPage(n1) {
		t.Error("induced subgraph lost start-page designation")
	}
}

// Property: Induced preserves exactly the edges between kept pages.
func TestInducedPreservesEdgesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TopologyConfig{Pages: 40, AvgOutDegree: 4, StartPageFraction: 0.1, Model: ModelUniform}
	g, err := GenerateTopology(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		var pages []PageID
		for _, r := range raw {
			pages = append(pages, PageID(int(r)%g.NumPages()))
		}
		sub, back := g.Induced(pages)
		for u := 0; u < sub.NumPages(); u++ {
			for v := 0; v < sub.NumPages(); v++ {
				if sub.HasEdge(PageID(u), PageID(v)) != g.HasEdge(back[u], back[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := GenerateTopology(PaperTopology(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumPages() != g.NumPages() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for u := 0; u < g.NumPages(); u++ {
		if g.Label(PageID(u)) != g2.Label(PageID(u)) {
			t.Fatalf("label of %d changed", u)
		}
		su, su2 := g.Succ(PageID(u)), g2.Succ(PageID(u))
		if len(su) != len(su2) {
			t.Fatalf("out-degree of %d changed", u)
		}
		for i := range su {
			if su[i] != su2[i] {
				t.Fatalf("successor %d of %d changed", i, u)
			}
		}
	}
	if len(g.StartPages()) != len(g2.StartPages()) {
		t.Fatal("start pages changed")
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", "{{{"},
		{"negative pages", `{"pages": -1}`},
		{"label count mismatch", `{"pages": 2, "labels": ["/a"]}`},
		{"edge out of range", `{"pages": 2, "edges": [[5]]}`},
		{"too many adjacency rows", `{"pages": 1, "edges": [[], []]}`},
		{"self loop", `{"pages": 2, "edges": [[0]]}`},
		{"bad start page", `{"pages": 2, "start_pages": [9]}`},
		{"duplicate labels", `{"pages": 2, "labels": ["/a", "/a"]}`},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: Decode accepted %q", c.name, c.json)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, ids := PaperFigure1()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") {
		t.Error("DOT output missing digraph header")
	}
	if !strings.Contains(out, "doublecircle") {
		t.Error("DOT output missing start-page shape")
	}
	wantEdge := "n" + itoa(int(ids["P1"])) + " -> n" + itoa(int(ids["P20"])) + ";"
	if !strings.Contains(out, wantEdge) {
		t.Errorf("DOT output missing edge %q:\n%s", wantEdge, out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
