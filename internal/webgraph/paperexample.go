package webgraph

// PaperFigure1 builds the six-page example topology of the paper's Figure 1
// (also used by Figures 3-6 and Tables 1-4):
//
//	P1 -> P20, P1 -> P13, P13 -> P49, P13 -> P34,
//	P34 -> P23, P49 -> P23, P20 -> P23
//
// P1 and P49 are the start pages (the gray pages of Figure 3). The returned
// map resolves the paper's page names ("P1", "P13", ...) to page IDs.
//
// The edge set is reconstructed from the Link[...] conditions listed in
// Table 2 and the reachability statements in Table 4 ("P23 is reachable from
// P34, P49 and P20").
func PaperFigure1() (*Graph, map[string]PageID) {
	names := []string{"P1", "P13", "P20", "P23", "P34", "P49"}
	b := NewBuilder(len(names))
	ids := make(map[string]PageID, len(names))
	for i, name := range names {
		ids[name] = PageID(i)
		// Names are unique, so SetLabel cannot fail.
		_ = b.SetLabel(PageID(i), "/"+name+".html")
	}
	edges := [][2]string{
		{"P1", "P20"},
		{"P1", "P13"},
		{"P13", "P49"},
		{"P13", "P34"},
		{"P34", "P23"},
		{"P49", "P23"},
		{"P20", "P23"},
	}
	for _, e := range edges {
		if err := b.AddEdge(ids[e[0]], ids[e[1]]); err != nil {
			panic("webgraph: PaperFigure1: " + err.Error())
		}
	}
	_ = b.MarkStartPage(ids["P1"])
	_ = b.MarkStartPage(ids["P49"])
	g, err := b.Build()
	if err != nil {
		panic("webgraph: PaperFigure1: " + err.Error())
	}
	return g, ids
}
