package webgraph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPageRankValidation(t *testing.T) {
	g, _ := PaperFigure1()
	bad := []struct {
		damping, tol float64
		iters        int
	}{
		{0, 1e-9, 100}, {1, 1e-9, 100}, {0.85, 0, 100}, {0.85, 1e-9, 0},
	}
	for i, c := range bad {
		if _, err := g.PageRank(c.damping, c.tol, c.iters); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	empty := NewBuilder(0).MustBuild()
	if r, err := empty.PageRank(0.85, 1e-9, 100); err != nil || r != nil {
		t.Errorf("empty graph: %v, %v", r, err)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := GenerateTopology(PaperTopology(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rank, err := g.PageRank(0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range rank {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankOrdersPopularity(t *testing.T) {
	// Star: everyone links to the hub; hub links back to one page.
	b := NewBuilder(5)
	for i := PageID(1); i < 5; i++ {
		if err := b.AddEdge(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	rank, err := g.PageRank(0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if rank[0] <= rank[i] {
			t.Errorf("hub rank %v not above leaf %v", rank[0], rank[i])
		}
	}
	top := TopPages(rank, 2)
	if top[0] != 0 || top[1] != 1 {
		t.Errorf("TopPages = %v", top)
	}
	if got := TopPages(rank, 99); len(got) != 5 {
		t.Errorf("TopPages clamped wrong: %v", got)
	}
}

func TestPageRankHandlesDangling(t *testing.T) {
	// 0 -> 1, 1 has no out-links: its mass must redistribute, not vanish.
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	rank, err := g.PageRank(0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rank[0]+rank[1]-1) > 1e-6 {
		t.Errorf("mass lost: %v", rank)
	}
	if rank[1] <= rank[0] {
		t.Errorf("linked-to page not more popular: %v", rank)
	}
}

func TestAnalyze(t *testing.T) {
	g, _ := PaperFigure1()
	a := g.Analyze()
	if a.Pages != 6 || a.Edges != 7 || a.StartPages != 2 {
		t.Errorf("analysis = %+v", a)
	}
	if a.Dangling != 1 { // P23 has no out-links
		t.Errorf("dangling = %d", a.Dangling)
	}
	// P1 is the only page with in-degree 0 (P13<-P1, P20<-P1, P23<-P34/P49/P20,
	// P34<-P13, P49<-P13).
	if a.Unreferenced != 1 {
		t.Errorf("unreferenced = %d, want 1", a.Unreferenced)
	}
	if a.OutDegree.Max != 2 || a.InDegree.Max != 3 {
		t.Errorf("degrees = %+v", a)
	}
	if a.ReachableFromAny != 6 {
		t.Errorf("reachable = %d", a.ReachableFromAny)
	}
	if a.SCCs != 6 || a.LargestSCC != 1 {
		t.Errorf("scc stats = %d/%d, want 6/1 (figure 1 is acyclic)", a.SCCs, a.LargestSCC)
	}
	out := a.String()
	if !strings.Contains(out, "pages=6") || !strings.Contains(out, "reachable") {
		t.Errorf("report:\n%s", out)
	}
	if e := NewBuilder(0).MustBuild().Analyze(); e.Pages != 0 {
		t.Errorf("empty analysis: %+v", e)
	}
}
