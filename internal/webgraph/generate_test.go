package webgraph

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopologyConfigValidate(t *testing.T) {
	ok := PaperTopology()
	if err := ok.Validate(); err != nil {
		t.Fatalf("paper defaults invalid: %v", err)
	}
	bad := []TopologyConfig{
		{Pages: 1, AvgOutDegree: 1, StartPageFraction: 0.1},
		{Pages: 10, AvgOutDegree: 0, StartPageFraction: 0.1},
		{Pages: 10, AvgOutDegree: 20, StartPageFraction: 0.1},
		{Pages: 10, AvgOutDegree: 3, StartPageFraction: 0},
		{Pages: 10, AvgOutDegree: 3, StartPageFraction: 1.5},
		{Pages: 10, AvgOutDegree: 3, StartPageFraction: 0.1, Model: TopologyModel(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := GenerateTopology(bad[0], rand.New(rand.NewSource(1))); err == nil {
		t.Error("GenerateTopology accepted invalid config")
	}
}

func TestParseTopologyModel(t *testing.T) {
	if m, err := ParseTopologyModel("uniform"); err != nil || m != ModelUniform {
		t.Errorf("uniform: %v %v", m, err)
	}
	if m, err := ParseTopologyModel("preferential"); err != nil || m != ModelPreferential {
		t.Errorf("preferential: %v %v", m, err)
	}
	if _, err := ParseTopologyModel("scale-free"); err == nil {
		t.Error("unknown model accepted")
	}
	if ModelUniform.String() != "uniform" || ModelPreferential.String() != "preferential" {
		t.Error("model String() wrong")
	}
	if TopologyModel(42).String() == "" {
		t.Error("unknown model String() empty")
	}
}

func TestGenerateUniformMatchesPaperDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2006))
	g, err := GenerateTopology(PaperTopology(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPages() != 300 {
		t.Fatalf("pages = %d, want 300", g.NumPages())
	}
	// Average out-degree should be near 15 (binomial mean); allow 10% slack.
	if d := g.AvgOutDegree(); math.Abs(d-15) > 1.5 {
		t.Errorf("avg out-degree = %.2f, want ~15", d)
	}
	if got := len(g.StartPages()); got != 15 {
		t.Errorf("start pages = %d, want 15 (5%% of 300)", got)
	}
	if _, ok := g.PageByURI("/index.html"); !ok {
		t.Error("no /index.html page")
	}
}

func TestGenerateDeterministicFromSeed(t *testing.T) {
	cfg := PaperTopology()
	g1, err := GenerateTopology(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateTopology(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g1.NumPages(); u++ {
		s1, s2 := g1.Succ(PageID(u)), g2.Succ(PageID(u))
		if len(s1) != len(s2) {
			t.Fatalf("page %d out-degree differs", u)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("page %d successor %d differs", u, i)
			}
		}
	}
	g3, err := GenerateTopology(cfg, rand.New(rand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() == g1.NumEdges() && sameSucc(g1, g3) {
		t.Error("different seeds produced identical graphs")
	}
}

func sameSucc(a, b *Graph) bool {
	for u := 0; u < a.NumPages(); u++ {
		sa, sb := a.Succ(PageID(u)), b.Succ(PageID(u))
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
	}
	return true
}

func TestGenerateEnsuresReachability(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := TopologyConfig{
			Pages: 200, AvgOutDegree: 2, StartPageFraction: 0.02,
			Model: ModelUniform, EnsureReachable: true,
		}
		g, err := GenerateTopology(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		reached := g.ReachableFrom(g.StartPages()...)
		if len(reached) != g.NumPages() {
			t.Errorf("seed %d: only %d/%d pages reachable from start pages",
				seed, len(reached), g.NumPages())
		}
	}
}

func TestGeneratePreferentialSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := TopologyConfig{
		Pages: 300, AvgOutDegree: 15, StartPageFraction: 0.05,
		Model: ModelPreferential, EnsureReachable: true,
	}
	g, err := GenerateTopology(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.AvgOutDegree(); math.Abs(d-15) > 2 {
		t.Errorf("avg out-degree = %.2f, want ~15", d)
	}
	// Preferential attachment should produce a noticeably higher maximum
	// in-degree than the uniform model's binomial concentration.
	maxIn := 0
	for _, p := range g.Pages() {
		if d := g.InDegree(p); d > maxIn {
			maxIn = d
		}
	}
	gUni, err := GenerateTopology(PaperTopology(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	maxInUni := 0
	for _, p := range gUni.Pages() {
		if d := gUni.InDegree(p); d > maxInUni {
			maxInUni = d
		}
	}
	if maxIn <= maxInUni {
		t.Errorf("preferential max in-degree %d not above uniform %d", maxIn, maxInUni)
	}
}

func TestGenerateAtLeastOneStartPage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := TopologyConfig{Pages: 10, AvgOutDegree: 2, StartPageFraction: 0.001, Model: ModelUniform}
	g, err := GenerateTopology(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.StartPages()) < 1 {
		t.Error("no start pages designated")
	}
}

func BenchmarkGeneratePaperTopology(b *testing.B) {
	cfg := PaperTopology()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTopology(cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g, err := GenerateTopology(PaperTopology(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	n := PageID(g.NumPages())
	b.ReportAllocs()
	var hits int
	for i := 0; i < b.N; i++ {
		if g.HasEdge(PageID(i)%n, PageID(i*7)%n) {
			hits++
		}
	}
	_ = hits
}
