package webgraph_test

import (
	"fmt"
	"math/rand"

	"smartsra/internal/webgraph"
)

// ExamplePaperFigure1 inspects the paper's running-example topology.
func ExamplePaperFigure1() {
	g, ids := webgraph.PaperFigure1()
	fmt.Println(g)
	fmt.Println("P1 -> P13:", g.HasEdge(ids["P1"], ids["P13"]))
	fmt.Println("P20 -> P13:", g.HasEdge(ids["P20"], ids["P13"]))
	// Output:
	// webgraph.Graph{pages: 6, edges: 7, start pages: 2}
	// P1 -> P13: true
	// P20 -> P13: false
}

// ExampleGenerateTopology builds the paper's Table 5 site.
func ExampleGenerateTopology() {
	g, err := webgraph.GenerateTopology(webgraph.PaperTopology(), rand.New(rand.NewSource(2006)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("pages:", g.NumPages())
	fmt.Println("start pages:", len(g.StartPages()))
	fmt.Println("all reachable:", len(g.ReachableFrom(g.StartPages()...)) == g.NumPages())
	// Output:
	// pages: 300
	// start pages: 15
	// all reachable: true
}
