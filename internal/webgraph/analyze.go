package webgraph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file provides the web-structure-mining measurements the paper's
// introduction situates the work in: popularity scores (PageRank), degree
// distributions, and reachability statistics over a site topology.

// PageRank computes the standard PageRank popularity scores with the given
// damping factor (0 < damping < 1; 0.85 is conventional) to the given
// tolerance on the L1 change per iteration. Dangling pages (no out-links)
// redistribute their mass uniformly. The returned slice is indexed by page
// and sums to 1 (within tolerance); it is nil for an empty graph.
func (g *Graph) PageRank(damping float64, tol float64, maxIter int) ([]float64, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("webgraph: damping %v out of range (0, 1)", damping)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("webgraph: tolerance %v not positive", tol)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("webgraph: need at least one iteration")
	}
	n := g.n
	if n == 0 {
		return nil, nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for iter := 0; iter < maxIter; iter++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			if len(g.succ[u]) == 0 {
				dangling += rank[u]
			}
		}
		spread := damping * dangling / float64(n)
		for v := range next {
			next[v] = base + spread
		}
		for u := 0; u < n; u++ {
			out := g.succ[u]
			if len(out) == 0 {
				continue
			}
			share := damping * rank[u] / float64(len(out))
			for _, v := range out {
				next[v] += share
			}
		}
		delta := 0.0
		for v := range next {
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < tol {
			return rank, nil
		}
	}
	return rank, nil
}

// TopPages returns the k highest-scoring pages under scores, descending,
// ties broken by page ID.
func TopPages(scores []float64, k int) []PageID {
	ids := make([]PageID, len(scores))
	for i := range ids {
		ids[i] = PageID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if scores[ids[a]] != scores[ids[b]] {
			return scores[ids[a]] > scores[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Analysis is a structural summary of a topology.
type Analysis struct {
	Pages, Edges     int
	StartPages       int
	OutDegree        DegreeStats
	InDegree         DegreeStats
	Dangling         int // pages without out-links
	Unreferenced     int // pages without in-links
	ReachableFromAny int // pages reachable from at least one start page
	SCCs             int // strongly connected components
	LargestSCC       int // size of the largest SCC (the bow-tie core)
}

// Analyze computes the structural summary.
func (g *Graph) Analyze() Analysis {
	a := Analysis{
		Pages:      g.n,
		Edges:      g.edges,
		StartPages: len(g.starts),
	}
	if g.n == 0 {
		return a
	}
	a.OutDegree.Min, a.InDegree.Min = g.n, g.n
	for u := 0; u < g.n; u++ {
		od, id := len(g.succ[u]), len(g.pred[u])
		if od == 0 {
			a.Dangling++
		}
		if id == 0 {
			a.Unreferenced++
		}
		if od < a.OutDegree.Min {
			a.OutDegree.Min = od
		}
		if od > a.OutDegree.Max {
			a.OutDegree.Max = od
		}
		if id < a.InDegree.Min {
			a.InDegree.Min = id
		}
		if id > a.InDegree.Max {
			a.InDegree.Max = id
		}
	}
	a.OutDegree.Mean = float64(g.edges) / float64(g.n)
	a.InDegree.Mean = a.OutDegree.Mean
	a.ReachableFromAny = len(g.ReachableFrom(g.starts...))
	comps := g.SCCs()
	a.SCCs = len(comps)
	for _, c := range comps {
		if len(c) > a.LargestSCC {
			a.LargestSCC = len(c)
		}
	}
	return a
}

// String renders the analysis as a small report.
func (a Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pages=%d edges=%d start-pages=%d\n", a.Pages, a.Edges, a.StartPages)
	fmt.Fprintf(&sb, "out-degree min=%d mean=%.2f max=%d (dangling: %d)\n",
		a.OutDegree.Min, a.OutDegree.Mean, a.OutDegree.Max, a.Dangling)
	fmt.Fprintf(&sb, "in-degree  min=%d mean=%.2f max=%d (unreferenced: %d)\n",
		a.InDegree.Min, a.InDegree.Mean, a.InDegree.Max, a.Unreferenced)
	fmt.Fprintf(&sb, "reachable from start pages: %d/%d\n", a.ReachableFromAny, a.Pages)
	fmt.Fprintf(&sb, "strongly connected components: %d (largest: %d)", a.SCCs, a.LargestSCC)
	return sb.String()
}
