package webgraph

import (
	"fmt"
	"math/rand"
)

// TopologyModel selects the random-graph model used by GenerateTopology.
type TopologyModel int

const (
	// ModelUniform draws each page's link targets uniformly at random; the
	// out-degree of each page is binomially distributed around the requested
	// average. This matches the paper's Table 5 setup (a "typical web page
	// topology" with a fixed average out-degree).
	ModelUniform TopologyModel = iota
	// ModelPreferential draws link targets with probability proportional to
	// their current in-degree plus one (a preferential-attachment variant per
	// the web-graph models the paper cites [1,8,10]). It produces the heavy
	// in-degree skew observed on real sites.
	ModelPreferential
)

// String names the model for reports and flags.
func (m TopologyModel) String() string {
	switch m {
	case ModelUniform:
		return "uniform"
	case ModelPreferential:
		return "preferential"
	default:
		return fmt.Sprintf("TopologyModel(%d)", int(m))
	}
}

// ParseTopologyModel converts a flag string to a TopologyModel.
func ParseTopologyModel(s string) (TopologyModel, error) {
	switch s {
	case "uniform":
		return ModelUniform, nil
	case "preferential":
		return ModelPreferential, nil
	}
	return 0, fmt.Errorf("webgraph: unknown topology model %q (want uniform or preferential)", s)
}

// TopologyConfig parameterizes GenerateTopology. The zero value is not
// useful; start from PaperTopology() and adjust.
type TopologyConfig struct {
	// Pages is the number of web pages (Table 5: 300).
	Pages int
	// AvgOutDegree is the mean number of hyperlinks per page (Table 5: 15).
	AvgOutDegree float64
	// StartPageFraction is the fraction of pages designated as session entry
	// pages. The paper does not fix this; we default to 0.05 (15 of 300).
	StartPageFraction float64
	// Model selects the random-graph model.
	Model TopologyModel
	// EnsureReachable, when set, adds a minimal set of extra edges so that
	// every page is reachable from at least one start page. Without it the
	// simulator may generate topologies with pages no agent can visit, which
	// is harmless but wastes nodes.
	EnsureReachable bool
}

// PaperTopology returns the Table 5 configuration: 300 pages, average
// out-degree 15, 5% start pages, uniform model, reachability enforced.
func PaperTopology() TopologyConfig {
	return TopologyConfig{
		Pages:             300,
		AvgOutDegree:      15,
		StartPageFraction: 0.05,
		Model:             ModelUniform,
		EnsureReachable:   true,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c TopologyConfig) Validate() error {
	if c.Pages < 2 {
		return fmt.Errorf("webgraph: need at least 2 pages, got %d", c.Pages)
	}
	if c.AvgOutDegree <= 0 || c.AvgOutDegree > float64(c.Pages-1) {
		return fmt.Errorf("webgraph: average out-degree %.2f out of range (0, %d]",
			c.AvgOutDegree, c.Pages-1)
	}
	if c.StartPageFraction <= 0 || c.StartPageFraction > 1 {
		return fmt.Errorf("webgraph: start-page fraction %.3f out of range (0, 1]",
			c.StartPageFraction)
	}
	if c.Model != ModelUniform && c.Model != ModelPreferential {
		return fmt.Errorf("webgraph: unknown topology model %d", c.Model)
	}
	return nil
}

// GenerateTopology builds a random site topology according to cfg, drawing
// all randomness from rng so results are reproducible from a seed.
func GenerateTopology(cfg TopologyConfig, rng *rand.Rand) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(cfg.Pages)

	// Designate start pages first: at least one, chosen uniformly.
	nStarts := int(float64(cfg.Pages)*cfg.StartPageFraction + 0.5)
	if nStarts < 1 {
		nStarts = 1
	}
	perm := rng.Perm(cfg.Pages)
	starts := make([]PageID, 0, nStarts)
	for _, p := range perm[:nStarts] {
		starts = append(starts, PageID(p))
		if err := b.MarkStartPage(PageID(p)); err != nil {
			return nil, err
		}
	}
	// Give the first start page the traditional label.
	if err := b.SetLabel(starts[0], "/index.html"); err != nil {
		return nil, err
	}

	switch cfg.Model {
	case ModelUniform:
		generateUniform(b, cfg, rng)
	case ModelPreferential:
		generatePreferential(b, cfg, rng)
	}

	if cfg.EnsureReachable {
		ensureReachable(b, starts, rng)
	}
	return b.Build()
}

// generateUniform gives each page a number of out-links drawn so that the
// expected out-degree equals cfg.AvgOutDegree, with targets uniform over the
// other pages.
func generateUniform(b *Builder, cfg TopologyConfig, rng *rand.Rand) {
	n := cfg.Pages
	p := cfg.AvgOutDegree / float64(n-1)
	if p > 1 {
		p = 1
	}
	for u := 0; u < n; u++ {
		// Binomial(n-1, p) via per-candidate coin flips is O(N²) overall but
		// trivially fast at paper scale (300 pages => 90k flips).
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if rng.Float64() < p {
				// Error impossible: in-range, no self-link, first visit.
				_ = b.AddEdge(PageID(u), PageID(v))
			}
		}
	}
}

// generatePreferential draws, for each page, round(AvgOutDegree) targets with
// probability proportional to (in-degree + 1), skipping self-links and
// duplicates.
func generatePreferential(b *Builder, cfg TopologyConfig, rng *rand.Rand) {
	n := cfg.Pages
	k := int(cfg.AvgOutDegree + 0.5)
	if k < 1 {
		k = 1
	}
	indeg := make([]int, n)
	weightSum := n // sum of (indeg+1) over all pages
	for u := 0; u < n; u++ {
		added := 0
		for attempts := 0; added < k && attempts < 20*k; attempts++ {
			v := weightedPick(indeg, weightSum, rng)
			if v == u || b.HasEdge(PageID(u), PageID(v)) {
				continue
			}
			_ = b.AddEdge(PageID(u), PageID(v))
			indeg[v]++
			weightSum++
			added++
		}
	}
}

// weightedPick returns an index drawn with probability (indeg[i]+1)/weightSum.
func weightedPick(indeg []int, weightSum int, rng *rand.Rand) int {
	t := rng.Intn(weightSum)
	acc := 0
	for i, d := range indeg {
		acc += d + 1
		if t < acc {
			return i
		}
	}
	return len(indeg) - 1
}

// ensureReachable adds edges so every page is reachable from some start
// page. It repeatedly BFSes from the start set and, for each unreached page,
// links it from a uniformly chosen reached page.
func ensureReachable(b *Builder, starts []PageID, rng *rand.Rand) {
	n := b.n
	reached := make([]bool, n)
	queue := make([]PageID, 0, n)
	for _, s := range starts {
		if !reached[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	order := make([]PageID, 0, n) // reached pages, in discovery order
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range b.succ[u] {
			if !reached[v] {
				reached[v] = true
				queue = append(queue, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if reached[v] {
			continue
		}
		// Link from a random already-reached page; retries cover the rare
		// duplicate-edge case.
		for {
			u := order[rng.Intn(len(order))]
			if b.HasEdge(u, PageID(v)) {
				continue
			}
			_ = b.AddEdge(u, PageID(v))
			break
		}
		reached[v] = true
		order = append(order, PageID(v))
		// Pages newly reachable *through* v are discovered as later loop
		// iterations reach them; a full re-BFS is unnecessary because we only
		// need every page reached, and linking v from the reached set plus
		// the scan order guarantees that.
		queue = append(queue, PageID(v))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range b.succ[u] {
				if !reached[w] {
					reached[w] = true
					order = append(order, w)
					queue = append(queue, w)
				}
			}
		}
	}
}
