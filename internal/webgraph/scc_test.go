package webgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdges(t *testing.T, n int, edges [][2]PageID) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestSCCsSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
	g := mustEdges(t, 4, [][2]PageID{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if g.LargestSCC() != 3 {
		t.Errorf("largest = %d", g.LargestSCC())
	}
	// Reverse topological order: the sink {3} must come before the cycle.
	if len(comps[0]) != 1 || comps[0][0] != 3 {
		t.Errorf("first component = %v, want [3]", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 0 || comps[1][2] != 2 {
		t.Errorf("cycle component = %v", comps[1])
	}
}

func TestSCCsAcyclic(t *testing.T) {
	g := mustEdges(t, 3, [][2]PageID{{0, 1}, {1, 2}})
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("DAG components = %v", comps)
	}
	for _, c := range comps {
		if len(c) != 1 {
			t.Errorf("DAG has non-singleton component %v", c)
		}
	}
	if g.LargestSCC() != 1 {
		t.Errorf("largest = %d", g.LargestSCC())
	}
}

func TestSCCsEmptyAndFigure1(t *testing.T) {
	if got := NewBuilder(0).MustBuild().SCCs(); len(got) != 0 {
		t.Errorf("empty graph SCCs = %v", got)
	}
	if NewBuilder(0).MustBuild().LargestSCC() != 0 {
		t.Error("empty largest not 0")
	}
	g, _ := PaperFigure1()
	// Figure 1 is acyclic: 6 singleton components.
	if comps := g.SCCs(); len(comps) != 6 {
		t.Errorf("figure 1 components = %d", len(comps))
	}
}

func TestSCCsDeepChainNoOverflow(t *testing.T) {
	// A 100k-node path would blow a recursive Tarjan's goroutine stack in
	// other implementations; the iterative one must handle it.
	const n = 100000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(PageID(i), PageID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if got := len(g.SCCs()); got != n {
		t.Errorf("chain components = %d", got)
	}
}

// Property: SCCs partition the vertex set, and any two pages in one
// component reach each other.
func TestSCCsPartitionAndMutualReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TopologyConfig{
			Pages: 30, AvgOutDegree: 2.5, StartPageFraction: 0.1,
			Model: ModelUniform,
		}
		g, err := GenerateTopology(cfg, rng)
		if err != nil {
			return false
		}
		comps := g.SCCs()
		seen := make(map[PageID]bool)
		for _, c := range comps {
			for _, p := range c {
				if seen[p] {
					return false // overlap
				}
				seen[p] = true
			}
			// Mutual reachability within the component.
			for _, p := range c {
				reach := make(map[PageID]bool)
				for _, r := range g.ReachableFrom(p) {
					reach[r] = true
				}
				for _, q := range c {
					if !reach[q] {
						return false
					}
				}
			}
		}
		return len(seen) == g.NumPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
