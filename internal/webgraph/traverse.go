package webgraph

// ReachableFrom returns the set of pages reachable from any page in seeds by
// following hyperlinks forward (including the seeds themselves), as a sorted
// slice.
func (g *Graph) ReachableFrom(seeds ...PageID) []PageID {
	reached := make([]bool, g.n)
	queue := make([]PageID, 0, len(seeds))
	for _, s := range seeds {
		if g.Valid(s) && !reached[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	var out []PageID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range g.succ[u] {
			if !reached[v] {
				reached[v] = true
				queue = append(queue, v)
			}
		}
	}
	sortPages(out)
	return out
}

// ShortestPath returns a minimal-hop hyperlink path from u to v (inclusive of
// both endpoints), or nil when v is unreachable from u.
func (g *Graph) ShortestPath(u, v PageID) []PageID {
	if !g.Valid(u) || !g.Valid(v) {
		return nil
	}
	if u == v {
		return []PageID{u}
	}
	parent := make([]PageID, g.n)
	for i := range parent {
		parent[i] = InvalidPage
	}
	parent[u] = u
	queue := []PageID{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, w := range g.succ[cur] {
			if parent[w] != InvalidPage {
				continue
			}
			parent[w] = cur
			if w == v {
				// Reconstruct path backwards.
				var rev []PageID
				for x := v; x != u; x = parent[x] {
					rev = append(rev, x)
				}
				rev = append(rev, u)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// Induced returns the subgraph induced by the given pages, plus a mapping
// from new (dense) page IDs back to the original IDs. The paper's Smart-SRA
// pseudocode notes that vertices not appearing in the candidate session
// "must be removed from the graph prior to the execution"; Induced is that
// operation. Duplicate and invalid pages in the argument are ignored. Labels
// and start-page designations are carried over.
func (g *Graph) Induced(pages []PageID) (*Graph, []PageID) {
	keep := make([]PageID, 0, len(pages))
	seen := make(map[PageID]bool, len(pages))
	for _, p := range pages {
		if g.Valid(p) && !seen[p] {
			seen[p] = true
			keep = append(keep, p)
		}
	}
	sortPages(keep)
	newID := make(map[PageID]PageID, len(keep))
	for i, p := range keep {
		newID[p] = PageID(i)
	}
	b := NewBuilder(len(keep))
	for i, p := range keep {
		// Labels are unique in g, so SetLabel cannot fail on duplicates here.
		_ = b.SetLabel(PageID(i), g.Label(p))
		if g.IsStartPage(p) {
			_ = b.MarkStartPage(PageID(i))
		}
		for _, v := range g.succ[p] {
			if nv, ok := newID[v]; ok {
				_ = b.AddEdge(PageID(i), nv)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		// Unreachable: all inputs were validated against g.
		panic("webgraph: induced subgraph build failed: " + err.Error())
	}
	return sub, keep
}

func sortPages(ps []PageID) {
	// Insertion sort is fine for the small slices this package produces in
	// hot paths; large slices come from ReachableFrom where an O(n log n)
	// sort would also do, but pages are discovered nearly in order anyway.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
