package webgraph

import (
	"fmt"
	"sort"
)

// Builder accumulates pages and hyperlinks and produces an immutable Graph.
//
// A Builder is created with a fixed page count; edges, labels, and start
// pages are then added incrementally. Build validates the accumulated state
// and freezes it. Builders are not safe for concurrent use.
type Builder struct {
	n      int
	succ   [][]PageID
	labels []string
	starts map[PageID]bool
	edges  int
}

// NewBuilder returns a Builder for a graph with n pages (IDs 0..n-1). Every
// page gets a default label "/p/<id>.html" which can be overridden with
// SetLabel.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	b := &Builder{
		n:      n,
		succ:   make([][]PageID, n),
		labels: make([]string, n),
		starts: make(map[PageID]bool),
	}
	for i := 0; i < n; i++ {
		b.labels[i] = fmt.Sprintf("/p/%d.html", i)
	}
	return b
}

// AddEdge records a hyperlink from u to v. Self-links and duplicate edges
// are rejected, as are out-of-range pages.
func (b *Builder) AddEdge(u, v PageID) error {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("webgraph: edge %d->%d out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("webgraph: self-link on page %d rejected", u)
	}
	for _, w := range b.succ[u] {
		if w == v {
			return fmt.Errorf("webgraph: duplicate edge %d->%d", u, v)
		}
	}
	b.succ[u] = append(b.succ[u], v)
	b.edges++
	return nil
}

// HasEdge reports whether the builder already holds the edge u->v.
func (b *Builder) HasEdge(u, v PageID) bool {
	if int(u) < 0 || int(u) >= b.n {
		return false
	}
	for _, w := range b.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// OutDegree returns the current number of edges leaving u.
func (b *Builder) OutDegree(u PageID) int {
	if int(u) < 0 || int(u) >= b.n {
		return 0
	}
	return len(b.succ[u])
}

// SetLabel assigns a URI label to page p, replacing the default.
func (b *Builder) SetLabel(p PageID, uri string) error {
	if int(p) < 0 || int(p) >= b.n {
		return fmt.Errorf("webgraph: label for out-of-range page %d", p)
	}
	if uri == "" {
		return fmt.Errorf("webgraph: empty label for page %d", p)
	}
	b.labels[p] = uri
	return nil
}

// MarkStartPage designates p as a session entry page.
func (b *Builder) MarkStartPage(p PageID) error {
	if int(p) < 0 || int(p) >= b.n {
		return fmt.Errorf("webgraph: start page %d out of range", p)
	}
	b.starts[p] = true
	return nil
}

// Build validates and freezes the builder into an immutable Graph. It
// returns an error when two pages share a label. The builder remains usable
// afterwards (Build copies all state).
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{
		n:      b.n,
		succ:   make([][]PageID, b.n),
		pred:   make([][]PageID, b.n),
		labels: append([]string(nil), b.labels...),
		byURI:  make(map[string]PageID, b.n),
		edges:  b.edges,
	}
	words := (b.n*b.n + 63) / 64
	g.bits = make([]uint64, words)
	for u := 0; u < b.n; u++ {
		out := append([]PageID(nil), b.succ[u]...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		g.succ[u] = out
		for _, v := range out {
			idx := u*b.n + int(v)
			g.bits[idx>>6] |= 1 << uint(idx&63)
			g.pred[v] = append(g.pred[v], PageID(u))
		}
	}
	for v := 0; v < b.n; v++ {
		sort.Slice(g.pred[v], func(i, j int) bool { return g.pred[v][i] < g.pred[v][j] })
	}
	for i, uri := range g.labels {
		if prev, dup := g.byURI[uri]; dup {
			return nil, fmt.Errorf("webgraph: pages %d and %d share label %q", prev, i, uri)
		}
		g.byURI[uri] = PageID(i)
	}
	g.starts = make([]PageID, 0, len(b.starts))
	for p := range b.starts {
		g.starts = append(g.starts, p)
	}
	sort.Slice(g.starts, func(i, j int) bool { return g.starts[i] < g.starts[j] })
	return g, nil
}

// MustBuild is Build that panics on error, for tests and fixed literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
