package predict

import (
	"math/rand"
	"testing"
	"time"

	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func mk(pages ...int) session.Session {
	s := session.Session{User: "u"}
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{
			Page: webgraph.PageID(p),
			Time: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	return s
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0); err == nil {
		t.Error("order 0 accepted")
	}
	m, err := Train(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Observations() != 0 || m.Order() != 2 {
		t.Errorf("empty model: %d obs, order %d", m.Observations(), m.Order())
	}
	if _, ok := m.Predict([]webgraph.PageID{1}); ok {
		t.Error("empty model predicted something")
	}
	if got := m.TopK([]webgraph.PageID{1}, 0); got != nil {
		t.Errorf("TopK(k=0) = %v", got)
	}
}

func TestPredictFirstOrder(t *testing.T) {
	// After page 1, page 2 twice and page 3 once.
	m, err := Train([]session.Session{mk(1, 2), mk(1, 2), mk(1, 3)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.Predict([]webgraph.PageID{1})
	if !ok || p != 2 {
		t.Errorf("Predict(1) = %v, %v", p, ok)
	}
	top := m.TopK([]webgraph.PageID{1}, 5)
	if len(top) != 2 || top[0] != 2 || top[1] != 3 {
		t.Errorf("TopK = %v", top)
	}
	if m.Observations() != 3 {
		t.Errorf("observations = %d", m.Observations())
	}
}

func TestPredictBacksOffToShorterContext(t *testing.T) {
	// Second-order model; the context [9 1] was never seen, but [1] was.
	m, err := Train([]session.Session{mk(0, 1, 2), mk(5, 1, 2)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.Predict([]webgraph.PageID{9, 1})
	if !ok || p != 2 {
		t.Errorf("backoff Predict = %v, %v", p, ok)
	}
	// A fully unseen context falls back to the global distribution.
	p, ok = m.Predict([]webgraph.PageID{42})
	if !ok {
		t.Fatal("global fallback missing")
	}
	if p != 1 && p != 2 {
		t.Errorf("global fallback = %v", p)
	}
}

func TestPredictUsesLongestContext(t *testing.T) {
	// After [1], next is usually 2; but after [7 1] specifically, next is 3.
	sessions := []session.Session{
		mk(1, 2), mk(1, 2), mk(1, 2),
		mk(7, 1, 3), mk(7, 1, 3),
	}
	m, err := Train(sessions, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := m.Predict([]webgraph.PageID{7, 1}); p != 3 {
		t.Errorf("order-2 context ignored: %v", p)
	}
	if p, _ := m.Predict([]webgraph.PageID{1}); p != 2 {
		t.Errorf("order-1 context wrong: %v", p)
	}
}

func TestPredictDeterministicTies(t *testing.T) {
	m, err := Train([]session.Session{mk(1, 5), mk(1, 3)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if p, _ := m.Predict([]webgraph.PageID{1}); p != 3 {
			t.Fatalf("tie not broken by page id: %v", p)
		}
	}
}

func TestHitRate(t *testing.T) {
	train := []session.Session{mk(1, 2, 3), mk(1, 2, 3)}
	m, err := Train(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	rate, n := m.HitRate([]session.Session{mk(1, 2, 3)}, 1)
	if n != 2 || rate != 1 {
		t.Errorf("perfect replay: rate=%v n=%d", rate, n)
	}
	rate, n = m.HitRate([]session.Session{mk(1, 9)}, 1)
	if n != 1 || rate != 0 {
		t.Errorf("miss: rate=%v n=%d", rate, n)
	}
	if rate, n := m.HitRate(nil, 1); rate != 0 || n != 0 {
		t.Errorf("empty eval: %v %v", rate, n)
	}
}

// The downstream claim: a predictor trained on Smart-SRA sessions
// outperforms one trained on time-gap sessions when both are evaluated on
// ground-truth navigation.
func TestSessionQualityAffectsPrefetch(t *testing.T) {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 100, AvgOutDegree: 8, StartPageFraction: 0.08,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 600
	res, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	// Train on the first half of agents' reconstructions, evaluate on the
	// second half's real sessions.
	half := len(res.Streams) / 2
	trainStreams, evalUsers := res.Streams[:half], make(map[string]bool)
	for _, st := range res.Streams[half:] {
		evalUsers[st.User] = true
	}
	var evalReal []session.Session
	for _, r := range res.Real {
		if evalUsers[r.User] {
			evalReal = append(evalReal, r)
		}
	}

	rateFor := func(h heuristics.Reconstructor) float64 {
		m, err := Train(heuristics.ReconstructAll(h, trainStreams), 2)
		if err != nil {
			t.Fatal(err)
		}
		rate, _ := m.HitRate(evalReal, 3)
		return rate
	}
	smart := rateFor(heuristics.NewSmartSRA(g))
	timegap := rateFor(heuristics.NewTimeGap())
	if smart <= timegap {
		t.Errorf("Smart-SRA-trained hit rate %.3f not above time-gap %.3f", smart, timegap)
	}
	t.Logf("top-3 hit rate on real navigation: smartsra=%.3f timegap=%.3f", smart, timegap)
}
