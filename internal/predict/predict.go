// Package predict implements next-page prediction — the web pre-fetching /
// link-prediction application the paper's introduction motivates for
// session data. A variable-order Markov model is trained on sessions; at
// serving time it predicts the most likely next pages from the user's
// recent navigation context, backing off to shorter contexts when the long
// one was never observed.
//
// Because the model trains on *sessions*, its quality depends directly on
// how well those sessions were reconstructed: training on Smart-SRA output
// approaches training on ground truth, while time-oriented sessions blur
// unrelated navigations together. BenchmarkApplicationPrefetch quantifies
// exactly that.
package predict

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Model is a trained next-page predictor. Models are immutable after Train
// and safe for concurrent use.
type Model struct {
	order  int
	counts []map[string]map[webgraph.PageID]int // counts[k]: context of length k+1 -> next -> n
	unigr  map[webgraph.PageID]int              // next-page counts with empty context
	total  int
}

// Train builds a model of the given maximum order (context length) from
// sessions. Order must be at least 1; contexts of every length 1..order are
// learned so prediction can back off.
func Train(sessions []session.Session, order int) (*Model, error) {
	if order < 1 {
		return nil, fmt.Errorf("predict: order %d below 1", order)
	}
	m := &Model{
		order:  order,
		counts: make([]map[string]map[webgraph.PageID]int, order),
		unigr:  make(map[webgraph.PageID]int),
	}
	for k := range m.counts {
		m.counts[k] = make(map[string]map[webgraph.PageID]int)
	}
	for _, s := range sessions {
		pages := s.Pages()
		for i := 1; i < len(pages); i++ {
			next := pages[i]
			m.unigr[next]++
			m.total++
			for k := 1; k <= order && k <= i; k++ {
				key := ctxKey(pages[i-k : i])
				tbl := m.counts[k-1][key]
				if tbl == nil {
					tbl = make(map[webgraph.PageID]int)
					m.counts[k-1][key] = tbl
				}
				tbl[next]++
			}
		}
	}
	return m, nil
}

// Order returns the model's maximum context length.
func (m *Model) Order() int { return m.order }

// Observations returns the number of transitions trained on.
func (m *Model) Observations() int { return m.total }

// TopK returns up to k predicted next pages for the given navigation
// context, most likely first. It uses the longest trained context that
// matches a suffix of ctx, backing off to shorter ones, and finally to the
// global next-page distribution. Ties break on ascending page ID so results
// are deterministic.
func (m *Model) TopK(ctx []webgraph.PageID, k int) []webgraph.PageID {
	if k < 1 {
		return nil
	}
	for length := min(m.order, len(ctx)); length >= 1; length-- {
		key := ctxKey(ctx[len(ctx)-length:])
		if tbl, ok := m.counts[length-1][key]; ok && len(tbl) > 0 {
			return topOf(tbl, k)
		}
	}
	if len(m.unigr) > 0 {
		return topOf(m.unigr, k)
	}
	return nil
}

// Predict returns the single most likely next page, or false when the model
// has no data at all.
func (m *Model) Predict(ctx []webgraph.PageID) (webgraph.PageID, bool) {
	top := m.TopK(ctx, 1)
	if len(top) == 0 {
		return webgraph.InvalidPage, false
	}
	return top[0], true
}

// HitRate evaluates the model on sessions: for every transition, predict
// the next page from the preceding context and count a hit when the true
// next page is among the top k predictions. It returns the hit fraction and
// the number of transitions evaluated.
func (m *Model) HitRate(sessions []session.Session, k int) (float64, int) {
	hits, n := 0, 0
	for _, s := range sessions {
		pages := s.Pages()
		for i := 1; i < len(pages); i++ {
			n++
			for _, p := range m.TopK(pages[:i], k) {
				if p == pages[i] {
					hits++
					break
				}
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(hits) / float64(n), n
}

func topOf(tbl map[webgraph.PageID]int, k int) []webgraph.PageID {
	type pc struct {
		p webgraph.PageID
		c int
	}
	all := make([]pc, 0, len(tbl))
	for p, c := range tbl {
		all = append(all, pc{p, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].p < all[j].p
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]webgraph.PageID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}

func ctxKey(pages []webgraph.PageID) string {
	var sb strings.Builder
	for i, p := range pages {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(p)))
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
