package predict_test

import (
	"fmt"
	"time"

	"smartsra/internal/predict"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// ExampleModel_TopK trains a next-page predictor and queries it with a
// navigation context it never saw verbatim (backoff to shorter contexts).
func ExampleModel_TopK() {
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	mk := func(pages ...webgraph.PageID) session.Session {
		s := session.Session{User: "u"}
		for i, p := range pages {
			s.Entries = append(s.Entries, session.Entry{
				Page: p, Time: t0.Add(time.Duration(i) * time.Minute),
			})
		}
		return s
	}
	model, err := predict.Train([]session.Session{
		mk(1, 2, 3), mk(1, 2, 3), mk(1, 2, 4),
	}, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(model.TopK([]webgraph.PageID{1, 2}, 2)) // seen context
	fmt.Println(model.TopK([]webgraph.PageID{9, 2}, 1)) // backoff to [2]
	// Output:
	// [3 4]
	// [3]
}
