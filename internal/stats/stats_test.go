package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.StdDev, math.Sqrt(32.0/7)) {
		t.Errorf("sd = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5) {
		t.Errorf("median = %v", s.Median)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.StdDev != 0 || one.Median != 3 || one.CI95() != 0 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 1.96 * s.StdDev / 2 // sqrt(4) = 2
	if !almost(s.CI95(), want) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("singleton quantile wrong")
	}
}

// Property: the online accumulator agrees with the two-pass computation.
func TestAccumulatorMatchesTwoPassProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)%50+2)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		var acc Accumulator
		sum := 0.0
		for _, x := range xs {
			acc.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return acc.N() == len(xs) &&
			math.Abs(acc.Mean()-mean) < 1e-6 &&
			math.Abs(acc.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Errorf("zero accumulator: %+v", a)
	}
	a.Add(5)
	if a.Variance() != 0 {
		t.Error("variance of one sample not 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps into bin 0; 42 into the last
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	out := h.String()
	if !strings.Contains(out, "#") || strings.Count(out, "\n") != 5 {
		t.Errorf("histogram render:\n%s", out)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(9, 1, 3); err == nil {
		t.Error("inverted range accepted")
	}
}
