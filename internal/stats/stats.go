// Package stats provides the small descriptive-statistics toolkit the
// evaluation harness uses: summaries (mean, deviation, quantiles), an
// online accumulator, fixed-width histograms, and normal-approximation
// confidence intervals for replicated experiment runs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the arithmetic mean (0 for empty samples).
	Mean float64
	// StdDev is the sample standard deviation (n-1 denominator; 0 when
	// N < 2).
	StdDev float64
	// Min and Max are the extremes (0 for empty samples).
	Min, Max float64
	// Median is the 50th percentile.
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	s.Mean = acc.Mean()
	s.StdDev = acc.StdDev()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// CI95 returns the normal-approximation 95% confidence half-width for the
// mean (1.96·sd/√n; 0 when N < 2). For the handful of replicas experiments
// use, this slightly understates the Student-t interval — documented, and
// fine for the qualitative shape checks it supports.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics on unsorted input only in
// the sense of returning nonsense; callers sort first (Summarize does).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator computes mean and variance online (Welford's algorithm),
// without retaining samples. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the sample variance (n-1 denominator; 0 when N < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Histogram is a fixed-width-bin histogram over [Lo, Hi); out-of-range
// observations clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: need at least 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// String renders the histogram as an ASCII bar chart.
func (h *Histogram) String() string {
	const maxBar = 40
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = c * maxBar / peak
		}
		fmt.Fprintf(&sb, "[%8.2f, %8.2f) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
