package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// The end-to-end golden corpus: a committed CLF fixture mixing clean,
// malformed, out-of-order, CRLF-terminated, combined-format, filtered, and
// unresolved lines, pinned to checked-in session output. Every ingestion
// variant — batch (sessionize-style Pipeline.ProcessLog) and streaming
// (serve-style Tail/ShardedTail feeding) — must reproduce its golden file
// byte for byte across the whole {workers, shards, depth} sweep, and every
// variant must count the same malformed lines. Regenerate with
//
//	go test ./internal/core -run TestGoldenCorpus -update
var update = flag.Bool("update", false, "rewrite the golden corpus outputs")

// goldenMalformed is the number of intentionally broken lines in
// testdata/golden.log: free-text garbage, a truncated date, a bad month, a
// status below 100, and an unclosed request quote.
const goldenMalformed = 5

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("read golden %s: %v (run with -update to create)", name, err)
	}
	return b
}

func writeOrCompareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath(name), got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want := readGolden(t, name)
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func renderSessions(t *testing.T, sessions []session.Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := session.WriteAll(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func goldenGraph() *webgraph.Graph {
	g, _ := webgraph.PaperFigure1()
	return g
}

// TestGoldenCorpusBatch pins the sessionize-style batch path: ProcessLog
// over every workers/depth combination produces the committed session file
// and stats line.
func TestGoldenCorpusBatch(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()

	ref, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.ProcessLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	writeOrCompareGolden(t, "golden.batch.sessions", renderSessions(t, res.Sessions))
	writeOrCompareGolden(t, "golden.stats", []byte(res.Stats.String()+"\n"))
	if res.Stats.Malformed != goldenMalformed {
		t.Fatalf("batch malformed = %d, want %d", res.Stats.Malformed, goldenMalformed)
	}

	want := readGoldenOrGot(t, "golden.batch.sessions", renderSessions(t, res.Sessions))
	for _, workers := range []int{-1, 2, 4, 9} {
		for _, depth := range []int{0, 1, 3} {
			p, err := NewPipeline(Config{Graph: g, Workers: workers, StreamDepth: depth})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.ProcessLog(bytes.NewReader(log))
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != res.Stats {
				t.Fatalf("workers=%d depth=%d: stats %+v, want %+v", workers, depth, got.Stats, res.Stats)
			}
			if !bytes.Equal(renderSessions(t, got.Sessions), want) {
				t.Fatalf("workers=%d depth=%d: sessions differ from golden", workers, depth)
			}
		}
	}
}

// readGoldenOrGot returns the golden bytes, or (under -update, when the file
// was just rewritten) the freshly produced bytes.
func readGoldenOrGot(t *testing.T, name string, got []byte) []byte {
	if *update {
		return got
	}
	return readGolden(t, name)
}

// TestGoldenCorpusStream pins the serve-style streaming path: every record
// source (ReadAll, ReadAllParallel, Stream, StreamParallel, Tail.Ingest,
// ShardedTail.Ingest) feeding every processor (Tail, ShardedTail) across the
// {workers, shards, depth} sweep emits byte-identical sessions — the
// finalized-during-feed prefix and the Flush tail concatenated — and the
// same malformed count.
func TestGoldenCorpusStream(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()

	// Reference: single Tail fed from the sequential reader.
	refRecords, refBad, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if refBad != goldenMalformed {
		t.Fatalf("ReadAll malformed = %d, want %d", refBad, goldenMalformed)
	}
	refTail, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var refSessions []session.Session
	for _, rec := range refRecords {
		refSessions = append(refSessions, refTail.Push(rec)...)
	}
	refSessions = append(refSessions, refTail.Flush()...)
	writeOrCompareGolden(t, "golden.stream.sessions", renderSessions(t, refSessions))
	want := readGoldenOrGot(t, "golden.stream.sessions", renderSessions(t, refSessions))

	// makeSink builds a processor with push/flush hooks for the sweep.
	type proc struct {
		name  string
		push  func(clf.Record) []session.Session
		flush func() []session.Session
	}
	newProc := func(t *testing.T, shards, workers, depth int) proc {
		cfg := Config{Graph: g, Workers: workers, StreamDepth: depth}
		if shards == 0 {
			tl, err := NewTail(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			return proc{name: "tail", push: tl.Push, flush: tl.Flush}
		}
		st, err := NewShardedTail(cfg, 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		return proc{name: fmt.Sprintf("sharded/%d", shards), push: st.Push, flush: st.Flush}
	}

	type source struct {
		name string
		feed func(t *testing.T, push func(clf.Record) []session.Session, collect *[]session.Session) int
	}
	feedAll := func(records []clf.Record, bad int) func(*testing.T, func(clf.Record) []session.Session, *[]session.Session) int {
		return func(t *testing.T, push func(clf.Record) []session.Session, collect *[]session.Session) int {
			for _, rec := range records {
				*collect = append(*collect, push(rec)...)
			}
			return bad
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, depth := range []int{1, 2, 8} {
			workers, depth := workers, depth
			parRecords, parBad, err := clf.ReadAllParallel(bytes.NewReader(log), workers)
			if err != nil {
				t.Fatal(err)
			}
			sources := []source{
				{"readall", feedAll(refRecords, refBad)},
				{fmt.Sprintf("readallparallel/w%d", workers), feedAll(parRecords, parBad)},
				{"stream", func(t *testing.T, push func(clf.Record) []session.Session, collect *[]session.Session) int {
					bad, err := clf.Stream(bytes.NewReader(log), func(rec clf.Record) {
						*collect = append(*collect, push(rec)...)
					})
					if err != nil {
						t.Fatal(err)
					}
					return bad
				}},
				{fmt.Sprintf("streamparallel/w%d/d%d", workers, depth), func(t *testing.T, push func(clf.Record) []session.Session, collect *[]session.Session) int {
					bad, err := clf.StreamParallel(bytes.NewReader(log), workers, depth, func(rec clf.Record) {
						*collect = append(*collect, push(rec)...)
					})
					if err != nil {
						t.Fatal(err)
					}
					return bad
				}},
			}
			for _, src := range sources {
				for _, shards := range []int{0, 1, 3, 8} {
					p := newProc(t, shards, workers, depth)
					var got []session.Session
					bad := src.feed(t, p.push, &got)
					got = append(got, p.flush()...)
					if bad != goldenMalformed {
						t.Fatalf("%s -> %s (w=%d d=%d): malformed %d, want %d",
							src.name, p.name, workers, depth, bad, goldenMalformed)
					}
					if !bytes.Equal(renderSessions(t, got), want) {
						t.Fatalf("%s -> %s (w=%d d=%d): sessions differ from golden:\n%s",
							src.name, p.name, workers, depth, renderSessions(t, got))
					}
				}
			}

			// The Ingest entry points (the serve -backfill / sessionize
			// -stream path) must land on the same golden bytes.
			cfg := Config{Graph: g, Workers: workers, StreamDepth: depth}
			tl, err := NewTail(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			var got []session.Session
			collect := func(s []session.Session) { got = append(got, s...) }
			bad, err := tl.Ingest(bytes.NewReader(log), collect)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, tl.Flush()...)
			if bad != goldenMalformed || !bytes.Equal(renderSessions(t, got), want) {
				t.Fatalf("tail.Ingest (w=%d d=%d): output differs from golden (malformed=%d)", workers, depth, bad)
			}
			for _, shards := range []int{1, 3, 8} {
				st, err := NewShardedTail(cfg, 0, shards)
				if err != nil {
					t.Fatal(err)
				}
				got = nil
				bad, err := st.Ingest(bytes.NewReader(log), collect)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, st.Flush()...)
				if bad != goldenMalformed || !bytes.Equal(renderSessions(t, got), want) {
					t.Fatalf("sharded.Ingest (w=%d d=%d s=%d): output differs from golden (malformed=%d)",
						workers, depth, shards, bad)
				}
			}
		}
	}
}
