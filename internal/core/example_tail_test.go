package core_test

import (
	"fmt"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/webgraph"
)

// ExampleTail tails a log incrementally: sessions are emitted as soon as a
// user's activity burst closes.
func ExampleTail() {
	g, _ := webgraph.PaperFigure1()
	tl, err := core.NewTail(core.Config{Graph: g}, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	push := func(uri string, at time.Time) {
		rec := clf.Record{
			Host: "10.0.0.1", Time: at, Method: "GET", URI: uri,
			Protocol: "HTTP/1.1", Status: 200, Bytes: 1,
		}
		for _, s := range tl.Push(rec) {
			fmt.Println("closed:", s)
		}
	}
	push("/P1.html", t0)
	push("/P13.html", t0.Add(2*time.Minute))
	push("/P1.html", t0.Add(40*time.Minute)) // >ρ gap closes the burst
	for _, s := range tl.Flush() {
		fmt.Println("flushed:", s)
	}
	// Output:
	// closed: 10.0.0.1:[0 1]
	// flushed: 10.0.0.1:[0]
}
