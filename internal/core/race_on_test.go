//go:build race

package core

// raceEnabled scales down the bounded-memory workload under -race, which
// slows parsing roughly an order of magnitude.
const raceEnabled = true
