package core

import (
	"sort"
	"sync"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// routedRec is one record after the pre-shard stages (filter, resolve, key),
// tagged with its position in the batch so cross-shard output can be merged
// back into arrival order.
type routedRec struct {
	seq  int32
	page webgraph.PageID
	user string
	at   time.Time
}

// seqSessions pairs the sessions one record finalized with that record's
// batch position.
type seqSessions struct {
	seq      int32
	sessions []session.Session
}

// batchScratch is the reusable staging area of one PushBatch call: the
// per-shard routing buckets and the cross-shard merge buffer. Pooled because
// PushBatch is safe for concurrent use.
type batchScratch struct {
	routes [][]routedRec
	merged []seqSessions
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// PushBatch feeds a slice of records, returning the sessions they finalized
// in exactly the order a record-at-a-time Push loop would have returned
// them. The pre-shard stages (filter, resolve, key, shard hash) run once per
// record on the calling goroutine, but each shard's lock is taken once per
// batch — not once per record — and stage counters and metrics flush once
// per batch. Safe for concurrent use; the input slice is not retained.
func (st *ShardedTail) PushBatch(recs []clf.Record) []session.Session {
	return st.pushBatchInto(nil, recs)
}

// PushBatchInto is PushBatch appending onto dst, for callers that hand the
// result straight to a SessionSink and recycle the buffer (the sink contract
// forbids retention): long-running drain loops stay allocation-free on the
// output side. Pass dst[:0] to reuse capacity across batches.
func (st *ShardedTail) PushBatchInto(dst []session.Session, recs []clf.Record) []session.Session {
	return st.pushBatchInto(dst, recs)
}

// pushBatchInto is PushBatch appending onto dst: the streaming ingest loop
// passes one recycled buffer so steady-state batches allocate no output
// slice at all (the sink contract forbids retention).
func (st *ShardedTail) pushBatchInto(dst []session.Session, recs []clf.Record) []session.Session {
	if len(recs) == 0 {
		return dst
	}
	st.records.Add(int64(len(recs)))
	metricTailRecords.Add(int64(len(recs)))

	scr := batchScratchPool.Get().(*batchScratch)
	if len(scr.routes) != len(st.shards) {
		scr.routes = make([][]routedRec, len(st.shards))
	}

	// Stage and bucket: filter → resolve → key → shard, all pure functions,
	// outside any lock.
	var filtered, unresolved int64
	for i := range recs {
		rec := &recs[i]
		if st.cfg.Filter != nil && !st.cfg.Filter(*rec) {
			filtered++
			continue
		}
		page, ok := st.cfg.Resolver(rec.URI)
		if !ok {
			unresolved++
			continue
		}
		user := st.cfg.Key(*rec)
		si := shardOf(user, len(st.shards))
		scr.routes[si] = append(scr.routes[si], routedRec{seq: int32(i), page: page, user: user, at: rec.Time})
	}
	if filtered != 0 {
		st.filtered.Add(filtered)
	}
	if unresolved != 0 {
		st.unresolved.Add(unresolved)
	}

	touched := 0
	last := -1
	for si := range scr.routes {
		if len(scr.routes[si]) > 0 {
			touched++
			last = si
		}
	}

	out := dst
	switch {
	case touched == 0:
		// Everything filtered or unresolved.
	case touched == 1:
		// Single-shard fast path (always taken at shards == 1): per-shard
		// processing order is batch order, so no merge is needed.
		sh := st.shards[last]
		route := scr.routes[last]
		sh.mu.Lock()
		for i := range route {
			r := &route[i]
			out = sh.tail.pushResolved(out, r.user, r.page, r.at)
		}
		sh.tail.syncMetrics()
		sh.mu.Unlock()
	default:
		// One lock acquisition per touched shard; finalized sessions carry
		// their record's batch position and are merged back into arrival
		// order afterwards, making the output byte-identical to the
		// single-record path.
		merged := scr.merged[:0]
		for si := range scr.routes {
			route := scr.routes[si]
			if len(route) == 0 {
				continue
			}
			sh := st.shards[si]
			sh.mu.Lock()
			for i := range route {
				r := &route[i]
				if s := sh.tail.pushResolved(nil, r.user, r.page, r.at); len(s) > 0 {
					merged = append(merged, seqSessions{seq: r.seq, sessions: s})
				}
			}
			sh.tail.syncMetrics()
			sh.mu.Unlock()
		}
		if len(merged) > 0 {
			sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
			for i := range merged {
				out = append(out, merged[i].sessions...)
				merged[i].sessions = nil
			}
		}
		scr.merged = merged
	}

	for si := range scr.routes {
		route := scr.routes[si]
		for i := range route {
			route[i].user = "" // drop string references while pooled
		}
		scr.routes[si] = route[:0]
	}
	scr.merged = scr.merged[:0]
	batchScratchPool.Put(scr)
	return out
}
