package core

import (
	"bytes"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/plan"
	"smartsra/internal/session"
)

// TestPlanGoldenEquivalence pins the planner's no-output-change contract:
// for machine shapes from 1 to 16 cores and every input kind, the
// auto-planned configuration — batch pipeline, Sessionizer ingest, and the
// sequential-fallback path alike — emits bytes identical to the committed
// golden corpus, i.e. to the sequential reference and (transitively,
// through TestGoldenCorpusBatch/Stream) to every explicit {workers, shards,
// depth} combination the harness sweeps. Runs under -race in CI.
func TestPlanGoldenEquivalence(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	wantBatch := readGolden(t, "golden.batch.sessions")
	wantStream := readGolden(t, "golden.stream.sessions")

	inputs := []plan.Input{
		{Cores: 1, SizeBytes: int64(len(log)), Kind: plan.KindFile},
		{Cores: 2, SizeBytes: int64(len(log)), Kind: plan.KindFile},
		{Cores: 4, SizeBytes: -1, Kind: plan.KindPipe},
		{Cores: 8, SizeBytes: 512 << 20, Kind: plan.KindFile}, // pretend-huge: full parallel plan
		{Cores: 16, SizeBytes: 6 << 20, Kind: plan.KindFile},  // shrunken chunks
		{Cores: 4, SizeBytes: -1, Kind: plan.KindLive, Feeders: 8},
	}
	for _, in := range inputs {
		for _, calibrated := range []bool{false, true} {
			pl := plan.Decide(in)
			if calibrated {
				// The probe may flip the plan to sequential depending on this
				// machine — either verdict must land on the same bytes.
				pl = plan.DecideCalibrated(in, bytes.Repeat(log, 1+(512<<10)/len(log)))
			}
			cfg := Config{Graph: g}.WithPlan(pl)

			p, err := NewPipeline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.ProcessLog(bytes.NewReader(log))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(renderSessions(t, res.Sessions), wantBatch) {
				t.Fatalf("plan %+v (calibrated=%v): batch output differs from golden", pl, calibrated)
			}
			if res.Stats.Malformed != goldenMalformed {
				t.Fatalf("plan %+v: malformed = %d, want %d", pl, res.Stats.Malformed, goldenMalformed)
			}

			for _, concurrent := range []bool{false, true} {
				st, err := NewSessionizer(cfg, 0, pl.Shards, concurrent)
				if err != nil {
					t.Fatal(err)
				}
				var got []session.Session
				bad, err := st.Ingest(bytes.NewReader(log), func(s []session.Session) {
					got = append(got, s...)
				})
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, st.Flush()...)
				if bad != goldenMalformed || !bytes.Equal(renderSessions(t, got), wantStream) {
					t.Fatalf("plan %+v (concurrent=%v): stream output differs from golden (malformed=%d)",
						pl, concurrent, bad)
				}
			}
		}
	}
}

// TestNewSessionizerPicksProcessor: the sequential single-shard plan gets a
// plain Tail, anything concurrent or sharded gets the lock-striped
// ShardedTail.
func TestNewSessionizerPicksProcessor(t *testing.T) {
	g := goldenGraph()
	cfg := Config{Graph: g}
	s, err := NewSessionizer(cfg, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Tail); !ok {
		t.Fatalf("1 shard, not concurrent: got %T, want *Tail", s)
	}
	s, err = NewSessionizer(cfg, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*ShardedTail); !ok {
		t.Fatalf("concurrent: got %T, want *ShardedTail", s)
	}
	s, err = NewSessionizer(cfg, 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := s.(*ShardedTail); !ok || st.Shards() != 4 {
		t.Fatalf("4 shards: got %T, want 4-shard *ShardedTail", s)
	}
}

// TestSessionizerConcurrentExpire: the ShardedTail a concurrent plan
// produces tolerates Expire racing Ingest — the sessionize -stream periodic
// expiry path — without corrupting output counts (data races are caught by
// the suite's -race run).
func TestSessionizerConcurrentExpire(t *testing.T) {
	g := goldenGraph()
	log := readGolden(t, "golden.log")
	st, err := NewSessionizer(Config{Graph: g}, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				st.Expire(time.Now())
			}
		}
	}()
	var got []session.Session
	if _, err := st.Ingest(bytes.NewReader(log), func(s []session.Session) {
		got = append(got, s...)
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	got = append(got, st.Flush()...)
	// The golden log's records are historical, so the racing wall-clock
	// Expire closes bursts at arbitrary moments and the session split may
	// legitimately differ from the reference — but every record must still
	// be consumed and nothing may deadlock or race.
	refRecords, _, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Records; got != len(refRecords) {
		t.Fatalf("racing Expire lost records: processed %d, want %d", got, len(refRecords))
	}
	if st.Buffered() != 0 {
		t.Fatalf("%d entries still buffered after Flush", st.Buffered())
	}
	if len(got) == 0 {
		t.Fatal("no sessions emitted")
	}
}
