//go:build !race

package core

// raceEnabled scales down the bounded-memory workload under -race.
const raceEnabled = false
