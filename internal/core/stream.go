package core

import (
	"io"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// SessionSink consumes sessions as they finalize during streaming
// ingestion. Implementations must not retain the slice past the call.
type SessionSink func([]session.Session)

// DiscardSessions is the sink for callers that only want the side effects
// (metrics, stats) of streaming ingestion.
func DiscardSessions([]session.Session) {}

// Ingest streams a CLF log into the Tail through the bounded-memory
// parallel parser: the input is parsed in line-aligned chunks on
// Config.Workers goroutines and delivered in input order through a channel
// of depth Config.StreamDepth straight into Push, so heap stays bounded by
// (workers + depth) chunks no matter how long the log is — nothing is
// materialized. sink receives sessions as records finalize them (nil means
// DiscardSessions); it runs on the calling goroutine. The Tail is NOT
// flushed: call Flush (or keep pushing) afterwards, matching live-tail use.
//
// The emitted sessions are byte-identical to pushing clf.ReadAll's records
// one by one, for any workers/depth — the golden-corpus and fuzz harnesses
// pin this.
func (t *Tail) Ingest(r io.Reader, sink SessionSink) (malformed int, err error) {
	return ingest(r, t.cfg, sink, t, nil)
}

// IngestOffsets is Ingest with replay-offset reporting for checkpointing
// callers: progress runs on the delivery goroutine after every line-aligned
// chunk, with the byte offset (relative to r's start) whose records — and
// the sessions they finalized — have been fully pushed and sunk. At that
// moment Snapshot() is exactly consistent with the offset, which is the
// invariant crash recovery needs.
func (t *Tail) IngestOffsets(r io.Reader, sink SessionSink, progress func(offset int64)) (malformed int, err error) {
	return ingest(r, t.cfg, sink, t, progress)
}

// IngestFiles streams an ordered multi-file log set — plain, gzip, or mixed,
// as log rotation produces — into the Tail through the zero-copy source
// layer: plain files are served as mmap windows (no line is copied between
// read and parse), gzip members decode ahead of the parse pool, and the
// emitted sessions are byte-identical to ingesting the decompressed
// concatenation through Ingest. start resumes mid-set; progress (optional)
// receives the line-aligned clf.FilePos each chunk completes at, and may
// return a non-nil error to abort the stream — the checkpointing caller's
// clean-stop lever.
func (t *Tail) IngestFiles(paths []string, start clf.FilePos, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFiles(paths, start, t.cfg, sink, t, progress)
}

// Ingest is Tail.Ingest on the sharded processor. Parsing fans out over
// Config.Workers; Push itself is invoked from the single delivery
// goroutine, so per-user arrival order — the determinism contract — is
// preserved while the parse stage runs at full parallelism. Concurrent
// Push/Expire from other goroutines remains safe during ingestion.
func (st *ShardedTail) Ingest(r io.Reader, sink SessionSink) (malformed int, err error) {
	return ingest(r, st.cfg, sink, st, nil)
}

// IngestOffsets is Tail.IngestOffsets on the sharded processor.
func (st *ShardedTail) IngestOffsets(r io.Reader, sink SessionSink, progress func(offset int64)) (malformed int, err error) {
	return ingest(r, st.cfg, sink, st, progress)
}

// IngestFiles is Tail.IngestFiles on the sharded processor.
func (st *ShardedTail) IngestFiles(paths []string, start clf.FilePos, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFiles(paths, start, st.cfg, sink, st, progress)
}

// pusher is the slice of the Sessionizer surface ingestion needs.
// pushBatchInto appends onto a caller-recycled buffer; see chunkFeeder.
type pusher interface {
	Push(clf.Record) []session.Session
	pushBatchInto(dst []session.Session, recs []clf.Record) []session.Session
}

// chunkFeeder builds the per-chunk delivery function ingestion hands to the
// clf chunk pipeline, honoring Config.BatchRecords: 1 loops Push per record
// (checkpoint consistency and sink latency identical to the legacy path),
// <= 0 hands the whole chunk to PushBatch, > 1 slices the chunk into
// sub-batches of at most that many records. Output is identical for every
// setting — PushBatch is pinned byte-identical to a Push loop.
func chunkFeeder(cfg Config, p pusher, sink SessionSink) func([]clf.Record) {
	batch := cfg.BatchRecords
	if batch == 1 {
		return func(recs []clf.Record) {
			for i := range recs {
				if out := p.Push(recs[i]); len(out) > 0 {
					sink(out)
				}
			}
		}
	}
	// One output buffer for the whole ingestion: the sink must not retain
	// the slice past the call, so each batch reuses the previous one's
	// storage and the steady state allocates nothing per batch.
	var buf []session.Session
	return func(recs []clf.Record) {
		for len(recs) > 0 {
			n := len(recs)
			if batch > 1 && n > batch {
				n = batch
			}
			buf = p.pushBatchInto(buf[:0], recs[:n])
			if len(buf) > 0 {
				sink(buf)
			}
			recs = recs[n:]
		}
	}
}

// ingest wires the clf chunked stream into a sessionizer.
func ingest(r io.Reader, cfg Config, sink SessionSink, p pusher, progress func(int64)) (int, error) {
	if sink == nil {
		sink = DiscardSessions
	}
	feed := chunkFeeder(cfg, p, sink)
	if cfg.BatchRecords == 1 {
		// Per-record delivery keeps the interactive-pipe scanner degrade
		// alive inside clf (workers == 1, no progress): records surface as
		// lines arrive instead of when a chunk fills.
		return clf.StreamParallelOffsetsChunked(r, cfg.effectiveWorkers(), cfg.effectiveStreamDepth(), cfg.StreamChunkBytes, func(rec clf.Record) {
			if out := p.Push(rec); len(out) > 0 {
				sink(out)
			}
		}, progress)
	}
	return clf.StreamChunked(r, cfg.effectiveWorkers(), cfg.effectiveStreamDepth(), cfg.StreamChunkBytes, feed, progress)
}

// ingestFiles wires the clf multi-file chunked stream into a sessionizer.
func ingestFiles(paths []string, start clf.FilePos, cfg Config, sink SessionSink, p pusher, progress func(clf.FilePos) error) (int, error) {
	if sink == nil {
		sink = DiscardSessions
	}
	return clf.StreamFilesChunked(paths, clf.StreamConfig{
		Workers:    cfg.effectiveWorkers(),
		Depth:      cfg.effectiveStreamDepth(),
		ChunkBytes: cfg.StreamChunkBytes,
		Start:      start,
	}, chunkFeeder(cfg, p, sink), progress)
}
