package core

import (
	"io"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// SessionSink consumes sessions as they finalize during streaming
// ingestion. Implementations must not retain the slice past the call.
type SessionSink func([]session.Session)

// DiscardSessions is the sink for callers that only want the side effects
// (metrics, stats) of streaming ingestion.
func DiscardSessions([]session.Session) {}

// Ingest streams a CLF log into the Tail through the bounded-memory
// parallel parser: the input is parsed in line-aligned chunks on
// Config.Workers goroutines and delivered in input order through a channel
// of depth Config.StreamDepth straight into Push, so heap stays bounded by
// (workers + depth) chunks no matter how long the log is — nothing is
// materialized. sink receives sessions as records finalize them (nil means
// DiscardSessions); it runs on the calling goroutine. The Tail is NOT
// flushed: call Flush (or keep pushing) afterwards, matching live-tail use.
//
// The emitted sessions are byte-identical to pushing clf.ReadAll's records
// one by one, for any workers/depth — the golden-corpus and fuzz harnesses
// pin this.
func (t *Tail) Ingest(r io.Reader, sink SessionSink) (malformed int, err error) {
	return ingest(r, t.cfg, sink, t.Push, nil)
}

// IngestOffsets is Ingest with replay-offset reporting for checkpointing
// callers: progress runs on the delivery goroutine after every line-aligned
// chunk, with the byte offset (relative to r's start) whose records — and
// the sessions they finalized — have been fully pushed and sunk. At that
// moment Snapshot() is exactly consistent with the offset, which is the
// invariant crash recovery needs.
func (t *Tail) IngestOffsets(r io.Reader, sink SessionSink, progress func(offset int64)) (malformed int, err error) {
	return ingest(r, t.cfg, sink, t.Push, progress)
}

// IngestFiles streams an ordered multi-file log set — plain, gzip, or mixed,
// as log rotation produces — into the Tail through the zero-copy source
// layer: plain files are served as mmap windows (no line is copied between
// read and parse), gzip members decode ahead of the parse pool, and the
// emitted sessions are byte-identical to ingesting the decompressed
// concatenation through Ingest. start resumes mid-set; progress (optional)
// receives the line-aligned clf.FilePos each chunk completes at, and may
// return a non-nil error to abort the stream — the checkpointing caller's
// clean-stop lever.
func (t *Tail) IngestFiles(paths []string, start clf.FilePos, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFiles(paths, start, t.cfg, sink, t.Push, progress)
}

// Ingest is Tail.Ingest on the sharded processor. Parsing fans out over
// Config.Workers; Push itself is invoked from the single delivery
// goroutine, so per-user arrival order — the determinism contract — is
// preserved while the parse stage runs at full parallelism. Concurrent
// Push/Expire from other goroutines remains safe during ingestion.
func (st *ShardedTail) Ingest(r io.Reader, sink SessionSink) (malformed int, err error) {
	return ingest(r, st.cfg, sink, st.Push, nil)
}

// IngestOffsets is Tail.IngestOffsets on the sharded processor.
func (st *ShardedTail) IngestOffsets(r io.Reader, sink SessionSink, progress func(offset int64)) (malformed int, err error) {
	return ingest(r, st.cfg, sink, st.Push, progress)
}

// IngestFiles is Tail.IngestFiles on the sharded processor.
func (st *ShardedTail) IngestFiles(paths []string, start clf.FilePos, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFiles(paths, start, st.cfg, sink, st.Push, progress)
}

// ingest wires clf.StreamParallelOffsets into a push function.
func ingest(r io.Reader, cfg Config, sink SessionSink, push func(clf.Record) []session.Session, progress func(int64)) (int, error) {
	if sink == nil {
		sink = DiscardSessions
	}
	return clf.StreamParallelOffsetsChunked(r, cfg.effectiveWorkers(), cfg.effectiveStreamDepth(), cfg.StreamChunkBytes, func(rec clf.Record) {
		if out := push(rec); len(out) > 0 {
			sink(out)
		}
	}, progress)
}

// ingestFiles wires clf.StreamFiles into a push function.
func ingestFiles(paths []string, start clf.FilePos, cfg Config, sink SessionSink, push func(clf.Record) []session.Session, progress func(clf.FilePos) error) (int, error) {
	if sink == nil {
		sink = DiscardSessions
	}
	return clf.StreamFiles(paths, clf.StreamConfig{
		Workers:    cfg.effectiveWorkers(),
		Depth:      cfg.effectiveStreamDepth(),
		ChunkBytes: cfg.StreamChunkBytes,
		Start:      start,
	}, func(rec clf.Record) {
		if out := push(rec); len(out) > 0 {
			sink(out)
		}
	}, progress)
}
