package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// ShardedTail is a Tail that scales with cores: each user key hashes to one
// of N shards, and each shard owns its own buffer map, mutex, and Tail, so
// concurrent feeders only contend when they land on the same shard. The
// cleaning filter, URI resolution, and user keying run in the caller's
// goroutine before the shard lock is taken (every Config stage is a pure
// function, see Pipeline), keeping the critical section to the buffer
// append.
//
// Because a user lives in exactly one shard, per-user processing is
// identical to a single Tail's; Flush and Expire merge the shard outputs
// back into global user order, so the emitted sessions are byte-identical
// to a single Tail fed the same records, for any shard count.
type ShardedTail struct {
	cfg    Config
	rho    time.Duration
	shards []*tailShard
	// Pre-shard stage counters are process-shared, so they are atomic.
	records    atomic.Int64
	filtered   atomic.Int64
	unresolved atomic.Int64
}

// tailShard pairs one Tail with the mutex that serializes access to it.
type tailShard struct {
	mu   sync.Mutex
	tail *Tail
}

// NewShardedTail builds a concurrent streaming processor from the same
// Config as NewTail plus the shard count (<= 0 means GOMAXPROCS, capped at
// a small multiple so tiny machines don't pay for empty maps).
func NewShardedTail(cfg Config, rho time.Duration, shards int) (*ShardedTail, error) {
	if shards <= 0 {
		shards = defaultShardCount()
	}
	st := &ShardedTail{shards: make([]*tailShard, shards)}
	for i := range st.shards {
		t, err := NewTail(cfg, rho)
		if err != nil {
			return nil, fmt.Errorf("core: sharded tail: %w", err)
		}
		st.shards[i] = &tailShard{tail: t}
	}
	st.cfg = st.shards[0].tail.cfg // defaulted by NewTail
	st.rho = st.shards[0].tail.rho
	return st, nil
}

// Shards returns the shard count.
func (st *ShardedTail) Shards() int { return len(st.shards) }

// Push feeds one record, returning any sessions finalized by its arrival.
// It is safe for concurrent use; sessions of one user are always returned
// to exactly one caller (the one whose record closed the burst). Bulk
// feeders should prefer PushBatch, which pays the lock and metrics costs
// once per batch.
func (st *ShardedTail) Push(rec clf.Record) []session.Session {
	st.records.Add(1)
	metricTailRecords.Inc()
	if st.cfg.Filter != nil && !st.cfg.Filter(rec) {
		st.filtered.Add(1)
		return nil
	}
	page, ok := st.cfg.Resolver(rec.URI)
	if !ok {
		st.unresolved.Add(1)
		return nil
	}
	user := st.cfg.Key(rec)
	sh := st.shards[shardOf(user, len(st.shards))]
	sh.mu.Lock()
	out := sh.tail.pushResolved(nil, user, page, rec.Time)
	sh.tail.syncMetrics()
	sh.mu.Unlock()
	return out
}

// Buffered returns the number of entries currently held in open bursts
// across all shards. It reads each shard's atomic mirror instead of taking
// its lock, so an observability scrape (/debug/metrics) never contends with
// ingestion; the sum is exact whenever no push is mid-flight.
func (st *ShardedTail) Buffered() int {
	var n int64
	for _, sh := range st.shards {
		n += sh.tail.bufferedGauge.Load()
	}
	return int(n)
}

// Expire finalizes every user whose last request is more than ρ before now,
// merging shard outputs into global user order (identical to Tail.Expire).
// Shards expire concurrently, each under its own lock, so a large Expire
// does not serialize behind every shard in turn and concurrent Push calls
// only ever wait for their own shard's slice of the work.
func (st *ShardedTail) Expire(now time.Time) []session.Session {
	return st.drain(func(t *Tail) []session.Session { return t.Expire(now) })
}

// Flush finalizes everything buffered, in user order (identical to
// Tail.Flush). The ShardedTail remains usable afterwards.
func (st *ShardedTail) Flush() []session.Session {
	return st.drain((*Tail).Flush)
}

// drain runs f on every shard — concurrently, each under its own lock — and
// merges the outputs into user order. Per-shard results are collected into
// a slot per shard and concatenated in shard order before the merge, so the
// result is identical to the old sequential drain: each shard's output is
// already sorted by user and a user lives in exactly one shard, so a stable
// sort on user restores the global order a single Tail would have produced,
// without disturbing each user's session order.
func (st *ShardedTail) drain(f func(*Tail) []session.Session) []session.Session {
	parts := make([][]session.Session, len(st.shards))
	if len(st.shards) == 1 {
		sh := st.shards[0]
		sh.mu.Lock()
		parts[0] = f(sh.tail)
		sh.mu.Unlock()
	} else {
		var wg sync.WaitGroup
		for i, sh := range st.shards {
			wg.Add(1)
			go func(i int, sh *tailShard) {
				defer wg.Done()
				sh.mu.Lock()
				parts[i] = f(sh.tail)
				sh.mu.Unlock()
			}(i, sh)
		}
		wg.Wait()
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]session.Session, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// Stats aggregates the counters across shards (plus the pre-shard stage
// counters). It is exact when no Push is concurrently in flight.
func (st *ShardedTail) Stats() Stats {
	stats := Stats{
		Records:    int(st.records.Load()),
		Filtered:   int(st.filtered.Load()),
		Unresolved: int(st.unresolved.Load()),
	}
	for _, sh := range st.shards {
		sh.mu.Lock()
		s := sh.tail.Stats()
		sh.mu.Unlock()
		stats.Users += s.Users
		stats.Sessions += s.Sessions
	}
	return stats
}

// defaultShardCount sizes the shard set to the scheduler's parallelism.
func defaultShardCount() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// shardOf maps a user key to a shard index via FNV-1a (inlined to avoid the
// hash.Hash32 allocation per record).
func shardOf(user string, shards int) int {
	if shards == 1 {
		// Single-shard mode (the planner's sequential fallback): nothing to
		// route, skip the hash.
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}
