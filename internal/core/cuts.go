package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// ExpiryCut records one timed Expire a live sessionizer performed, placed
// exactly in its record stream: after Records records had been pushed (and
// before the next one), Expire(At) ran and its sessions were emitted. A run
// that journals every cut makes periodic expiry replayable — an offline pass
// over the same records that applies Expire(At) at the same boundaries
// reproduces the live output byte for byte, because both runs perform the
// identical operation sequence on the same deterministic state machine.
//
// The boundary is a record count, not a byte offset, so cuts compose with
// multi-file input sets, backfill prologues, and gzip members: whatever the
// source, the Nth record pushed is the Nth record pushed.
type ExpiryCut struct {
	// Seq orders cuts within a run (1-based, strictly increasing). Crash
	// recovery uses it to skip cuts already baked into a restored snapshot:
	// a checkpoint records the last applied Seq, and replay re-applies only
	// later ones.
	Seq int64
	// Records is the number of records the sessionizer had been fed when the
	// cut was taken. The cut applies after record Records and before record
	// Records+1.
	Records int64
	// At is the wall-clock cutoff Expire ran with.
	At time.Time
}

// AppendCut writes one cut journal line. The format is a plain text record —
// "cut <seq> <records> <unixnano>\n" — so a torn final line from a crash is
// detectable (no trailing newline) and the journal remains greppable.
func AppendCut(w io.Writer, c ExpiryCut) error {
	_, err := fmt.Fprintf(w, "cut %d %d %d\n", c.Seq, c.Records, c.At.UnixNano())
	return err
}

// ReadCuts parses a cut journal. A final line without a terminating newline
// is a torn append from a crash and is ignored — every complete line before
// it is still valid. Any malformed complete line is an error: the journal is
// machine-written, so a bad line means corruption, and replaying around it
// would silently produce a different session stream.
func ReadCuts(r io.Reader) ([]ExpiryCut, error) {
	var cuts []ExpiryCut
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// No newline: torn final append, ignore it.
			return cuts, nil
		}
		if err != nil {
			return nil, err
		}
		var c ExpiryCut
		var nanos int64
		if _, err := fmt.Sscanf(line, "cut %d %d %d", &c.Seq, &c.Records, &nanos); err != nil {
			return nil, fmt.Errorf("core: cut journal line %d: %q: %w", len(cuts)+1, line, err)
		}
		if c.Seq <= 0 || c.Records < 0 {
			return nil, fmt.Errorf("core: cut journal line %d: non-positive seq or negative records: %q", len(cuts)+1, line)
		}
		c.At = time.Unix(0, nanos)
		cuts = append(cuts, c)
	}
}

// CutsAfter returns the cuts with Seq > seq, sorted by Seq — the suffix a
// crash recovery must re-apply on top of a snapshot that recorded seq as its
// last applied cut.
func CutsAfter(cuts []ExpiryCut, seq int64) []ExpiryCut {
	out := make([]ExpiryCut, 0, len(cuts))
	for _, c := range cuts {
		if c.Seq > seq {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// cutPusher is the processor surface cut replay needs: batched pushes plus
// timed expiry. Tail and ShardedTail both satisfy it.
type cutPusher interface {
	pusher
	Expire(now time.Time) []session.Session
}

// cutFeeder wraps the chunk-delivery function with cut application: records
// are counted as they are pushed (starting from base, the restored
// snapshot's record count), and whenever the next cut's boundary is reached
// the batch is split there, Expire(cut.At) runs, and its sessions go to the
// sink in place — exactly the interleaving the live run journaled. Batches
// are delivered through pushBatchInto, whose output is pinned byte-identical
// to a record-at-a-time Push loop, so splitting never changes emission.
//
// The returned flush applies any cuts at or past the final record count
// (expiry that fired after the last record arrived); call it after the
// stream ends, before Flush.
func cutFeeder(p cutPusher, sink SessionSink, base int64, cuts []ExpiryCut) (feed func([]clf.Record), flush func()) {
	count := base
	ci := 0
	var buf []session.Session
	applyDue := func() {
		for ci < len(cuts) && cuts[ci].Records <= count {
			if out := p.Expire(cuts[ci].At); len(out) > 0 {
				sink(out)
			}
			ci++
		}
	}
	feed = func(recs []clf.Record) {
		for len(recs) > 0 {
			applyDue()
			n := len(recs)
			if ci < len(cuts) {
				if room := cuts[ci].Records - count; int64(n) > room {
					n = int(room)
				}
			}
			buf = p.pushBatchInto(buf[:0], recs[:n])
			if len(buf) > 0 {
				sink(buf)
			}
			count += int64(n)
			recs = recs[n:]
		}
	}
	flush = func() { applyDue() }
	return feed, flush
}

// IngestFilesCuts is IngestFiles with timed-expiry replay: base is the
// record count already in the Tail (0 for a fresh one, the restored
// snapshot's Stats.Records after recovery) and cuts are the journaled
// expiries to apply at their recorded record boundaries, in order. With the
// cuts a live run journaled, the emitted session stream is byte-identical to
// that run's — periodic expiry stops being a source of divergence and
// becomes part of the replayed input.
func (t *Tail) IngestFilesCuts(paths []string, start clf.FilePos, base int64, cuts []ExpiryCut, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFilesCuts(paths, start, t.cfg, base, cuts, sink, t, progress)
}

// IngestFilesCuts is Tail.IngestFilesCuts on the sharded processor.
func (st *ShardedTail) IngestFilesCuts(paths []string, start clf.FilePos, base int64, cuts []ExpiryCut, sink SessionSink, progress func(clf.FilePos) error) (malformed int, err error) {
	return ingestFilesCuts(paths, start, st.cfg, base, cuts, sink, st, progress)
}

// ingestFilesCuts wires the clf multi-file chunked stream through a
// cut-splitting feeder.
func ingestFilesCuts(paths []string, start clf.FilePos, cfg Config, base int64, cuts []ExpiryCut, sink SessionSink, p cutPusher, progress func(clf.FilePos) error) (int, error) {
	if sink == nil {
		sink = DiscardSessions
	}
	feed, flush := cutFeeder(p, sink, base, cuts)
	malformed, err := clf.StreamFilesChunked(paths, clf.StreamConfig{
		Workers:    cfg.effectiveWorkers(),
		Depth:      cfg.effectiveStreamDepth(),
		ChunkBytes: cfg.StreamChunkBytes,
		Start:      start,
	}, feed, progress)
	if err != nil {
		return malformed, err
	}
	flush()
	return malformed, nil
}
