package core_test

import (
	"fmt"
	"strings"

	"smartsra/internal/core"
	"smartsra/internal/webgraph"
)

// ExamplePipeline_ProcessLog runs the full reactive pipeline — parse, clean,
// identify users, reconstruct sessions with Smart-SRA — on a small CLF log
// over the paper's Figure 1 topology.
func ExamplePipeline_ProcessLog() {
	g, _ := webgraph.PaperFigure1()
	log := strings.Join([]string{
		`10.0.0.1 - - [02/Jan/2006:12:00:00 +0000] "GET /P1.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:02:00 +0000] "GET /P13.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:03:00 +0000] "GET /style.css HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:04:00 +0000] "GET /P34.html HTTP/1.1" 200 100`,
	}, "\n")

	p, err := core.NewPipeline(core.Config{Graph: g})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := p.ProcessLog(strings.NewReader(log))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Stats)
	for _, s := range res.Sessions {
		fmt.Println(s)
	}
	// Output:
	// records=4 malformed=0 filtered=1 unresolved=0 users=1 sessions=1
	// 10.0.0.1:[0 1 4]
}
