package core

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// writeGoldenFile writes data to dir/name, gzip-compressing when gz is set,
// and returns the path.
func writeGoldenFile(t *testing.T, dir, name string, data []byte, gz bool) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// splitGoldenLines cuts the corpus at line boundaries into n roughly equal
// parts (multi-file semantics complete each file's final line, so only
// line-aligned splits preserve the record stream).
func splitGoldenLines(t *testing.T, log []byte, n int) [][]byte {
	t.Helper()
	lines := bytes.SplitAfter(log, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < n {
		t.Fatalf("corpus has %d lines, cannot split into %d files", len(lines), n)
	}
	per := (len(lines) + n - 1) / n
	var parts [][]byte
	for i := 0; i < len(lines); i += per {
		end := i + per
		if end > len(lines) {
			end = len(lines)
		}
		parts = append(parts, bytes.Join(lines[i:end], nil))
	}
	return parts
}

// TestGoldenCorpusSources pins the on-disk Source layer to the same golden
// bytes as the in-memory readers: the corpus served from a plain file (mmap
// and buffered-reader sources), a gzip copy, and a rotated three-file set
// with a gzip member and a missing final newline, through both the raw
// clf.StreamFiles reader and the Tail/ShardedTail IngestFiles entry points,
// across worker/shard widths.
func TestGoldenCorpusSources(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	want := readGolden(t, "golden.stream.sessions")

	dir := t.TempDir()
	parts := splitGoldenLines(t, log, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	// The first member loses its trailing newline: the reader must complete
	// that record at the rotation boundary, not merge it into the next file.
	layouts := map[string][]string{
		"plain": {writeGoldenFile(t, dir, "whole.log", log, false)},
		"gzip":  {writeGoldenFile(t, dir, "whole.log.gz", log, true)},
		"rotated": {
			writeGoldenFile(t, dir, "part.log.0", bytes.TrimSuffix(parts[0], []byte("\n")), false),
			writeGoldenFile(t, dir, "part.log.1.gz", parts[1], true),
			writeGoldenFile(t, dir, "part.log.2", parts[2], false),
		},
	}

	for name, paths := range layouts {
		for _, noMmap := range []bool{false, true} {
			for _, workers := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s/nommap=%v/w%d", name, noMmap, workers)

				// Raw reader into a single Tail.
				tl, err := NewTail(Config{Graph: g}, 0)
				if err != nil {
					t.Fatal(err)
				}
				var got []session.Session
				bad, err := clf.StreamFiles(paths, clf.StreamConfig{Workers: workers, NoMmap: noMmap},
					func(rec clf.Record) { got = append(got, tl.Push(rec)...) }, nil)
				if err != nil {
					t.Fatalf("%s: StreamFiles: %v", label, err)
				}
				got = append(got, tl.Flush()...)
				if bad != goldenMalformed {
					t.Fatalf("%s: malformed %d, want %d", label, bad, goldenMalformed)
				}
				if !bytes.Equal(renderSessions(t, got), want) {
					t.Fatalf("%s: sessions differ from golden", label)
				}

				// IngestFiles entry points (the sessionize/serve deployment).
				cfg := Config{Graph: g, Workers: workers}
				tl2, err := NewTail(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				got = nil
				collect := func(s []session.Session) { got = append(got, s...) }
				bad, err = tl2.IngestFiles(paths, clf.FilePos{}, collect, nil)
				if err != nil {
					t.Fatalf("%s: Tail.IngestFiles: %v", label, err)
				}
				got = append(got, tl2.Flush()...)
				if bad != goldenMalformed || !bytes.Equal(renderSessions(t, got), want) {
					t.Fatalf("%s: Tail.IngestFiles differs from golden (malformed=%d)", label, bad)
				}

				for _, shards := range []int{1, 3} {
					st, err := NewShardedTail(cfg, 0, shards)
					if err != nil {
						t.Fatal(err)
					}
					got = nil
					bad, err := st.IngestFiles(paths, clf.FilePos{}, collect, nil)
					if err != nil {
						t.Fatalf("%s s=%d: ShardedTail.IngestFiles: %v", label, shards, err)
					}
					got = append(got, st.Flush()...)
					if bad != goldenMalformed || !bytes.Equal(renderSessions(t, got), want) {
						t.Fatalf("%s s=%d: ShardedTail.IngestFiles differs from golden (malformed=%d)",
							label, shards, bad)
					}
				}
			}
		}
	}
}
