package core

import (
	"io"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/plan"
	"smartsra/internal/session"
)

// WithPlan returns a copy of c with the execution knobs set from p. The
// plan never changes output — any {Workers, StreamDepth, StreamChunkBytes}
// is byte-identical to sequential — so applying one is purely a
// throughput/memory decision.
func (c Config) WithPlan(p plan.Plan) Config {
	c.Workers = p.Workers
	c.StreamDepth = p.StreamDepth
	c.StreamChunkBytes = p.ChunkBytes
	c.BatchRecords = p.Batch
	return c
}

// Sessionizer is the streaming-processor surface Tail and ShardedTail
// share: push records (or ingest a whole stream), drain finalized sessions,
// and snapshot/restore for crash recovery. It lets callers pick the
// processor an execution plan calls for without committing to a concrete
// type.
type Sessionizer interface {
	Push(clf.Record) []session.Session
	PushBatch([]clf.Record) []session.Session
	Flush() []session.Session
	Expire(time.Time) []session.Session
	Ingest(io.Reader, SessionSink) (int, error)
	IngestOffsets(io.Reader, SessionSink, func(int64)) (int, error)
	IngestFiles([]string, clf.FilePos, SessionSink, func(clf.FilePos) error) (int, error)
	IngestFilesCuts([]string, clf.FilePos, int64, []ExpiryCut, SessionSink, func(clf.FilePos) error) (int, error)
	Snapshot() TailSnapshot
	Restore(TailSnapshot) error
	Stats() Stats
	Buffered() int
}

var (
	_ Sessionizer = (*Tail)(nil)
	_ Sessionizer = (*ShardedTail)(nil)
)

// NewSessionizer builds the streaming processor a plan calls for: a plain
// Tail when one shard suffices and nothing touches it concurrently, a
// lock-striped ShardedTail otherwise. concurrent forces the ShardedTail
// even single-sharded — Tail is not safe for concurrent use, and the
// single-shard ShardedTail costs only one uncontended lock per record (its
// hash is skipped). Output is byte-identical either way.
func NewSessionizer(cfg Config, rho time.Duration, shards int, concurrent bool) (Sessionizer, error) {
	if shards <= 1 && !concurrent {
		return NewTail(cfg, rho)
	}
	return NewShardedTail(cfg, rho, shards)
}
