package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/metrics"
	"smartsra/internal/webgraph"
)

// A Pipeline is documented safe for concurrent use; the process-wide
// metrics counters must stay exact when many goroutines process logs at
// once (run under -race).
func TestPipelineMetricsUnderConcurrentUse(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	log := strings.Join([]string{
		`10.0.0.1 - - [02/Jan/2006:12:00:00 +0000] "GET /P1.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:02:00 +0000] "GET /P13.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:05:00 +0000] "GET /P34.html HTTP/1.1" 200 100`,
	}, "\n")

	before := metrics.Default.Snapshot()
	ref, err := p.ProcessLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, per = 8, 20
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				res, err := p.ProcessLog(strings.NewReader(log))
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Sessions) != len(ref.Sessions) {
					t.Errorf("sessions = %d, want %d", len(res.Sessions), len(ref.Sessions))
					return
				}
			}
		}()
	}
	wg.Wait()

	after := metrics.Default.Snapshot()
	runs := int64(goroutines*per + 1) // + the reference run
	if got := after.Counters["core.pipeline.records"] - before.Counters["core.pipeline.records"]; got != runs*int64(ref.Stats.Records) {
		t.Errorf("core.pipeline.records delta = %d, want %d", got, runs*int64(ref.Stats.Records))
	}
	if got := after.Counters["core.pipeline.sessions"] - before.Counters["core.pipeline.sessions"]; got != runs*int64(len(ref.Sessions)) {
		t.Errorf("core.pipeline.sessions delta = %d, want %d", got, runs*int64(len(ref.Sessions)))
	}
	if got := after.Counters["clf.scanner.records"] - before.Counters["clf.scanner.records"]; got != runs*int64(ref.Stats.Records) {
		t.Errorf("clf.scanner.records delta = %d, want %d", got, runs*int64(ref.Stats.Records))
	}
}

func TestTailMetrics(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tail, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Default.Snapshot()
	base := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	for i, uri := range []string{"/P1.html", "/P13.html", "/P34.html"} {
		tail.Push(clf.Record{
			Host: "10.0.0.1", Time: base.Add(time.Duration(i) * time.Minute),
			Method: "GET", URI: uri, Protocol: "HTTP/1.1", Status: 200,
		})
	}
	sessions := tail.Flush()
	after := metrics.Default.Snapshot()
	if got := after.Counters["core.tail.records"] - before.Counters["core.tail.records"]; got != 3 {
		t.Errorf("core.tail.records delta = %d, want 3", got)
	}
	want := int64(len(sessions))
	if want == 0 {
		t.Fatal("tail produced no sessions")
	}
	if got := after.Counters["core.tail.sessions"] - before.Counters["core.tail.sessions"]; got != want {
		t.Errorf("core.tail.sessions delta = %d, want %d", got, want)
	}
}
