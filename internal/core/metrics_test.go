package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/metrics"
	"smartsra/internal/webgraph"
)

// A Pipeline is documented safe for concurrent use; the process-wide
// metrics counters must stay exact when many goroutines process logs at
// once (run under -race).
func TestPipelineMetricsUnderConcurrentUse(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	log := strings.Join([]string{
		`10.0.0.1 - - [02/Jan/2006:12:00:00 +0000] "GET /P1.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:02:00 +0000] "GET /P13.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:05:00 +0000] "GET /P34.html HTTP/1.1" 200 100`,
	}, "\n")

	before := metrics.Default.Snapshot()
	ref, err := p.ProcessLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, per = 8, 20
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				res, err := p.ProcessLog(strings.NewReader(log))
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Sessions) != len(ref.Sessions) {
					t.Errorf("sessions = %d, want %d", len(res.Sessions), len(ref.Sessions))
					return
				}
			}
		}()
	}
	wg.Wait()

	after := metrics.Default.Snapshot()
	runs := int64(goroutines*per + 1) // + the reference run
	if got := after.Counters["core.pipeline.records"] - before.Counters["core.pipeline.records"]; got != runs*int64(ref.Stats.Records) {
		t.Errorf("core.pipeline.records delta = %d, want %d", got, runs*int64(ref.Stats.Records))
	}
	if got := after.Counters["core.pipeline.sessions"] - before.Counters["core.pipeline.sessions"]; got != runs*int64(len(ref.Sessions)) {
		t.Errorf("core.pipeline.sessions delta = %d, want %d", got, runs*int64(len(ref.Sessions)))
	}
	if got := after.Counters["clf.scanner.records"] - before.Counters["clf.scanner.records"]; got != runs*int64(ref.Stats.Records) {
		t.Errorf("clf.scanner.records delta = %d, want %d", got, runs*int64(ref.Stats.Records))
	}
}

func TestTailMetrics(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tail, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Default.Snapshot()
	base := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	for i, uri := range []string{"/P1.html", "/P13.html", "/P34.html"} {
		tail.Push(clf.Record{
			Host: "10.0.0.1", Time: base.Add(time.Duration(i) * time.Minute),
			Method: "GET", URI: uri, Protocol: "HTTP/1.1", Status: 200,
		})
	}
	sessions := tail.Flush()
	after := metrics.Default.Snapshot()
	if got := after.Counters["core.tail.records"] - before.Counters["core.tail.records"]; got != 3 {
		t.Errorf("core.tail.records delta = %d, want 3", got)
	}
	want := int64(len(sessions))
	if want == 0 {
		t.Fatal("tail produced no sessions")
	}
	if got := after.Counters["core.tail.sessions"] - before.Counters["core.tail.sessions"]; got != want {
		t.Errorf("core.tail.sessions delta = %d, want %d", got, want)
	}
}

// The buffer-depth gauges: entries buffered rises with pushes, falls when
// bursts close, and the per-user depth watermark records the deepest burst.
func TestTailBufferedGauges(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tail, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Default.Snapshot()
	base := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	push := func(host, uri string, at time.Time) []clf.Record {
		rec := clf.Record{Host: host, Time: at, Method: "GET", URI: uri,
			Protocol: "HTTP/1.1", Status: 200}
		tail.Push(rec)
		return nil
	}
	push("10.0.0.1", "/P1.html", base)
	push("10.0.0.1", "/P13.html", base.Add(time.Minute))
	push("10.0.0.1", "/P34.html", base.Add(2*time.Minute))
	push("10.0.0.2", "/P1.html", base.Add(time.Minute))
	if got := tail.Buffered(); got != 4 {
		t.Errorf("Buffered = %d, want 4", got)
	}
	mid := metrics.Default.Snapshot()
	if got := mid.Gauges["core.tail.buffered.entries"] - before.Gauges["core.tail.buffered.entries"]; got != 4 {
		t.Errorf("buffered.entries delta = %d, want 4", got)
	}
	if got := mid.Gauges["core.tail.buffered.maxdepth"]; got < 3 {
		t.Errorf("buffered.maxdepth = %d, want >= 3", got)
	}
	// A push beyond rho closes user 1's burst: its 3 entries drain, the new
	// entry joins a fresh burst.
	if out := tail.Push(clf.Record{Host: "10.0.0.1", Time: base.Add(time.Hour),
		Method: "GET", URI: "/P1.html", Protocol: "HTTP/1.1", Status: 200}); len(out) == 0 {
		t.Fatal("burst close emitted no sessions")
	}
	if got := tail.Buffered(); got != 2 {
		t.Errorf("Buffered after close = %d, want 2", got)
	}
	tail.Flush()
	if got := tail.Buffered(); got != 0 {
		t.Errorf("Buffered after Flush = %d, want 0", got)
	}
	after := metrics.Default.Snapshot()
	if got := after.Gauges["core.tail.buffered.entries"] - before.Gauges["core.tail.buffered.entries"]; got != 0 {
		t.Errorf("buffered.entries did not return to baseline: delta = %d", got)
	}
}
