package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// simulatedLog produces a realistic record mix for equivalence tests.
func simulatedLog(t *testing.T, seed int64, agents int) (*webgraph.Graph, []clf.Record) {
	t.Helper()
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 60, AvgOutDegree: 5, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = agents
	params.Seed = seed
	sim, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	return g, sim.Log(g)
}

func sessionStrings(sessions []session.Session) []string {
	out := make([]string, len(sessions))
	for i, s := range sessions {
		out[i] = s.String()
	}
	return out
}

// TestShardedTailEquivalentToTail pins the determinism contract: for any
// shard count and any Expire interleaving, a ShardedTail fed sequentially
// emits exactly the sessions a single Tail emits, in the same order.
func TestShardedTailEquivalentToTail(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		g, records := simulatedLog(t, seed, 80)
		for _, shards := range []int{1, 2, 3, 8, 32} {
			for _, expireEvery := range []int{0, 97, 13} {
				ref, err := NewTail(Config{Graph: g}, 0)
				if err != nil {
					t.Fatal(err)
				}
				st, err := NewShardedTail(Config{Graph: g}, 0, shards)
				if err != nil {
					t.Fatal(err)
				}
				var want, got []session.Session
				for i, rec := range records {
					want = append(want, ref.Push(rec)...)
					got = append(got, st.Push(rec)...)
					if expireEvery > 0 && i%expireEvery == expireEvery-1 {
						want = append(want, ref.Expire(rec.Time)...)
						got = append(got, st.Expire(rec.Time)...)
					}
				}
				want = append(want, ref.Flush()...)
				got = append(got, st.Flush()...)

				ws, gs := sessionStrings(want), sessionStrings(got)
				if len(ws) != len(gs) {
					t.Fatalf("seed=%d shards=%d expire=%d: %d vs %d sessions",
						seed, shards, expireEvery, len(gs), len(ws))
				}
				for i := range ws {
					if ws[i] != gs[i] {
						t.Fatalf("seed=%d shards=%d expire=%d: session %d differs:\ntail:    %s\nsharded: %s",
							seed, shards, expireEvery, i, ws[i], gs[i])
					}
				}
				if rs, ss := ref.Stats(), st.Stats(); rs != ss {
					t.Fatalf("seed=%d shards=%d expire=%d: stats differ: tail %+v, sharded %+v",
						seed, shards, expireEvery, rs, ss)
				}
				if ref.Buffered() != st.Buffered() {
					t.Fatalf("buffered differ: %d vs %d", ref.Buffered(), st.Buffered())
				}
			}
		}
	}
}

// TestShardedTailConcurrentFeeders drives a ShardedTail from several
// goroutines (records partitioned by user, so each user's arrival order is
// preserved) and checks the union of emitted sessions equals the single-Tail
// output as a multiset. Run under -race this also pins the locking.
func TestShardedTailConcurrentFeeders(t *testing.T) {
	g, records := simulatedLog(t, 3, 100)

	ref, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []session.Session
	for _, rec := range records {
		want = append(want, ref.Push(rec)...)
	}
	want = append(want, ref.Flush()...)

	st, err := NewShardedTail(Config{Graph: g}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	const feeders = 6
	perFeeder := make([][]clf.Record, feeders)
	for _, rec := range records {
		f := shardOf(rec.Host, feeders)
		perFeeder[f] = append(perFeeder[f], rec)
	}
	var (
		mu  sync.Mutex
		got []session.Session
		wg  sync.WaitGroup
	)
	for _, part := range perFeeder {
		wg.Add(1)
		go func(part []clf.Record) {
			defer wg.Done()
			var local []session.Session
			for _, rec := range part {
				local = append(local, st.Push(rec)...)
			}
			mu.Lock()
			got = append(got, local...)
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	got = append(got, st.Flush()...)

	if len(got) != len(want) {
		t.Fatalf("concurrent feed emitted %d sessions, sequential tail %d", len(got), len(want))
	}
	count := make(map[string]int)
	for _, s := range want {
		count[s.String()]++
	}
	for _, s := range got {
		count[s.String()]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("session multiset differs at %q (%+d)", k, c)
		}
	}
	if rs, ss := ref.Stats(), st.Stats(); rs != ss {
		t.Fatalf("stats differ: tail %+v, sharded %+v", rs, ss)
	}
}

// TestShardedTailConcurrentExpireInterleaving pins the overlapped Expire
// drain: while several feeders push the second half of a time-shifted log,
// several other goroutines concurrently Expire the first half (whose bursts
// are all ρ-complete), poll Buffered/Stats, and finally two goroutines race
// Flush. The construction makes the outcome deterministic — every
// first-half burst is separated from its user's second half by > ρ, so
// whether Expire or the user's next Push closes it, the burst's entries
// (and therefore its sessions) are identical — and the union of everything
// emitted must equal the sequential single-Tail multiset. Run under -race
// this also pins the per-shard locking of the concurrent drain.
func TestShardedTailConcurrentExpireInterleaving(t *testing.T) {
	g, phase1 := simulatedLog(t, 13, 90)

	// Second phase: the same traffic shifted 3ρ past the end of phase one,
	// so every user's cross-phase gap exceeds ρ and Expire(mid) can never
	// touch an open second-phase burst.
	rho := session.DefaultPageStay
	minT, maxT := phase1[0].Time, phase1[0].Time
	for _, rec := range phase1 {
		if rec.Time.Before(minT) {
			minT = rec.Time
		}
		if rec.Time.After(maxT) {
			maxT = rec.Time
		}
	}
	shift := maxT.Sub(minT) + 3*rho
	phase2 := make([]clf.Record, len(phase1))
	for i, rec := range phase1 {
		rec.Time = rec.Time.Add(shift)
		phase2[i] = rec
	}
	mid := maxT.Add(rho + time.Second)

	// Sequential reference: one Tail, both phases in order, one Flush.
	ref, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []session.Session
	for _, rec := range append(append([]clf.Record(nil), phase1...), phase2...) {
		want = append(want, ref.Push(rec)...)
	}
	want = append(want, ref.Flush()...)

	st, err := NewShardedTail(Config{Graph: g}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu  sync.Mutex
		got []session.Session
	)
	emit := func(s []session.Session) {
		if len(s) == 0 {
			return
		}
		mu.Lock()
		got = append(got, s...)
		mu.Unlock()
	}
	const feeders = 5
	partition := func(records []clf.Record) [][]clf.Record {
		parts := make([][]clf.Record, feeders)
		for _, rec := range records {
			f := shardOf(rec.Host, feeders)
			parts[f] = append(parts[f], rec)
		}
		return parts
	}

	// Phase one: concurrent feeders only (no Expire yet — a mid-phase
	// expiry could close a half-arrived burst and break determinism).
	var wg sync.WaitGroup
	for _, part := range partition(phase1) {
		wg.Add(1)
		go func(part []clf.Record) {
			defer wg.Done()
			for _, rec := range part {
				emit(st.Push(rec))
			}
		}(part)
	}
	wg.Wait()

	// Phase two: feeders, three concurrent expirers of the completed first
	// phase, and metric readers, all interleaving freely.
	for _, part := range partition(phase2) {
		wg.Add(1)
		go func(part []clf.Record) {
			defer wg.Done()
			for _, rec := range part {
				emit(st.Push(rec))
			}
		}(part)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit(st.Expire(mid))
			st.Buffered()
			st.Stats()
			emit(st.Expire(mid))
		}()
	}
	wg.Wait()

	// Racing flushes: every remaining burst closes exactly once, split
	// arbitrarily between the two callers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit(st.Flush())
		}()
	}
	wg.Wait()

	if len(got) != len(want) {
		t.Fatalf("emitted %d sessions, sequential tail %d", len(got), len(want))
	}
	count := make(map[string]int)
	for _, s := range want {
		count[s.String()]++
	}
	for _, s := range got {
		count[s.String()]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("session multiset differs at %q (%+d)", k, c)
		}
	}
	// Users counts activations, so the sharded run may exceed the
	// Expire-free reference: each Expire(mid) evicts quiet phase-one users,
	// and any whose phase-two record lands after the eviction re-activate.
	// How many depends on the Push/Expire interleaving; every other counter
	// is exact.
	rs, ss := ref.Stats(), st.Stats()
	if ss.Users < rs.Users {
		t.Fatalf("sharded users %d < reference %d", ss.Users, rs.Users)
	}
	rs.Users, ss.Users = 0, 0
	if rs != ss {
		t.Fatalf("stats differ: tail %+v, sharded %+v", rs, ss)
	}
	if st.Buffered() != 0 {
		t.Fatalf("buffered after flush = %d", st.Buffered())
	}
}

// TestPipelineParallelMatchesSequential pins Pipeline.ProcessLog: the
// Workers knob must not change the result in any way.
func TestPipelineParallelMatchesSequential(t *testing.T) {
	g, records := simulatedLog(t, 5, 120)
	var buf bytes.Buffer
	if err := clf.WriteAll(&buf, records); err != nil {
		t.Fatal(err)
	}
	log := buf.Bytes()

	seq, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.ProcessLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{-1, 2, 4, 9} {
		for _, h := range []heuristics.Reconstructor{nil, heuristics.NewTimeGap()} {
			par, err := NewPipeline(Config{Graph: g, Heuristic: h, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.ProcessLog(bytes.NewReader(log))
			if err != nil {
				t.Fatal(err)
			}
			if h != nil {
				// Different heuristic: only check it ran; equivalence below
				// is against the default-config reference.
				if got.Stats.Records != want.Stats.Records {
					t.Fatalf("workers=%d: records %d vs %d", workers, got.Stats.Records, want.Stats.Records)
				}
				continue
			}
			if got.Stats != want.Stats {
				t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, got.Stats, want.Stats)
			}
			ws, gs := sessionStrings(want.Sessions), sessionStrings(got.Sessions)
			for i := range ws {
				if ws[i] != gs[i] {
					t.Fatalf("workers=%d: session %d differs:\nseq: %s\npar: %s", workers, i, ws[i], gs[i])
				}
			}
			if len(got.Streams) != len(want.Streams) {
				t.Fatalf("workers=%d: %d streams vs %d", workers, len(got.Streams), len(want.Streams))
			}
			for i := range want.Streams {
				if want.Streams[i].User != got.Streams[i].User ||
					len(want.Streams[i].Entries) != len(got.Streams[i].Entries) {
					t.Fatalf("workers=%d: stream %d differs", workers, i)
				}
			}
		}
	}
}

func TestShardedTailValidation(t *testing.T) {
	if _, err := NewShardedTail(Config{}, 0, 4); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := webgraph.PaperFigure1()
	st, err := NewShardedTail(Config{Graph: g}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() < 1 {
		t.Errorf("default shard count = %d", st.Shards())
	}
}
