// Package core is the library's front door: the reactive web usage data
// processing pipeline the paper describes. It chains the substrates —
// Common Log Format parsing (internal/clf), data cleaning, user
// identification (internal/prep), and session reconstruction
// (internal/heuristics, with Smart-SRA as the default) — behind one
// configuration and one call:
//
//	g, _ := webgraph.Decode(topologyFile)
//	p, _ := core.NewPipeline(core.Config{Graph: g})
//	result, _ := p.ProcessLog(logFile)
//	for _, s := range result.Sessions { ... }
package core

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/metrics"
	"smartsra/internal/prep"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Process-wide throughput instrumentation, aggregated across all Pipelines
// and Tails (per-run numbers stay available via Stats). The counters are
// atomic, so concurrent Pipeline use keeps exact totals.
var (
	metricPipelineRecords  = metrics.GetCounter("core.pipeline.records")
	metricPipelineSessions = metrics.GetCounter("core.pipeline.sessions")
	metricTailRecords      = metrics.GetCounter("core.tail.records")
	metricTailSessions     = metrics.GetCounter("core.tail.sessions")
	// metricTailBuffered tracks entries currently buffered in open bursts —
	// the streaming processor's memory exposure. metricTailMaxDepth is the
	// high watermark of any single user's burst depth, the signal that one
	// user (e.g. a merged proxy identity) is accumulating without closing.
	metricTailBuffered = metrics.GetGauge("core.tail.buffered.entries")
	metricTailMaxDepth = metrics.GetGauge("core.tail.buffered.maxdepth")
)

// Config assembles a Pipeline. Graph is required; everything else has
// production defaults.
type Config struct {
	// Graph is the site topology; required (the default heuristic and the
	// URI resolver both need it).
	Graph *webgraph.Graph
	// Heuristic reconstructs sessions; nil means Smart-SRA with the paper's
	// thresholds.
	Heuristic heuristics.Reconstructor
	// Filter cleans records before user identification; nil means
	// clf.StandardCleaning(). Use clf.KeepAll to disable cleaning.
	Filter clf.Filter
	// Key identifies users; nil means prep.ByIP.
	Key prep.UserKey
	// Resolver maps URIs to pages; nil means resolving against Graph labels.
	Resolver prep.Resolver
	// Workers bounds the pipeline's parallelism: log parsing, stream
	// building, and session reconstruction all fan out over this many
	// goroutines, with output identical to the sequential path for any
	// value. Zero keeps the legacy sequential behaviour; negative means
	// GOMAXPROCS.
	Workers int
	// StreamDepth is the depth of the in-order delivery channel used by the
	// bounded-memory streaming ingestion path (Tail.Ingest,
	// ShardedTail.Ingest): how many parsed ~1 MiB chunks may be in flight
	// between the log reader and the session processor. Together with
	// Workers it caps the streaming path's heap at roughly
	// (StreamDepth + Workers) chunks, independent of log length. <= 0 means
	// clf.DefaultStreamDepth. The value never changes the output, only the
	// memory/throughput trade.
	StreamDepth int
	// StreamChunkBytes is the streaming reader's chunk size, which is also
	// the granularity of IngestOffsets progress callbacks — and therefore of
	// checkpoints. <= 0 means the clf default (~1 MiB). Like StreamDepth it
	// never changes the output.
	StreamChunkBytes int
	// BatchRecords selects how ingestion hands parsed records to the
	// sessionizer: 1 feeds Push record-at-a-time (the low-latency choice for
	// interactive pipes, where the batch path would wait for a full chunk
	// before emitting anything); <= 0 hands each parsed chunk to PushBatch
	// whole (the throughput choice — one lock acquisition and one metrics
	// flush per chunk); > 1 splits chunks into sub-batches of at most that
	// many records, trading a little locking for finer sink latency. The
	// knob never changes the emitted sessions, only when they surface.
	BatchRecords int
}

// effectiveWorkers resolves the Workers knob: 0 → 1 (sequential zero
// value), < 0 → GOMAXPROCS, otherwise the explicit count.
func (c Config) effectiveWorkers() int {
	switch {
	case c.Workers == 0:
		return 1
	case c.Workers < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return c.Workers
	}
}

// effectiveStreamDepth resolves the StreamDepth knob.
func (c Config) effectiveStreamDepth() int {
	if c.StreamDepth <= 0 {
		return clf.DefaultStreamDepth
	}
	return c.StreamDepth
}

// Pipeline is an immutable, reusable log-to-sessions processor. It is safe
// for concurrent use: every stage is a pure function of its input.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates cfg and returns a Pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: Config.Graph is required")
	}
	if cfg.Heuristic == nil {
		cfg.Heuristic = heuristics.NewSmartSRA(cfg.Graph)
	}
	if cfg.Filter == nil {
		cfg.Filter = clf.StandardCleaning()
	}
	if cfg.Key == nil {
		cfg.Key = prep.ByIP
	}
	if cfg.Resolver == nil {
		cfg.Resolver = prep.GraphResolver(cfg.Graph)
	}
	return &Pipeline{cfg: cfg}, nil
}

// Result is the outcome of processing one log.
type Result struct {
	// Sessions are the reconstructed sessions across all users.
	Sessions []session.Session
	// Streams are the cleaned per-user request streams the heuristic saw.
	Streams []session.Stream
	// Stats describes what happened at each stage.
	Stats Stats
}

// Stats counts the pipeline stages' effects.
type Stats struct {
	// Records is the number of well-formed CLF records read.
	Records int
	// Malformed is the number of unparseable log lines skipped.
	Malformed int
	// Filtered is the number of records dropped by cleaning.
	Filtered int
	// Unresolved is the number of cleaned records whose URI matched no page.
	Unresolved int
	// Users is the number of distinct users identified.
	Users int
	// Sessions is the number of reconstructed sessions.
	Sessions int
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("records=%d malformed=%d filtered=%d unresolved=%d users=%d sessions=%d",
		s.Records, s.Malformed, s.Filtered, s.Unresolved, s.Users, s.Sessions)
}

// ProcessLog runs the full pipeline on a CLF log: parse (skipping malformed
// lines), clean, identify users, order each user's requests, and reconstruct
// sessions. It fails only on read errors; data-quality issues are counted in
// Stats.
func (p *Pipeline) ProcessLog(r io.Reader) (*Result, error) {
	records, malformed, err := clf.ReadAllParallel(r, p.cfg.effectiveWorkers())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res, err := p.ProcessRecords(records)
	if err != nil {
		return nil, err
	}
	res.Stats.Malformed = malformed
	return res, nil
}

// ProcessRecords runs the pipeline on already-parsed records.
func (p *Pipeline) ProcessRecords(records []clf.Record) (*Result, error) {
	workers := p.cfg.effectiveWorkers()
	streams, pstats, err := prep.BuildStreamsWith(records, p.cfg.Resolver, prep.Options{
		Filter: p.cfg.Filter,
		Key:    p.cfg.Key,
	}, workers)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	start := time.Now()
	sessions := heuristics.ReconstructAllWith(p.cfg.Heuristic, streams, workers)
	metrics.GetHistogram(metrics.WithLabels(
		"core.pipeline.reconstruct.seconds", "heur", p.cfg.Heuristic.Name(),
	)).ObserveDuration(time.Since(start))
	metricPipelineRecords.Add(int64(pstats.Records))
	metricPipelineSessions.Add(int64(len(sessions)))
	return &Result{
		Sessions: sessions,
		Streams:  streams,
		Stats: Stats{
			Records:    pstats.Records,
			Filtered:   pstats.Filtered,
			Unresolved: pstats.Unresolved,
			Users:      pstats.Users,
			Sessions:   len(sessions),
		},
	}, nil
}

// Heuristic returns the reconstructor the pipeline uses.
func (p *Pipeline) Heuristic() heuristics.Reconstructor { return p.cfg.Heuristic }
