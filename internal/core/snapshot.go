package core

import (
	"fmt"
	"sort"
	"time"

	"smartsra/internal/session"
)

// TailSnapshot is a point-in-time copy of a streaming sessionizer's
// recoverable state: the accumulated stage counters and every user with an
// OPEN burst, with the entries buffered in it. It is the unit
// internal/checkpoint persists and what Restore rebuilds after a crash.
//
// Users whose bursts already closed are not serialized: eviction removes
// them from the live processor, so carrying them in checkpoints would grow
// the snapshot with users-ever-seen — exactly the unbounded state the
// expiry wheel removes. Stats.Users stays cumulative across the snapshot
// (see Tail's Users semantics); the expiry wheel itself needs no serialized
// form, because Restore rebuilds it from each user's Last timestamp.
//
// The format is deliberately shard-free: ShardedTail.Snapshot merges its
// shards into one user-sorted list and ShardedTail.Restore re-hashes users
// onto whatever shard count the restoring process runs with, so a snapshot
// taken with N shards restores into M shards (or a plain Tail) unchanged.
type TailSnapshot struct {
	// Stats are the counters accumulated up to the snapshot.
	Stats Stats
	// Users holds one state per user with an open burst, sorted by user key.
	// (Snapshots written before eviction existed may also carry entry-less
	// users; Restore skips those.)
	Users []UserState
}

// UserState is one user's open-burst state.
type UserState struct {
	// User is the identification key (typically the IP).
	User string
	// Last is the timestamp of the user's most recent request.
	Last time.Time
	// Entries are the requests buffered in the user's open burst, in arrival
	// order.
	Entries []session.Entry
}

// Snapshot deep-copies the Tail's recoverable state. Like every other Tail
// method it must not race with Push; callers streaming concurrently take
// their snapshot from the delivery goroutine (or under their own lock).
func (t *Tail) Snapshot() TailSnapshot {
	snap := TailSnapshot{
		Stats: t.stats,
		Users: make([]UserState, 0, len(t.buffers)),
	}
	for user, b := range t.buffers {
		if len(b.entries) == 0 {
			continue
		}
		snap.Users = append(snap.Users, UserState{
			User:    user,
			Last:    b.last,
			Entries: append([]session.Entry(nil), b.entries...),
		})
	}
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].User < snap.Users[j].User })
	return snap
}

// Restore replaces the Tail's state with the snapshot's, discarding anything
// currently buffered, and rebuilds the expiry wheel from the restored users'
// last-activity times. It validates the snapshot (no duplicate users, stats
// consistent with the user list) so a logically corrupt snapshot is rejected
// instead of silently poisoning recovery.
func (t *Tail) Restore(snap TailSnapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	buffers := make(map[string]*burst, len(snap.Users))
	wheel := make(map[int64][]string)
	buffered := 0
	for _, u := range snap.Users {
		if len(u.Entries) == 0 {
			continue // entry-less user from a pre-eviction snapshot
		}
		buffers[u.User] = &burst{
			entries:  append([]session.Entry(nil), u.Entries...),
			last:     u.Last,
			lastNano: u.Last.UnixNano(),
			unsorted: !entriesSorted(u.Entries),
		}
		buffered += len(u.Entries)
	}
	t.buffers = buffers
	t.buffered = buffered
	t.stats = snap.Stats
	t.wheel = wheel
	for user, b := range buffers {
		t.wheelAdd(user, b.last)
	}
	t.syncMetrics()
	return nil
}

// Snapshot merges every shard's state into one shard-free snapshot. It locks
// all shards for the duration, so the result is consistent even with
// concurrent Push calls: a snapshot observes each record entirely or not at
// all.
func (st *ShardedTail) Snapshot() TailSnapshot {
	for _, sh := range st.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range st.shards {
			sh.mu.Unlock()
		}
	}()
	snap := TailSnapshot{Stats: Stats{
		Records:    int(st.records.Load()),
		Filtered:   int(st.filtered.Load()),
		Unresolved: int(st.unresolved.Load()),
	}}
	for _, sh := range st.shards {
		s := sh.tail.Stats()
		snap.Stats.Users += s.Users
		snap.Stats.Sessions += s.Sessions
		for user, b := range sh.tail.buffers {
			if len(b.entries) == 0 {
				continue
			}
			snap.Users = append(snap.Users, UserState{
				User:    user,
				Last:    b.last,
				Entries: append([]session.Entry(nil), b.entries...),
			})
		}
	}
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].User < snap.Users[j].User })
	return snap
}

// Restore replaces the ShardedTail's state with the snapshot's, re-hashing
// users onto this processor's shard count (which need not match the one the
// snapshot was taken with) and rebuilding each shard's expiry wheel. Not
// safe to run concurrently with Push.
func (st *ShardedTail) Restore(snap TailSnapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	for _, sh := range st.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range st.shards {
			sh.mu.Unlock()
		}
	}()
	for _, sh := range st.shards {
		sh.tail.buffers = make(map[string]*burst)
		sh.tail.wheel = make(map[int64][]string)
		sh.tail.buffered = 0
		sh.tail.stats = Stats{}
	}
	for _, u := range snap.Users {
		if len(u.Entries) == 0 {
			continue // entry-less user from a pre-eviction snapshot
		}
		sh := st.shards[shardOf(u.User, len(st.shards))]
		sh.tail.buffers[u.User] = &burst{
			entries:  append([]session.Entry(nil), u.Entries...),
			last:     u.Last,
			lastNano: u.Last.UnixNano(),
			unsorted: !entriesSorted(u.Entries),
		}
		sh.tail.buffered += len(u.Entries)
		sh.tail.wheelAdd(u.User, u.Last)
	}
	// The aggregate user and session counts have no natural shard (users are
	// cumulative activations, not the open set); parking them on shard 0
	// keeps Stats() exact — per-shard splits are not exposed.
	st.shards[0].tail.stats.Sessions = snap.Stats.Sessions
	st.shards[0].tail.stats.Users = snap.Stats.Users
	st.records.Store(int64(snap.Stats.Records))
	st.filtered.Store(int64(snap.Stats.Filtered))
	st.unresolved.Store(int64(snap.Stats.Unresolved))
	for _, sh := range st.shards {
		sh.tail.syncMetrics()
	}
	return nil
}

// validate rejects snapshots whose invariants do not hold — the last line of
// defense behind the checkpoint file's CRC. Stats.Users may exceed the user
// list (closed users are evicted but stay counted); it can never be smaller.
func (s TailSnapshot) validate() error {
	if s.Stats.Users < len(s.Users) {
		return fmt.Errorf("core: snapshot stats.Users=%d but %d user states", s.Stats.Users, len(s.Users))
	}
	for i := 1; i < len(s.Users); i++ {
		if s.Users[i].User == s.Users[i-1].User {
			return fmt.Errorf("core: snapshot has duplicate user %q", s.Users[i].User)
		}
		if s.Users[i].User < s.Users[i-1].User {
			return fmt.Errorf("core: snapshot users not sorted (%q after %q)", s.Users[i].User, s.Users[i-1].User)
		}
	}
	return nil
}

// Buffered returns the number of entries held across all user states — the
// size of the open-burst backlog the snapshot carries.
func (s TailSnapshot) Buffered() int {
	n := 0
	for i := range s.Users {
		n += len(s.Users[i].Entries)
	}
	return n
}
