package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func TestNewPipelineRequiresGraph(t *testing.T) {
	if _, err := NewPipeline(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestNewPipelineDefaults(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if p.Heuristic().Name() != "heur4" {
		t.Errorf("default heuristic = %s, want heur4 (Smart-SRA)", p.Heuristic().Name())
	}
}

func TestProcessLogEndToEnd(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	log := strings.Join([]string{
		`10.0.0.1 - - [02/Jan/2006:12:00:00 +0000] "GET /P1.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:02:00 +0000] "GET /P13.html HTTP/1.1" 200 100`,
		`10.0.0.1 - - [02/Jan/2006:12:04:00 +0000] "GET /logo.gif HTTP/1.1" 200 100`,
		`this line is garbage`,
		`10.0.0.1 - - [02/Jan/2006:12:05:00 +0000] "GET /P34.html HTTP/1.1" 200 100`,
		`10.0.0.2 - - [02/Jan/2006:12:00:00 +0000] "GET /P49.html HTTP/1.1" 200 100`,
		`10.0.0.2 - - [02/Jan/2006:12:01:00 +0000] "GET /unknown.html HTTP/1.1" 200 100`,
		`10.0.0.2 - - [02/Jan/2006:12:03:00 +0000] "GET /P23.html HTTP/1.1" 404 100`,
	}, "\n")
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Records != 7 || st.Malformed != 1 {
		t.Errorf("records/malformed = %d/%d, want 7/1", st.Records, st.Malformed)
	}
	if st.Filtered != 2 { // the .gif and the 404
		t.Errorf("filtered = %d, want 2", st.Filtered)
	}
	if st.Unresolved != 1 {
		t.Errorf("unresolved = %d, want 1", st.Unresolved)
	}
	if st.Users != 2 {
		t.Errorf("users = %d, want 2", st.Users)
	}
	if st.Sessions != len(res.Sessions) || st.Sessions == 0 {
		t.Errorf("sessions stat %d vs %d actual", st.Sessions, len(res.Sessions))
	}
	// User 1's requests P1 -> P13 -> P34 are all linked: one session.
	var u1 []session.Session
	for _, s := range res.Sessions {
		if s.User == "10.0.0.1" {
			u1 = append(u1, s)
		}
	}
	if len(u1) != 1 || u1[0].Len() != 3 {
		t.Errorf("user 10.0.0.1 sessions = %v", u1)
	}
	if got := u1[0].Pages(); got[0] != ids["P1"] || got[2] != ids["P34"] {
		t.Errorf("session pages = %v", got)
	}
	if !strings.Contains(st.String(), "users=2") {
		t.Errorf("Stats.String = %q", st.String())
	}
}

func TestProcessLogCustomHeuristicAndFilter(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	p, err := NewPipeline(Config{
		Graph:     g,
		Heuristic: heuristics.NewTimeGap(),
		Filter:    clf.KeepAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := `10.0.0.1 - - [02/Jan/2006:12:00:00 +0000] "POST /P1.html HTTP/1.1" 500 100`
	res, err := p.ProcessLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	// KeepAll admits the failed POST; the TimeGap heuristic sessionizes it.
	if res.Stats.Filtered != 0 || res.Stats.Sessions != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestProcessRecordsAgainstSimulatedTraffic(t *testing.T) {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 80, AvgOutDegree: 6, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 100
	sim, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessRecords(sim.Log(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Users == 0 || res.Stats.Sessions == 0 {
		t.Fatalf("pipeline produced nothing: %+v", res.Stats)
	}
	if res.Stats.Users != len(sim.Streams) {
		t.Errorf("users = %d, want %d", res.Stats.Users, len(sim.Streams))
	}
	rules := session.DefaultRules()
	for _, s := range res.Sessions {
		if !s.Valid(g, rules) {
			t.Fatalf("pipeline session invalid: %v", s)
		}
	}
}

func TestProcessLogReadError(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	p, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessLog(failingReader{}); err == nil {
		t.Error("read error not propagated")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("boom") }
