package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// TestCutJournalRoundTrip pins the journal text format, including the
// crash-torn-final-line tolerance that recovery depends on.
func TestCutJournalRoundTrip(t *testing.T) {
	cuts := []ExpiryCut{
		{Seq: 1, Records: 0, At: time.Unix(1000, 5)},
		{Seq: 2, Records: 42, At: time.Unix(2000, 0)},
		{Seq: 3, Records: 42, At: time.Unix(3000, 999)},
	}
	var buf bytes.Buffer
	for _, c := range cuts {
		if err := AppendCut(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadCuts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cuts) {
		t.Fatalf("read %d cuts, want %d", len(got), len(cuts))
	}
	for i := range cuts {
		if got[i].Seq != cuts[i].Seq || got[i].Records != cuts[i].Records || !got[i].At.Equal(cuts[i].At) {
			t.Fatalf("cut %d: got %+v, want %+v", i, got[i], cuts[i])
		}
	}

	// A torn final append (no newline) is ignored; the complete prefix holds.
	torn := buf.String() + "cut 4 99 12345"
	got, err = ReadCuts(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cuts) {
		t.Fatalf("torn journal: read %d cuts, want %d", len(got), len(cuts))
	}

	// A malformed complete line is corruption, not tolerated.
	if _, err := ReadCuts(strings.NewReader("cut one 2 3\n")); err == nil {
		t.Fatal("malformed journal line accepted")
	}

	if after := CutsAfter(got, 1); len(after) != 2 || after[0].Seq != 2 || after[1].Seq != 3 {
		t.Fatalf("CutsAfter(1) = %+v, want seqs [2 3]", after)
	}
}

// TestIngestFilesCutsEquivalence pins the cut-replay contract on the simgen
// corpus: a record-at-a-time Push loop with Expire(At) applied at the
// journaled record boundaries is the reference, and IngestFilesCuts must
// reproduce its emission stream byte for byte across the shard × worker ×
// batch sweep — including a restart mid-stream (snapshot, restore, resume
// with base = restored record count and the remaining cuts).
func TestIngestFilesCutsEquivalence(t *testing.T) {
	g := golden2Graph(t)
	log := readGolden(t, "golden2.log")
	records, bad, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("corpus malformed = %d, want 0", bad)
	}

	// Place cuts the way a live server would: mid-stream at uneven record
	// boundaries, with cutoffs far enough past the boundary record's time
	// that real bursts expire, plus one trailing cut past the final record
	// (a tick that fired after traffic stopped) and one no-op duplicate.
	n := int64(len(records))
	mkCut := func(seq, at int64, lead time.Duration) ExpiryCut {
		return ExpiryCut{Seq: seq, Records: at, At: records[at-1].Time.Add(lead)}
	}
	cuts := []ExpiryCut{
		mkCut(1, n/7, session.DefaultPageStay+time.Minute),
		mkCut(2, n/3, session.DefaultPageStay/2), // mostly a no-op: too early to close much
		mkCut(3, n/2, 2*session.DefaultPageStay),
		mkCut(4, n/2, 2*session.DefaultPageStay), // duplicate boundary+cutoff: strict no-op
		mkCut(5, 5*n/6, session.DefaultPageStay+time.Second),
		{Seq: 6, Records: n, At: records[n-1].Time.Add(3 * session.DefaultPageStay)},
	}

	// Reference: sequential Push loop with cuts applied in place.
	ref, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []session.Session
	ci := 0
	for i, rec := range records {
		for ci < len(cuts) && cuts[ci].Records <= int64(i) {
			want = append(want, ref.Expire(cuts[ci].At)...)
			ci++
		}
		want = append(want, ref.Push(rec)...)
	}
	for ; ci < len(cuts); ci++ {
		want = append(want, ref.Expire(cuts[ci].At)...)
	}
	want = append(want, ref.Flush()...)
	wantBytes := renderSessions(t, want)

	logPath := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(logPath, log, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 3} {
			for _, batch := range []int{0, 7, 1024} {
				name := fmt.Sprintf("shards=%d workers=%d batch=%d", shards, workers, batch)
				cfg := Config{Graph: g, Workers: workers, StreamDepth: 2, BatchRecords: batch}
				st, err := NewSessionizer(cfg, 0, shards, false)
				if err != nil {
					t.Fatal(err)
				}
				var got []session.Session
				malformed, err := st.IngestFilesCuts([]string{logPath}, clf.FilePos{}, 0, cuts, func(s []session.Session) {
					got = append(got, s...)
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if malformed != 0 {
					t.Fatalf("%s: malformed = %d, want 0", name, malformed)
				}
				got = append(got, st.Flush()...)
				if !bytes.Equal(renderSessions(t, got), wantBytes) {
					t.Fatalf("%s: cut-replayed sessions differ from sequential reference", name)
				}
			}
		}
	}

	// Crash-recovery shape: run the first part through a Tail fed directly,
	// snapshot, restore into a fresh ShardedTail, and resume the file replay
	// from the matching byte offset with base = restored record count and
	// only the still-pending cuts. The concatenated emission must match.
	split := n * 2 / 5
	head, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []session.Session
	ci = 0
	for i := int64(0); i < split; i++ {
		for ci < len(cuts) && cuts[ci].Records <= i {
			got = append(got, head.Expire(cuts[ci].At)...)
			ci++
		}
		got = append(got, head.Push(records[i])...)
	}
	appliedSeq := int64(ci) // cuts are numbered 1..k in order here
	snap := head.Snapshot()

	var resumeOff int64
	for i, rest := int64(0), log; i < split; i++ {
		nl := bytes.IndexByte(rest, '\n')
		resumeOff += int64(nl) + 1
		rest = rest[nl+1:]
	}
	st, err := NewShardedTail(Config{Graph: g, Workers: 2, StreamDepth: 2}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Restore(snap); err != nil {
		t.Fatal(err)
	}
	base := int64(st.Stats().Records)
	if base != split {
		t.Fatalf("restored record count %d, want %d", base, split)
	}
	pending := CutsAfter(cuts, appliedSeq)
	if _, err := st.IngestFilesCuts([]string{logPath}, clf.FilePos{Offset: resumeOff}, base, pending, func(s []session.Session) {
		got = append(got, s...)
	}, nil); err != nil {
		t.Fatal(err)
	}
	got = append(got, st.Flush()...)
	if !bytes.Equal(renderSessions(t, got), wantBytes) {
		t.Fatal("snapshot/restore resume with pending cuts differs from sequential reference")
	}
}
