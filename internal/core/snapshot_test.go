package core

import (
	"bytes"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/session"
)

// feedTail pushes records one by one, collecting finalized sessions.
func feedTail(push func(clf.Record) []session.Session, records []clf.Record) []session.Session {
	var out []session.Session
	for _, rec := range records {
		out = append(out, push(rec)...)
	}
	return out
}

// TestTailSnapshotRestoreRoundTrip: cutting a stream at any point, moving the
// state through Snapshot/Restore into a fresh Tail, and continuing must
// produce exactly the sessions of the uninterrupted run.
func TestTailSnapshotRestoreRoundTrip(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	records, _, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := feedTail(ref.Push, records)
	want = append(want, ref.Flush()...)
	wantStats := ref.Stats()

	for cut := 0; cut <= len(records); cut += 3 {
		first, err := NewTail(Config{Graph: g}, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := feedTail(first.Push, records[:cut])
		snap := first.Snapshot()

		second, err := NewTail(Config{Graph: g}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := second.Restore(snap); err != nil {
			t.Fatalf("cut=%d: restore: %v", cut, err)
		}
		got = append(got, feedTail(second.Push, records[cut:])...)
		got = append(got, second.Flush()...)
		if !bytes.Equal(renderSessions(t, got), renderSessions(t, want)) {
			t.Fatalf("cut=%d: sessions diverge after snapshot/restore", cut)
		}
		if second.Stats() != wantStats {
			t.Fatalf("cut=%d: stats %+v, want %+v", cut, second.Stats(), wantStats)
		}
	}
}

// TestShardedSnapshotRestoreAcrossShardCounts: a snapshot taken from one
// shard count restores into any other shard count (and into a plain Tail)
// without changing the emitted sessions or the stats.
func TestShardedSnapshotRestoreAcrossShardCounts(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	records, _, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := feedTail(ref.Push, records)
	want = append(want, ref.Flush()...)
	wantBytes := renderSessions(t, want)
	wantStats := ref.Stats()

	cut := len(records) / 2
	for _, fromShards := range []int{1, 3, 8} {
		src, err := NewShardedTail(Config{Graph: g}, 0, fromShards)
		if err != nil {
			t.Fatal(err)
		}
		got := feedTail(src.Push, records[:cut])
		snap := src.Snapshot()
		if snap.Stats != src.Stats() {
			t.Fatalf("from=%d: snapshot stats %+v, want %+v", fromShards, snap.Stats, src.Stats())
		}

		for _, toShards := range []int{1, 2, 5} {
			dst, err := NewShardedTail(Config{Graph: g}, 0, toShards)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Restore(snap); err != nil {
				t.Fatalf("from=%d to=%d: restore: %v", fromShards, toShards, err)
			}
			cont := append(append([]session.Session(nil), got...), feedTail(dst.Push, records[cut:])...)
			cont = append(cont, dst.Flush()...)
			if !bytes.Equal(renderSessions(t, cont), wantBytes) {
				t.Fatalf("from=%d to=%d: sessions diverge", fromShards, toShards)
			}
			if dst.Stats() != wantStats {
				t.Fatalf("from=%d to=%d: stats %+v, want %+v", fromShards, toShards, dst.Stats(), wantStats)
			}
		}

		// Sharded snapshot into a plain Tail.
		tl, err := NewTail(Config{Graph: g}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Restore(snap); err != nil {
			t.Fatalf("from=%d to=tail: restore: %v", fromShards, err)
		}
		cont := append(append([]session.Session(nil), got...), feedTail(tl.Push, records[cut:])...)
		cont = append(cont, tl.Flush()...)
		if !bytes.Equal(renderSessions(t, cont), wantBytes) {
			t.Fatalf("from=%d to=tail: sessions diverge", fromShards)
		}
	}
}

// TestSnapshotIsDeepCopy: mutating the processor after Snapshot must not
// change the snapshot, and restoring must not alias the snapshot's slices.
func TestSnapshotIsDeepCopy(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	records, _, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	feedTail(tl.Push, records[:len(records)/2])
	snap := tl.Snapshot()
	before := snap.Buffered()
	feedTail(tl.Push, records[len(records)/2:])
	tl.Flush()
	if snap.Buffered() != before {
		t.Fatalf("snapshot mutated by later pushes: buffered %d, want %d", snap.Buffered(), before)
	}

	restored, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restored.Flush()
	if snap.Buffered() != before {
		t.Fatalf("snapshot mutated by restored tail: buffered %d, want %d", snap.Buffered(), before)
	}
}

// TestRestoreRejectsInvalidSnapshots: logically corrupt snapshots (duplicate
// or unsorted users, stats inconsistent with the user list) are rejected by
// both processors.
func TestRestoreRejectsInvalidSnapshots(t *testing.T) {
	g := goldenGraph()
	cases := map[string]TailSnapshot{
		"dup users": {
			Stats: Stats{Users: 2},
			Users: []UserState{{User: "a"}, {User: "a"}},
		},
		"unsorted": {
			Stats: Stats{Users: 2},
			Users: []UserState{{User: "b"}, {User: "a"}},
		},
		// Users may exceed the open-burst list (closed users are evicted but
		// stay counted as activations); fewer than the list is impossible.
		"stats mismatch": {
			Stats: Stats{Users: 0},
			Users: []UserState{{User: "a"}},
		},
	}
	for name, snap := range cases {
		tl, err := NewTail(Config{Graph: g}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Restore(snap); err == nil {
			t.Errorf("%s: Tail.Restore accepted invalid snapshot", name)
		}
		st, err := NewShardedTail(Config{Graph: g}, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Restore(snap); err == nil {
			t.Errorf("%s: ShardedTail.Restore accepted invalid snapshot", name)
		}
	}
}

// TestIngestOffsetsConsistentSnapshots: at every progress boundary during
// Ingest, (snapshot, offset) must be a consistent resume point — restoring
// the snapshot into a fresh processor and replaying the log suffix from the
// offset reproduces the uninterrupted session stream.
func TestIngestOffsetsConsistentSnapshots(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	want := readGolden(t, "golden.stream.sessions")

	type point struct {
		off  int64
		snap TailSnapshot
		sunk []byte // sessions emitted up to this boundary
	}
	cfg := Config{Graph: g, Workers: 2, StreamDepth: 2}
	src, err := NewShardedTail(cfg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []session.Session
	var points []point
	if _, err := src.IngestOffsets(bytes.NewReader(log),
		func(s []session.Session) { emitted = append(emitted, s...) },
		func(off int64) {
			points = append(points, point{off, src.Snapshot(), renderSessions(t, emitted)})
		}); err != nil {
		t.Fatal(err)
	}
	emitted = append(emitted, src.Flush()...)
	if !bytes.Equal(renderSessions(t, emitted), want) {
		t.Fatal("uninterrupted IngestOffsets diverges from golden")
	}

	for i, p := range points {
		dst, err := NewShardedTail(cfg, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(p.snap); err != nil {
			t.Fatal(err)
		}
		var tail []session.Session
		if _, err := dst.Ingest(bytes.NewReader(log[p.off:]),
			func(s []session.Session) { tail = append(tail, s...) }); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, dst.Flush()...)
		got := append(append([]byte(nil), p.sunk...), renderSessions(t, tail)...)
		if !bytes.Equal(got, want) {
			t.Fatalf("boundary %d (offset %d): resumed run diverges from golden", i, p.off)
		}
	}
}
