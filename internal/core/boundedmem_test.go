package core

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"smartsra/internal/heuristics"
)

// synthLogReader generates an endless-looking CLF log on the fly — nothing
// is materialized, so the reader itself is O(1) and any heap growth during
// ingestion belongs to the pipeline under test. Hosts rotate through a
// fixed pool, URIs through the graph's pages, and the clock jumps forward
// an hour every jumpEvery lines so bursts keep closing (and sessions keep
// being emitted and dropped) instead of accumulating forever — the
// streaming deployment the paper's reactive model assumes.
type synthLogReader struct {
	remaining int64 // bytes still to produce (truncated at a line boundary)
	lines     int64
	pending   []byte

	hosts     int
	uris      []string
	base      time.Time
	stamp     string // formatted timestamp, re-rendered when the clock moves
	jumpEvery int64
}

func newSynthLogReader(totalBytes int64, uris []string) *synthLogReader {
	base := time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)
	return &synthLogReader{
		remaining: totalBytes,
		hosts:     512,
		uris:      uris,
		base:      base,
		stamp:     base.Format("02/Jan/2006:15:04:05 -0700"),
		jumpEvery: 100_000,
	}
}

func (r *synthLogReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 && len(r.pending) == 0 {
		return 0, io.EOF
	}
	for len(r.pending) < len(p) && r.remaining > 0 {
		if r.lines%r.jumpEvery == 0 {
			// Advance the clock one hour per block plus one second per
			// 50 lines inside it, so per-user gaps within a block stay
			// under ρ while block boundaries exceed it.
			at := r.base.Add(time.Duration(r.lines/r.jumpEvery) * time.Hour)
			r.stamp = at.Format("02/Jan/2006:15:04:05 -0700")
		} else if r.lines%50 == 0 {
			at := r.base.Add(time.Duration(r.lines/r.jumpEvery)*time.Hour +
				time.Duration(r.lines%r.jumpEvery/50)*time.Second)
			r.stamp = at.Format("02/Jan/2006:15:04:05 -0700")
		}
		host := r.lines % int64(r.hosts)
		line := fmt.Sprintf("10.0.%d.%d - - [%s] \"GET %s HTTP/1.1\" 200 %d\n",
			host/256, host%256, r.stamp, r.uris[r.lines%int64(len(r.uris))], 100+r.lines%1000)
		r.pending = append(r.pending, line...)
		r.remaining -= int64(len(line))
		r.lines++
	}
	n := copy(p, r.pending)
	r.pending = r.pending[:copy(r.pending, r.pending[n:])]
	return n, nil
}

// memSampler wraps a reader and records the heap high-water mark while the
// pipeline drains it, sampling every few Read calls so the measurement
// covers the whole ingestion, not just the end state.
type memSampler struct {
	r     io.Reader
	calls int
	high  atomic.Uint64
}

func (m *memSampler) Read(p []byte) (int, error) {
	m.calls++
	if m.calls%8 == 0 {
		m.sample()
	}
	return m.r.Read(p)
}

func (m *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.high.Load() {
		m.high.Store(ms.HeapAlloc)
	}
}

// TestStreamParallelBoundedMemory is the bounded-memory regression test: a
// multi-hundred-MiB synthetic log (generated, never materialized) streamed
// through ShardedTail.Ingest must keep the heap high-water under a fixed
// budget that does not depend on the log's length — the property that
// separates StreamParallel from ReadAllParallel, whose record slice alone
// would dwarf the budget. Two lengths run under the same budget to pin the
// independence claim.
func TestStreamParallelBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-MiB ingestion")
	}
	// ~64 MiB and ~256 MiB (quartered under -race, which slows parsing an
	// order of magnitude); the budget stays fixed across lengths and far
	// below the longer log.
	short, long := int64(64<<20), int64(256<<20)
	if raceEnabled {
		short, long = 16<<20, 64<<20
	}
	// Measured high-water is ~85 MiB (≈40 MiB live × the GC's 2× growth
	// target); the budget leaves headroom without letting a regression to
	// O(log) memory slip through — the long log is twice the budget.
	const budget = 128 << 20

	g := goldenGraph()
	uris := make([]string, 0, g.NumPages())
	for _, p := range g.Pages() {
		uris = append(uris, g.Label(p))
	}

	run := func(total int64) uint64 {
		st, err := NewShardedTail(Config{
			Graph: g,
			// Time-gap keeps burst reconstruction linear; the test measures
			// ingestion memory, not Smart-SRA's CPU profile.
			Heuristic:   heuristics.NewTimeGap(),
			Workers:     4,
			StreamDepth: 8,
		}, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		src := &memSampler{r: newSynthLogReader(total, uris)}
		bad, err := st.Ingest(src, DiscardSessions)
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("synthetic log produced %d malformed lines", bad)
		}
		st.Flush()
		src.sample()
		stats := st.Stats()
		if stats.Records == 0 || stats.Sessions == 0 {
			t.Fatalf("pipeline did no work: %+v", stats)
		}
		t.Logf("total=%d MiB records=%d sessions=%d heap high-water=%d MiB",
			total>>20, stats.Records, stats.Sessions, src.high.Load()>>20)
		return src.high.Load()
	}

	highShort := run(short)
	highLong := run(long)
	if highShort > budget {
		t.Errorf("short log (%d MiB): heap high-water %d MiB exceeds budget %d MiB",
			short>>20, highShort>>20, uint64(budget)>>20)
	}
	if highLong > budget {
		t.Errorf("long log (%d MiB): heap high-water %d MiB exceeds budget %d MiB — "+
			"streaming ingestion is no longer bounded", long>>20, highLong>>20, uint64(budget)>>20)
	}
	// A 4× longer log must not move the high-water materially: that is the
	// length-independence claim itself. The slack is relative (up to 2× the
	// short run, floored at 32 MiB) because the GC's high-water jitters with
	// pacing — a true O(length) regression shows up as ~4× growth and blows
	// the absolute budget above anyway. Skipped under -race, where the
	// scaled-down short run ends before the heap reaches its steady-state
	// plateau and the comparison would measure ramp-up, not growth.
	slack := highShort
	if slack < 32<<20 {
		slack = 32 << 20
	}
	if !raceEnabled && highLong > highShort+slack {
		t.Errorf("heap high-water grew with log length: %d MiB (short) -> %d MiB (long)",
			highShort>>20, highLong>>20)
	}
}
