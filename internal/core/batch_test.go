package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/session"
)

// TestGoldenCorpusBatchSizes pins PushBatch's contract directly: feeding the
// golden corpus through PushBatch in every batch size — record-at-a-time,
// tiny, chunk-unaligned, large, and the whole log at once — produces bytes
// identical to the committed golden stream output, on the plain Tail and on
// every shard count. The same sweep then runs through Ingest with the
// Config.BatchRecords knob (0 = whole chunk, 1 = legacy per-record loop),
// which is the path cmd/serve and cmd/sessionize actually configure.
func TestGoldenCorpusBatchSizes(t *testing.T) {
	log := readGolden(t, "golden.log")
	g := goldenGraph()
	want := readGolden(t, "golden.stream.sessions")

	records, bad, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if bad != goldenMalformed {
		t.Fatalf("ReadAll malformed = %d, want %d", bad, goldenMalformed)
	}

	type proc struct {
		name      string
		pushBatch func([]clf.Record) []session.Session
		flush     func() []session.Session
	}
	newProc := func(shards int) proc {
		cfg := Config{Graph: g}
		if shards == 0 {
			tl, err := NewTail(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			return proc{name: "tail", pushBatch: tl.PushBatch, flush: tl.Flush}
		}
		st, err := NewShardedTail(cfg, 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		return proc{name: fmt.Sprintf("sharded/%d", shards), pushBatch: st.PushBatch, flush: st.Flush}
	}

	for _, shards := range []int{0, 1, 3, 8} {
		for _, size := range []int{1, 2, 7, 64, len(records)} {
			p := newProc(shards)
			var got []session.Session
			for off := 0; off < len(records); off += size {
				end := off + size
				if end > len(records) {
					end = len(records)
				}
				got = append(got, p.pushBatch(records[off:end])...)
			}
			got = append(got, p.flush()...)
			if !bytes.Equal(renderSessions(t, got), want) {
				t.Fatalf("%s PushBatch(size=%d): sessions differ from golden", p.name, size)
			}
		}
	}

	for _, shards := range []int{0, 2} {
		for _, batch := range []int{0, 1, 2, 7, 64} {
			for _, workers := range []int{1, 4} {
				cfg := Config{Graph: g, Workers: workers, BatchRecords: batch}
				var got []session.Session
				collect := func(s []session.Session) { got = append(got, s...) }
				var malformed int
				if shards == 0 {
					tl, err := NewTail(cfg, 0)
					if err != nil {
						t.Fatal(err)
					}
					if malformed, err = tl.Ingest(bytes.NewReader(log), collect); err != nil {
						t.Fatal(err)
					}
					got = append(got, tl.Flush()...)
				} else {
					st, err := NewShardedTail(cfg, 0, shards)
					if err != nil {
						t.Fatal(err)
					}
					if malformed, err = st.Ingest(bytes.NewReader(log), collect); err != nil {
						t.Fatal(err)
					}
					got = append(got, st.Flush()...)
				}
				if malformed != goldenMalformed {
					t.Fatalf("shards=%d batch=%d workers=%d: malformed %d, want %d",
						shards, batch, workers, malformed, goldenMalformed)
				}
				if !bytes.Equal(renderSessions(t, got), want) {
					t.Fatalf("shards=%d batch=%d workers=%d: Ingest sessions differ from golden",
						shards, batch, workers)
				}
			}
		}
	}
}

// TestExpireBoundedByActiveUsers is the unbounded-growth regression test: a
// million distinct users, each appearing once and never returning, streamed
// with periodic Expire calls. The buffer map, the expiry wheel, and the
// entry backlog must all track the ACTIVE window — the users inside the last
// ρ — not the users ever seen; before eviction and the wheel, the buffer map
// grew one entry per user forever and every Expire scanned all of them.
func TestExpireBoundedByActiveUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("million-user stream")
	}
	users := 1 << 20
	if raceEnabled {
		users = 1 << 17
	}
	g := goldenGraph()
	// Time-gap keeps single-entry reconstruction trivial; the test measures
	// state bounds, not heuristic cost.
	tl, err := NewTail(Config{Graph: g, Heuristic: heuristics.NewTimeGap()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)
	// 20 new users per second: with ρ = 10 min the active window holds
	// ~12k users, and the expire cadence below adds at most one interval's
	// worth on top. The bounds assert that order of magnitude, two decades
	// below the total user count.
	const perSec = 20
	const expireEvery = 8192
	sessions, maxActive, maxBuffered, maxBuckets := 0, 0, 0, 0
	for i := 0; i < users; i++ {
		at := base.Add(time.Duration(i) * (time.Second / perSec))
		host := fmt.Sprintf("10.%d.%d.%d", i>>16&255, i>>8&255, i&255)
		sessions += len(tl.Push(tailRec(host, "/P1.html", at)))
		if i%expireEvery == 0 {
			sessions += len(tl.Expire(at))
			if a := tl.ActiveUsers(); a > maxActive {
				maxActive = a
			}
			if b := tl.Buffered(); b > maxBuffered {
				maxBuffered = b
			}
			if w := tl.wheelBuckets(); w > maxBuckets {
				maxBuckets = w
			}
		}
	}
	sessions += len(tl.Flush())
	if sessions != users {
		t.Errorf("sessions = %d, want one per user (%d)", sessions, users)
	}
	if st := tl.Stats(); st.Users != users || st.Sessions != users {
		t.Errorf("stats = %+v, want %d users and sessions", st, users)
	}
	// Window (~12k) + one expire interval (8192), with slack; a regression
	// back to users-ever-seen state blows through this by 30-60×.
	const activeBound = 1 << 15
	if maxActive > activeBound {
		t.Errorf("active users peaked at %d (bound %d) — state no longer bounded by the active window",
			maxActive, activeBound)
	}
	if maxBuffered > activeBound {
		t.Errorf("buffered entries peaked at %d (bound %d)", maxBuffered, activeBound)
	}
	// One ρ-wide bucket covers 12k arrivals here; an expire interval spans
	// ~7 buckets. A bound of 64 catches the wheel ever reverting to
	// per-user or per-second granularity.
	if maxBuckets > 64 {
		t.Errorf("expiry wheel peaked at %d buckets (bound 64)", maxBuckets)
	}
}

// TestRestoreRebuildsExpiryWheel pins that Restore re-seeds the expiry wheel
// from the snapshot's last-activity times: expiring a restored Tail evicts
// exactly the users the original would have evicted, in the same order.
func TestRestoreRebuildsExpiryWheel(t *testing.T) {
	g := goldenGraph()
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	tl, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl.Push(tailRec("a", "/P1.html", t0))
	tl.Push(tailRec("b", "/P49.html", t0.Add(8*time.Minute)))
	snap := tl.Snapshot()

	restored, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.Expire(t0.Add(11 * time.Minute)); len(got) != 1 || got[0].User != "a" {
		t.Fatalf("expire after restore emitted %v, want user a only", got)
	}
	if restored.ActiveUsers() != 1 {
		t.Errorf("active users = %d after expiry, want 1", restored.ActiveUsers())
	}
	if got := restored.Expire(t0.Add(30 * time.Minute)); len(got) != 1 || got[0].User != "b" {
		t.Fatalf("second expire emitted %v, want user b", got)
	}
}
