package core

import (
	"fmt"
	"sort"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/metrics"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Tail is the incremental counterpart of Pipeline: it consumes access-log
// records one at a time (e.g. from a live log tail) and emits reconstructed
// sessions as soon as they can no longer change.
//
// Records are buffered per user into "activity bursts". A user's burst is
// closed — and handed to the heuristic — when a new record arrives more
// than the page-stay bound ρ after the burst's last request, or when
// Expire/Flush decides the user has gone quiet. Because every heuristic's
// sessions never span a gap larger than ρ (that is the Phase-1 page-stay
// rule), burst-at-a-time reconstruction is exactly equivalent to batch
// processing for Smart-SRA and the time-gap heuristic; the time-total and
// navigation heuristics can merge across >ρ gaps in batch mode, so their
// streamed output may split earlier (documented, covered by tests).
//
// Tail is not safe for concurrent use; wrap it in a mutex if multiple
// goroutines feed it.
type Tail struct {
	cfg      Config
	rho      time.Duration
	buffers  map[string]*burst
	buffered int // entries currently held in open bursts, across all users
	stats    Stats
	// reconstructHist times Heuristic.Reconstruct per burst close, labeled
	// by heuristic so /debug/metrics exposes one series per strategy.
	reconstructHist *metrics.Histogram
}

// burst is one user's open request run.
type burst struct {
	entries []session.Entry
	last    time.Time
}

// NewTail builds a streaming processor from the same Config as NewPipeline
// plus the burst gap ρ (zero means the paper's 10 minutes).
func NewTail(cfg Config, rho time.Duration) (*Tail, error) {
	p, err := NewPipeline(cfg) // reuse validation and defaulting
	if err != nil {
		return nil, err
	}
	if rho == 0 {
		rho = session.DefaultPageStay
	}
	if rho < 0 {
		return nil, fmt.Errorf("core: negative burst gap %v", rho)
	}
	return &Tail{
		cfg:     p.cfg,
		rho:     rho,
		buffers: make(map[string]*burst),
		reconstructHist: metrics.GetHistogram(metrics.WithLabels(
			"core.tail.reconstruct.seconds", "heur", p.cfg.Heuristic.Name())),
	}, nil
}

// Push feeds one record, returning any sessions finalized by its arrival
// (usually none; occasionally the previous burst of the same user).
// Malformed-record handling belongs to the caller (clf.Scanner skips them).
func (t *Tail) Push(rec clf.Record) []session.Session {
	t.stats.Records++
	metricTailRecords.Inc()
	if t.cfg.Filter != nil && !t.cfg.Filter(rec) {
		t.stats.Filtered++
		return nil
	}
	page, ok := t.cfg.Resolver(rec.URI)
	if !ok {
		t.stats.Unresolved++
		return nil
	}
	return t.pushResolved(t.cfg.Key(rec), page, rec.Time)
}

// pushResolved buffers one already-cleaned, already-resolved request. It is
// the post-shard half of Push: ShardedTail runs Filter/Resolver/Key in the
// caller's goroutine and routes here under the owning shard's lock.
func (t *Tail) pushResolved(user string, page webgraph.PageID, at time.Time) []session.Session {
	b := t.buffers[user]
	if b == nil {
		b = &burst{}
		t.buffers[user] = b
		t.stats.Users++
	}
	var out []session.Session
	if len(b.entries) > 0 && at.Sub(b.last) > t.rho {
		out = t.close(user, b)
	}
	b.entries = append(b.entries, session.Entry{Page: page, Time: at})
	t.buffered++
	metricTailBuffered.Add(1)
	metricTailMaxDepth.SetMax(int64(len(b.entries)))
	if at.After(b.last) {
		b.last = at
	}
	return out
}

// Buffered returns the number of entries currently held in open bursts —
// the streaming processor's in-memory backlog across all users.
func (t *Tail) Buffered() int { return t.buffered }

// Expire finalizes every user whose last request is more than ρ before now,
// returning their sessions. Call it periodically when tailing a live log so
// quiet users' sessions are not held forever.
func (t *Tail) Expire(now time.Time) []session.Session {
	var users []string
	for u, b := range t.buffers {
		if len(b.entries) > 0 && now.Sub(b.last) > t.rho {
			users = append(users, u)
		}
	}
	sort.Strings(users)
	var out []session.Session
	for _, u := range users {
		out = append(out, t.close(u, t.buffers[u])...)
	}
	return out
}

// Flush finalizes everything buffered, in user order. The Tail remains
// usable afterwards.
func (t *Tail) Flush() []session.Session {
	users := make([]string, 0, len(t.buffers))
	for u, b := range t.buffers {
		if len(b.entries) > 0 {
			users = append(users, u)
		}
	}
	sort.Strings(users)
	var out []session.Session
	for _, u := range users {
		out = append(out, t.close(u, t.buffers[u])...)
	}
	return out
}

// Stats returns the counters accumulated so far. Sessions counts emitted
// sessions only; buffered requests are not yet sessions.
func (t *Tail) Stats() Stats { return t.stats }

// close runs the heuristic on a burst and resets it.
func (t *Tail) close(user string, b *burst) []session.Session {
	entries := b.entries
	b.entries = nil
	t.buffered -= len(entries)
	metricTailBuffered.Add(-int64(len(entries)))
	// Out-of-order arrivals within the burst (merged proxy logs, clock
	// skew) are sorted here; cross-burst reordering beyond ρ is a log
	// defect the caller owns.
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Time.Before(entries[j].Time)
	})
	start := time.Now()
	sessions := t.cfg.Heuristic.Reconstruct(session.Stream{User: user, Entries: entries})
	t.reconstructHist.ObserveDuration(time.Since(start))
	t.stats.Sessions += len(sessions)
	metricTailSessions.Add(int64(len(sessions)))
	return sessions
}
