package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/metrics"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Tail is the incremental counterpart of Pipeline: it consumes access-log
// records one at a time (e.g. from a live log tail) and emits reconstructed
// sessions as soon as they can no longer change.
//
// Records are buffered per user into "activity bursts". A user's burst is
// closed — and handed to the heuristic — when a new record arrives more
// than the page-stay bound ρ after the burst's last request, or when
// Expire/Flush decides the user has gone quiet. Because every heuristic's
// sessions never span a gap larger than ρ (that is the Phase-1 page-stay
// rule), burst-at-a-time reconstruction is exactly equivalent to batch
// processing for Smart-SRA and the time-gap heuristic; the time-total and
// navigation heuristics can merge across >ρ gaps in batch mode, so their
// streamed output may split earlier (documented, covered by tests).
//
// Memory is bounded by the ACTIVE users: when Expire or Flush closes a
// user's burst the user is evicted from the buffer map (and their burst and
// entry storage recycled), so a long-running tail holds state only for users
// inside the current activity window, not for every user ever seen. The
// price is in Stats.Users: a user who returns after eviction is counted
// again, so Users counts user activity periods (distinct users between two
// full drains), not lifetime-unique users — exact unique counting would
// require remembering every user forever, which is the unbounded growth this
// design removes.
//
// Tail is not safe for concurrent use; wrap it in a mutex if multiple
// goroutines feed it.
type Tail struct {
	cfg      Config
	rho      time.Duration
	rhoNano  int64 // rho.Nanoseconds(), for the per-record integer gap check
	buffers  map[string]*burst
	buffered int // entries currently held in open bursts, across all users
	stats    Stats
	// reconstructHist times Heuristic.Reconstruct per burst close, labeled
	// by heuristic so /debug/metrics exposes one series per strategy. Timing
	// is sampled (see reconstructSampleEvery): the count stays exact, the
	// distribution is estimated from every Nth close, and the hot path pays
	// the two time.Now calls only on sampled closes.
	reconstructHist *metrics.Histogram
	skipCloses      int64 // closes left before the next timed reconstruct
	untimedCloses   int64 // closes since the last timed reconstruct

	// appendRec is cfg.Heuristic when it implements the allocation-lean
	// streaming extension, nil otherwise (closeInto then falls back to
	// Reconstruct plus an append).
	appendRec heuristics.SessionAppender

	// wheel is the expiry wheel: open-burst users bucketed by the
	// ρ-granularity time bucket of their last activity as of insertion.
	// Entries are lazily revalidated — a user who stayed active is moved
	// forward to the bucket of their true last activity when their old
	// bucket comes up — so Push never pays a bucket move and Expire visits
	// only users whose buckets have aged past the cutoff: O(active), not
	// O(ever seen).
	wheel map[int64][]string

	// Free lists recycle the per-burst storage that eviction retires: burst
	// headers and []session.Entry backing arrays. Both are bounded so a
	// transient spike does not pin memory forever.
	freeBursts  []*burst
	freeEntries [][]session.Entry

	// Deferred mirrors of the process-wide metrics: pushResolved and close
	// touch only these plain fields, and syncMetrics folds them into the
	// atomic registry once per public operation (per batch, not per record).
	pendingRecords  int64
	pendingSessions int64
	lastBuffered    int64
	maxDepth        int64
	syncedMaxDepth  int64
	// bufferedGauge mirrors buffered for lock-free readers: ShardedTail
	// sums it across shards so a /debug/metrics scrape never takes a shard
	// lock. Written only under the owner's serialization (the shard lock or
	// the single-goroutine contract).
	bufferedGauge atomic.Int64
}

// reconstructSampleEvery is the close-timing sample rate: the first close and
// every Nth after it run under the clock, and the untimed closes between are
// folded into the sampled observation by weight. At millions of bursts per
// second the histogram's cost drops to ~nothing while count stays exact and
// the estimated distribution tracks the true one.
const reconstructSampleEvery = 64

// Free-list bounds: how many retired burst headers / entry arrays to keep,
// and the largest entry array worth keeping (a pathological mega-burst's
// array is better returned to the allocator).
const (
	maxFreeBursts  = 512
	maxFreeEntries = 512
	maxRecycledCap = 1024
)

// burst is one user's open request run. lastNano mirrors last.UnixNano()
// so the per-record gap check compares plain integers instead of paying
// time.Time.Sub; it is math.MinInt64 while the burst has no activity.
// unsorted records that some entry arrived with a timestamp below the
// burst's max at append time — exactly when the entries slice is out of
// order — so close sorts only bursts that need it, without a scan.
type burst struct {
	entries  []session.Entry
	last     time.Time
	lastNano int64
	unsorted bool
}

// NewTail builds a streaming processor from the same Config as NewPipeline
// plus the burst gap ρ (zero means the paper's 10 minutes).
func NewTail(cfg Config, rho time.Duration) (*Tail, error) {
	p, err := NewPipeline(cfg) // reuse validation and defaulting
	if err != nil {
		return nil, err
	}
	if rho == 0 {
		rho = session.DefaultPageStay
	}
	if rho < 0 {
		return nil, fmt.Errorf("core: negative burst gap %v", rho)
	}
	appendRec, _ := p.cfg.Heuristic.(heuristics.SessionAppender)
	return &Tail{
		cfg:       p.cfg,
		rho:       rho,
		rhoNano:   rho.Nanoseconds(),
		appendRec: appendRec,
		buffers:   make(map[string]*burst),
		wheel:     make(map[int64][]string),
		reconstructHist: metrics.GetHistogram(metrics.WithLabels(
			"core.tail.reconstruct.seconds", "heur", p.cfg.Heuristic.Name())),
	}, nil
}

// Push feeds one record, returning any sessions finalized by its arrival
// (usually none; occasionally the previous burst of the same user).
// Malformed-record handling belongs to the caller (clf.Scanner skips them).
func (t *Tail) Push(rec clf.Record) []session.Session {
	out := t.pushRecord(nil, rec)
	t.syncMetrics()
	return out
}

// PushBatch feeds a slice of records, returning the sessions they finalized
// in exactly the order a record-at-a-time Push loop would have returned
// them. It is the amortized hot path: stage counters and metrics flush once
// per batch instead of once per record. The input slice is not retained.
func (t *Tail) PushBatch(recs []clf.Record) []session.Session {
	return t.pushBatchInto(nil, recs)
}

// pushBatchInto is PushBatch appending onto dst; the streaming ingest loop
// passes one recycled buffer so steady-state batches allocate no output
// slice at all (the sink contract forbids retention).
func (t *Tail) pushBatchInto(dst []session.Session, recs []clf.Record) []session.Session {
	for i := range recs {
		dst = t.pushRecord(dst, recs[i])
	}
	t.syncMetrics()
	return dst
}

// pushRecord is the shared Push/PushBatch body: count, filter, resolve, key,
// buffer. Finalized sessions are appended onto dst; the caller syncs
// metrics.
func (t *Tail) pushRecord(dst []session.Session, rec clf.Record) []session.Session {
	t.stats.Records++
	t.pendingRecords++
	if t.cfg.Filter != nil && !t.cfg.Filter(rec) {
		t.stats.Filtered++
		return dst
	}
	page, ok := t.cfg.Resolver(rec.URI)
	if !ok {
		t.stats.Unresolved++
		return dst
	}
	return t.pushResolved(dst, t.cfg.Key(rec), page, rec.Time)
}

// pushResolved buffers one already-cleaned, already-resolved request. It is
// the post-shard half of Push: ShardedTail runs Filter/Resolver/Key in the
// caller's goroutine and routes here under the owning shard's lock.
func (t *Tail) pushResolved(dst []session.Session, user string, page webgraph.PageID, at time.Time) []session.Session {
	atN := at.UnixNano()
	b := t.buffers[user]
	out := dst
	if b == nil {
		b = t.newBurst()
		t.buffers[user] = b
		t.stats.Users++
		t.wheelAdd(user, at)
	} else if len(b.entries) > 0 && atN-b.lastNano > t.rhoNano {
		// Gap close: the user stays buffered (their next burst starts with
		// this record), so no eviction and no wheel touch — the stale wheel
		// entry is revalidated lazily when its bucket ages out.
		out = t.closeInto(out, user, b)
		b.entries = t.newEntrySlice()
	} else if atN < b.lastNano {
		b.unsorted = true
	}
	b.entries = append(b.entries, session.Entry{Page: page, Time: at})
	t.buffered++
	if n := int64(len(b.entries)); n > t.maxDepth {
		t.maxDepth = n
	}
	if atN > b.lastNano {
		b.last = at
		b.lastNano = atN
	}
	return out
}

// Buffered returns the number of entries currently held in open bursts —
// the streaming processor's in-memory backlog across all users.
func (t *Tail) Buffered() int { return t.buffered }

// ActiveUsers returns the number of users with an open burst — the working
// set that bounds the Tail's memory after eviction.
func (t *Tail) ActiveUsers() int { return len(t.buffers) }

// wheelBuckets returns the number of non-empty expiry-wheel buckets (test
// and debugging hook: the wheel's size tracks the active window, not the
// total users seen).
func (t *Tail) wheelBuckets() int { return len(t.wheel) }

// Expire finalizes every user whose last request is more than ρ before now,
// returning their sessions and evicting the users. Call it periodically when
// tailing a live log so quiet users' sessions are not held forever; its cost
// is proportional to the users whose activity buckets aged past the cutoff,
// independent of how many users the Tail has ever seen.
func (t *Tail) Expire(now time.Time) []session.Session {
	out := t.expireLocked(now)
	t.syncMetrics()
	return out
}

// expireLocked is Expire without the metrics sync (ShardedTail syncs once
// per shard drain).
func (t *Tail) expireLocked(now time.Time) []session.Session {
	if len(t.wheel) == 0 {
		return nil
	}
	cutBucket := t.bucketOf(now.Add(-t.rho))
	var aged []int64
	for bk := range t.wheel {
		if bk <= cutBucket {
			aged = append(aged, bk)
		}
	}
	if len(aged) == 0 {
		return nil
	}
	sort.Slice(aged, func(i, j int) bool { return aged[i] < aged[j] })
	var users []string
	for _, bk := range aged {
		bucket := t.wheel[bk]
		delete(t.wheel, bk)
		for _, u := range bucket {
			b := t.buffers[u]
			if b == nil || len(b.entries) == 0 {
				continue // evicted since insertion; stale entry, drop it
			}
			if now.Sub(b.last) > t.rho {
				users = append(users, u)
			} else {
				// Still active: move forward to the bucket of the true last
				// activity (the lazy half of the wheel's bookkeeping).
				t.wheelAdd(u, b.last)
			}
		}
	}
	// Sorting keeps the emission order identical to the pre-wheel full scan.
	sort.Strings(users)
	var out []session.Session
	for _, u := range users {
		b := t.buffers[u]
		out = t.closeInto(out, u, b)
		t.evict(u, b)
	}
	return out
}

// Flush finalizes everything buffered, in user order, and evicts every user.
// The Tail remains usable afterwards (a returning user is counted anew).
func (t *Tail) Flush() []session.Session {
	out := t.flushLocked()
	t.syncMetrics()
	return out
}

// flushLocked is Flush without the metrics sync.
func (t *Tail) flushLocked() []session.Session {
	users := make([]string, 0, len(t.buffers))
	for u, b := range t.buffers {
		if len(b.entries) > 0 {
			users = append(users, u)
		}
	}
	sort.Strings(users)
	// Most bursts reconstruct to one session; presizing at one per user
	// absorbs the bulk of the append growth in a full drain.
	out := make([]session.Session, 0, len(users))
	for _, u := range users {
		b := t.buffers[u]
		out = t.closeInto(out, u, b)
		t.evict(u, b)
	}
	clear(t.wheel)
	return out
}

// Stats returns the counters accumulated so far. Sessions counts emitted
// sessions only; buffered requests are not yet sessions. Users counts user
// activations: a user evicted by Expire/Flush who later returns is counted
// again (see the Tail doc).
func (t *Tail) Stats() Stats { return t.stats }

// close runs the heuristic on a burst and takes ownership of its entries
// (recycling them afterwards — no heuristic retains the input slice; see
// heuristics.Reconstructor). The burst is left empty; the caller decides
// whether to evict it or hand it a fresh entry slice.
func (t *Tail) closeInto(dst []session.Session, user string, b *burst) []session.Session {
	entries := b.entries
	b.entries = nil
	t.buffered -= len(entries)
	// Out-of-order arrivals within the burst (merged proxy logs, clock
	// skew) are sorted here; cross-burst reordering beyond ρ is a log
	// defect the caller owns. Logs are overwhelmingly in order, and
	// pushResolved flags the rare inversion as it arrives, so the common
	// close pays neither a sort nor a scan.
	if b.unsorted {
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].Time.Before(entries[j].Time)
		})
		b.unsorted = false
	}
	from := len(dst)
	if t.skipCloses == 0 {
		start := time.Now()
		dst = t.reconstructInto(dst, user, entries)
		t.reconstructHist.ObserveWeighted(time.Since(start).Seconds(), 1+t.untimedCloses)
		t.untimedCloses = 0
		t.skipCloses = reconstructSampleEvery - 1
	} else {
		dst = t.reconstructInto(dst, user, entries)
		t.skipCloses--
		t.untimedCloses++
	}
	n := len(dst) - from
	t.stats.Sessions += n
	t.pendingSessions += int64(n)
	t.recycleEntries(entries)
	return dst
}

// reconstructInto runs the heuristic over one closed burst, appending its
// sessions onto dst — directly when the heuristic supports it, via the
// Reconstruct slice otherwise.
func (t *Tail) reconstructInto(dst []session.Session, user string, entries []session.Entry) []session.Session {
	if t.appendRec != nil {
		return t.appendRec.AppendSessions(dst, session.Stream{User: user, Entries: entries})
	}
	return append(dst, t.cfg.Heuristic.Reconstruct(session.Stream{User: user, Entries: entries})...)
}

// evict removes a closed user from the buffer map and recycles the burst
// header. The user's wheel entry (if any) is dropped lazily when its bucket
// ages out.
func (t *Tail) evict(user string, b *burst) {
	delete(t.buffers, user)
	if len(t.freeBursts) < maxFreeBursts {
		b.entries = nil
		b.last = time.Time{}
		b.lastNano = math.MinInt64
		b.unsorted = false
		t.freeBursts = append(t.freeBursts, b)
	}
}

// newBurst returns a zeroed burst header, recycled when possible, seeded
// with a recycled entry array.
func (t *Tail) newBurst() *burst {
	var b *burst
	if n := len(t.freeBursts); n > 0 {
		b = t.freeBursts[n-1]
		t.freeBursts[n-1] = nil
		t.freeBursts = t.freeBursts[:n-1]
	} else {
		b = &burst{}
	}
	b.entries = t.newEntrySlice()
	b.lastNano = math.MinInt64
	b.unsorted = false
	return b
}

// newEntrySlice pops a recycled entry backing array (len 0), or allocates a
// fresh one at a typical burst's capacity.
func (t *Tail) newEntrySlice() []session.Entry {
	if n := len(t.freeEntries); n > 0 {
		s := t.freeEntries[n-1]
		t.freeEntries[n-1] = nil
		t.freeEntries = t.freeEntries[:n-1]
		return s
	}
	// Nothing to recycle: start at a typical burst's size so the common
	// case pays one allocation instead of a 1→2→4→8→16 growth ladder.
	return make([]session.Entry, 0, 16)
}

// recycleEntries returns a closed burst's backing array to the free list.
// Safe because no Reconstructor retains the input entries (they copy what
// they keep), and Snapshot deep-copies — pinned by tests.
func (t *Tail) recycleEntries(s []session.Entry) {
	if cap(s) == 0 || cap(s) > maxRecycledCap || len(t.freeEntries) >= maxFreeEntries {
		return
	}
	t.freeEntries = append(t.freeEntries, s[:0])
}

// wheelAdd inserts user into the expiry-wheel bucket covering at.
func (t *Tail) wheelAdd(user string, at time.Time) {
	bk := t.bucketOf(at)
	t.wheel[bk] = append(t.wheel[bk], user)
}

// bucketOf maps a timestamp to its ρ-width wheel bucket (floor division, so
// pre-epoch timestamps bucket consistently too).
func (t *Tail) bucketOf(at time.Time) int64 {
	ns := at.UnixNano()
	w := int64(t.rho)
	bk := ns / w
	if ns < 0 && ns%w != 0 {
		bk--
	}
	return bk
}

// syncMetrics folds the deferred per-operation deltas into the process-wide
// atomic metrics — one flush per public operation instead of 3–4 atomic ops
// per record.
func (t *Tail) syncMetrics() {
	if t.pendingRecords != 0 {
		metricTailRecords.Add(t.pendingRecords)
		t.pendingRecords = 0
	}
	if d := int64(t.buffered) - t.lastBuffered; d != 0 {
		metricTailBuffered.Add(d)
		t.bufferedGauge.Add(d)
		t.lastBuffered = int64(t.buffered)
	}
	if t.maxDepth > t.syncedMaxDepth {
		metricTailMaxDepth.SetMax(t.maxDepth)
		t.syncedMaxDepth = t.maxDepth
	}
	if t.pendingSessions != 0 {
		metricTailSessions.Add(t.pendingSessions)
		t.pendingSessions = 0
	}
}

// entriesSorted reports whether the burst is already in time order (the
// overwhelmingly common case for real logs).
func entriesSorted(entries []session.Entry) bool {
	// UnixNano is order-preserving, and the integer compare keeps this
	// every-close pre-scan off the time.Time comparison slow path.
	prev := int64(math.MinInt64)
	for i := range entries {
		et := entries[i].Time.UnixNano()
		if et < prev {
			return false
		}
		prev = et
	}
	return true
}
