package core

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

// The second golden corpus: a distribution-scale fixture produced by the
// agent simulator over a generated topology — thousands of records from
// hundreds of interleaved users, shared proxy IPs included. It catches
// distribution-level regressions (shard balance, burst interleaving, intern
// arena behaviour) that the 25-line hand-written corpus cannot. The
// topology, log, and expected outputs are committed; regenerate all of them
// with
//
//	go test ./internal/core -run TestGoldenCorpusSimgen -update
const (
	golden2Seed   = 11
	golden2Agents = 150
)

// regenGolden2 deterministically rebuilds the simgen fixture inputs.
func regenGolden2(t *testing.T) {
	t.Helper()
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 120, AvgOutDegree: 8, StartPageFraction: 0.08,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(golden2Seed)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = golden2Agents
	params.Seed = golden2Seed + 1
	res, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}

	var topo bytes.Buffer
	bw := bufio.NewWriter(&topo)
	if err := g.Encode(bw); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if err := os.WriteFile(goldenPath("golden2.topology.json"), topo.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	for _, rec := range res.Log(g) {
		log.WriteString(rec.String())
		log.WriteByte('\n')
	}
	if err := os.WriteFile(goldenPath("golden2.log"), log.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func golden2Graph(t *testing.T) *webgraph.Graph {
	t.Helper()
	g, err := webgraph.Decode(bytes.NewReader(readGolden(t, "golden2.topology.json")))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGoldenCorpusSimgen pins batch and streaming processing of the simgen
// corpus across the reader × processor sweep, byte for byte.
func TestGoldenCorpusSimgen(t *testing.T) {
	if *update {
		regenGolden2(t)
	}
	g := golden2Graph(t)
	log := readGolden(t, "golden2.log")

	// Batch reference and sweep.
	ref, err := NewPipeline(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.ProcessLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Malformed != 0 {
		t.Fatalf("simgen corpus has %d malformed lines, want 0", res.Stats.Malformed)
	}
	writeOrCompareGolden(t, "golden2.batch.sessions", renderSessions(t, res.Sessions))
	wantBatch := readGoldenOrGot(t, "golden2.batch.sessions", renderSessions(t, res.Sessions))
	for _, workers := range []int{-1, 3} {
		for _, depth := range []int{0, 2} {
			p, err := NewPipeline(Config{Graph: g, Workers: workers, StreamDepth: depth})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.ProcessLog(bytes.NewReader(log))
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != res.Stats {
				t.Fatalf("workers=%d depth=%d: stats %+v, want %+v", workers, depth, got.Stats, res.Stats)
			}
			if !bytes.Equal(renderSessions(t, got.Sessions), wantBatch) {
				t.Fatalf("workers=%d depth=%d: batch sessions differ from golden2", workers, depth)
			}
		}
	}

	// Streaming reference (single Tail, sequential feed) and sweep.
	refTail, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	records, bad, err := clf.ReadAll(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("ReadAll malformed = %d, want 0", bad)
	}
	var refStream []session.Session
	for _, rec := range records {
		refStream = append(refStream, refTail.Push(rec)...)
	}
	refStream = append(refStream, refTail.Flush()...)
	writeOrCompareGolden(t, "golden2.stream.sessions", renderSessions(t, refStream))
	wantStream := readGoldenOrGot(t, "golden2.stream.sessions", renderSessions(t, refStream))

	for _, shards := range []int{1, 3, 5} {
		for _, workers := range []int{1, 3} {
			for _, depth := range []int{1, 4} {
				name := fmt.Sprintf("shards=%d workers=%d depth=%d", shards, workers, depth)
				cfg := Config{Graph: g, Workers: workers, StreamDepth: depth}
				st, err := NewShardedTail(cfg, 0, shards)
				if err != nil {
					t.Fatal(err)
				}
				var got []session.Session
				malformed, err := st.Ingest(bytes.NewReader(log), func(s []session.Session) {
					got = append(got, s...)
				})
				if err != nil {
					t.Fatal(err)
				}
				if malformed != 0 {
					t.Fatalf("%s: malformed = %d, want 0", name, malformed)
				}
				got = append(got, st.Flush()...)
				if !bytes.Equal(renderSessions(t, got), wantStream) {
					t.Fatalf("%s: streamed sessions differ from golden2", name)
				}
			}
		}
	}

	// The offset-reporting path must emit the identical stream too.
	st, err := NewShardedTail(Config{Graph: g, Workers: 2, StreamDepth: 2, StreamChunkBytes: 16 << 10}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got []session.Session
	var lastOff int64
	if _, err := st.IngestOffsets(bytes.NewReader(log), func(s []session.Session) {
		got = append(got, s...)
	}, func(off int64) { lastOff = off }); err != nil {
		t.Fatal(err)
	}
	if lastOff != int64(len(log)) {
		t.Fatalf("final offset %d, want %d", lastOff, len(log))
	}
	got = append(got, st.Flush()...)
	if !bytes.Equal(renderSessions(t, got), wantStream) {
		t.Fatal("IngestOffsets sessions differ from golden2")
	}
}
