package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func testBatch(user string, pages ...int) []session.Session {
	s := session.Session{User: user}
	base := time.Unix(1000, 0).UTC()
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{Page: webgraph.PageID(p), Time: base.Add(time.Duration(i) * time.Second)})
	}
	return []session.Session{s}
}

// TestRetrySinkRecoversFromTransientFailures: a write that fails twice then
// succeeds loses nothing, records the retries and the recovery, and backs off
// exponentially between attempts.
func TestRetrySinkRecoversFromTransientFailures(t *testing.T) {
	retriesBefore := metricRetrySinkRetries.Value()
	recoveriesBefore := metricRetrySinkRecoveries.Value()

	var buf bytes.Buffer
	fails := 2
	var delays []time.Duration
	sink := NewRetrySink(func(s []session.Session) error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return session.WriteAll(&buf, s)
	}, RetryOptions{
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  time.Second,
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	})

	batch := testBatch("10.0.0.1", 3, 14, 15)
	sink.Emit(batch)
	if err := sink.Err(); err != nil {
		t.Fatalf("Err() = %v after recovery, want nil", err)
	}
	var want bytes.Buffer
	session.WriteAll(&want, batch)
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatalf("sink wrote %q, want %q", buf.Bytes(), want.Bytes())
	}
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 20*time.Millisecond {
		t.Fatalf("backoff delays = %v, want [10ms 20ms]", delays)
	}
	if got := metricRetrySinkRetries.Value() - retriesBefore; got != 2 {
		t.Errorf("retry counter moved by %d, want 2", got)
	}
	if got := metricRetrySinkRecoveries.Value() - recoveriesBefore; got != 1 {
		t.Errorf("recovery counter moved by %d, want 1", got)
	}
}

// TestRetrySinkDeadLetters: a persistently failing write journals the batch
// in the re-ingestable session text format and surfaces the error via Err.
func TestRetrySinkDeadLetters(t *testing.T) {
	deadBefore := metricRetrySinkDeadLetters.Value()

	var journal bytes.Buffer
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("disk full")
	}, RetryOptions{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		DeadLetter:  &journal,
	})

	batch := testBatch("10.0.0.2", 1, 2)
	sink.Emit(batch)
	if err := sink.Err(); err == nil || err.Error() != "disk full" {
		t.Fatalf("Err() = %v, want disk full", err)
	}
	got, err := session.ReadAll(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatalf("dead-letter journal does not re-ingest: %v", err)
	}
	if len(got) != 1 || got[0].String() != batch[0].String() {
		t.Fatalf("journal holds %v, want %v", got, batch)
	}
	if gotN := metricRetrySinkDeadLetters.Value() - deadBefore; gotN != 1 {
		t.Errorf("deadletter counter moved by %d, want 1", gotN)
	}
}

// TestRetrySinkDropsAreCounted: with no journal (or a failing one), exhausted
// batches are dropped but the loss is visible in the dropped counter.
func TestRetrySinkDropsAreCounted(t *testing.T) {
	droppedBefore := metricRetrySinkDropped.Value()
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("nope")
	}, RetryOptions{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	sink.Emit(testBatch("10.0.0.3", 7))
	sink.Emit(testBatch("10.0.0.4", 8, 9))
	if got := metricRetrySinkDropped.Value() - droppedBefore; got != 2 {
		t.Errorf("dropped counter moved by %d, want 2", got)
	}

	failingJournal := NewRetrySink(func([]session.Session) error {
		return errors.New("nope")
	}, RetryOptions{
		MaxAttempts: 1,
		Sleep:       func(time.Duration) {},
		DeadLetter:  failWriter{},
	})
	droppedBefore = metricRetrySinkDropped.Value()
	failingJournal.Emit(testBatch("10.0.0.5", 1))
	if got := metricRetrySinkDropped.Value() - droppedBefore; got != 1 {
		t.Errorf("dropped counter (failing journal) moved by %d, want 1", got)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("journal broken") }

// journalTemp opens an O_RDWR temp file as a compactable dead-letter journal.
func journalTemp(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "deadletter-*.sessions")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func journalSize(t *testing.T, f *os.File) int64 {
	t.Helper()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRetrySinkCompactsJournalOnRecovery: the headline journal-GC fix — an
// outage dead-letters batches into the file journal, and the first Emit
// after the sink recovers re-ingests them through the working sink and
// truncates the journal back to empty, so the dead-letter file tracks the
// current outage instead of growing forever.
func TestRetrySinkCompactsJournalOnRecovery(t *testing.T) {
	reingestBefore := metricRetrySinkReingested.Value()
	compactBefore := metricRetrySinkCompactions.Value()

	journal := journalTemp(t)
	var buf bytes.Buffer
	failing := true
	sink := NewRetrySink(func(s []session.Session) error {
		if failing {
			return errors.New("outage")
		}
		return session.WriteAll(&buf, s)
	}, RetryOptions{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
		DeadLetter:  journal,
	})

	lost1 := testBatch("10.2.0.1", 1, 2)
	lost2 := testBatch("10.2.0.2", 3)
	sink.Emit(lost1)
	sink.Emit(lost2)
	if journalSize(t, journal) == 0 {
		t.Fatal("outage batches were not journaled")
	}

	failing = false
	live := testBatch("10.2.0.3", 4, 5)
	sink.Emit(live)

	if size := journalSize(t, journal); size != 0 {
		t.Fatalf("journal still %d bytes after recovery, want empty", size)
	}
	got, err := session.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("recovered sink output does not re-ingest: %v", err)
	}
	// live lands first (its Emit triggered the compaction), then the backlog.
	if len(got) != 3 {
		t.Fatalf("%d sessions reached the sink, want 3 (live + 2 re-ingested)", len(got))
	}
	want := map[string]bool{
		lost1[0].String(): false, lost2[0].String(): false, live[0].String(): false,
	}
	for _, s := range got {
		if _, ok := want[s.String()]; !ok {
			t.Fatalf("unexpected session %v", s)
		}
		want[s.String()] = true
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("session %q never reached the recovered sink", k)
		}
	}
	if got := metricRetrySinkReingested.Value() - reingestBefore; got != 2 {
		t.Errorf("reingest counter moved by %d, want 2", got)
	}
	if got := metricRetrySinkCompactions.Value() - compactBefore; got != 1 {
		t.Errorf("compact counter moved by %d, want 1", got)
	}

	// A later outage journals into the now-empty file again.
	failing = true
	sink.Emit(testBatch("10.2.0.4", 6))
	if journalSize(t, journal) == 0 {
		t.Fatal("post-compaction outage was not journaled")
	}
	relost, err := session.ReadAll(bytes.NewReader(readFileAll(t, journal)))
	if err != nil || len(relost) != 1 {
		t.Fatalf("post-compaction journal holds %v (%v), want 1 session", relost, err)
	}
}

// TestRetrySinkReingestsPriorRunJournal: a non-empty journal inherited from a
// crashed previous run is healed by the first successful Emit.
func TestRetrySinkReingestsPriorRunJournal(t *testing.T) {
	journal := journalTemp(t)
	backlog := testBatch("10.2.1.1", 9, 10)
	if err := session.WriteAll(journal, backlog); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := NewRetrySink(func(s []session.Session) error {
		return session.WriteAll(&buf, s)
	}, RetryOptions{Sleep: func(time.Duration) {}, DeadLetter: journal})

	sink.Emit(testBatch("10.2.1.2", 11))
	if size := journalSize(t, journal); size != 0 {
		t.Fatalf("prior-run journal still %d bytes, want healed to empty", size)
	}
	got, err := session.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d sessions reached the sink, want live + prior-run backlog", len(got))
	}
}

// TestRetrySinkKeepsJournalWhileFailing: compaction never truncates sessions
// the sink has not accepted — while the outage lasts, the journal only grows.
func TestRetrySinkKeepsJournalWhileFailing(t *testing.T) {
	journal := journalTemp(t)
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("still down")
	}, RetryOptions{MaxAttempts: 1, Sleep: func(time.Duration) {}, DeadLetter: journal})

	sink.Emit(testBatch("10.2.2.1", 1))
	first := journalSize(t, journal)
	sink.Emit(testBatch("10.2.2.2", 2))
	second := journalSize(t, journal)
	if first == 0 || second <= first {
		t.Fatalf("journal sizes %d -> %d, want monotone growth while failing", first, second)
	}
	got, err := session.ReadAll(bytes.NewReader(readFileAll(t, journal)))
	if err != nil {
		t.Fatalf("journal corrupted while failing: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("journal holds %d sessions, want 2", len(got))
	}
}

// TestRetrySinkPlainWriterJournalUntouched: a write-only dead-letter journal
// (no read/seek/truncate) keeps the old append-forever behavior — compaction
// is strictly opt-in via the writer's capabilities.
func TestRetrySinkPlainWriterJournalUntouched(t *testing.T) {
	var journal bytes.Buffer
	failing := true
	sink := NewRetrySink(func([]session.Session) error {
		if failing {
			return errors.New("outage")
		}
		return nil
	}, RetryOptions{MaxAttempts: 1, Sleep: func(time.Duration) {}, DeadLetter: &journal})

	sink.Emit(testBatch("10.2.3.1", 1))
	before := journal.Len()
	failing = false
	sink.Emit(testBatch("10.2.3.2", 2))
	if journal.Len() != before {
		t.Fatalf("plain io.Writer journal changed size %d -> %d across recovery", before, journal.Len())
	}
}

func readFileAll(t *testing.T, f *os.File) []byte {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRetrySinkBackoffCap: the backoff never exceeds MaxDelay no matter how
// many retries run.
func TestRetrySinkBackoffCap(t *testing.T) {
	var delays []time.Duration
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("always")
	}, RetryOptions{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	})
	sink.Emit(testBatch("10.0.0.6", 2))
	if len(delays) != 7 {
		t.Fatalf("%d delays, want 7", len(delays))
	}
	want := []time.Duration{10, 20, 40, 50, 50, 50, 50}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v (all: %v)", i, d, want[i]*time.Millisecond, delays)
		}
	}
}

// TestRetrySinkConcurrentEmits: concurrent producers never interleave lines
// of different batches (pinned under -race by the suite's race run).
func TestRetrySinkConcurrentEmits(t *testing.T) {
	var buf bytes.Buffer
	sink := NewRetrySink(func(s []session.Session) error {
		return session.WriteAll(&buf, s)
	}, RetryOptions{Sleep: func(time.Duration) {}})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sink.Emit(testBatch(fmt.Sprintf("10.1.%d.%d", g, i), 1, 2, 3))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	got, err := session.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent emits corrupted output: %v", err)
	}
	if len(got) != 200 {
		t.Fatalf("%d sessions written, want 200", len(got))
	}
}
