package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func testBatch(user string, pages ...int) []session.Session {
	s := session.Session{User: user}
	base := time.Unix(1000, 0).UTC()
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{Page: webgraph.PageID(p), Time: base.Add(time.Duration(i) * time.Second)})
	}
	return []session.Session{s}
}

// TestRetrySinkRecoversFromTransientFailures: a write that fails twice then
// succeeds loses nothing, records the retries and the recovery, and backs off
// exponentially between attempts.
func TestRetrySinkRecoversFromTransientFailures(t *testing.T) {
	retriesBefore := metricRetrySinkRetries.Value()
	recoveriesBefore := metricRetrySinkRecoveries.Value()

	var buf bytes.Buffer
	fails := 2
	var delays []time.Duration
	sink := NewRetrySink(func(s []session.Session) error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return session.WriteAll(&buf, s)
	}, RetryOptions{
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  time.Second,
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	})

	batch := testBatch("10.0.0.1", 3, 14, 15)
	sink.Emit(batch)
	if err := sink.Err(); err != nil {
		t.Fatalf("Err() = %v after recovery, want nil", err)
	}
	var want bytes.Buffer
	session.WriteAll(&want, batch)
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatalf("sink wrote %q, want %q", buf.Bytes(), want.Bytes())
	}
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 20*time.Millisecond {
		t.Fatalf("backoff delays = %v, want [10ms 20ms]", delays)
	}
	if got := metricRetrySinkRetries.Value() - retriesBefore; got != 2 {
		t.Errorf("retry counter moved by %d, want 2", got)
	}
	if got := metricRetrySinkRecoveries.Value() - recoveriesBefore; got != 1 {
		t.Errorf("recovery counter moved by %d, want 1", got)
	}
}

// TestRetrySinkDeadLetters: a persistently failing write journals the batch
// in the re-ingestable session text format and surfaces the error via Err.
func TestRetrySinkDeadLetters(t *testing.T) {
	deadBefore := metricRetrySinkDeadLetters.Value()

	var journal bytes.Buffer
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("disk full")
	}, RetryOptions{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		DeadLetter:  &journal,
	})

	batch := testBatch("10.0.0.2", 1, 2)
	sink.Emit(batch)
	if err := sink.Err(); err == nil || err.Error() != "disk full" {
		t.Fatalf("Err() = %v, want disk full", err)
	}
	got, err := session.ReadAll(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatalf("dead-letter journal does not re-ingest: %v", err)
	}
	if len(got) != 1 || got[0].String() != batch[0].String() {
		t.Fatalf("journal holds %v, want %v", got, batch)
	}
	if gotN := metricRetrySinkDeadLetters.Value() - deadBefore; gotN != 1 {
		t.Errorf("deadletter counter moved by %d, want 1", gotN)
	}
}

// TestRetrySinkDropsAreCounted: with no journal (or a failing one), exhausted
// batches are dropped but the loss is visible in the dropped counter.
func TestRetrySinkDropsAreCounted(t *testing.T) {
	droppedBefore := metricRetrySinkDropped.Value()
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("nope")
	}, RetryOptions{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	sink.Emit(testBatch("10.0.0.3", 7))
	sink.Emit(testBatch("10.0.0.4", 8, 9))
	if got := metricRetrySinkDropped.Value() - droppedBefore; got != 2 {
		t.Errorf("dropped counter moved by %d, want 2", got)
	}

	failingJournal := NewRetrySink(func([]session.Session) error {
		return errors.New("nope")
	}, RetryOptions{
		MaxAttempts: 1,
		Sleep:       func(time.Duration) {},
		DeadLetter:  failWriter{},
	})
	droppedBefore = metricRetrySinkDropped.Value()
	failingJournal.Emit(testBatch("10.0.0.5", 1))
	if got := metricRetrySinkDropped.Value() - droppedBefore; got != 1 {
		t.Errorf("dropped counter (failing journal) moved by %d, want 1", got)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("journal broken") }

// TestRetrySinkBackoffCap: the backoff never exceeds MaxDelay no matter how
// many retries run.
func TestRetrySinkBackoffCap(t *testing.T) {
	var delays []time.Duration
	sink := NewRetrySink(func([]session.Session) error {
		return errors.New("always")
	}, RetryOptions{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	})
	sink.Emit(testBatch("10.0.0.6", 2))
	if len(delays) != 7 {
		t.Fatalf("%d delays, want 7", len(delays))
	}
	want := []time.Duration{10, 20, 40, 50, 50, 50, 50}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v (all: %v)", i, d, want[i]*time.Millisecond, delays)
		}
	}
}

// TestRetrySinkConcurrentEmits: concurrent producers never interleave lines
// of different batches (pinned under -race by the suite's race run).
func TestRetrySinkConcurrentEmits(t *testing.T) {
	var buf bytes.Buffer
	sink := NewRetrySink(func(s []session.Session) error {
		return session.WriteAll(&buf, s)
	}, RetryOptions{Sleep: func(time.Duration) {}})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sink.Emit(testBatch(fmt.Sprintf("10.1.%d.%d", g, i), 1, 2, 3))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	got, err := session.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent emits corrupted output: %v", err)
	}
	if len(got) != 200 {
		t.Fatalf("%d sessions written, want 200", len(got))
	}
}
