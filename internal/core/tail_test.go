package core

import (
	"math/rand"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/heuristics"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func tailRec(host, uri string, at time.Time) clf.Record {
	return clf.Record{
		Host: host, Ident: "-", AuthUser: "-", Time: at,
		Method: "GET", URI: uri, Protocol: "HTTP/1.1", Status: 200, Bytes: 1,
	}
}

func TestTailValidation(t *testing.T) {
	if _, err := NewTail(Config{}, 0); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := webgraph.PaperFigure1()
	if _, err := NewTail(Config{Graph: g}, -time.Second); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestTailEmitsOnGapAndFlush(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tl, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	if got := tl.Push(tailRec("u", "/P1.html", t0)); len(got) != 0 {
		t.Errorf("first push emitted %v", got)
	}
	if got := tl.Push(tailRec("u", "/P13.html", t0.Add(2*time.Minute))); len(got) != 0 {
		t.Errorf("in-burst push emitted %v", got)
	}
	// 11-minute gap: the previous burst closes and comes back as a session.
	got := tl.Push(tailRec("u", "/P1.html", t0.Add(13*time.Minute)))
	if len(got) != 1 || got[0].Len() != 2 {
		t.Fatalf("gap push emitted %v", got)
	}
	if got[0].User != "u" {
		t.Errorf("user = %q", got[0].User)
	}
	rest := tl.Flush()
	if len(rest) != 1 || rest[0].Len() != 1 {
		t.Fatalf("flush emitted %v", rest)
	}
	// Flush leaves the Tail reusable.
	if got := tl.Push(tailRec("u", "/P1.html", t0.Add(time.Hour))); len(got) != 0 {
		t.Errorf("post-flush push emitted %v", got)
	}
	st := tl.Stats()
	// Users counts activations, not distinct users: Flush evicted "u", so
	// the post-flush push re-activated it (memory stays bounded by the
	// active set instead of users-ever-seen).
	if st.Records != 4 || st.Users != 2 || st.Sessions != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTailExpire(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tl, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	tl.Push(tailRec("a", "/P1.html", t0))
	tl.Push(tailRec("b", "/P49.html", t0.Add(8*time.Minute)))
	// At t0+11m only user a is stale.
	got := tl.Expire(t0.Add(11 * time.Minute))
	if len(got) != 1 || got[0].User != "a" {
		t.Fatalf("expire emitted %v", got)
	}
	if got := tl.Expire(t0.Add(11 * time.Minute)); len(got) != 0 {
		t.Errorf("second expire emitted %v", got)
	}
	if got := tl.Flush(); len(got) != 1 || got[0].User != "b" {
		t.Errorf("flush emitted %v", got)
	}
}

func TestTailCountsFilteredAndUnresolved(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tl, err := NewTail(Config{Graph: g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	tl.Push(tailRec("u", "/logo.gif", t0))
	tl.Push(tailRec("u", "/unknown.html", t0))
	st := tl.Stats()
	if st.Filtered != 1 || st.Unresolved != 1 || st.Users != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTailSortsOutOfOrderWithinBurst(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	tl, err := NewTail(Config{Graph: g, Heuristic: heuristics.NewTimeGap()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	tl.Push(tailRec("u", "/P13.html", t0.Add(time.Minute)))
	tl.Push(tailRec("u", "/P1.html", t0)) // arrives late
	got := tl.Flush()
	if len(got) != 1 {
		t.Fatalf("flush emitted %v", got)
	}
	if got[0].Entries[0].Page != mustPage(t, g, "/P1.html") {
		t.Errorf("out-of-order entries not sorted: %v", got[0])
	}
}

func mustPage(t *testing.T, g *webgraph.Graph, uri string) webgraph.PageID {
	t.Helper()
	p, ok := g.PageByURI(uri)
	if !ok {
		t.Fatalf("no page %q", uri)
	}
	return p
}

// Streamed reconstruction must equal batch reconstruction for Smart-SRA and
// the time-gap heuristic (their sessions never span a >ρ gap).
func TestTailEquivalentToBatchForGapBoundedHeuristics(t *testing.T) {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 80, AvgOutDegree: 6, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 120
	sim, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	records := sim.Log(g)

	for _, build := range []func() heuristics.Reconstructor{
		func() heuristics.Reconstructor { return heuristics.NewTimeGap() },
		func() heuristics.Reconstructor { return heuristics.NewSmartSRA(g) },
	} {
		h := build()
		batchPipe, err := NewPipeline(Config{Graph: g, Heuristic: h})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := batchPipe.ProcessRecords(records)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := NewTail(Config{Graph: g, Heuristic: h}, 0)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []session.Session
		for _, rec := range records {
			streamed = append(streamed, tl.Push(rec)...)
		}
		streamed = append(streamed, tl.Flush()...)

		if len(streamed) != len(batch.Sessions) {
			t.Fatalf("%s: streamed %d sessions, batch %d",
				h.Name(), len(streamed), len(batch.Sessions))
		}
		// Compare as per-user multisets (emission order differs).
		count := make(map[string]int)
		for _, s := range batch.Sessions {
			count[s.String()]++
		}
		for _, s := range streamed {
			count[s.String()]--
		}
		for k, c := range count {
			if c != 0 {
				t.Fatalf("%s: session multiset differs at %q (%+d)", h.Name(), k, c)
			}
		}
	}
}
