package core

import (
	"io"
	"sync"
	"time"

	"smartsra/internal/metrics"
	"smartsra/internal/session"
)

// RetrySink instrumentation, labeled by event kind so /debug/metrics exposes
// one series per outcome under a single base name:
//
//	core.retrysink.events{kind="retry"}      write attempts repeated after a failure
//	core.retrysink.events{kind="recovery"}   batches that succeeded after >= 1 retry
//	core.retrysink.events{kind="deadletter"} sessions journaled after retries were exhausted
//	core.retrysink.events{kind="dropped"}    sessions lost entirely (no journal, or the journal failed too)
//	core.retrysink.events{kind="reingest"}   journaled sessions re-written through the recovered sink
//	core.retrysink.events{kind="compact"}    journal truncations after a successful re-ingest
var (
	metricRetrySinkWrites = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "write"))
	metricRetrySinkRetries = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "retry"))
	metricRetrySinkRecoveries = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "recovery"))
	metricRetrySinkDeadLetters = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "deadletter"))
	metricRetrySinkDropped = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "dropped"))
	metricRetrySinkReingested = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "reingest"))
	metricRetrySinkCompactions = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "compact"))
)

// RetryOptions tunes a RetrySink. The zero value gives production defaults.
type RetryOptions struct {
	// MaxAttempts is the total number of write attempts per batch, the first
	// one included. <= 0 means 5.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry.
	// <= 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 means 1s.
	MaxDelay time.Duration
	// Sleep is the backoff clock; nil means time.Sleep. Tests inject a fake
	// to keep retry paths instant.
	Sleep func(time.Duration)
	// DeadLetter receives batches whose retries were exhausted, in the
	// session text format (re-ingestable with session.ReadAll). nil means
	// exhausted batches are dropped — still counted, never silent.
	//
	// When the writer also supports reading, seeking, and truncation (an
	// *os.File opened O_RDWR does), the journal is garbage-collected: the
	// next time the underlying sink recovers, journaled sessions are
	// re-ingested through it and the journal is truncated to empty, so the
	// dead-letter file tracks the current outage instead of growing without
	// bound. A journal left over from a previous run is healed the same way.
	DeadLetter io.Writer
}

// journalFile is the optional dead-letter surface that enables compaction.
type journalFile interface {
	io.ReadWriteSeeker
	Truncate(int64) error
}

func (o RetryOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 5
	}
	return o.MaxAttempts
}

func (o RetryOptions) baseDelay() time.Duration {
	if o.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return o.BaseDelay
}

func (o RetryOptions) maxDelay() time.Duration {
	if o.MaxDelay <= 0 {
		return time.Second
	}
	return o.MaxDelay
}

// RetrySink hardens a session sink against transient write failures: each
// batch is retried with bounded exponential backoff, and a batch that still
// fails is journaled to a dead-letter writer instead of vanishing. Every
// outcome is counted (see the core.retrysink.events series), so a sink that
// starts failing is visible on /debug/metrics instead of silently discarding
// finalized sessions.
//
// Emit is safe for concurrent use; batches are written one at a time, so a
// slow or failing underlying writer backpressures producers rather than
// interleaving partial lines.
type RetrySink struct {
	mu      sync.Mutex
	write   func([]session.Session) error
	opts    RetryOptions
	lastErr error
	// journal is the dead-letter writer's compactable surface, nil when the
	// writer cannot be GC'd. dead records that the journal holds sessions
	// awaiting re-ingest, so recovered Emits know to compact.
	journal journalFile
	dead    bool
}

// NewRetrySink wraps a fallible batch write. Use (*RetrySink).Emit wherever a
// SessionSink is expected.
func NewRetrySink(write func([]session.Session) error, opts RetryOptions) *RetrySink {
	s := &RetrySink{write: write, opts: opts}
	if j, ok := opts.DeadLetter.(journalFile); ok {
		s.journal = j
		// A non-empty journal at construction is a previous run's backlog:
		// mark it pending so the first successful write re-ingests it.
		if size, err := j.Seek(0, io.SeekEnd); err == nil && size > 0 {
			s.dead = true
		}
	}
	return s
}

// Emit writes one batch, retrying on failure and dead-lettering on
// exhaustion. It satisfies SessionSink and must not retain the slice.
func (s *RetrySink) Emit(batch []session.Session) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sleep := s.opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 0; attempt < s.opts.maxAttempts(); attempt++ {
		if attempt > 0 {
			metricRetrySinkRetries.Inc()
			sleep(s.backoff(attempt))
		}
		if err = s.write(batch); err == nil {
			metricRetrySinkWrites.Inc()
			if attempt > 0 {
				metricRetrySinkRecoveries.Inc()
			}
			if s.dead {
				s.compact()
			}
			return
		}
	}
	s.lastErr = err
	if s.opts.DeadLetter != nil {
		if s.journal != nil {
			// Compaction may have left the cursor at the journal's start;
			// dead letters always append.
			if _, err := s.journal.Seek(0, io.SeekEnd); err != nil {
				metricRetrySinkDropped.Add(int64(len(batch)))
				return
			}
		}
		if dlErr := session.WriteAll(s.opts.DeadLetter, batch); dlErr == nil {
			metricRetrySinkDeadLetters.Add(int64(len(batch)))
			s.dead = s.journal != nil
			return
		}
	}
	metricRetrySinkDropped.Add(int64(len(batch)))
}

// compact garbage-collects the dead-letter journal after the underlying
// sink recovered: journaled sessions are re-written through the (now
// working) sink and the journal is truncated to empty. A journal that
// cannot be read back, or a sink that fails again mid-re-ingest, leaves the
// journal intact — nothing is truncated before its sessions have landed.
// Caller holds s.mu.
func (s *RetrySink) compact() {
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return
	}
	backlog, err := session.ReadAll(s.journal)
	if err != nil {
		// Unreadable (torn write from a crash mid-journal): keep the file
		// for the operator rather than destroying evidence.
		s.journal.Seek(0, io.SeekEnd)
		return
	}
	if len(backlog) > 0 {
		if err := s.write(backlog); err != nil {
			s.journal.Seek(0, io.SeekEnd)
			return
		}
		metricRetrySinkReingested.Add(int64(len(backlog)))
	}
	if err := s.journal.Truncate(0); err != nil {
		s.journal.Seek(0, io.SeekEnd)
		return
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return
	}
	s.dead = false
	metricRetrySinkCompactions.Inc()
}

// Err returns the most recent exhausted-retries error, or nil when every
// batch so far landed (possibly after retries).
func (s *RetrySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// backoff is the delay before retry number attempt (1-based): BaseDelay
// doubled per retry, capped at MaxDelay.
func (s *RetrySink) backoff(attempt int) time.Duration {
	d := s.opts.baseDelay()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= s.opts.maxDelay() {
			return s.opts.maxDelay()
		}
	}
	if d > s.opts.maxDelay() {
		return s.opts.maxDelay()
	}
	return d
}
