package core

import (
	"io"
	"sync"
	"time"

	"smartsra/internal/metrics"
	"smartsra/internal/session"
)

// RetrySink instrumentation, labeled by event kind so /debug/metrics exposes
// one series per outcome under a single base name:
//
//	core.retrysink.events{kind="retry"}      write attempts repeated after a failure
//	core.retrysink.events{kind="recovery"}   batches that succeeded after >= 1 retry
//	core.retrysink.events{kind="deadletter"} sessions journaled after retries were exhausted
//	core.retrysink.events{kind="dropped"}    sessions lost entirely (no journal, or the journal failed too)
var (
	metricRetrySinkWrites = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "write"))
	metricRetrySinkRetries = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "retry"))
	metricRetrySinkRecoveries = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "recovery"))
	metricRetrySinkDeadLetters = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "deadletter"))
	metricRetrySinkDropped = metrics.GetCounter(metrics.WithLabels(
		"core.retrysink.events", "kind", "dropped"))
)

// RetryOptions tunes a RetrySink. The zero value gives production defaults.
type RetryOptions struct {
	// MaxAttempts is the total number of write attempts per batch, the first
	// one included. <= 0 means 5.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry.
	// <= 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 means 1s.
	MaxDelay time.Duration
	// Sleep is the backoff clock; nil means time.Sleep. Tests inject a fake
	// to keep retry paths instant.
	Sleep func(time.Duration)
	// DeadLetter receives batches whose retries were exhausted, in the
	// session text format (re-ingestable with session.ReadAll). nil means
	// exhausted batches are dropped — still counted, never silent.
	DeadLetter io.Writer
}

func (o RetryOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 5
	}
	return o.MaxAttempts
}

func (o RetryOptions) baseDelay() time.Duration {
	if o.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return o.BaseDelay
}

func (o RetryOptions) maxDelay() time.Duration {
	if o.MaxDelay <= 0 {
		return time.Second
	}
	return o.MaxDelay
}

// RetrySink hardens a session sink against transient write failures: each
// batch is retried with bounded exponential backoff, and a batch that still
// fails is journaled to a dead-letter writer instead of vanishing. Every
// outcome is counted (see the core.retrysink.events series), so a sink that
// starts failing is visible on /debug/metrics instead of silently discarding
// finalized sessions.
//
// Emit is safe for concurrent use; batches are written one at a time, so a
// slow or failing underlying writer backpressures producers rather than
// interleaving partial lines.
type RetrySink struct {
	mu      sync.Mutex
	write   func([]session.Session) error
	opts    RetryOptions
	lastErr error
}

// NewRetrySink wraps a fallible batch write. Use (*RetrySink).Emit wherever a
// SessionSink is expected.
func NewRetrySink(write func([]session.Session) error, opts RetryOptions) *RetrySink {
	return &RetrySink{write: write, opts: opts}
}

// Emit writes one batch, retrying on failure and dead-lettering on
// exhaustion. It satisfies SessionSink and must not retain the slice.
func (s *RetrySink) Emit(batch []session.Session) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sleep := s.opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for attempt := 0; attempt < s.opts.maxAttempts(); attempt++ {
		if attempt > 0 {
			metricRetrySinkRetries.Inc()
			sleep(s.backoff(attempt))
		}
		if err = s.write(batch); err == nil {
			metricRetrySinkWrites.Inc()
			if attempt > 0 {
				metricRetrySinkRecoveries.Inc()
			}
			return
		}
	}
	s.lastErr = err
	if s.opts.DeadLetter != nil {
		if dlErr := session.WriteAll(s.opts.DeadLetter, batch); dlErr == nil {
			metricRetrySinkDeadLetters.Add(int64(len(batch)))
			return
		}
	}
	metricRetrySinkDropped.Add(int64(len(batch)))
}

// Err returns the most recent exhausted-retries error, or nil when every
// batch so far landed (possibly after retries).
func (s *RetrySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// backoff is the delay before retry number attempt (1-based): BaseDelay
// doubled per retry, capped at MaxDelay.
func (s *RetrySink) backoff(attempt int) time.Duration {
	d := s.opts.baseDelay()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= s.opts.maxDelay() {
			return s.opts.maxDelay()
		}
	}
	if d > s.opts.maxDelay() {
		return s.opts.maxDelay()
	}
	return d
}
