package webserver

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
)

// This file implements a live browsing agent: the simulator's four
// navigation behaviors executed as real HTTP requests against a running
// Site. Unlike internal/simulator — which walks the graph directly — the
// live agent discovers links only by parsing the HTML it fetches and keeps
// a client-side cache, so the server log it generates is produced by the
// same mechanism as real traffic (including Referer headers).

// BrowseConfig parameterizes one live agent.
type BrowseConfig struct {
	// Entries are the site's entry URIs (typically the topology's start
	// pages); the agent types these into the address bar.
	Entries []string
	// STP, LPP, NIP are the paper's behavior probabilities.
	STP, LPP, NIP float64
	// MaxRequests caps total navigations; zero means 200.
	MaxRequests int
	// Rng drives all choices; required for reproducibility.
	Rng *rand.Rand
	// UserAgent is sent with every request; empty means "live-agent/1.0".
	UserAgent string
}

// BrowseResult reports what the agent did.
type BrowseResult struct {
	// RealSessions are the ground-truth sessions as URI sequences, with the
	// same semantics as the simulator's (cache navigations included,
	// backward walks excluded).
	RealSessions [][]string
	// Fetched counts requests that reached the server.
	Fetched int
	// CacheHits counts navigations served from the local cache.
	CacheHits int
}

// Browse runs one agent against the site at base (e.g. an httptest server
// URL) until termination. Every fetched page is parsed for links and cached;
// revisits never touch the server, exactly like a browser.
func Browse(client *http.Client, base string, cfg BrowseConfig) (*BrowseResult, error) {
	if len(cfg.Entries) == 0 {
		return nil, fmt.Errorf("webserver: no entry URIs")
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("webserver: nil Rng")
	}
	maxReq := cfg.MaxRequests
	if maxReq == 0 {
		maxReq = 200
	}
	ua := cfg.UserAgent
	if ua == "" {
		ua = "live-agent/1.0"
	}

	res := &BrowseResult{}
	cache := make(map[string][]string) // uri -> links
	var cur []string                   // current real session (URIs)
	flush := func() {
		if len(cur) > 0 {
			res.RealSessions = append(res.RealSessions, cur)
			cur = nil
		}
	}
	// visit navigates to uri (fetching on cache miss with the given referer)
	// and returns its links.
	visit := func(uri, referer string) ([]string, error) {
		links, hit := cache[uri]
		if !hit {
			var err error
			links, err = fetch(client, base, uri, referer, ua)
			if err != nil {
				return nil, err
			}
			cache[uri] = links
			res.Fetched++
		} else {
			res.CacheHits++
		}
		cur = append(cur, uri)
		return links, nil
	}

	next := cfg.Entries[cfg.Rng.Intn(len(cfg.Entries))]
	referer := ""
	for requests := 0; ; {
		links, err := visit(next, referer)
		if err != nil {
			return nil, err
		}
		requests++
		if requests >= maxReq || cfg.Rng.Float64() < cfg.STP {
			break
		}
		if cfg.Rng.Float64() < cfg.NIP {
			entry, ok := pickFresh(cfg.Entries, cache, cfg.Rng)
			if !ok {
				entry = cfg.Entries[cfg.Rng.Intn(len(cfg.Entries))]
			}
			flush()
			next, referer = entry, "" // typed into the address bar
			continue
		}
		if cfg.Rng.Float64() < cfg.LPP {
			if target, fresh, ok := backTarget(cur, cache, cfg.Rng); ok {
				res.CacheHits += distanceFromEnd(cur, target)
				flush()
				cur = append(cur, target) // re-arrived via cache
				res.CacheHits++
				next, referer = fresh, target
				continue
			}
		}
		if len(links) == 0 {
			break // dead end
		}
		prev := cur[len(cur)-1]
		next, referer = links[cfg.Rng.Intn(len(links))], prev
	}
	flush()
	return res, nil
}

// fetch GETs base+uri with headers and returns the page's links.
func fetch(client *http.Client, base, uri, referer, ua string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, base+uri, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", ua)
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webserver: GET %s: status %d", uri, resp.StatusCode)
	}
	return ExtractLinks(string(body)), nil
}

// ExtractLinks returns the href targets of the page's anchor tags, in
// document order. It understands the minimal HTML Site emits (quoted href
// attributes) — enough for any well-formed static page.
func ExtractLinks(body string) []string {
	var out []string
	rest := body
	for {
		i := strings.Index(rest, `href="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`href="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return out
		}
		if link := rest[:j]; link != "" {
			out = append(out, link)
		}
		rest = rest[j+1:]
	}
}

// pickFresh returns a uniformly chosen entry URI not yet cached.
func pickFresh(entries []string, cache map[string][]string, rng *rand.Rand) (string, bool) {
	var fresh []string
	for _, e := range entries {
		if _, ok := cache[e]; !ok {
			fresh = append(fresh, e)
		}
	}
	if len(fresh) == 0 {
		return "", false
	}
	return fresh[rng.Intn(len(fresh))], true
}

// backTarget picks an earlier page of the current session with at least one
// uncached link, returning it and the fresh link to follow.
func backTarget(cur []string, cache map[string][]string, rng *rand.Rand) (target, fresh string, ok bool) {
	type cand struct {
		uri   string
		fresh []string
	}
	var cands []cand
	for _, uri := range cur[:max(0, len(cur)-1)] {
		var unvisited []string
		for _, l := range cache[uri] {
			if _, seen := cache[l]; !seen {
				unvisited = append(unvisited, l)
			}
		}
		if len(unvisited) > 0 {
			cands = append(cands, cand{uri: uri, fresh: unvisited})
		}
	}
	if len(cands) == 0 {
		return "", "", false
	}
	c := cands[rng.Intn(len(cands))]
	return c.uri, c.fresh[rng.Intn(len(c.fresh))], true
}

// distanceFromEnd returns how many back-steps reach the last occurrence of
// uri (for cache-hit accounting).
func distanceFromEnd(cur []string, uri string) int {
	for i := len(cur) - 1; i >= 0; i-- {
		if cur[i] == uri {
			return len(cur) - 1 - i
		}
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
