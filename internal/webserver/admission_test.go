package webserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

// TestPerIPCapExactness is the acceptance pin: N clients each firing M
// requests over the cap are admitted exactly PerIPBurst times apiece, no
// off-by-one, no cross-client bleed. The clock is frozen so zero tokens
// refill mid-test.
func TestPerIPCapExactness(t *testing.T) {
	const (
		clients = 8
		burst   = 5
		overCap = 3 // requests per client beyond the budget
	)
	frozen := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := NewAdmission(AdmissionConfig{
		PerIPRate:         1,
		PerIPBurst:        burst,
		TrustForwardedFor: true,
		Now:               func() time.Time { return frozen },
	})
	h := a.Wrap(okHandler())

	admitted := make(map[string]int)
	rejected := make(map[string]int)
	for c := 0; c < clients; c++ {
		ip := fmt.Sprintf("10.1.0.%d", c+1)
		for i := 0; i < burst+overCap; i++ {
			req := httptest.NewRequest("GET", "/", nil)
			req.RemoteAddr = "127.0.0.1:9999"
			req.Header.Set("X-Forwarded-For", ip)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			switch rr.Code {
			case http.StatusOK:
				admitted[ip]++
			case http.StatusTooManyRequests:
				rejected[ip]++
				if ra := rr.Header().Get("Retry-After"); ra == "" {
					t.Fatalf("%s: 429 without Retry-After", ip)
				} else if sec, err := strconv.Atoi(ra); err != nil || sec < 1 || sec > 3 {
					t.Fatalf("%s: Retry-After %q outside [1,3]", ip, ra)
				}
			default:
				t.Fatalf("%s: unexpected status %d", ip, rr.Code)
			}
		}
	}
	for c := 0; c < clients; c++ {
		ip := fmt.Sprintf("10.1.0.%d", c+1)
		if admitted[ip] != burst {
			t.Errorf("%s: admitted %d, want exactly %d", ip, admitted[ip], burst)
		}
		if rejected[ip] != overCap {
			t.Errorf("%s: rejected %d, want exactly %d", ip, rejected[ip], overCap)
		}
	}
}

// TestPerIPRefill pins the refill math: after the budget is spent, waiting
// t seconds at rate r grants exactly floor(t*r) more admissions.
func TestPerIPRefill(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := NewAdmission(AdmissionConfig{
		PerIPRate:  2, // 2 req/s
		PerIPBurst: 4,
		Now:        func() time.Time { return now },
	})
	h := a.Wrap(okHandler())
	send := func() int {
		req := httptest.NewRequest("GET", "/", nil)
		req.RemoteAddr = "10.2.0.1:1234"
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr.Code
	}
	for i := 0; i < 4; i++ {
		if code := send(); code != http.StatusOK {
			t.Fatalf("initial burst request %d: status %d", i, code)
		}
	}
	if code := send(); code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", code)
	}
	now = now.Add(1500 * time.Millisecond) // 1.5s × 2/s = 3 tokens
	for i := 0; i < 3; i++ {
		if code := send(); code != http.StatusOK {
			t.Fatalf("post-refill request %d: status %d", i, code)
		}
	}
	if code := send(); code != http.StatusTooManyRequests {
		t.Fatalf("post-refill over-budget request: status %d, want 429", code)
	}
}

// TestInFlightCap pins the global concurrency gate: with MaxInFlight=K and
// more than K requests blocked inside the handler, request K+1 is shed with
// 503 and a Retry-After, and capacity frees once a handler returns.
func TestInFlightCap(t *testing.T) {
	const cap = 3
	release := make(chan struct{})
	entered := make(chan struct{}, cap+8)
	a := NewAdmission(AdmissionConfig{MaxInFlight: cap})
	h := a.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < cap; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("handler never saturated")
		}
	}
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request: status %d, want 503", resp.StatusCode)
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || sec < 1 || sec > 3 {
		t.Fatalf("over-cap Retry-After %q outside [1,3]", resp.Header.Get("Retry-After"))
	}
	for i := 0; i < cap; i++ {
		release <- struct{}{}
	}
	wg.Wait()
	// The follow-up request runs the same blocking handler; feed it its
	// release token up front so only admission can block it.
	go func() { release <- struct{}{} }()
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: status %d, want 200", resp.StatusCode)
	}
}

// TestBucketTableBounded pins the memory bound: hostile address churn never
// grows the bucket table past MaxTrackedIPs.
func TestBucketTableBounded(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := NewAdmission(AdmissionConfig{
		PerIPRate:     1,
		PerIPBurst:    2,
		MaxTrackedIPs: 64,
		Now:           func() time.Time { return now },
	})
	h := a.Wrap(okHandler())
	for i := 0; i < 1000; i++ {
		req := httptest.NewRequest("GET", "/", nil)
		req.RemoteAddr = fmt.Sprintf("10.%d.%d.%d:1", i>>16&0xff, i>>8&0xff, i&0xff)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
	}
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > 64 {
		t.Fatalf("bucket table grew to %d entries, cap is 64", n)
	}
}

// TestRetryAfterJitterBound pins the jitter range shared by every shedding
// response.
func TestRetryAfterJitterBound(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		s := RetryAfterSeconds()
		if s < 1 || s > 3 {
			t.Fatalf("RetryAfterSeconds() = %d, want within [1,3]", s)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("no jitter observed: only %v", seen)
	}
}
