package webserver

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/core"
	"smartsra/internal/eval"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func figureSite(t *testing.T) (*webgraph.Graph, map[string]webgraph.PageID, *Site) {
	t.Helper()
	g, ids := webgraph.PaperFigure1()
	return g, ids, NewSite(g)
}

func TestSiteServesPagesWithLinks(t *testing.T) {
	g, ids, site := figureSite(t)
	srv := httptest.NewServer(site)
	defer srv.Close()

	resp, err := http.Get(srv.URL + g.Label(ids["P13"]))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	links := ExtractLinks(string(body))
	if len(links) != 2 {
		t.Fatalf("P13 links = %v, want its 2 successors", links)
	}
	want := map[string]bool{g.Label(ids["P34"]): true, g.Label(ids["P49"]): true}
	for _, l := range links {
		if !want[l] {
			t.Errorf("unexpected link %q", l)
		}
	}
}

func TestSiteRootAndRobotsAndNotFound(t *testing.T) {
	_, _, site := figureSite(t)
	srv := httptest.NewServer(site)
	defer srv.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Errorf("root status = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Error("root redirect has no Location")
	}

	resp, err = http.Get(srv.URL + "/robots.txt")
	if err != nil {
		t.Fatal(err)
	}
	robots, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(robots), "User-agent") {
		t.Errorf("robots.txt = %q", robots)
	}

	resp, err = http.Get(srv.URL + "/no-such-page.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing page status = %d", resp.StatusCode)
	}
}

// fakeClock hands out strictly increasing timestamps ~2 minutes apart so the
// CLF log is meaningful to the time rules despite requests arriving within
// milliseconds.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(2 * time.Minute)
	return c.now
}

func TestAccessLogProducesParseableCLF(t *testing.T) {
	g, ids, site := figureSite(t)
	sink := &CollectSink{}
	clock := &fakeClock{now: time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)}
	srv := httptest.NewServer(AccessLog(site, sink, clock.Now))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+g.Label(ids["P1"]), nil)
	req.Header.Set("User-Agent", "test-browser/2.0")
	req.Header.Set("Referer", "/elsewhere.html")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, err := http.Get(srv.URL + "/missing.html"); err != nil {
		t.Fatal(err)
	}

	recs := sink.Records()
	if len(recs) != 2 {
		t.Fatalf("recorded %d records", len(recs))
	}
	r := recs[0]
	if r.URI != g.Label(ids["P1"]) || r.Status != 200 || r.Method != "GET" {
		t.Errorf("record = %+v", r)
	}
	if r.Bytes <= 0 {
		t.Errorf("bytes = %d", r.Bytes)
	}
	if r.Referer != "/elsewhere.html" || r.UserAgent != "test-browser/2.0" {
		t.Errorf("headers = %q / %q", r.Referer, r.UserAgent)
	}
	if recs[1].Status != 404 {
		t.Errorf("404 status not captured: %+v", recs[1])
	}
	if !recs[0].Time.Before(recs[1].Time) {
		t.Error("fake clock not increasing")
	}
	// Every record round-trips through the combined format.
	for _, rec := range recs {
		if _, err := clf.ParseCombinedRecord(rec.CombinedString()); err != nil {
			t.Errorf("record does not re-parse: %v", err)
		}
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(clf.NewCombinedWriter(&buf))
	s.Record(clf.Record{Host: "1.1.1.1", Time: time.Unix(0, 0).UTC(),
		Method: "GET", URI: "/x", Protocol: "HTTP/1.1", Status: 200, Bytes: 1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if !strings.Contains(buf.String(), `"GET /x HTTP/1.1"`) {
		t.Errorf("output = %q", buf.String())
	}
	bad := NewWriterSink(clf.NewWriter(failWriter{}))
	for i := 0; i < 10000; i++ {
		bad.Record(clf.Record{Host: "1.1.1.1", Time: time.Unix(0, 0).UTC(),
			Method: "GET", URI: "/x", Protocol: "HTTP/1.1", Status: 200})
	}
	if bad.Flush() == nil {
		t.Error("writer error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("closed") }

func TestExtractLinks(t *testing.T) {
	body := `<a href="/a.html">a</a> <img src="x"> <a href="/b.html">b</a> <a href="">empty</a>`
	got := ExtractLinks(body)
	if len(got) != 2 || got[0] != "/a.html" || got[1] != "/b.html" {
		t.Errorf("links = %v", got)
	}
	if got := ExtractLinks("no links here"); len(got) != 0 {
		t.Errorf("links = %v", got)
	}
	if got := ExtractLinks(`<a href="/unterminated`); len(got) != 0 {
		t.Errorf("links = %v", got)
	}
}

func TestBrowseValidation(t *testing.T) {
	if _, err := Browse(nil, "", BrowseConfig{}); err == nil {
		t.Error("no entries accepted")
	}
	if _, err := Browse(nil, "", BrowseConfig{Entries: []string{"/x"}}); err == nil {
		t.Error("nil rng accepted")
	}
}

// The full loop: live agents browse the real HTTP site; the middleware's log
// is processed by the reactive pipeline; reconstructed sessions are scored
// against the agents' client-side ground truth.
func TestLiveBrowseEndToEnd(t *testing.T) {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 60, AvgOutDegree: 5, StartPageFraction: 0.1,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CollectSink{}
	clock := &fakeClock{now: time.Date(2006, 1, 2, 0, 0, 0, 0, time.UTC)}
	srv := httptest.NewServer(AccessLog(NewSite(g), sink, clock.Now))
	defer srv.Close()

	var entries []string
	for _, p := range g.StartPages() {
		entries = append(entries, g.Label(p))
	}

	// All agents share the loopback IP, so identity comes from the
	// User-Agent header; the pipeline below keys users the same way.
	var real []session.Session
	totalFetched, totalCached := 0, 0
	for agentID := 0; agentID < 20; agentID++ {
		ua := fmt.Sprintf("live-agent-%d", agentID)
		res, err := Browse(http.DefaultClient, srv.URL, BrowseConfig{
			Entries: entries,
			STP:     0.08, LPP: 0.30, NIP: 0.30,
			MaxRequests: 60,
			Rng:         rand.New(rand.NewSource(int64(agentID))),
			UserAgent:   ua,
		})
		if err != nil {
			t.Fatal(err)
		}
		totalFetched += res.Fetched
		totalCached += res.CacheHits
		for _, uris := range res.RealSessions {
			s := session.Session{User: ua}
			for i, uri := range uris {
				page, ok := g.PageByURI(uri)
				if !ok {
					t.Fatalf("agent visited unknown URI %q", uri)
				}
				s.Entries = append(s.Entries, session.Entry{
					Page: page,
					Time: clock.now.Add(time.Duration(i) * time.Second),
				})
			}
			real = append(real, s)
		}
	}

	records := sink.Records()
	if len(records) != totalFetched {
		t.Fatalf("middleware logged %d records, agents fetched %d", len(records), totalFetched)
	}
	if totalCached == 0 {
		t.Error("no cache hits; the client-side cache is not working")
	}

	pipeline, err := core.NewPipeline(core.Config{
		Graph: g,
		Key:   func(r clf.Record) string { return r.UserAgent },
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipeline.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Users != 20 {
		t.Errorf("users = %d, want 20", out.Stats.Users)
	}
	if out.Stats.Sessions == 0 {
		t.Fatal("no sessions reconstructed from live traffic")
	}
	acc := eval.Score(real, out.Sessions)
	if acc.Real == 0 || acc.Captured == 0 {
		t.Fatalf("live accuracy degenerate: %s", acc)
	}
	t.Logf("live end-to-end: %d records, %d sessions, accuracy %s",
		len(records), out.Stats.Sessions, acc)
}
