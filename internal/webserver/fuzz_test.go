package webserver_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webserver"
)

// FuzzAccessLogRecord hammers the untrusted HTTP → CLF boundary: hostile
// URIs, Referers, User-Agents, and forwarded client addresses (NULs, CRLF,
// quotes, terminal escapes, multi-megabyte values) flow through
// webserver.AccessLog and the CLF writer, and every written line must
// re-parse to exactly the record that was logged — one line per request, no
// log injection, no torn framing, no record lost to the 1 MiB line cap.
func FuzzAccessLogRecord(f *testing.F) {
	seeds := []struct{ uri, referer, agent, fwd string }{
		{"/p/17.html", "http://site/p/3.html", "Mozilla/5.0 (X11; Linux)", ""},
		{"/x\" 200 999", "evil\" \"injected", "ua\r\n10.6.6.6 - - fake line", "10.9.9.9"},
		{"/nul\x00byte", "\x00", "\x1b[2J\x07", "a b c"},
		{"/crlf\r\ninjected GET /fake HTTP/1.1", "-", "-", "127.0.0.1, 10.0.0.1"},
		{strings.Repeat("/very-long", 200000), strings.Repeat("R", 2<<20), strings.Repeat("U", 1<<21), ""},
		{"", "", "", ""},
		{"/q?a=1&b=%20%22", "http://r/?x=\"y\"", "tab\there quote\"", "\"quoted\""},
	}
	for _, s := range seeds {
		f.Add(s.uri, s.referer, s.agent, s.fwd)
	}

	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, uri, referer, agent, fwd string) {
		sink := &webserver.CollectSink{}
		h := webserver.AccessLogWith(
			http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write([]byte("ok"))
			}),
			sink,
			webserver.LogOptions{Now: func() time.Time { return at }, TrustForwardedFor: true},
		)

		// Build the request by hand: URL.Opaque carries the raw fuzz bytes
		// into RequestURI() unfiltered, and direct Header map writes bypass
		// net/http's header validation — exactly what a hostile peer speaking
		// raw TCP can deliver.
		req := &http.Request{
			Method:     "GET",
			URL:        &url.URL{Opaque: uri},
			Proto:      "HTTP/1.1",
			Header:     http.Header{"Referer": {referer}, "User-Agent": {agent}},
			RemoteAddr: "10.0.0.7:4711",
			Host:       "site",
		}
		if fwd != "" {
			req.Header.Set("X-Forwarded-For", fwd)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)

		recs := sink.Records()
		if len(recs) != 1 {
			t.Fatalf("logged %d records for one request", len(recs))
		}
		rec := recs[0]
		if rec != clf.SanitizeRecord(rec) {
			t.Fatalf("boundary emitted an unsanitized record: %+v", rec)
		}

		for _, combined := range []bool{false, true} {
			var buf bytes.Buffer
			w := clf.NewWriter(&buf)
			if combined {
				w = clf.NewCombinedWriter(&buf)
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			line := buf.String()
			if n := strings.Count(line, "\n"); n != 1 || !strings.HasSuffix(line, "\n") {
				t.Fatalf("one record produced %d physical lines: %q", n, line)
			}
			body := line[:len(line)-1]
			if len(body) > 1<<20 {
				t.Fatalf("line length %d exceeds the scanner's 1 MiB cap — record would be dropped", len(body))
			}
			var back clf.Record
			var err error
			if combined {
				back, err = clf.ParseCombinedRecord(body)
			} else {
				back, err = clf.ParseRecord(body)
				back.Referer, back.UserAgent = rec.Referer, rec.UserAgent
			}
			if err != nil {
				t.Fatalf("written line does not re-parse (combined=%v): %v\n%q", combined, err, body)
			}
			if !back.Time.Equal(rec.Time) {
				t.Fatalf("timestamp did not round-trip: %v vs %v", back.Time, rec.Time)
			}
			back.Time = rec.Time
			if back != rec {
				t.Fatalf("round trip diverged (combined=%v):\n got %+v\nwant %+v\nline %q",
					combined, back, rec, body)
			}
		}
	})
}
