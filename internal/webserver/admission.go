// Admission control: the connection-level gate in front of the ingest
// queue. The queue (cmd/serve) sheds when the sessionizer falls behind;
// admission sheds before any work happens at all — a global in-flight cap
// bounds concurrent request handling, and per-IP token buckets stop a
// single source (crawler, flood, misbehaving proxy client) from starving
// everyone else. Both limits respond with the standard backpressure
// vocabulary (503 for "the server is saturated", 429 for "you specifically
// are over budget") plus a jittered Retry-After so synchronized clients
// don't re-thunder in lockstep.
package webserver

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"smartsra/internal/metrics"
)

// Admission metrics, all under serve.admission.* so /debug/metrics shows
// the degradation story in one place: how much concurrency is in use, who
// is being turned away, and why.
var (
	metricAdmitted = metrics.GetCounter(metrics.WithLabels(
		"serve.admission.requests", "outcome", "admitted"))
	metricInflightShed = metrics.GetCounter(metrics.WithLabels(
		"serve.admission.requests", "outcome", "inflight_shed"))
	metricIPLimited = metrics.GetCounter(metrics.WithLabels(
		"serve.admission.requests", "outcome", "ip_limited"))
	metricInflight   = metrics.GetGauge("serve.admission.inflight")
	metricTrackedIPs = metrics.GetGauge("serve.admission.tracked_ips")
	metricEvictedIPs = metrics.GetCounter("serve.admission.evicted_ips")
)

// RetryAfterSeconds returns a jittered Retry-After value in [1, 3] seconds.
// Shedding responses (admission 503/429 and the ingest queue's 503) all use
// it: a fixed Retry-After teaches every shed client the same wake-up time,
// which converts one overload spike into a train of them.
func RetryAfterSeconds() int { return 1 + rand.Intn(3) }

// AdmissionConfig configures the admission gate. The zero value disables
// everything — each limit is opt-in.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently handled requests; over the cap requests
	// are shed with 503 before any handler work. 0 disables the cap.
	MaxInFlight int
	// PerIPRate is the sustained per-client budget in requests/second,
	// enforced by a token bucket per client IP. 0 disables per-IP limiting.
	PerIPRate float64
	// PerIPBurst is the bucket capacity — how many requests a client may
	// send instantaneously before the rate applies. 0 defaults to
	// max(1, round(PerIPRate)).
	PerIPBurst int
	// MaxTrackedIPs bounds the bucket table so hostile address churn cannot
	// grow it without bound; at the cap, fully-idle buckets are swept and,
	// if none are, an arbitrary one is evicted. 0 defaults to 65536.
	MaxTrackedIPs int
	// TrustForwardedFor keys buckets by the first X-Forwarded-For address
	// instead of the connection address, matching the access log's client
	// attribution (see ClientIP). Enable only behind a trusted proxy.
	TrustForwardedFor bool
	// Now is the bucket clock; nil means time.Now. Tests inject a frozen
	// clock to assert exact admission counts.
	Now func() time.Time
	// RetryAfter supplies the Retry-After seconds for shed responses; nil
	// means RetryAfterSeconds.
	RetryAfter func() int
}

// Admission is the middleware state: an in-flight counter and the per-IP
// bucket table.
type Admission struct {
	cfg   AdmissionConfig
	burst float64

	mu       sync.Mutex
	inflight int
	buckets  map[string]*ipBucket
}

// ipBucket is a standard token bucket with lazy refill: tokens top up at
// PerIPRate per second, capped at burst, computed on access — no background
// goroutine per client.
type ipBucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds the gate.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RetryAfter == nil {
		cfg.RetryAfter = RetryAfterSeconds
	}
	if cfg.MaxTrackedIPs <= 0 {
		cfg.MaxTrackedIPs = 65536
	}
	burst := float64(cfg.PerIPBurst)
	if cfg.PerIPBurst <= 0 {
		burst = float64(int(cfg.PerIPRate + 0.5))
		if burst < 1 {
			burst = 1
		}
	}
	return &Admission{cfg: cfg, burst: burst, buckets: make(map[string]*ipBucket)}
}

// allowIP takes one token from ip's bucket, refilling lazily; reports
// whether the request is within budget.
func (a *Admission) allowIP(ip string, now time.Time) bool {
	b, ok := a.buckets[ip]
	if !ok {
		if len(a.buckets) >= a.cfg.MaxTrackedIPs {
			a.evictLocked(now)
		}
		b = &ipBucket{tokens: a.burst, last: now}
		a.buckets[ip] = b
		metricTrackedIPs.Set(int64(len(a.buckets)))
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.cfg.PerIPRate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked makes room in the bucket table: drop every fully-refilled
// (idle) bucket — forgetting one loses nothing, a full bucket is exactly
// the state a fresh entry starts in — and if the table is all-active, drop
// one arbitrary entry so memory stays bounded even under address-churn
// attacks designed to keep every bucket warm.
func (a *Admission) evictLocked(now time.Time) {
	evicted := 0
	for ip, b := range a.buckets {
		idle := b.tokens + now.Sub(b.last).Seconds()*a.cfg.PerIPRate
		if idle >= a.burst {
			delete(a.buckets, ip)
			evicted++
		}
	}
	if evicted == 0 {
		for ip := range a.buckets {
			delete(a.buckets, ip)
			evicted++
			break
		}
	}
	metricEvictedIPs.Add(int64(evicted))
	metricTrackedIPs.Set(int64(len(a.buckets)))
}

// shed writes a shedding response with the jittered Retry-After.
func (a *Admission) shed(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Retry-After", strconv.Itoa(a.cfg.RetryAfter()))
	http.Error(w, body, status)
}

// Wrap gates next behind the configured limits. Order: the per-IP check
// runs first (a flooding client is rejected even when the server has spare
// concurrency — its budget is its budget), then the global in-flight cap.
func (a *Admission) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.cfg.PerIPRate > 0 {
			ip := ClientIP(r, a.cfg.TrustForwardedFor)
			a.mu.Lock()
			ok := a.allowIP(ip, a.cfg.Now())
			a.mu.Unlock()
			if !ok {
				metricIPLimited.Inc()
				a.shed(w, http.StatusTooManyRequests, "per-client request budget exceeded")
				return
			}
		}
		if a.cfg.MaxInFlight > 0 {
			a.mu.Lock()
			over := a.inflight >= a.cfg.MaxInFlight
			if !over {
				a.inflight++
				metricInflight.Set(int64(a.inflight))
			}
			a.mu.Unlock()
			if over {
				metricInflightShed.Inc()
				a.shed(w, http.StatusServiceUnavailable, "server at concurrency limit")
				return
			}
			defer func() {
				a.mu.Lock()
				a.inflight--
				metricInflight.Set(int64(a.inflight))
				a.mu.Unlock()
			}()
		}
		metricAdmitted.Inc()
		next.ServeHTTP(w, r)
	})
}
