// Package webserver serves a webgraph topology as a real website over
// net/http and writes the Common/Combined Log Format access log that the
// reactive pipeline consumes. It closes the paper's loop end to end: real
// HTTP requests from real clients produce a real server log, which
// internal/core then turns back into sessions.
//
// The handler renders every page as minimal HTML whose anchor tags are
// exactly the page's out-edges, so a crawler or live agent navigating the
// site experiences the same topology the heuristics consult.
package webserver

import (
	"fmt"
	"html"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/webgraph"
)

// Site is an http.Handler serving a topology as HTML pages.
type Site struct {
	g *webgraph.Graph
}

// NewSite returns a handler for the topology. Page URIs are the graph's
// labels; "/" redirects to the first start page; "/robots.txt" is served so
// crawler traffic patterns can be exercised.
func NewSite(g *webgraph.Graph) *Site {
	return &Site{g: g}
}

// ServeHTTP implements http.Handler.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/":
		starts := s.g.StartPages()
		if len(starts) == 0 {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, s.g.Label(starts[0]), http.StatusFound)
		return
	case "/robots.txt":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "User-agent: *\nDisallow:\n")
		return
	}
	page, ok := s.g.PageByURI(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var sb strings.Builder
	title := html.EscapeString(s.g.Label(page))
	fmt.Fprintf(&sb, "<!DOCTYPE html>\n<html><head><title>%s</title></head><body>\n", title)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n<ul>\n", title)
	for _, succ := range s.g.Succ(page) {
		uri := html.EscapeString(s.g.Label(succ))
		fmt.Fprintf(&sb, "<li><a href=%q>%s</a></li>\n", uri, uri)
	}
	sb.WriteString("</ul></body></html>\n")
	fmt.Fprint(w, sb.String())
}

// LogSink receives finished access-log records.
type LogSink interface {
	Record(clf.Record)
}

// CollectSink is a concurrency-safe in-memory LogSink.
type CollectSink struct {
	mu      sync.Mutex
	records []clf.Record
}

// Record implements LogSink.
func (c *CollectSink) Record(r clf.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = append(c.records, r)
}

// Records returns a copy of everything collected so far.
func (c *CollectSink) Records() []clf.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]clf.Record(nil), c.records...)
}

// WriterSink adapts a clf.Writer into a LogSink. Errors are retained and
// reported by Err (an access logger must not fail requests).
type WriterSink struct {
	mu  sync.Mutex
	w   *clf.Writer
	err error
}

// NewWriterSink wraps w.
func NewWriterSink(w *clf.Writer) *WriterSink { return &WriterSink{w: w} }

// Record implements LogSink.
func (s *WriterSink) Record(r clf.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		if err := s.w.Write(r); err != nil {
			s.err = err
		}
	}
}

// Flush drains the underlying writer.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Reset points the sink at a new writer and clears any latched error —
// log-rotation support: the server swaps in a writer on the freshly
// reopened file and logging resumes even if the old file had gone bad.
func (s *WriterSink) Reset(w *clf.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w = w
	s.err = nil
}

// Err returns the first write error, if any.
func (s *WriterSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LogOptions configures AccessLogWith.
type LogOptions struct {
	// Now is the request clock; nil means time.Now.
	Now func() time.Time
	// TrustForwardedFor logs the first address of an X-Forwarded-For header
	// as the client host when the header is present. Enable it only when a
	// trusted proxy (or a load generator replaying many simulated users over
	// one loopback connection pool) sets the header; for directly exposed
	// servers the header is client-controlled and must stay untrusted.
	TrustForwardedFor bool
}

// AccessLog wraps an http.Handler with CLF access logging: every request
// produces one clf.Record on the sink, with the client IP, timestamp,
// request line, status, byte count, Referer, and User-Agent (the last two
// populate combined-format rendering only).
func AccessLog(next http.Handler, sink LogSink, now func() time.Time) http.Handler {
	return AccessLogWith(next, sink, LogOptions{Now: now})
}

// AccessLogWith is AccessLog with options. Every client-controlled field
// (host, URI, protocol, method, Referer, User-Agent) passes through
// clf.SanitizeRecord before reaching the sink, so a hostile request cannot
// inject log lines, tear CLF framing, or blow a field past the line cap —
// the written line always re-parses to the logged record.
func AccessLogWith(next http.Handler, sink LogSink, opts LogOptions) http.Handler {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		at := now()
		next.ServeHTTP(cw, r)
		host := ClientIP(r, opts.TrustForwardedFor)
		uri := r.URL.RequestURI()
		sink.Record(clf.SanitizeRecord(clf.Record{
			Host:      host,
			Ident:     "-",
			AuthUser:  "-",
			Time:      at,
			Method:    r.Method,
			URI:       uri,
			Protocol:  r.Proto,
			Status:    cw.status,
			Bytes:     cw.bytes,
			Referer:   headerOrDash(r.Header.Get("Referer")),
			UserAgent: headerOrDash(r.Header.Get("User-Agent")),
		}))
	})
}

// ClientIP resolves the client address a request should be attributed to:
// the connection's remote host, or — when trustForwardedFor is set and an
// X-Forwarded-For header is present — the first address in that header (the
// originating client as recorded by a trusted proxy). Access logging and
// per-IP admission control share this resolution, so the identity that is
// rate-limited is exactly the identity that is logged and sessionized.
func ClientIP(r *http.Request, trustForwardedFor bool) string {
	host := r.RemoteAddr
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	if trustForwardedFor {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			if i := strings.IndexByte(fwd, ','); i >= 0 {
				fwd = fwd[:i]
			}
			if fwd = strings.TrimSpace(fwd); fwd != "" {
				host = fwd
			}
		}
	}
	return host
}

func headerOrDash(v string) string {
	if v == "" {
		return clf.NoField
	}
	return v
}

// countingWriter captures the status code and body size.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader implements http.ResponseWriter.
func (c *countingWriter) WriteHeader(status int) {
	c.status = status
	c.ResponseWriter.WriteHeader(status)
}

// Write implements http.ResponseWriter.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}
