// Package faultio injects I/O faults on a deterministic schedule, so tests
// can drive writers and filesystems through the failure modes real disks
// exhibit — transient errors, torn (short) writes, stalls — without flaky
// timing or OS-specific tricks. A Schedule maps each operation's call number
// to a fault decision; everything else is plain wrapping.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"smartsra/internal/checkpoint"
)

// ErrInjected is the error every injected fault returns, wrapped with
// context; tests distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultio: injected fault")

// Fault is the fate of a single I/O operation.
type Fault int

const (
	// OK passes the operation through untouched.
	OK Fault = iota
	// Fail rejects the operation with ErrInjected, no side effects.
	Fail
	// Short performs the first half of a write, then returns ErrInjected —
	// a torn write, the failure mode atomic rename must mask.
	Short
)

// Schedule decides the fate of the call-th operation (0-based, counted per
// wrapped object and per operation kind). A nil Schedule means all OK.
type Schedule func(call int) Fault

// FailAfter returns a schedule whose first n calls succeed and whose later
// calls all fail — the "disk died mid-run" shape.
func FailAfter(n int) Schedule {
	return func(call int) Fault {
		if call < n {
			return OK
		}
		return Fail
	}
}

// FaultAt returns a schedule applying fault at exactly the given call
// numbers and OK elsewhere.
func FaultAt(fault Fault, calls ...int) Schedule {
	return func(call int) Fault {
		for _, c := range calls {
			if call == c {
				return fault
			}
		}
		return OK
	}
}

// Writer wraps an io.Writer, consulting a schedule before every Write and
// optionally stalling (a slow device) on each call. Safe for use from one
// goroutine, like the writers it wraps.
type Writer struct {
	W        io.Writer
	Schedule Schedule
	// Delay, when nonzero, is slept before every write — a slow sink for
	// backpressure tests.
	Delay time.Duration

	calls int
}

func (w *Writer) Write(p []byte) (int, error) {
	call := w.calls
	w.calls++
	if w.Delay > 0 {
		time.Sleep(w.Delay)
	}
	switch fault(w.Schedule, call) {
	case Fail:
		return 0, errorf("write %d", call)
	case Short:
		n, err := w.W.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, errorf("short write %d", call)
	}
	return w.W.Write(p)
}

// Calls returns how many Write calls the writer has seen.
func (w *Writer) Calls() int { return w.calls }

// FS wraps a checkpoint.FS, injecting faults into file writes, syncs, and
// renames on independent schedules. Call counters are per-kind and shared
// across all files the FS creates, so a schedule addresses "the 3rd write
// this test performs" regardless of temp-file naming. Safe for concurrent
// use.
type FS struct {
	// Base is the underlying filesystem; nil means checkpoint.OS.
	Base checkpoint.FS
	// WriteFaults, SyncFaults, and RenameFaults schedule faults for the
	// corresponding operations; nil schedules never fault.
	WriteFaults  Schedule
	SyncFaults   Schedule
	RenameFaults Schedule

	mu      sync.Mutex
	writes  int
	syncs   int
	renames int
}

func (f *FS) base() checkpoint.FS {
	if f.Base == nil {
		return checkpoint.OS
	}
	return f.Base
}

func (f *FS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	file, err := f.base().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	call := f.renames
	f.renames++
	f.mu.Unlock()
	if fault(f.RenameFaults, call) != OK {
		return errorf("rename %d", call)
	}
	return f.base().Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error             { return f.base().Remove(name) }
func (f *FS) ReadFile(name string) ([]byte, error) { return f.base().ReadFile(name) }

type faultFile struct {
	checkpoint.File
	fs *FS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	call := ff.fs.writes
	ff.fs.writes++
	ff.fs.mu.Unlock()
	switch fault(ff.fs.WriteFaults, call) {
	case Fail:
		return 0, errorf("file write %d", call)
	case Short:
		n, err := ff.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, errorf("short file write %d", call)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	call := ff.fs.syncs
	ff.fs.syncs++
	ff.fs.mu.Unlock()
	if fault(ff.fs.SyncFaults, call) != OK {
		return errorf("sync %d", call)
	}
	return ff.File.Sync()
}

func fault(s Schedule, call int) Fault {
	if s == nil {
		return OK
	}
	return s(call)
}

func errorf(format string, args ...any) error {
	return &injectedError{op: fmt.Sprintf(format, args...)}
}

type injectedError struct{ op string }

func (e *injectedError) Error() string { return "faultio: injected fault: " + e.op }
func (e *injectedError) Unwrap() error { return ErrInjected }
