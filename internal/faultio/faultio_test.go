package faultio

import (
	"bytes"
	"errors"
	"testing"
)

func TestWriterSchedules(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Schedule: func(call int) Fault {
		switch call {
		case 1:
			return Fail
		case 2:
			return Short
		default:
			return OK
		}
	}}

	if n, err := w.Write([]byte("aaaa")); n != 4 || err != nil {
		t.Fatalf("call 0: (%d, %v), want clean write", n, err)
	}
	if n, err := w.Write([]byte("bbbb")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: (%d, %v), want injected failure", n, err)
	}
	if n, err := w.Write([]byte("cccc")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: (%d, %v), want torn write of 2 bytes", n, err)
	}
	if n, err := w.Write([]byte("dddd")); n != 4 || err != nil {
		t.Fatalf("call 3: (%d, %v), want clean write", n, err)
	}
	if got := buf.String(); got != "aaaaccdddd" {
		t.Fatalf("underlying buffer %q, want %q", got, "aaaaccdddd")
	}
	if w.Calls() != 4 {
		t.Fatalf("Calls() = %d, want 4", w.Calls())
	}
}

func TestFailAfter(t *testing.T) {
	s := FailAfter(2)
	want := []Fault{OK, OK, Fail, Fail}
	for i, f := range want {
		if s(i) != f {
			t.Fatalf("FailAfter(2)(%d) = %v, want %v", i, s(i), f)
		}
	}
}
