package mining

import "smartsra/internal/webgraph"

// FilterMaximal keeps only maximal patterns: a pattern is dropped when some
// other frequent pattern in the set strictly contains it (under the given
// containment semantics). Maximal patterns are the standard compact
// representation of a frequent-pattern set — the apriori output contains
// every frequent prefix, which is mostly redundant for reporting.
func FilterMaximal(patterns []Pattern, c Containment) []Pattern {
	out := make([]Pattern, 0, len(patterns))
	for i, p := range patterns {
		maximal := true
		for j, q := range patterns {
			if i == j || len(q.Pages) <= len(p.Pages) {
				continue
			}
			if contains(q.Pages, p.Pages, c) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

// TopK returns the k highest-support patterns of at least minLen pages,
// preserving the Mine output order (support desc, length asc).
func TopK(patterns []Pattern, k, minLen int) []Pattern {
	if k <= 0 {
		return nil
	}
	out := make([]Pattern, 0, k)
	for _, p := range patterns {
		if len(p.Pages) < minLen {
			continue
		}
		out = append(out, p)
		if len(out) == k {
			break
		}
	}
	return out
}

// Support looks up the support of an exact page sequence in a mined pattern
// set, returning 0 when the pattern is not frequent.
func Support(patterns []Pattern, pages []webgraph.PageID) int {
	for _, p := range patterns {
		if len(p.Pages) != len(pages) {
			continue
		}
		same := true
		for i := range pages {
			if p.Pages[i] != pages[i] {
				same = false
				break
			}
		}
		if same {
			return p.Support
		}
	}
	return 0
}
