// Package mining implements the pattern-discovery stage of web usage mining
// that session reconstruction feeds (the paper, §1: "discovering useful
// patterns from these sessions by using pattern discovery techniques like
// apriori"). It provides apriori-style sequential pattern mining over page
// sessions: frequent navigation paths and the association rules they imply.
//
// Two containment semantics are supported, mirroring internal/session:
// contiguous (a pattern must appear as an uninterrupted run — navigation
// paths) and subsequence (gaps allowed — visit patterns).
package mining

import (
	"fmt"
	"sort"
	"strings"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Containment selects how pattern support is counted.
type Containment int

const (
	// Contiguous counts a session as supporting a pattern only when the
	// pattern occurs as an uninterrupted run (a navigation path).
	Contiguous Containment = iota
	// Subsequence counts order-preserving occurrences with gaps.
	Subsequence
)

// String names the containment for reports.
func (c Containment) String() string {
	switch c {
	case Contiguous:
		return "contiguous"
	case Subsequence:
		return "subsequence"
	default:
		return fmt.Sprintf("Containment(%d)", int(c))
	}
}

// Pattern is a frequent page sequence with its support.
type Pattern struct {
	// Pages is the page sequence.
	Pages []webgraph.PageID
	// Support is the number of sessions containing the pattern.
	Support int
}

// String renders the pattern compactly, e.g. "[3 14 15] x42".
func (p Pattern) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, pg := range p.Pages {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", pg)
	}
	fmt.Fprintf(&sb, "] x%d", p.Support)
	return sb.String()
}

// Config parameterizes Mine.
type Config struct {
	// MinSupport is the minimum number of supporting sessions for a pattern
	// to be frequent. Must be at least 1.
	MinSupport int
	// MaxLength caps pattern length; 0 means unlimited.
	MaxLength int
	// Containment selects the support semantics.
	Containment Containment
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MinSupport < 1 {
		return fmt.Errorf("mining: min support %d below 1", c.MinSupport)
	}
	if c.MaxLength < 0 {
		return fmt.Errorf("mining: negative max length %d", c.MaxLength)
	}
	if c.Containment != Contiguous && c.Containment != Subsequence {
		return fmt.Errorf("mining: unknown containment %d", c.Containment)
	}
	return nil
}

// Mine returns all frequent patterns in the sessions under cfg, using
// apriori-style level-wise candidate generation: frequent length-k patterns
// are extended by frequent single pages, and support is counted against the
// sessions. Patterns are returned sorted by descending support, then by
// ascending length, then lexicographically — a stable, report-friendly order.
func Mine(sessions []session.Session, cfg Config) ([]Pattern, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seqs := make([][]webgraph.PageID, 0, len(sessions))
	for _, s := range sessions {
		if s.Len() > 0 {
			seqs = append(seqs, s.Pages())
		}
	}

	// Level 1: frequent single pages.
	counts := make(map[webgraph.PageID]int)
	for _, seq := range seqs {
		seen := make(map[webgraph.PageID]bool, len(seq))
		for _, p := range seq {
			if !seen[p] {
				seen[p] = true
				counts[p]++
			}
		}
	}
	var frequentPages []webgraph.PageID
	var out []Pattern
	for p, c := range counts {
		if c >= cfg.MinSupport {
			frequentPages = append(frequentPages, p)
			out = append(out, Pattern{Pages: []webgraph.PageID{p}, Support: c})
		}
	}
	sort.Slice(frequentPages, func(i, j int) bool { return frequentPages[i] < frequentPages[j] })

	// Level k+1: extend each frequent pattern by each frequent page. The
	// apriori property (any prefix of a frequent pattern is frequent) makes
	// prefix extension complete for both containment semantics.
	level := make([][]webgraph.PageID, 0, len(frequentPages))
	for _, p := range out {
		level = append(level, p.Pages)
	}
	for k := 2; len(level) > 0 && (cfg.MaxLength == 0 || k <= cfg.MaxLength); k++ {
		var next [][]webgraph.PageID
		for _, base := range level {
			for _, ext := range frequentPages {
				cand := append(append(make([]webgraph.PageID, 0, len(base)+1), base...), ext)
				support := 0
				for _, seq := range seqs {
					if contains(seq, cand, cfg.Containment) {
						support++
					}
				}
				if support >= cfg.MinSupport {
					out = append(out, Pattern{Pages: cand, Support: support})
					next = append(next, cand)
				}
			}
		}
		level = next
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Pages) != len(b.Pages) {
			return len(a.Pages) < len(b.Pages)
		}
		for x := range a.Pages {
			if a.Pages[x] != b.Pages[x] {
				return a.Pages[x] < b.Pages[x]
			}
		}
		return false
	})
	return out, nil
}

func contains(seq, pattern []webgraph.PageID, c Containment) bool {
	if c == Subsequence {
		return session.IsSubsequence(seq, pattern)
	}
	if len(pattern) > len(seq) {
		return false
	}
outer:
	for i := 0; i+len(pattern) <= len(seq); i++ {
		for j, p := range pattern {
			if seq[i+j] != p {
				continue outer
			}
		}
		return true
	}
	return false
}

// Rule is a navigation association rule A => B: sessions that follow path A
// continue with page B with the given confidence.
type Rule struct {
	// Antecedent is the path A.
	Antecedent []webgraph.PageID
	// Consequent is the next page B.
	Consequent webgraph.PageID
	// Support is the support of A·B.
	Support int
	// Confidence is support(A·B) / support(A).
	Confidence float64
}

// String renders the rule, e.g. "[3 14] => 15 (conf 0.82, sup 42)".
func (r Rule) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, pg := range r.Antecedent {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", pg)
	}
	fmt.Fprintf(&sb, "] => %d (conf %.2f, sup %d)", r.Consequent, r.Confidence, r.Support)
	return sb.String()
}

// Rules derives association rules from mined patterns: for every frequent
// pattern A·B of length ≥ 2 whose prefix A is also frequent, it emits
// A => B when the confidence reaches minConfidence. Rules are sorted by
// descending confidence, then descending support.
func Rules(patterns []Pattern, minConfidence float64) []Rule {
	support := make(map[string]int, len(patterns))
	for _, p := range patterns {
		support[key(p.Pages)] = p.Support
	}
	var out []Rule
	for _, p := range patterns {
		if len(p.Pages) < 2 {
			continue
		}
		prefix := p.Pages[:len(p.Pages)-1]
		base, ok := support[key(prefix)]
		if !ok || base == 0 {
			continue
		}
		conf := float64(p.Support) / float64(base)
		if conf >= minConfidence {
			out = append(out, Rule{
				Antecedent: append([]webgraph.PageID(nil), prefix...),
				Consequent: p.Pages[len(p.Pages)-1],
				Support:    p.Support,
				Confidence: conf,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		// Deterministic tail order: shorter antecedents first, then pages.
		if len(a.Antecedent) != len(b.Antecedent) {
			return len(a.Antecedent) < len(b.Antecedent)
		}
		for i := range a.Antecedent {
			if a.Antecedent[i] != b.Antecedent[i] {
				return a.Antecedent[i] < b.Antecedent[i]
			}
		}
		return a.Consequent < b.Consequent
	})
	return out
}

func key(pages []webgraph.PageID) string {
	var sb strings.Builder
	for _, p := range pages {
		fmt.Fprintf(&sb, "%d,", p)
	}
	return sb.String()
}
