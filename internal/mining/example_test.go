package mining_test

import (
	"fmt"
	"time"

	"smartsra/internal/mining"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

func sessionOf(pages ...int) session.Session {
	t0 := time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)
	s := session.Session{User: "u"}
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{
			Page: webgraph.PageID(p), Time: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	return s
}

// ExampleMine finds frequent navigation paths and the rules they imply.
func ExampleMine() {
	sessions := []session.Session{
		sessionOf(1, 2, 3),
		sessionOf(1, 2, 3),
		sessionOf(1, 2, 4),
	}
	patterns, err := mining.Mine(sessions, mining.Config{
		MinSupport:  2,
		Containment: mining.Contiguous,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range mining.TopK(patterns, 2, 2) {
		fmt.Println(p)
	}
	for _, r := range mining.Rules(patterns, 0.6) {
		fmt.Println(r)
	}
	// Output:
	// [1 2] x3
	// [2 3] x2
	// [1] => 2 (conf 1.00, sup 3)
	// [2] => 3 (conf 0.67, sup 2)
	// [1 2] => 3 (conf 0.67, sup 2)
}
