package mining

import (
	"strings"
	"testing"
	"time"

	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func mk(pages ...int) session.Session {
	s := session.Session{User: "u"}
	for i, p := range pages {
		s.Entries = append(s.Entries, session.Entry{
			Page: webgraph.PageID(p),
			Time: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	return s
}

func find(patterns []Pattern, pages ...int) (Pattern, bool) {
	for _, p := range patterns {
		if len(p.Pages) != len(pages) {
			continue
		}
		match := true
		for i := range pages {
			if p.Pages[i] != webgraph.PageID(pages[i]) {
				match = false
				break
			}
		}
		if match {
			return p, true
		}
	}
	return Pattern{}, false
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MinSupport: 0},
		{MinSupport: 2, MaxLength: -1},
		{MinSupport: 2, Containment: Containment(7)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := Mine(nil, bad[0]); err == nil {
		t.Error("Mine accepted invalid config")
	}
	if Contiguous.String() != "contiguous" || Subsequence.String() != "subsequence" ||
		Containment(9).String() == "" {
		t.Error("Containment.String wrong")
	}
}

func TestMineContiguous(t *testing.T) {
	sessions := []session.Session{
		mk(1, 2, 3),
		mk(1, 2, 4),
		mk(1, 2, 3),
		mk(5),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := find(patterns, 1, 2); !ok || p.Support != 3 {
		t.Errorf("[1 2] = %+v, %v; want support 3", p, ok)
	}
	if p, ok := find(patterns, 1, 2, 3); !ok || p.Support != 2 {
		t.Errorf("[1 2 3] = %+v, %v; want support 2", p, ok)
	}
	if _, ok := find(patterns, 1, 3); ok {
		t.Error("[1 3] found under contiguous containment")
	}
	if _, ok := find(patterns, 5); ok {
		t.Error("[5] has support 1, below min support")
	}
}

func TestMineSubsequence(t *testing.T) {
	sessions := []session.Session{
		mk(1, 9, 3),
		mk(1, 3),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Subsequence})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := find(patterns, 1, 3); !ok || p.Support != 2 {
		t.Errorf("[1 3] = %+v, %v; want support 2 under subsequence", p, ok)
	}
	contig, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := find(contig, 1, 3); ok {
		t.Error("[1 3] found under contiguous containment")
	}
}

func TestMineSupportCountsSessionOnce(t *testing.T) {
	// The pattern appears twice within one session: support is still 1.
	sessions := []session.Session{mk(1, 2, 1, 2)}
	patterns, err := Mine(sessions, Config{MinSupport: 1, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := find(patterns, 1, 2); !ok || p.Support != 1 {
		t.Errorf("[1 2] = %+v; repeated in-session occurrences must count once", p)
	}
	if p, ok := find(patterns, 1); !ok || p.Support != 1 {
		t.Errorf("[1] = %+v", p)
	}
}

func TestMineMaxLength(t *testing.T) {
	sessions := []session.Session{mk(1, 2, 3, 4), mk(1, 2, 3, 4)}
	patterns, err := Mine(sessions, Config{MinSupport: 2, MaxLength: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		if len(p.Pages) > 2 {
			t.Errorf("pattern %v exceeds max length", p)
		}
	}
	if _, ok := find(patterns, 3, 4); !ok {
		t.Error("length-2 pattern missing")
	}
}

func TestMineSortOrder(t *testing.T) {
	sessions := []session.Session{
		mk(1, 2), mk(1, 2), mk(1, 2),
		mk(3), mk(3),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(patterns); i++ {
		if patterns[i].Support > patterns[i-1].Support {
			t.Fatalf("patterns not sorted by support: %v", patterns)
		}
	}
	if len(patterns) == 0 || patterns[0].Support != 3 {
		t.Errorf("top pattern = %v", patterns)
	}
}

func TestMineEmptyInput(t *testing.T) {
	patterns, err := Mine(nil, Config{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 0 {
		t.Errorf("patterns from empty input: %v", patterns)
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{Pages: []webgraph.PageID{3, 14}, Support: 42}
	if p.String() != "[3 14] x42" {
		t.Errorf("String = %q", p.String())
	}
}

func TestRules(t *testing.T) {
	sessions := []session.Session{
		mk(1, 2, 3),
		mk(1, 2, 3),
		mk(1, 2, 4),
		mk(1, 2, 3),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 1, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	rules := Rules(patterns, 0.5)
	// [1 2] => 3 has confidence 3/4; [1 2] => 4 has 1/4 (filtered).
	var found bool
	for _, r := range rules {
		if len(r.Antecedent) == 2 && r.Antecedent[0] == 1 && r.Antecedent[1] == 2 &&
			r.Consequent == 3 {
			found = true
			if r.Confidence != 0.75 || r.Support != 3 {
				t.Errorf("rule = %+v", r)
			}
		}
		if r.Consequent == 4 && len(r.Antecedent) == 2 {
			t.Errorf("low-confidence rule survived: %v", r)
		}
		if r.Confidence < 0.5 {
			t.Errorf("rule below threshold: %v", r)
		}
	}
	if !found {
		t.Errorf("[1 2] => 3 missing from %v", rules)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Error("rules not sorted by confidence")
		}
	}
	r := rules[0]
	if !strings.Contains(r.String(), "=>") {
		t.Errorf("Rule.String = %q", r.String())
	}
}

func TestRulesEmpty(t *testing.T) {
	if got := Rules(nil, 0.5); len(got) != 0 {
		t.Errorf("Rules(nil) = %v", got)
	}
	// Single pages yield no rules.
	patterns := []Pattern{{Pages: []webgraph.PageID{1}, Support: 5}}
	if got := Rules(patterns, 0); len(got) != 0 {
		t.Errorf("rules from singletons: %v", got)
	}
}

func TestFilterMaximal(t *testing.T) {
	sessions := []session.Session{mk(1, 2, 3), mk(1, 2, 3)}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	maximal := FilterMaximal(patterns, Contiguous)
	// Only [1 2 3] is maximal; every sub-run is contained in it.
	if len(maximal) != 1 || len(maximal[0].Pages) != 3 {
		t.Errorf("maximal = %v", maximal)
	}
	// Under subsequence containment the same holds here.
	subPatterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Subsequence})
	if err != nil {
		t.Fatal(err)
	}
	subMax := FilterMaximal(subPatterns, Subsequence)
	if len(subMax) != 1 {
		t.Errorf("subsequence maximal = %v", subMax)
	}
	if got := FilterMaximal(nil, Contiguous); len(got) != 0 {
		t.Errorf("FilterMaximal(nil) = %v", got)
	}
}

func TestFilterMaximalKeepsIncomparable(t *testing.T) {
	sessions := []session.Session{
		mk(1, 2), mk(1, 2),
		mk(3, 4), mk(3, 4),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	maximal := FilterMaximal(patterns, Contiguous)
	if len(maximal) != 2 {
		t.Errorf("maximal = %v, want [1 2] and [3 4]", maximal)
	}
}

func TestTopK(t *testing.T) {
	sessions := []session.Session{
		mk(1, 2), mk(1, 2), mk(1, 2),
		mk(5, 6), mk(5, 6),
	}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	top := TopK(patterns, 2, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Support != 3 || len(top[0].Pages) != 2 {
		t.Errorf("top[0] = %v", top[0])
	}
	for _, p := range top {
		if len(p.Pages) < 2 {
			t.Errorf("minLen ignored: %v", p)
		}
	}
	if got := TopK(patterns, 0, 1); len(got) != 0 {
		t.Errorf("TopK(0) = %v", got)
	}
}

func TestSupportLookup(t *testing.T) {
	sessions := []session.Session{mk(1, 2, 3), mk(1, 2, 3)}
	patterns, err := Mine(sessions, Config{MinSupport: 2, Containment: Contiguous})
	if err != nil {
		t.Fatal(err)
	}
	if got := Support(patterns, []webgraph.PageID{1, 2}); got != 2 {
		t.Errorf("Support([1 2]) = %d", got)
	}
	if got := Support(patterns, []webgraph.PageID{2, 1}); got != 0 {
		t.Errorf("Support([2 1]) = %d, want 0", got)
	}
	if got := Support(nil, []webgraph.PageID{1}); got != 0 {
		t.Errorf("Support(nil) = %d", got)
	}
}
