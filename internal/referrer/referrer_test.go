package referrer

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

var t0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

func rec(host, uri, referer string, minute int) clf.Record {
	return clf.Record{
		Host: host, Ident: "-", AuthUser: "-",
		Time:   t0.Add(time.Duration(minute) * time.Minute),
		Method: "GET", URI: uri, Protocol: "HTTP/1.1", Status: 200, Bytes: 1,
		Referer: referer, UserAgent: "test",
	}
}

func TestReconstructChainsOnReferer(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// Two interleaved sessions of one user: [P1, P13, P34] and [P1, P20],
	// the paper's §4 LPP example. With referrers both are recoverable even
	// though P20's request arrives after P34's.
	records := []clf.Record{
		rec("u", "/P1.html", "-", 0),
		rec("u", "/P13.html", "/P1.html", 2),
		rec("u", "/P34.html", "/P13.html", 4),
		rec("u", "/P20.html", "/P1.html", 6),
	}
	r := New(g)
	got, err := r.Reconstruct(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("sessions = %v", got)
	}
	// [P1,P13,P34] holds P1 interior when P20 arrives, so P20's referer
	// matches no session end; the chain re-opens at the referer, recovering
	// the ground-truth [P1, P20] exactly.
	want := [][]webgraph.PageID{
		{ids["P1"], ids["P13"], ids["P34"]},
		{ids["P1"], ids["P20"]},
	}
	for i, w := range want {
		pages := got[i].Pages()
		if len(pages) != len(w) {
			t.Fatalf("session %d = %v, want %v", i, got[i], w)
		}
		for j := range w {
			if pages[j] != w[j] {
				t.Fatalf("session %d = %v, want %v", i, got[i], w)
			}
		}
	}
}

func TestReconstructPrefersMostRecentlyExtended(t *testing.T) {
	g, ids := webgraph.PaperFigure1()
	// Two sessions both ending at P13 (via different starts is impossible
	// on Figure 1, so use the same page twice in one stream): requests
	// P1, P13, then P1 again? The cache model would prevent that in
	// simulated logs, but raw combined logs can contain it. The second P49
	// chains to the most recently extended P13.
	records := []clf.Record{
		rec("u", "/P1.html", "-", 0),
		rec("u", "/P13.html", "/P1.html", 1),
		rec("u", "/P1.html", "-", 2),
		rec("u", "/P13.html", "/P1.html", 3),
		rec("u", "/P49.html", "/P13.html", 4),
	}
	got, err := New(g).Reconstruct(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("sessions = %v", got)
	}
	// The second session (extended last) should have received P49.
	var withP49 *session.Session
	for i := range got {
		pages := got[i].Pages()
		if pages[len(pages)-1] == ids["P49"] {
			withP49 = &got[i]
		}
	}
	if withP49 == nil || withP49.Len() != 3 {
		t.Fatalf("P49 chained wrong: %v", got)
	}
	if withP49.Entries[0].Time != t0.Add(2*time.Minute) {
		t.Errorf("P49 attached to the older session: %v", got)
	}
}

func TestReconstructRespectsTimeRules(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	// Referer matches but the gap exceeds ρ: a new session starts.
	records := []clf.Record{
		rec("u", "/P1.html", "-", 0),
		rec("u", "/P13.html", "/P1.html", 11),
	}
	got, err := New(g).Reconstruct(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("ρ rule ignored: %v", got)
	}
	// δ rule: chain of 9-minute steps must break at 30 minutes.
	var chain []clf.Record
	pages := []string{"P1", "P13", "P49", "P23"}
	for i, p := range pages {
		ref := "-"
		if i > 0 {
			ref = "/" + pages[i-1] + ".html"
		}
		chain = append(chain, rec("u", "/"+p+".html", ref, i*9))
	}
	// 27 minutes total: one session. Append one more 9-minute step via P23's
	// (nonexistent) successor — instead rebuild with 5 pages using P1 chain
	// again is impossible on Figure 1; check duration bound directly.
	got2, err := New(g).Reconstruct(chain)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got2 {
		if s.Duration() > session.DefaultTotalDuration {
			t.Errorf("δ rule ignored: %v", s)
		}
	}
}

func TestReconstructSeparatesUsers(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	records := []clf.Record{
		rec("a", "/P1.html", "-", 0),
		rec("b", "/P13.html", "/P1.html", 1), // b's referer can't reach a's session
	}
	got, err := New(g).Reconstruct(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("sessions = %v", got)
	}
}

func TestReconstructIgnoresUnresolvable(t *testing.T) {
	g, _ := webgraph.PaperFigure1()
	records := []clf.Record{
		rec("u", "/external.html", "-", 0),                   // unknown page: dropped
		rec("u", "/P1.html", "http://elsewhere.example/", 1), // external referer: new session
		rec("u", "/P13.html", "/P1.html", 2),                 // chains
	}
	got, err := New(g).Reconstruct(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != 2 {
		t.Errorf("sessions = %v", got)
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := (Reconstructor{}).Reconstruct(nil); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := webgraph.PaperFigure1()
	bad := New(g)
	bad.Rules = session.Rules{TotalDuration: time.Minute, PageStay: time.Hour}
	if _, err := bad.Reconstruct(nil); err == nil {
		t.Error("invalid rules accepted")
	}
	if !strings.Contains(New(g).Describe(), "upper bound") {
		t.Errorf("Describe = %q", New(g).Describe())
	}
	if New(g).Name() != "heurR" {
		t.Errorf("Name = %q", New(g).Name())
	}
}

// The chain's output always satisfies the timestamp-ordering rule on
// simulated traffic. (The upper-bound comparison against Smart-SRA lives in
// internal/eval, which owns the scoring.)
func TestReconstructSimulatedTrafficOrdered(t *testing.T) {
	g, err := webgraph.GenerateTopology(webgraph.TopologyConfig{
		Pages: 100, AvgOutDegree: 8, StartPageFraction: 0.08,
		Model: webgraph.ModelUniform, EnsureReachable: true,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	params := simulator.PaperParams()
	params.Agents = 300
	res, err := simulator.Run(g, params)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := New(g).Reconstruct(res.LogCombined(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) == 0 {
		t.Fatal("no sessions from simulated combined log")
	}
	for _, s := range chain {
		if !s.SatisfiesTimestampOrdering(session.DefaultRules()) {
			t.Fatalf("chain session violates ordering: %v", s)
		}
	}
}
