// Package referrer implements referrer-based session reconstruction over
// Combined Log Format records. When the server logs the Referer header,
// each request names the exact page the user navigated from, so sessions
// can be chained without heuristics about time or topology.
//
// The paper's setting deliberately excludes this information (its logs are
// common format), so this reconstructor is not one of the four contenders;
// it serves as the reactive upper bound: the best any server-side method
// can do short of proactive instrumentation. Cache-served navigations are
// still invisible, so even this upper bound is not 100% accurate — the gap
// between Smart-SRA and the referrer chain quantifies how much of the
// remaining loss is attributable to missing referrer data versus missing
// (cached) requests.
package referrer

import (
	"fmt"
	"sort"
	"time"

	"smartsra/internal/clf"
	"smartsra/internal/prep"
	"smartsra/internal/session"
	"smartsra/internal/webgraph"
)

// Reconstructor chains combined-format records into sessions using their
// Referer fields, subject to the paper's two time rules.
type Reconstructor struct {
	// Graph resolves URIs (pages and referers) to topology pages.
	Graph *webgraph.Graph
	// Rules holds δ and ρ; zero value means the paper's defaults.
	Rules session.Rules
	// Key identifies users; nil means prep.ByIP.
	Key prep.UserKey
}

// New returns a referrer-based reconstructor with the paper's thresholds.
func New(g *webgraph.Graph) Reconstructor {
	return Reconstructor{Graph: g, Rules: session.DefaultRules()}
}

// Name identifies the reconstructor in reports.
func (Reconstructor) Name() string { return "heurR" }

// Describe explains the reconstructor.
func (r Reconstructor) Describe() string {
	return fmt.Sprintf("referrer-chain (δ=%v, ρ=%v) — reactive upper bound",
		r.Rules.TotalDuration, r.Rules.PageStay)
}

// request is one resolved log record.
type request struct {
	page webgraph.PageID
	ref  webgraph.PageID // InvalidPage when absent/unresolvable
	at   time.Time
}

// open tracks a session under construction.
type open struct {
	entries []session.Entry
	first   time.Time
}

// Reconstruct chains the records into sessions. For each request with a
// referer R, the request is appended to the most recently extended open
// session whose last page is R (within ρ of the request and within δ of the
// session start); requests without a usable referer — or whose referer
// matches no open session — start new sessions. This is the classic
// referrer-based sessionizing of Cooley et al., restricted by the paper's
// two time rules so its output remains comparable to Smart-SRA's.
func (r Reconstructor) Reconstruct(records []clf.Record) ([]session.Session, error) {
	if r.Graph == nil {
		return nil, fmt.Errorf("referrer: nil graph")
	}
	rules := r.Rules
	if rules.TotalDuration == 0 && rules.PageStay == 0 {
		rules = session.DefaultRules()
	}
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	key := r.Key
	if key == nil {
		key = prep.ByIP
	}

	byUser := make(map[string][]request)
	var users []string
	for _, rec := range records {
		page, ok := r.Graph.PageByURI(rec.URI)
		if !ok {
			continue
		}
		ref := webgraph.InvalidPage
		if rec.HasReferer() {
			if p, ok := r.Graph.PageByURI(rec.Referer); ok {
				ref = p
			}
		}
		u := key(rec)
		if _, seen := byUser[u]; !seen {
			users = append(users, u)
		}
		byUser[u] = append(byUser[u], request{page: page, ref: ref, at: rec.Time})
	}
	sort.Strings(users)

	var out []session.Session
	for _, u := range users {
		reqs := byUser[u]
		sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].at.Before(reqs[j].at) })
		out = append(out, r.chainUser(u, reqs, rules)...)
	}
	return out, nil
}

// chainUser sessionizes one user's requests.
func (r Reconstructor) chainUser(user string, reqs []request, rules session.Rules) []session.Session {
	var sessions []open
	attach := func(q request) bool {
		if q.ref == webgraph.InvalidPage {
			return false
		}
		// Most recently extended candidate first.
		for i := len(sessions) - 1; i >= 0; i-- {
			s := &sessions[i]
			last := s.entries[len(s.entries)-1]
			if last.Page != q.ref {
				continue
			}
			if !last.Time.Before(q.at) || q.at.Sub(last.Time) > rules.PageStay {
				continue
			}
			if q.at.Sub(s.first) > rules.TotalDuration {
				continue
			}
			s.entries = append(s.entries, session.Entry{Page: q.page, Time: q.at})
			// Move the extended session to the end so ties prefer it next.
			moved := sessions[i]
			sessions = append(append(sessions[:i], sessions[i+1:]...), moved)
			return true
		}
		return false
	}
	for _, q := range reqs {
		if attach(q) {
			continue
		}
		// No open session ends at the referer. When the request carries one,
		// the user demonstrably navigated from that page — they re-arrived
		// at it through the browser cache — so the new session opens at the
		// referer itself (timestamped just before the request; the cache
		// arrival never hit the server, so its true time is unknown).
		entries := []session.Entry{{Page: q.page, Time: q.at}}
		if q.ref != webgraph.InvalidPage {
			entries = []session.Entry{
				{Page: q.ref, Time: q.at.Add(-time.Second)},
				{Page: q.page, Time: q.at},
			}
		}
		sessions = append(sessions, open{entries: entries, first: entries[0].Time})
	}
	out := make([]session.Session, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, session.Session{User: user, Entries: s.entries})
	}
	return out
}
