// Package smartsra's root benchmarks regenerate every table and figure of
// the paper's evaluation, plus the ablations DESIGN.md calls out. Each
// Benchmark{Table,Figure}N corresponds to the same-numbered exhibit; custom
// metrics (accuracy percentages) are attached via b.ReportMetric so
// `go test -bench=. -benchmem` prints the series alongside timing.
//
// Benchmarks run scaled-down workloads (hundreds of agents per point) so the
// whole suite finishes in seconds; cmd/evaluate regenerates the figures at
// the paper's full 10000-agent scale.
package smartsra

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"smartsra/internal/eval"
	"smartsra/internal/heuristics"
	"smartsra/internal/predict"
	"smartsra/internal/referrer"
	"smartsra/internal/session"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

var benchT0 = time.Date(2006, 1, 2, 12, 0, 0, 0, time.UTC)

// table1Stream rebuilds the request sequence of Table 1 over Figure 1.
func table1Stream(ids map[string]webgraph.PageID) session.Stream {
	names := []string{"P1", "P20", "P13", "P49", "P34", "P23"}
	minutes := []int{0, 6, 15, 29, 32, 47}
	st := session.Stream{User: "agent"}
	for i, n := range names {
		st.Entries = append(st.Entries, session.Entry{
			Page: ids[n], Time: benchT0.Add(time.Duration(minutes[i]) * time.Minute),
		})
	}
	return st
}

// table3Stream rebuilds the request sequence of Table 3 over Figure 1.
func table3Stream(ids map[string]webgraph.PageID) session.Stream {
	names := []string{"P1", "P20", "P13", "P49", "P34", "P23"}
	minutes := []int{0, 6, 9, 12, 14, 15}
	st := session.Stream{User: "agent"}
	for i, n := range names {
		st.Entries = append(st.Entries, session.Entry{
			Page: ids[n], Time: benchT0.Add(time.Duration(minutes[i]) * time.Minute),
		})
	}
	return st
}

// BenchmarkTable1TimeHeuristics regenerates Table 1: the two time-oriented
// splits of the example request sequence (δ ⇒ 2 sessions, ρ ⇒ 3 sessions).
func BenchmarkTable1TimeHeuristics(b *testing.B) {
	_, ids := webgraph.PaperFigure1()
	st := table1Stream(ids)
	h1, h2 := heuristics.NewTimeTotal(), heuristics.NewTimeGap()
	b.ReportAllocs()
	var n1, n2 int
	for i := 0; i < b.N; i++ {
		n1 = len(h1.Reconstruct(st))
		n2 = len(h2.Reconstruct(st))
	}
	b.ReportMetric(float64(n1), "heur1-sessions")
	b.ReportMetric(float64(n2), "heur2-sessions")
}

// BenchmarkTable2Navigation regenerates Table 2: the navigation-oriented
// heuristic's path-completed session over the example sequence.
func BenchmarkTable2Navigation(b *testing.B) {
	g, ids := webgraph.PaperFigure1()
	st := table1Stream(ids)
	h := heuristics.NewNavigation(g)
	b.ReportAllocs()
	var length int
	for i := 0; i < b.N; i++ {
		out := h.Reconstruct(st)
		length = out[0].Len()
	}
	b.ReportMetric(float64(length), "session-length") // Table 2: 8 entries
}

// BenchmarkTable4SmartSRA regenerates Tables 3-4: Smart-SRA's three maximal
// sessions from the Phase-1 candidate.
func BenchmarkTable4SmartSRA(b *testing.B) {
	g, ids := webgraph.PaperFigure1()
	st := table3Stream(ids)
	h := heuristics.NewSmartSRA(g)
	b.ReportAllocs()
	var sessions int
	for i := 0; i < b.N; i++ {
		sessions = len(h.Reconstruct(st))
	}
	b.ReportMetric(float64(sessions), "maximal-sessions") // Table 4: 3
}

// benchConfig returns the Table 5 evaluation config scaled to bench speed.
func benchConfig() eval.RunConfig {
	cfg := eval.PaperDefaults()
	cfg.Params.Agents = 250
	return cfg
}

// benchSweep runs a scaled-down figure sweep once per iteration and attaches
// each heuristic's mean matched accuracy across the sweep as a metric.
func benchSweep(b *testing.B, exp eval.Experiment) {
	b.Helper()
	var last *eval.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, h := range eval.HeuristicNames {
		sum := 0.0
		for _, p := range last.Points {
			sum += p.Matched[h].Percent()
		}
		b.ReportMetric(sum/float64(len(last.Points)), h+"-acc%")
	}
	shape := last.CheckShape()
	boolMetric := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	b.ReportMetric(boolMetric(shape.SmartSRAAlwaysBeatsTime), "beats-time")
}

// BenchmarkFigure8AccuracyVsSTP regenerates Figure 8 (accuracy vs STP) on a
// reduced sweep: STP ∈ {1%, 10%, 20%}.
func BenchmarkFigure8AccuracyVsSTP(b *testing.B) {
	exp := eval.Figure8(benchConfig())
	exp.Values = []float64{0.01, 0.10, 0.20}
	benchSweep(b, exp)
}

// BenchmarkFigure9AccuracyVsLPP regenerates Figure 9 (accuracy vs LPP) on a
// reduced sweep: LPP ∈ {0%, 50%, 90%}.
func BenchmarkFigure9AccuracyVsLPP(b *testing.B) {
	exp := eval.Figure9(benchConfig())
	exp.Values = []float64{0, 0.50, 0.90}
	benchSweep(b, exp)
}

// BenchmarkFigure10AccuracyVsNIP regenerates Figure 10 (accuracy vs NIP) on
// a reduced sweep: NIP ∈ {0%, 50%, 90%}.
func BenchmarkFigure10AccuracyVsNIP(b *testing.B) {
	exp := eval.Figure10(benchConfig())
	exp.Values = []float64{0, 0.50, 0.90}
	benchSweep(b, exp)
}

// BenchmarkSweepSequential runs a reduced Figure 8 sweep one point at a
// time — the wall-clock baseline for BenchmarkSweepParallel.
func BenchmarkSweepSequential(b *testing.B) {
	exp := eval.Figure8(benchConfig())
	exp.Values = exp.Values[:8]
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunWith(eval.RunOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same sweep under the bounded worker pool
// at increasing widths; on >=4 cores the all-cores variant should show a
// >=2x wall-clock speedup over BenchmarkSweepSequential while producing
// bit-identical PointResults (pinned by TestRunWithMatchesSequential).
func BenchmarkSweepParallel(b *testing.B) {
	exp := eval.Figure8(benchConfig())
	exp.Values = exp.Values[:8]
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunWith(eval.RunOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorkload builds one simulated workload for the ablation benches.
func benchWorkload(b *testing.B, topo webgraph.TopologyConfig, params simulator.Params) (*webgraph.Graph, *simulator.Result) {
	b.Helper()
	g, err := webgraph.GenerateTopology(topo, rand.New(rand.NewSource(2006)))
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulator.Run(g, params)
	if err != nil {
		b.Fatal(err)
	}
	return g, res
}

// BenchmarkAblationPhase1Rules measures Smart-SRA with Phase-1 rules
// selectively disabled (DESIGN.md ablation: how much of the win comes from
// the time pre-split vs the topology phase).
func BenchmarkAblationPhase1Rules(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	variants := []struct {
		name string
		mut  func(*heuristics.SmartSRA)
	}{
		{"full", func(*heuristics.SmartSRA) {}},
		{"no-total-duration", func(h *heuristics.SmartSRA) { h.DisableTotalDuration = true }},
		{"no-page-stay", func(h *heuristics.SmartSRA) { h.DisablePageStay = true }},
		{"no-phase1", func(h *heuristics.SmartSRA) { h.SkipPhase1 = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			h := heuristics.NewSmartSRA(g)
			v.mut(&h)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkAblationStartPages sweeps the start-page fraction, the one
// Table 5 parameter the paper leaves unspecified (DESIGN.md).
func BenchmarkAblationStartPages(b *testing.B) {
	for _, frac := range []float64{0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			topo := webgraph.PaperTopology()
			topo.StartPageFraction = frac
			params := simulator.PaperParams()
			params.Agents = 250
			g, res := benchWorkload(b, topo, params)
			h := heuristics.NewSmartSRA(g)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkAblationTopologyModel compares the uniform random model against
// the preferential-attachment variant (DESIGN.md).
func BenchmarkAblationTopologyModel(b *testing.B) {
	for _, model := range []webgraph.TopologyModel{webgraph.ModelUniform, webgraph.ModelPreferential} {
		b.Run(model.String(), func(b *testing.B) {
			topo := webgraph.PaperTopology()
			topo.Model = model
			params := simulator.PaperParams()
			params.Agents = 250
			g, res := benchWorkload(b, topo, params)
			h := heuristics.NewSmartSRA(g)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkAblationRevisitPolicy compares the browser-cache revisit model
// against the cleaner fresh-only variant (DESIGN.md).
func BenchmarkAblationRevisitPolicy(b *testing.B) {
	for _, policy := range []simulator.RevisitPolicy{simulator.RevisitCache, simulator.RevisitAvoid} {
		b.Run(policy.String(), func(b *testing.B) {
			params := simulator.PaperParams()
			params.Agents = 250
			params.Revisit = policy
			g, res := benchWorkload(b, webgraph.PaperTopology(), params)
			h := heuristics.NewSmartSRA(g)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkAblationNavigationTimeLimit measures §2.2's missing knob: the
// navigation-oriented heuristic with and without a page-stay time limit.
func BenchmarkAblationNavigationTimeLimit(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	for _, gap := range []time.Duration{0, 10 * time.Minute} {
		name := "unlimited"
		if gap > 0 {
			name = "maxgap=10m"
		}
		b.Run(name, func(b *testing.B) {
			h := heuristics.NewNavigation(g)
			h.MaxGap = gap
			var acc eval.Accuracy
			var shape eval.SessionStats
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
				shape = eval.Summarize(cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
			b.ReportMetric(float64(shape.MaxLength), "max-session-len")
		})
	}
}

// BenchmarkAblationStayModel checks robustness to the dwell-time shape:
// Table 5's normal distribution vs a heavy-tailed lognormal.
func BenchmarkAblationStayModel(b *testing.B) {
	for _, model := range []simulator.StayModel{simulator.StayNormal, simulator.StayLognormal} {
		b.Run(model.String(), func(b *testing.B) {
			params := simulator.PaperParams()
			params.Agents = 250
			params.Stay = model
			g, res := benchWorkload(b, webgraph.PaperTopology(), params)
			h := heuristics.NewSmartSRA(g)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkAblationProxySharing measures the §1 proxy effect: agents behind
// shared IPs have their streams merged in the log, and every heuristic
// degrades because it must disentangle interleaved users.
func BenchmarkAblationProxySharing(b *testing.B) {
	for _, frac := range []float64{0, 0.5} {
		b.Run(fmt.Sprintf("proxy=%.0f%%", frac*100), func(b *testing.B) {
			params := simulator.PaperParams()
			params.Agents = 250
			params.ProxyFraction = frac
			params.ProxySize = 5
			g, res := benchWorkload(b, webgraph.PaperTopology(), params)
			h := heuristics.NewSmartSRA(g)
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkExtensionInferBacktracks measures the paper's future-work
// "intelligent path completion" (SmartSRA.InferBacktracks) against plain
// Smart-SRA at a high backtracking rate (LPP=60%), where its inferred
// [backtrack-target, page] sessions matter most.
func BenchmarkExtensionInferBacktracks(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	params.LPP = 0.60
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	for _, infer := range []bool{false, true} {
		name := "plain"
		if infer {
			name = "infer-backtracks"
		}
		b.Run(name, func(b *testing.B) {
			h := heuristics.NewSmartSRA(g)
			h.InferBacktracks = infer
			var acc eval.Accuracy
			for i := 0; i < b.N; i++ {
				cands := heuristics.ReconstructAll(h, res.Streams)
				acc = eval.ScoreMatched(res.Real, cands)
			}
			b.ReportMetric(acc.Percent(), "acc%")
		})
	}
}

// BenchmarkReferrerUpperBound measures the referrer-chain reconstruction
// (internal/referrer) against Smart-SRA on the same workload: the reactive
// upper bound when the server logs Referer headers (Combined Log Format),
// which the paper's common-format setting deliberately lacks.
func BenchmarkReferrerUpperBound(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	records := res.LogCombined(g)

	b.Run("heurR-referrer-chain", func(b *testing.B) {
		r := referrer.New(g)
		var acc eval.Accuracy
		for i := 0; i < b.N; i++ {
			sessions, err := r.Reconstruct(records)
			if err != nil {
				b.Fatal(err)
			}
			acc = eval.ScoreMatched(res.Real, sessions)
		}
		b.ReportMetric(acc.Percent(), "acc%")
	})
	b.Run("heur4-smartsra", func(b *testing.B) {
		h := heuristics.NewSmartSRA(g)
		var acc eval.Accuracy
		for i := 0; i < b.N; i++ {
			cands := heuristics.ReconstructAll(h, res.Streams)
			acc = eval.ScoreMatched(res.Real, cands)
		}
		b.ReportMetric(acc.Percent(), "acc%")
	})
}

// BenchmarkApplicationPrefetch measures the downstream pre-fetching payoff:
// a next-page predictor trained on each heuristic's sessions, evaluated as
// top-3 hit rate on held-out ground-truth navigation.
func BenchmarkApplicationPrefetch(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 400
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	cut := len(res.Streams) / 2
	trainStreams := res.Streams[:cut]
	evalUsers := make(map[string]bool)
	for _, st := range res.Streams[cut:] {
		evalUsers[st.User] = true
	}
	var evalReal []session.Session
	for _, r := range res.Real {
		if evalUsers[r.User] {
			evalReal = append(evalReal, r)
		}
	}
	for _, h := range eval.DefaultHeuristics(g) {
		b.Run(h.Name(), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				model, err := predict.Train(heuristics.ReconstructAll(h, trainStreams), 2)
				if err != nil {
					b.Fatal(err)
				}
				rate, _ = model.HitRate(evalReal, 3)
			}
			b.ReportMetric(rate*100, "hit@3%")
		})
	}
}

// BenchmarkEvaluatePoint measures one full evaluation point — simulate,
// reconstruct with all four heuristics, score under both metrics — at bench
// scale (250 agents). This is the latency floor of every sweep: cmd/evaluate
// runs one of these per swept value. The sharded variant partitions the
// per-user reconstruction and matching across a bounded worker budget; on
// >=4 cores it should show a >=2x wall-clock speedup over workers=1 while
// producing bit-identical results (pinned by TestEvaluatePointWithBudgets).
func BenchmarkEvaluatePoint(b *testing.B) {
	cfg := benchConfig()
	g, err := eval.Topology(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var sessions int
			for i := 0; i < b.N; i++ {
				p, err := eval.EvaluatePointWith(g, cfg, eval.RunOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				sessions = p.RealSessions
			}
			b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// BenchmarkScoreMatched measures the one-to-one matching scorer over one
// Table 5 workload's Smart-SRA candidates. Pages are precomputed once per
// session per call (not per Captures probe), so allocs/op stays flat in the
// probe count.
func BenchmarkScoreMatched(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	cands := heuristics.ReconstructAll(heuristics.NewSmartSRA(g), res.Streams)
	b.ReportAllocs()
	var acc eval.Accuracy
	for i := 0; i < b.N; i++ {
		acc = eval.ScoreMatched(res.Real, cands)
	}
	b.ReportMetric(acc.Percent(), "acc%")
	b.ReportMetric(float64(acc.Real)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkSmartSRAPhase2 measures Smart-SRA reconstruction throughput over
// one Table 5 workload — dominated by the Phase-2 wave construction and the
// maximality filter, the two allocation hot spots the per-reconstruction
// scratch buffers and the length-bucketed MaximalOnly eliminate.
func BenchmarkSmartSRAPhase2(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 250
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	h := heuristics.NewSmartSRA(g)
	var entries int
	for _, st := range res.Streams {
		entries += len(st.Entries)
	}
	b.ReportAllocs()
	b.SetBytes(int64(entries))
	var sessions int
	for i := 0; i < b.N; i++ {
		sessions = len(heuristics.ReconstructAll(h, res.Streams))
	}
	b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkHeuristicThroughput measures raw reconstruction throughput of
// each heuristic over one Table 5 workload (streams/second scale check).
func BenchmarkHeuristicThroughput(b *testing.B) {
	params := simulator.PaperParams()
	params.Agents = 500
	g, res := benchWorkload(b, webgraph.PaperTopology(), params)
	var entries int
	for _, st := range res.Streams {
		entries += len(st.Entries)
	}
	for _, h := range eval.DefaultHeuristics(g) {
		b.Run(h.Name(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(entries))
			for i := 0; i < b.N; i++ {
				heuristics.ReconstructAll(h, res.Streams)
			}
		})
	}
}
