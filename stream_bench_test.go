package smartsra

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"smartsra/internal/clf"
	"smartsra/internal/core"
)

// BenchmarkStreamIngest measures the bounded-memory streaming path:
// sequential Stream vs the chunk-parallel StreamParallel reader (whose
// intern arena is what pushes allocs/record toward zero), and the
// end-to-end pipeline — StreamParallel feeding a ShardedTail through
// Ingest — that cmd/sessionize -stream and cmd/serve -backfill run. The
// records/s metric is the headline; output equivalence with the batch
// readers is pinned by TestGoldenCorpusStream and FuzzStreamChunks.
func BenchmarkStreamIngest(b *testing.B) {
	g, records, data := ingestWorkload(b)
	recs := float64(len(records))

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := clf.Stream(bytes.NewReader(data), func(clf.Record) {}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("stream-parallel/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := clf.StreamParallel(bytes.NewReader(data), workers, 0, func(clf.Record) {}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
	b.Run("ingest-sharded", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			st, err := core.NewShardedTail(core.Config{Graph: g, Workers: -1}, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Ingest(bytes.NewReader(data), core.DiscardSessions); err != nil {
				b.Fatal(err)
			}
			st.Flush()
		}
		b.ReportMetric(recs*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
