// Command wumine runs the downstream web-usage-mining stage on reconstructed
// sessions: it sessionizes a CLF log with a chosen heuristic, then mines
// frequent navigation patterns and association rules (the apriori-style
// stage the paper's introduction motivates).
//
// Usage:
//
//	wumine -topology topology.json -log access.log [-heuristic heur4]
//	       [-min-support 10] [-max-len 5] [-min-confidence 0.5]
//	       [-containment contiguous] [-top 20]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"smartsra/internal/core"
	"smartsra/internal/heuristics"
	"smartsra/internal/mining"
	"smartsra/internal/webgraph"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology JSON written by simgen (required)")
		logPath  = flag.String("log", "", "CLF access log (required; - for stdin)")
		heur     = flag.String("heuristic", "heur4", "heur1|heur2|heur3|heur4")
		minSup   = flag.Int("min-support", 10, "minimum supporting sessions per pattern")
		maxLen   = flag.Int("max-len", 5, "maximum pattern length (0 = unlimited)")
		minConf  = flag.Float64("min-confidence", 0.5, "minimum rule confidence")
		contain  = flag.String("containment", "contiguous", "contiguous or subsequence")
		top      = flag.Int("top", 20, "print at most this many patterns and rules")
	)
	flag.Parse()
	if *topoPath == "" || *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*topoPath, *logPath, *heur, *minSup, *maxLen, *minConf, *contain, *top); err != nil {
		fmt.Fprintln(os.Stderr, "wumine:", err)
		os.Exit(1)
	}
}

func run(topoPath, logPath, heur string, minSup, maxLen int, minConf float64,
	contain string, top int) error {
	tf, err := os.Open(topoPath)
	if err != nil {
		return err
	}
	g, err := webgraph.Decode(bufio.NewReader(tf))
	tf.Close()
	if err != nil {
		return err
	}
	var h heuristics.Reconstructor
	switch heur {
	case "heur1":
		h = heuristics.NewTimeTotal()
	case "heur2":
		h = heuristics.NewTimeGap()
	case "heur3":
		h = heuristics.NewNavigation(g)
	case "heur4":
		h = heuristics.NewSmartSRA(g)
	default:
		return fmt.Errorf("unknown heuristic %q", heur)
	}
	var containment mining.Containment
	switch contain {
	case "contiguous":
		containment = mining.Contiguous
	case "subsequence":
		containment = mining.Subsequence
	default:
		return fmt.Errorf("unknown containment %q", contain)
	}

	pipeline, err := core.NewPipeline(core.Config{Graph: g, Heuristic: h})
	if err != nil {
		return err
	}
	in := os.Stdin
	if logPath != "-" {
		in, err = os.Open(logPath)
		if err != nil {
			return err
		}
		defer in.Close()
	}
	res, err := pipeline.ProcessLog(bufio.NewReader(in))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pipeline: %s\n", res.Stats)

	patterns, err := mining.Mine(res.Sessions, mining.Config{
		MinSupport: minSup, MaxLength: maxLen, Containment: containment,
	})
	if err != nil {
		return err
	}
	fmt.Printf("frequent patterns (%d total, min support %d, %s):\n",
		len(patterns), minSup, containment)
	for i, p := range patterns {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(patterns)-top)
			break
		}
		fmt.Printf("  %s  %s\n", p, describe(g, p.Pages))
	}

	rules := mining.Rules(patterns, minConf)
	fmt.Printf("association rules (%d total, min confidence %.2f):\n", len(rules), minConf)
	for i, r := range rules {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(rules)-top)
			break
		}
		fmt.Printf("  %s\n", r)
	}
	return nil
}

// describe renders the pattern's pages as URIs for readability.
func describe(g *webgraph.Graph, pages []webgraph.PageID) string {
	out := ""
	for i, p := range pages {
		if i > 0 {
			out += " -> "
		}
		out += g.Label(p)
	}
	return out
}
