// Command benchgate checks bench JSON files (the -benchjson / -benchingest /
// -benchstream outputs) against the planner's no-regression contract: every
// *_speedup field compares the adaptive plan's path to the sequential
// baseline, so a healthy planner keeps each one >= 1.0 on every core count.
// A speedup below the threshold means the planner chose a losing plan and
// the gate fails the build.
//
// Usage:
//
//	benchgate [-min 1.0] [-slack 0.05] [-baseline BENCH_stream.json] \
//	    bench_ingest_ci.json bench_stream_ci.json ...
//
// On measurements produced by a single-core runner (gomaxprocs 1 in the
// JSON) the sequential fallback makes every plan-vs-baseline speedup 1.0 by
// identity, so a violation there can only be measurement noise; the gate
// reports it as advisory instead of failing. Two exceptions hold on every
// core count: mmap_speedup (the mmap source removes a copy — it does not
// need parallelism to win) and ingest_batch_speedup (batching amortizes
// locks and metrics flushes per batch — a claim that is strongest on one
// core, where there is no parallelism to hide a regression behind). -slack
// absorbs run-to-run timer noise without letting a genuinely losing plan
// through.
//
// With -baseline, every *_recs_per_sec field present in both a checked file
// and the committed baseline JSON must stay within -regress of the baseline
// value: a fresh measurement that throughput-regresses past that fraction
// fails the gate. The default -regress is generous because single-run
// throughput on shared CI runners jitters by double-digit percentages; the
// gate exists to catch structural regressions (a lost fast path), not to
// litigate noise.
//
// The gate also sanity-checks every *_recs_per_sec field: a zero, negative,
// or non-finite throughput means the bench itself is broken, and that fails
// regardless of core count.
//
// A cmd/loadgen JSON report (tool == "loadgen") is gated on its own terms:
// accepted + shed + rejected + errors must equal sent exactly, errors must
// be zero (the smoke replays against a healthy local server), and the p99
// latency must be positive (the histogram measured something). Absolute
// latency ceilings are advisory on a 1-core runner.
//
// A chaos report (tool == "loadgen-chaos", from cmd/loadgen -chaos) is gated
// on degradation-and-recovery invariants instead: exact conservation after
// drop reconciliation (serve_requests == serve_enqueued with the ledger
// drained), every adversary defended against (slowloris all server-closed,
// floods 429'd, malformed refused), and admission metrics that actually
// moved. These hold on any hardware and always gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	min := flag.Float64("min", 1.0, "minimum acceptable value for every *_speedup field")
	slack := flag.Float64("slack", 0.05, "measurement-noise tolerance subtracted from -min before failing")
	baseline := flag.String("baseline", "", "committed bench JSON to gate *_recs_per_sec fields against")
	regress := flag.Float64("regress", 0.30, "largest tolerated fractional throughput drop vs -baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no bench JSON files given")
		os.Exit(2)
	}
	var base map[string]any
	if *baseline != "" {
		var err error
		if base, err = readFields(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baseline, err)
			os.Exit(2)
		}
	}
	failed := false
	for _, path := range flag.Args() {
		bad, err := check(path, *min, *slack, base, *regress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		failed = failed || bad
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — see above")
		os.Exit(1)
	}
}

func readFields(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fields map[string]any
	if err := json.Unmarshal(data, &fields); err != nil {
		return nil, err
	}
	return fields, nil
}

// neverAdvisory lists the speedup gates that hold even on a 1-core runner,
// where every parallelism claim degenerates to identity.
func neverAdvisory(field string) bool {
	switch field {
	case "mmap_speedup":
		// mmap vs the buffered reader is a copy-elimination claim, not a
		// parallelism claim.
		return true
	case "ingest_batch_speedup":
		// Batch vs per-record ingestion is a lock/metrics amortization
		// claim; one core is exactly where a batching regression has
		// nothing to hide behind.
		return true
	}
	return false
}

// check reports whether path holds a gated violation (advisory findings are
// printed but do not fail).
func check(path string, min, slack float64, base map[string]any, regress float64) (bool, error) {
	fields, err := readFields(path)
	if err != nil {
		return false, err
	}
	cores := 0
	if v, ok := fields["gomaxprocs"].(float64); ok {
		cores = int(v)
	}
	advisory := cores <= 1

	switch tool, _ := fields["tool"].(string); tool {
	case "loadgen":
		return checkLoadgen(path, fields, advisory)
	case "loadgen-chaos":
		return checkLoadgenChaos(path, fields)
	}

	var speedups, rates []string
	for k := range fields {
		if strings.HasSuffix(k, "_speedup") {
			speedups = append(speedups, k)
		}
		if strings.HasSuffix(k, "_recs_per_sec") {
			rates = append(rates, k)
		}
	}
	sort.Strings(speedups)
	sort.Strings(rates)
	if len(speedups) == 0 && len(rates) == 0 {
		fmt.Printf("%s: no *_speedup or *_recs_per_sec fields (not a speedup bench), skipped\n", path)
		return false, nil
	}

	bad := false
	for _, k := range rates {
		v, ok := fields[k].(float64)
		if !ok {
			return false, fmt.Errorf("field %q is not a number", k)
		}
		if v <= 0 {
			fmt.Printf("%s: %s = %v is not a positive throughput — the bench is broken\n", path, k, v)
			bad = true
			continue
		}
		want, ok := base[k].(float64)
		if !ok || want <= 0 {
			continue // field absent from the baseline (or no baseline given)
		}
		floor := want * (1 - regress)
		if v >= floor {
			fmt.Printf("%s: %s = %.0f ok vs baseline %.0f (floor %.0f)\n", path, k, v, want, floor)
		} else {
			fmt.Printf("%s: %s = %.0f REGRESSES past the baseline %.0f by more than %.0f%% (floor %.0f)\n",
				path, k, v, want, regress*100, floor)
			bad = true
		}
	}
	for _, k := range speedups {
		v, ok := fields[k].(float64)
		if !ok {
			return false, fmt.Errorf("field %q is not a number", k)
		}
		switch {
		case v >= min:
			fmt.Printf("%s: %s = %.2f ok (>= %.2f)\n", path, k, v, min)
		case v >= min-slack:
			fmt.Printf("%s: %s = %.2f within noise slack of %.2f (>= %.2f)\n", path, k, v, min, min-slack)
		case advisory && !neverAdvisory(k):
			fmt.Printf("%s: %s = %.2f below %.2f on a 1-core runner — advisory only (sequential fallback is identity, this is noise)\n",
				path, k, v, min)
		default:
			fmt.Printf("%s: %s = %.2f VIOLATES the >= %.2f gate (plan: %v)\n", path, k, v, min, planOf(fields))
			bad = true
		}
	}
	return bad, nil
}

// loadgenP99Ceiling is the advisory latency threshold for the CI load smoke.
// On a multi-core runner exceeding it fails the gate; on one core the
// whole latency distribution is at the scheduler's mercy, so it only warns.
const loadgenP99Ceiling = 0.25 // seconds

// checkLoadgen gates a cmd/loadgen JSON report. Two checks hold on any
// hardware and always fail the build: exact accounting conservation
// (accepted + shed + errors == sent — every request ended in exactly one
// bucket, nothing was double-counted or silently dropped) and a live
// latency histogram (p99 > 0 — the replay actually measured something).
// Errors must be zero too: the smoke runs against a healthy local server,
// so a transport failure means the harness broke. Absolute latency
// thresholds are advisory on a 1-core runner.
func checkLoadgen(path string, fields map[string]any, advisory bool) (bool, error) {
	num := func(key string) (float64, error) {
		v, ok := fields[key].(float64)
		if !ok {
			return 0, fmt.Errorf("loadgen report field %q missing or not a number", key)
		}
		return v, nil
	}
	var sent, accepted, shed, errs, p99 float64
	for key, dst := range map[string]*float64{
		"sent": &sent, "accepted": &accepted, "shed": &shed,
		"errors": &errs, "p99_seconds": &p99,
	} {
		v, err := num(key)
		if err != nil {
			return false, err
		}
		*dst = v
	}
	// rejected (429, per-IP admission) is absent from reports written before
	// admission control existed; treat missing as zero.
	rejected, _ := fields["rejected"].(float64)

	bad := false
	if int64(accepted)+int64(shed)+int64(rejected)+int64(errs) != int64(sent) || sent <= 0 {
		fmt.Printf("%s: accounting does not conserve: accepted %.0f + shed %.0f + rejected %.0f + errors %.0f != sent %.0f\n",
			path, accepted, shed, rejected, errs, sent)
		bad = true
	} else {
		fmt.Printf("%s: accepted %.0f + shed %.0f + rejected %.0f + errors %.0f == sent %.0f ok\n",
			path, accepted, shed, rejected, errs, sent)
	}
	if errs != 0 {
		fmt.Printf("%s: errors = %.0f against a healthy local server — the harness is broken\n", path, errs)
		bad = true
	}
	if p99 <= 0 {
		fmt.Printf("%s: p99_seconds = %v — the latency histogram is empty or broken\n", path, p99)
		bad = true
	}
	switch {
	case p99 <= 0:
	case p99 <= loadgenP99Ceiling:
		fmt.Printf("%s: p99_seconds = %.4f ok (<= %.2f)\n", path, p99, loadgenP99Ceiling)
	case advisory:
		fmt.Printf("%s: p99_seconds = %.4f above %.2f on a 1-core runner — advisory only\n",
			path, p99, loadgenP99Ceiling)
	default:
		fmt.Printf("%s: p99_seconds = %.4f VIOLATES the <= %.2f ceiling\n", path, p99, loadgenP99Ceiling)
		bad = true
	}
	return bad, nil
}

// checkLoadgenChaos gates a cmd/loadgen -chaos JSON report: a replay plus
// the adversarial suite against a hardened serve, with the server's own
// /debug/metrics scraped into the report after reconciliation settled.
// Everything here holds on any hardware:
//
//   - client accounting conserves exactly, including the 429 bucket
//   - the server's drop ledger drained (drops_pending == 0, nothing lost)
//     and conservation is exact: serve_requests == serve_enqueued, with
//     every recorded drop reconciled
//   - each adversary actually ran and was defended against: slowloris
//     connections all server-closed, flood requests classified with some
//     429s, malformed lines all refused
//   - admission metrics moved (the middleware was in the path, not bypassed)
func checkLoadgenChaos(path string, fields map[string]any) (bool, error) {
	num := func(key string) (float64, error) {
		v, ok := fields[key].(float64)
		if !ok {
			return 0, fmt.Errorf("chaos report field %q missing or not a number", key)
		}
		return v, nil
	}
	need := map[string]float64{}
	for _, key := range []string{
		"sent", "accepted", "shed", "rejected", "errors",
		"serve_requests", "serve_enqueued",
		"drops_recorded", "drops_reconciled", "drops_pending", "drops_lost",
		"admission_admitted", "admission_ip_limited",
		"chaos_slow_opened", "chaos_slow_server_closed",
		"chaos_flood_sent", "chaos_flood_accepted", "chaos_flood_rejected",
		"chaos_flood_shed", "chaos_flood_errors",
		"chaos_churn_cycles", "chaos_malformed_sent", "chaos_malformed_refused",
	} {
		v, err := num(key)
		if err != nil {
			return false, err
		}
		need[key] = v
	}

	bad := false
	fail := func(format string, args ...any) {
		fmt.Printf("%s: "+format+"\n", append([]any{path}, args...)...)
		bad = true
	}
	ok := func(format string, args ...any) {
		fmt.Printf("%s: "+format+"\n", append([]any{path}, args...)...)
	}

	// Client-side conservation, all four outcome buckets.
	sum := need["accepted"] + need["shed"] + need["rejected"] + need["errors"]
	if int64(sum) != int64(need["sent"]) || need["sent"] <= 0 {
		fail("replay accounting does not conserve: %.0f classified of %.0f sent", sum, need["sent"])
	} else {
		ok("replay accounting conserves: accepted %.0f + shed %.0f + rejected %.0f + errors %.0f == sent %.0f",
			need["accepted"], need["shed"], need["rejected"], need["errors"], need["sent"])
	}

	// Server-side conservation after reconciliation — the whole point.
	switch {
	case need["drops_pending"] != 0:
		fail("drop ledger never drained: %.0f records still pending", need["drops_pending"])
	case need["drops_lost"] != 0:
		fail("%.0f dropped records lost without a rotation", need["drops_lost"])
	case need["serve_requests"] != need["serve_enqueued"]:
		fail("conservation violated after reconciliation: serve_requests %.0f != serve_enqueued %.0f",
			need["serve_requests"], need["serve_enqueued"])
	case need["drops_reconciled"] != need["drops_recorded"]:
		fail("reconciled %.0f of %.0f recorded drops with pending at 0",
			need["drops_reconciled"], need["drops_recorded"])
	default:
		ok("conservation exact: serve_requests %.0f == serve_enqueued %.0f (%.0f drops reconciled, 0 pending, 0 lost)",
			need["serve_requests"], need["serve_enqueued"], need["drops_recorded"])
	}

	// Each adversary must have run AND been defended against — a chaos run
	// that attacked nothing would pass every conservation check vacuously.
	if need["chaos_slow_opened"] <= 0 {
		fail("slowloris never connected — the adversary did not run")
	} else if need["chaos_slow_server_closed"] != need["chaos_slow_opened"] {
		fail("server closed %.0f of %.0f slowloris connections — the read-header deadline is not holding",
			need["chaos_slow_server_closed"], need["chaos_slow_opened"])
	} else {
		ok("slowloris defense held: %.0f/%.0f connections server-closed",
			need["chaos_slow_server_closed"], need["chaos_slow_opened"])
	}
	floodSum := need["chaos_flood_accepted"] + need["chaos_flood_rejected"] +
		need["chaos_flood_shed"] + need["chaos_flood_errors"]
	if need["chaos_flood_sent"] <= 0 {
		fail("flood never fired — the adversary did not run")
	} else if int64(floodSum) != int64(need["chaos_flood_sent"]) {
		fail("flood classification leaks: %.0f classified of %.0f sent", floodSum, need["chaos_flood_sent"])
	} else if need["chaos_flood_rejected"] <= 0 {
		fail("no flood request was ever 429'd — per-IP admission is not limiting")
	} else {
		ok("flood contained: %.0f sent, %.0f rejected (429), %.0f admitted",
			need["chaos_flood_sent"], need["chaos_flood_rejected"], need["chaos_flood_accepted"])
	}
	if need["chaos_malformed_sent"] <= 0 {
		fail("malformed adversary did not run")
	} else if need["chaos_malformed_refused"] != need["chaos_malformed_sent"] {
		fail("only %.0f of %.0f malformed request lines refused",
			need["chaos_malformed_refused"], need["chaos_malformed_sent"])
	} else {
		ok("malformed lines all refused: %.0f/%.0f", need["chaos_malformed_refused"], need["chaos_malformed_sent"])
	}
	if need["chaos_churn_cycles"] <= 0 {
		fail("connection churn did not run")
	}

	// Admission metrics must have moved: the middleware was in the path.
	if need["admission_admitted"] <= 0 || need["admission_ip_limited"] <= 0 {
		fail("admission metrics flat (admitted %.0f, ip_limited %.0f) — the gate was bypassed or disabled",
			need["admission_admitted"], need["admission_ip_limited"])
	} else {
		ok("admission exercised: %.0f admitted, %.0f ip-limited",
			need["admission_admitted"], need["admission_ip_limited"])
	}
	return bad, nil
}

// planOf pulls whichever plan field the bench recorded, for the failure
// message.
func planOf(fields map[string]any) string {
	for _, k := range []string{"plan", "plan_parse", "plan_live"} {
		if s, ok := fields[k].(string); ok {
			return s
		}
	}
	return "unrecorded"
}
