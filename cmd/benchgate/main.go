// Command benchgate checks bench JSON files (the -benchjson / -benchingest /
// -benchstream outputs) against the planner's no-regression contract: every
// *_speedup field compares the adaptive plan's path to the sequential
// baseline, so a healthy planner keeps each one >= 1.0 on every core count.
// A speedup below the threshold means the planner chose a losing plan and
// the gate fails the build.
//
// Usage:
//
//	benchgate [-min 1.0] [-slack 0.05] bench_ingest_ci.json bench_stream_ci.json ...
//
// On measurements produced by a single-core runner (gomaxprocs 1 in the
// JSON) the sequential fallback makes every plan-vs-baseline speedup 1.0 by
// identity, so a violation there can only be measurement noise; the gate
// reports it as advisory instead of failing. The exception is mmap_speedup:
// the mmap source does not depend on parallelism to win — it removes a copy
// — so that gate holds on every core count. -slack absorbs run-to-run timer
// noise without letting a genuinely losing plan through.
//
// The gate also sanity-checks every *_recs_per_sec field: a zero, negative,
// or non-finite throughput means the bench itself is broken, and that fails
// regardless of core count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	min := flag.Float64("min", 1.0, "minimum acceptable value for every *_speedup field")
	slack := flag.Float64("slack", 0.05, "measurement-noise tolerance subtracted from -min before failing")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no bench JSON files given")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		bad, err := check(path, *min, *slack)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		failed = failed || bad
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — the planner picked a losing plan; see above")
		os.Exit(1)
	}
}

// check reports whether path holds a gated speedup violation (advisory
// findings are printed but do not fail).
func check(path string, min, slack float64) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var fields map[string]any
	if err := json.Unmarshal(data, &fields); err != nil {
		return false, err
	}
	cores := 0
	if v, ok := fields["gomaxprocs"].(float64); ok {
		cores = int(v)
	}
	advisory := cores <= 1

	var speedups, rates []string
	for k := range fields {
		if strings.HasSuffix(k, "_speedup") {
			speedups = append(speedups, k)
		}
		if strings.HasSuffix(k, "_recs_per_sec") {
			rates = append(rates, k)
		}
	}
	sort.Strings(speedups)
	sort.Strings(rates)
	if len(speedups) == 0 && len(rates) == 0 {
		fmt.Printf("%s: no *_speedup or *_recs_per_sec fields (not a speedup bench), skipped\n", path)
		return false, nil
	}

	bad := false
	for _, k := range rates {
		v, ok := fields[k].(float64)
		if !ok {
			return false, fmt.Errorf("field %q is not a number", k)
		}
		if v <= 0 {
			fmt.Printf("%s: %s = %v is not a positive throughput — the bench is broken\n", path, k, v)
			bad = true
		}
	}
	for _, k := range speedups {
		v, ok := fields[k].(float64)
		if !ok {
			return false, fmt.Errorf("field %q is not a number", k)
		}
		switch {
		case v >= min:
			fmt.Printf("%s: %s = %.2f ok (>= %.2f)\n", path, k, v, min)
		case v >= min-slack:
			fmt.Printf("%s: %s = %.2f within noise slack of %.2f (>= %.2f)\n", path, k, v, min, min-slack)
		case advisory && k != "mmap_speedup":
			// mmap vs the buffered reader is a copy-elimination claim, not
			// a parallelism claim: it must hold even on one core.
			fmt.Printf("%s: %s = %.2f below %.2f on a 1-core runner — advisory only (sequential fallback is identity, this is noise)\n",
				path, k, v, min)
		default:
			fmt.Printf("%s: %s = %.2f VIOLATES the >= %.2f gate (plan: %v)\n", path, k, v, min, planOf(fields))
			bad = true
		}
	}
	return bad, nil
}

// planOf pulls whichever plan field the bench recorded, for the failure
// message.
func planOf(fields map[string]any) string {
	for _, k := range []string{"plan", "plan_parse", "plan_live"} {
		if s, ok := fields[k].(string); ok {
			return s
		}
	}
	return "unrecorded"
}
