// Command loadgen replays simulated users against a running serve instance
// in real time and reports the latency distribution and shed rate. It reuses
// the agent model from internal/simulator, so the traffic a serve under test
// receives is the same traffic the offline pipeline is evaluated on: a fixed
// seed makes the request schedule reproducible run to run.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -topo topology.json \
//	        [-agents 500] [-seed 1] [-speedup 60] [-workers 8] \
//	        [-duration 0] [-chaos] [-json report.json]
//
// -speedup compresses simulated time (60 means one simulated minute per real
// second); 0 disables pacing and issues requests as fast as the workers can,
// which is the overload configuration. The process exits 0 as long as the
// replay itself ran; shed responses are data, not failure — gate the JSON
// report with benchgate.
//
// -chaos runs the adversarial suite (slowloris header-drippers, per-IP
// floods, connection churn, malformed request lines) concurrently with the
// normal replay, then scrapes the server's /debug/metrics so the JSON report
// (tool "loadgen-chaos") carries both the client-side classification and the
// server's own conservation and admission counters for benchgate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smartsra/internal/loadgen"
	"smartsra/internal/metrics"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of the serve instance under test (required)")
		topoPath = flag.String("topo", "", "topology JSON the server is serving (required)")
		agents   = flag.Int("agents", 500, "number of simulated users")
		seed     = flag.Int64("seed", 1, "simulation seed (fixed seed = reproducible schedule)")
		stp      = flag.Float64("stp", 0.05, "session termination probability")
		lpp      = flag.Float64("lpp", 0.30, "link-from-previous-pages probability")
		nip      = flag.Float64("nip", 0.30, "new-initial-page probability")
		window   = flag.Duration("start-window", time.Hour, "simulated window over which users begin")
		speedup  = flag.Float64("speedup", 60, "simulated seconds replayed per real second (0 = no pacing, maximum pressure)")
		workers  = flag.Int("workers", 8, "concurrent in-flight requests")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		duration = flag.Duration("duration", 0, "stop the replay after this wall-clock time (0 = run the whole schedule)")
		chaos    = flag.Bool("chaos", false, "run the adversarial suite (slowloris, floods, churn, malformed) alongside the replay and scrape the server's /debug/metrics into the report")
		jsonPath = flag.String("json", "", "write the report as flat JSON to this file (benchgate-compatible)")
	)
	flag.Parse()
	if err := run(*url, *topoPath, *agents, *seed, *stp, *lpp, *nip,
		*window, *speedup, *workers, *timeout, *duration, *chaos, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(url, topoPath string, agents int, seed int64, stp, lpp, nip float64,
	window time.Duration, speedup float64, workers int,
	timeout, duration time.Duration, chaos bool, jsonPath string) error {
	if url == "" || topoPath == "" {
		return fmt.Errorf("both -url and -topo are required")
	}
	f, err := os.Open(topoPath)
	if err != nil {
		return err
	}
	g, err := webgraph.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("decode %s: %w", topoPath, err)
	}

	params := simulator.PaperParams()
	params.Agents = agents
	params.STP, params.LPP, params.NIP = stp, lpp, nip
	params.Seed = seed
	params.StartWindow = window
	res, err := simulator.Run(g, params)
	if err != nil {
		return err
	}
	reqs := res.Schedule(g)
	span := time.Duration(0)
	if len(reqs) > 1 {
		span = reqs[len(reqs)-1].At.Sub(reqs[0].At)
	}
	fmt.Printf("schedule: %d requests from %d users over %s of simulated time (seed %d)\n",
		len(reqs), agents, span.Round(time.Second), seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}

	// The chaos suite attacks the same server while the legitimate replay
	// runs, so admission control is exercised under real mixed traffic.
	var chaosRep loadgen.ChaosReport
	var chaosErr error
	chaosDone := make(chan struct{})
	if chaos {
		go func() {
			defer close(chaosDone)
			chaosRep, chaosErr = loadgen.RunChaos(ctx, loadgen.ChaosConfig{BaseURL: url})
		}()
	} else {
		close(chaosDone)
	}

	reg := metrics.NewRegistry()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  url,
		Requests: reqs,
		Speedup:  speedup,
		Workers:  workers,
		Timeout:  timeout,
		Registry: reg,
	})
	if err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		return err
	}
	fmt.Printf("replay:   %s\n", rep)
	<-chaosDone
	if chaosErr != nil {
		return chaosErr
	}
	if chaos {
		fmt.Printf("chaos:    %s\n", chaosRep)
	}

	if jsonPath != "" {
		fields := rep.Fields()
		fields["gomaxprocs"] = runtime.GOMAXPROCS(0)
		fields["seed"] = seed
		fields["agents"] = agents
		fields["speedup_factor"] = speedup
		fields["workers"] = workers
		if chaos {
			fields["tool"] = "loadgen-chaos"
			for k, v := range chaosRep.Fields() {
				fields[k] = v
			}
			if err := mergeServeMetrics(fields, url); err != nil {
				return err
			}
		}
		data, err := json.MarshalIndent(fields, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report:   %s\n", jsonPath)
	}
	return nil
}

// mergeServeMetrics scrapes the server's /debug/metrics into fields under
// flat benchgate-friendly keys. It first polls until drop reconciliation has
// drained (serve.drops.pending == 0 and the conservation identity
// serve.requests == serve.ingest.enqueued + serve.drops.lost holds), because
// the whole point of the chaos gate is to assert the settled state; after
// 30s it records whatever the server reports — a stuck ledger should fail
// the gate loudly, not hide behind a scrape that gave up silently.
func mergeServeMetrics(fields map[string]any, url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	deadline := time.Now().Add(30 * time.Second)
	var m map[string]int64
	for {
		var err error
		m, err = loadgen.ScrapeMetrics(ctx, url)
		if err != nil {
			return err
		}
		settled := m["serve.drops.pending"] == 0 &&
			m["serve.requests"] == m["serve.ingest.enqueued"]+m["serve.drops.lost"]
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}
	for k, name := range map[string]string{
		"serve_requests":          "serve.requests",
		"serve_enqueued":          "serve.ingest.enqueued",
		"serve_shed":              "serve.shed",
		"drops_recorded":          "serve.drops.recorded",
		"drops_reconciled":        "serve.drops.reconciled",
		"drops_pending":           "serve.drops.pending",
		"drops_lost":              "serve.drops.lost",
		"admission_admitted":      `serve.admission.requests{outcome="admitted"}`,
		"admission_ip_limited":    `serve.admission.requests{outcome="ip_limited"}`,
		"admission_inflight_shed": `serve.admission.requests{outcome="inflight_shed"}`,
		"conns_accepted":          "serve.conns.accepted",
	} {
		fields[k] = m[name]
	}
	return nil
}
