// Command loadgen replays simulated users against a running serve instance
// in real time and reports the latency distribution and shed rate. It reuses
// the agent model from internal/simulator, so the traffic a serve under test
// receives is the same traffic the offline pipeline is evaluated on: a fixed
// seed makes the request schedule reproducible run to run.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -topo topology.json \
//	        [-agents 500] [-seed 1] [-speedup 60] [-workers 8] \
//	        [-duration 0] [-json report.json]
//
// -speedup compresses simulated time (60 means one simulated minute per real
// second); 0 disables pacing and issues requests as fast as the workers can,
// which is the overload configuration. The process exits 0 as long as the
// replay itself ran; shed responses are data, not failure — gate the JSON
// report with benchgate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smartsra/internal/loadgen"
	"smartsra/internal/metrics"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of the serve instance under test (required)")
		topoPath = flag.String("topo", "", "topology JSON the server is serving (required)")
		agents   = flag.Int("agents", 500, "number of simulated users")
		seed     = flag.Int64("seed", 1, "simulation seed (fixed seed = reproducible schedule)")
		stp      = flag.Float64("stp", 0.05, "session termination probability")
		lpp      = flag.Float64("lpp", 0.30, "link-from-previous-pages probability")
		nip      = flag.Float64("nip", 0.30, "new-initial-page probability")
		window   = flag.Duration("start-window", time.Hour, "simulated window over which users begin")
		speedup  = flag.Float64("speedup", 60, "simulated seconds replayed per real second (0 = no pacing, maximum pressure)")
		workers  = flag.Int("workers", 8, "concurrent in-flight requests")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		duration = flag.Duration("duration", 0, "stop the replay after this wall-clock time (0 = run the whole schedule)")
		jsonPath = flag.String("json", "", "write the report as flat JSON to this file (benchgate-compatible)")
	)
	flag.Parse()
	if err := run(*url, *topoPath, *agents, *seed, *stp, *lpp, *nip,
		*window, *speedup, *workers, *timeout, *duration, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(url, topoPath string, agents int, seed int64, stp, lpp, nip float64,
	window time.Duration, speedup float64, workers int,
	timeout, duration time.Duration, jsonPath string) error {
	if url == "" || topoPath == "" {
		return fmt.Errorf("both -url and -topo are required")
	}
	f, err := os.Open(topoPath)
	if err != nil {
		return err
	}
	g, err := webgraph.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("decode %s: %w", topoPath, err)
	}

	params := simulator.PaperParams()
	params.Agents = agents
	params.STP, params.LPP, params.NIP = stp, lpp, nip
	params.Seed = seed
	params.StartWindow = window
	res, err := simulator.Run(g, params)
	if err != nil {
		return err
	}
	reqs := res.Schedule(g)
	span := time.Duration(0)
	if len(reqs) > 1 {
		span = reqs[len(reqs)-1].At.Sub(reqs[0].At)
	}
	fmt.Printf("schedule: %d requests from %d users over %s of simulated time (seed %d)\n",
		len(reqs), agents, span.Round(time.Second), seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}

	reg := metrics.NewRegistry()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  url,
		Requests: reqs,
		Speedup:  speedup,
		Workers:  workers,
		Timeout:  timeout,
		Registry: reg,
	})
	if err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		return err
	}
	fmt.Printf("replay:   %s\n", rep)

	if jsonPath != "" {
		fields := rep.Fields()
		fields["gomaxprocs"] = runtime.GOMAXPROCS(0)
		fields["seed"] = seed
		fields["agents"] = agents
		fields["speedup_factor"] = speedup
		fields["workers"] = workers
		data, err := json.MarshalIndent(fields, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report:   %s\n", jsonPath)
	}
	return nil
}
