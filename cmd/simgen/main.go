// Command simgen generates a random site topology and simulates web agents
// over it, writing three artifacts: the topology (JSON), the server access
// log (Common Log Format), and the ground-truth sessions (text, one session
// per line). These are the inputs for cmd/sessionize and for external
// analysis.
//
// Usage:
//
//	simgen -out DIR [-pages 300] [-outdeg 15] [-starts 0.05] [-model uniform]
//	       [-agents 10000] [-stp 0.05] [-lpp 0.3] [-nip 0.3] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"smartsra/internal/clf"
	"smartsra/internal/simulator"
	"smartsra/internal/webgraph"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		pages    = flag.Int("pages", 300, "number of web pages (Table 5: 300)")
		outdeg   = flag.Float64("outdeg", 15, "average out-degree (Table 5: 15)")
		starts   = flag.Float64("starts", 0.05, "fraction of pages that are session entry pages")
		model    = flag.String("model", "uniform", "topology model: uniform or preferential")
		agents   = flag.Int("agents", 10000, "number of simulated agents (Table 5: 10000)")
		stp      = flag.Float64("stp", 0.05, "session termination probability")
		lpp      = flag.Float64("lpp", 0.30, "link-from-previous-pages probability")
		nip      = flag.Float64("nip", 0.30, "new-initial-page probability")
		seed     = flag.Int64("seed", 1, "random seed (topology uses seed, agents seed+1)")
		combined = flag.Bool("combined", false, "write Combined Log Format (with Referer and User-Agent)")
	)
	flag.Parse()
	if err := run(*out, *pages, *outdeg, *starts, *model, *agents, *stp, *lpp, *nip, *seed, *combined); err != nil {
		fmt.Fprintln(os.Stderr, "simgen:", err)
		os.Exit(1)
	}
}

func run(out string, pages int, outdeg, starts float64, model string,
	agents int, stp, lpp, nip float64, seed int64, combined bool) error {
	m, err := webgraph.ParseTopologyModel(model)
	if err != nil {
		return err
	}
	cfg := webgraph.TopologyConfig{
		Pages: pages, AvgOutDegree: outdeg, StartPageFraction: starts,
		Model: m, EnsureReachable: true,
	}
	g, err := webgraph.GenerateTopology(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	params := simulator.PaperParams()
	params.Agents = agents
	params.STP, params.LPP, params.NIP = stp, lpp, nip
	params.Seed = seed + 1
	res, err := simulator.Run(g, params)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "topology.json"), func(w *bufio.Writer) error {
		return g.Encode(w)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "access.log"), func(w *bufio.Writer) error {
		if combined {
			cw := clf.NewCombinedWriter(w)
			for _, rec := range res.LogCombined(g) {
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
			return cw.Flush()
		}
		return clf.WriteAll(w, res.Log(g))
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "sessions.real"), func(w *bufio.Writer) error {
		for _, s := range res.Real {
			if _, err := fmt.Fprintln(w, s); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("topology: %s\n", g)
	fmt.Printf("run:      %s\n", res.Stats)
	fmt.Printf("wrote %s/{topology.json, access.log, sessions.real}\n", out)
	return nil
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("flush %s: %w", path, err)
	}
	return f.Close()
}
