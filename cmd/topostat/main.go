// Command topostat reports the structure of a site topology: degree
// distributions, reachability from start pages, and PageRank popularity —
// the web-structure-mining view of the site whose usage the rest of the
// toolchain mines. It can also re-export the topology as Graphviz DOT.
//
// Usage:
//
//	topostat -topology topology.json [-top 10] [-dot site.dot]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"smartsra/internal/stats"
	"smartsra/internal/webgraph"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology JSON written by simgen (required)")
		top      = flag.Int("top", 10, "how many top-PageRank pages to list")
		dotPath  = flag.String("dot", "", "also write Graphviz DOT to this file")
	)
	flag.Parse()
	if *topoPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*topoPath, *top, *dotPath); err != nil {
		fmt.Fprintln(os.Stderr, "topostat:", err)
		os.Exit(1)
	}
}

func run(topoPath string, top int, dotPath string) error {
	f, err := os.Open(topoPath)
	if err != nil {
		return err
	}
	g, err := webgraph.Decode(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return err
	}

	analysis := g.Analyze()
	fmt.Println(analysis)

	if h := degreeHistogram(g, analysis.InDegree.Max); h != nil {
		fmt.Println("\nin-degree distribution:")
		fmt.Print(h)
	}

	rank, err := g.PageRank(0.85, 1e-10, 200)
	if err != nil {
		return err
	}
	fmt.Printf("\ntop %d pages by PageRank:\n", top)
	for i, p := range webgraph.TopPages(rank, top) {
		marker := ""
		if g.IsStartPage(p) {
			marker = "  [start page]"
		}
		fmt.Printf("%3d. %-24s %.5f  (in: %d, out: %d)%s\n",
			i+1, g.Label(p), rank[p], g.InDegree(p), g.OutDegree(p), marker)
	}

	if dotPath != "" {
		df, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(df)
		if err := g.WriteDOT(w, "site"); err != nil {
			df.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", dotPath)
	}
	return nil
}

// degreeHistogram builds a 10-bin in-degree histogram, or nil for trivial
// graphs.
func degreeHistogram(g *webgraph.Graph, maxIn int) *stats.Histogram {
	if g.NumPages() == 0 || maxIn < 1 {
		return nil
	}
	h, err := stats.NewHistogram(0, float64(maxIn+1), 10)
	if err != nil {
		return nil
	}
	for _, p := range g.Pages() {
		h.Add(float64(g.InDegree(p)))
	}
	return h
}
