package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"smartsra/internal/eval"
)

// pointBench is the JSON record -benchjson emits: one self-benchmark of a
// full evaluation point (simulate, reconstruct with every heuristic, score
// under both metrics) at the configured -agents scale and -workers budget.
// CI runs this and uploads the file; EXPERIMENTS.md tracks the trajectory.
type pointBench struct {
	Name           string  `json:"name"`
	Agents         int     `json:"agents"`
	Workers        int     `json:"workers"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	RealSessions   int     `json:"real_sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
}

// runBenchJSON benchmarks EvaluatePointWith on the given configuration and
// writes the measurement as JSON to path ("-" for stdout). The human-readable
// line goes to stderr so the JSON artifact stays clean.
func runBenchJSON(base eval.RunConfig, workers int, path string) error {
	g, err := eval.Topology(base)
	if err != nil {
		return err
	}
	opts := eval.RunOptions{Workers: workers}
	// Warm up once: pools fill, code paths JIT into the branch predictor, and
	// the topology's caches (start pages, successor lists) are touched.
	warm, err := eval.EvaluatePointWith(g, base, opts)
	if err != nil {
		return err
	}

	// Iterate until the measurement window is comfortably above timer noise,
	// with a floor so fast configurations still average several runs.
	const (
		minIters  = 5
		minWindow = 2 * time.Second
		maxIters  = 200
	)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for (time.Since(start) < minWindow || iters < minIters) && iters < maxIters {
		if _, err := eval.EvaluatePointWith(g, base, opts); err != nil {
			return err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	effWorkers := workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	b := pointBench{
		Name:           "EvaluatePoint",
		Agents:         base.Params.Agents,
		Workers:        effWorkers,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Iterations:     iters,
		NsPerOp:        elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp:    int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:     int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		RealSessions:   warm.RealSessions,
		SessionsPerSec: float64(warm.RealSessions) * float64(iters) / elapsed.Seconds(),
	}
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
	} else {
		err = os.WriteFile(path, out, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: %d iters, %.1fms/op, %d allocs/op, %.0f sessions/s (workers=%d, GOMAXPROCS=%d)\n",
		b.Iterations, float64(b.NsPerOp)/1e6, b.AllocsPerOp, b.SessionsPerSec,
		b.Workers, b.GOMAXPROCS)
	return nil
}
