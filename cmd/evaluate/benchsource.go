package main

import (
	"compress/gzip"
	"os"
	"path/filepath"

	"smartsra/internal/clf"
)

// sourceBench holds the per-source-kind throughput measurements shared by
// -benchingest and -benchstream: the same simulated log streamed through
// clf.StreamFiles from a plain file via the buffered reader, the same file
// via mmap, and a gzip copy through the decode path. All three drop records
// as they arrive (no retention), so the numbers are directly comparable to
// each other and to the in-memory stream baselines measured the same way.
type sourceBench struct {
	// FileRecsPerSec reads the plain file with mmap disabled — the
	// buffered-reader source, the floor mmap has to beat.
	FileRecsPerSec float64 `json:"file_recs_per_sec"`
	// MmapRecsPerSec reads the same file through the zero-copy mmap source
	// (the io.ReadFull fallback on platforms without mmap support).
	MmapRecsPerSec float64 `json:"mmap_recs_per_sec"`
	// GzipRecsPerSec reads a gzip copy through the decode path; offsets
	// count decoded bytes.
	GzipRecsPerSec float64 `json:"gzip_recs_per_sec"`
}

// measureSources writes data to a temp plain file and a gzip copy, then
// times clf.StreamFiles over each source kind at the given worker width
// (<= 0 means all cores, matching clf.StreamConfig).
func measureSources(data []byte, recs float64, workers int) (sourceBench, error) {
	var sb sourceBench
	dir, err := os.MkdirTemp("", "benchsource")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)
	plain := filepath.Join(dir, "bench.log")
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		return sb, err
	}
	gzPath := filepath.Join(dir, "bench.log.gz")
	gf, err := os.Create(gzPath)
	if err != nil {
		return sb, err
	}
	zw := gzip.NewWriter(gf)
	if _, err := zw.Write(data); err != nil {
		return sb, err
	}
	if err := zw.Close(); err != nil {
		return sb, err
	}
	if err := gf.Close(); err != nil {
		return sb, err
	}

	drop := func(clf.Record) {}
	run := func(path string, noMmap bool) (float64, error) {
		var ferr error
		sec, _ := measure(func() {
			if _, err := clf.StreamFiles([]string{path},
				clf.StreamConfig{Workers: workers, NoMmap: noMmap}, drop, nil); err != nil && ferr == nil {
				ferr = err
			}
		})
		if ferr != nil {
			return 0, ferr
		}
		return recs / sec, nil
	}
	if sb.FileRecsPerSec, err = run(plain, true); err != nil {
		return sb, err
	}
	if sb.MmapRecsPerSec, err = run(plain, false); err != nil {
		return sb, err
	}
	if sb.GzipRecsPerSec, err = run(gzPath, false); err != nil {
		return sb, err
	}
	return sb, nil
}
